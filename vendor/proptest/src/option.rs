//! `proptest::option::of`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// The strategy returned by [`of`].
#[derive(Clone, Copy, Debug)]
pub struct OptionStrategy<S>(S);

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
        // upstream defaults to a high Some probability; 3-in-4 keeps
        // both variants well represented at small case counts
        if rng.below(4) == 0 {
            None
        } else {
            Some(self.0.sample(rng))
        }
    }
}

/// Samples `None` or a `Some` drawn from `inner`.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy(inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::Just;

    #[test]
    fn both_variants_appear() {
        let mut rng = TestRng::from_name("option");
        let s = of(Just(1u8));
        let vals: Vec<Option<u8>> = (0..64).map(|_| s.sample(&mut rng)).collect();
        assert!(vals.iter().any(Option::is_none));
        assert!(vals.iter().any(Option::is_some));
    }
}
