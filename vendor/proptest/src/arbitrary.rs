//! `any::<T>()` over the primitive types the workspace samples.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-range strategy.
pub trait Arbitrary {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
#[derive(Clone, Copy, Debug)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A full-range strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_bool_hits_both_values() {
        let mut rng = TestRng::from_name("bool");
        let s = any::<bool>();
        let mut seen = [false; 2];
        for _ in 0..64 {
            seen[usize::from(s.sample(&mut rng))] = true;
        }
        assert_eq!(seen, [true, true]);
    }

    #[test]
    fn any_i32_spans_signs() {
        let mut rng = TestRng::from_name("i32");
        let s = any::<i32>();
        let vals: Vec<i32> = (0..64).map(|_| s.sample(&mut rng)).collect();
        assert!(vals.iter().any(|&v| v < 0) && vals.iter().any(|&v| v >= 0));
    }
}
