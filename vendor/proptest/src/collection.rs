//! `proptest::collection::vec` with the size specifications used in
//! the workspace (exact, half-open, inclusive).

use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// An element-count specification for [`vec`].
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    min: usize,
    /// Inclusive upper bound.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// The strategy returned by [`vec`].
#[derive(Clone, Copy, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max - self.size.min + 1) as u64;
        let len = self.size.min + rng.below(span) as usize;
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// Samples vectors whose elements come from `element` and whose length
/// lies in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_and_ranged_lengths() {
        let mut rng = TestRng::from_name("vec");
        assert_eq!(vec(0u8..4, 18).sample(&mut rng).len(), 18);
        for _ in 0..100 {
            let v = vec(0u8..4, 1..5).sample(&mut rng);
            assert!((1..5).contains(&v.len()));
            let w = vec(0u8..4, 0..=2).sample(&mut rng);
            assert!(w.len() <= 2);
        }
    }
}
