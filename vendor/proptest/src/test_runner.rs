//! Test configuration and the deterministic sampling RNG.

/// Subset of upstream `ProptestConfig`: only `cases` is honoured.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of sampled cases per property.
    pub cases: u32,
    /// Accepted for source compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}

/// A deterministic splitmix64 RNG, seeded per test from its name so
/// distinct properties explore distinct sequences while every run of
/// one property replays the same inputs.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from a test name (FNV-1a over the bytes).
    pub fn from_name(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h | 1 }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "empty sampling range");
        // multiply-shift rejection-free mapping; bias is negligible for
        // the small bounds property tests use
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_name() {
        let a: Vec<u64> = {
            let mut r = TestRng::from_name("x");
            (0..4).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = TestRng::from_name("x");
            (0..4).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c = TestRng::from_name("y").next_u64();
        assert_ne!(a[0], c);
    }

    #[test]
    fn below_stays_in_range() {
        let mut r = TestRng::from_name("range");
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
    }
}
