//! The `Strategy` trait and the combinators the workspace uses.

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for sampling values of one type.
///
/// Unlike upstream proptest there is no value tree: `sample` draws a
/// concrete value directly and failures do not shrink.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps sampled values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (needed by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The `prop_map` combinator.
#[derive(Clone, Copy, Debug)]
pub struct Map<S, F> {
    pub(crate) inner: S,
    pub(crate) f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// A weighted union of same-typed strategies (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    /// Builds a union; at least one arm with nonzero weight required.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
        let total = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "prop_oneof! needs a nonzero total weight");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (w, s) in &self.arms {
            let w = u64::from(*w);
            if pick < w {
                return s.sample(rng);
            }
            pick -= w;
        }
        unreachable!("weights sum to total")
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as i128 - *self.start() as i128 + 1) as u64;
                (*self.start() as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategies {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7, I 8)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7, I 8, J 9)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_cover_bounds() {
        let mut rng = TestRng::from_name("ranges");
        let s = 3u8..6;
        let mut seen = [false; 6];
        for _ in 0..200 {
            let v = s.sample(&mut rng);
            assert!((3..6).contains(&v));
            seen[v as usize] = true;
        }
        assert!(seen[3] && seen[4] && seen[5]);
        let inc = 0i32..=1;
        for _ in 0..20 {
            assert!((0..=1).contains(&inc.sample(&mut rng)));
        }
    }

    #[test]
    fn map_and_just_compose() {
        let mut rng = TestRng::from_name("map");
        let s = (0u8..4).prop_map(|v| v * 10);
        for _ in 0..50 {
            assert_eq!(s.sample(&mut rng) % 10, 0);
        }
        assert_eq!(Just(7).sample(&mut rng), 7);
    }

    #[test]
    fn union_respects_zero_weight_exclusion() {
        let mut rng = TestRng::from_name("union");
        let u = Union::new(vec![(1, Just(1).boxed()), (0, Just(2).boxed())]);
        for _ in 0..50 {
            assert_eq!(u.sample(&mut rng), 1);
        }
    }

    #[test]
    fn tuples_sample_componentwise() {
        let mut rng = TestRng::from_name("tuple");
        let (a, b) = (0u8..2, 10u8..12).sample(&mut rng);
        assert!(a < 2 && (10..12).contains(&b));
    }
}
