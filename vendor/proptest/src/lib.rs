//! A self-contained, offline subset of the [proptest] API.
//!
//! The real `proptest` crate cannot be fetched in this build
//! environment, so this crate re-implements the slice of its surface
//! the workspace actually uses: `Strategy` with `prop_map`, range and
//! tuple strategies, `Just`, `any::<T>()`, `prop_oneof!` (weighted and
//! unweighted), `proptest::collection::vec`, `proptest::option::of`,
//! `ProptestConfig`, and the `proptest!` / `prop_assert*` macros.
//!
//! Semantics differ from upstream in two deliberate ways:
//!
//! * sampling is **deterministic** — the RNG is seeded from the test
//!   function's name, so every run explores the same inputs and
//!   failures reproduce without a persistence file;
//! * there is **no shrinking** — a failing case panics with the
//!   assertion message; the sampled bindings are visible in the
//!   assertion's own formatting.
//!
//! [proptest]: https://crates.io/crates/proptest

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! Glob-import surface matching `proptest::prelude::*`.
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Asserts a condition inside a `proptest!` body (panics on failure;
/// this port does not shrink, so the semantics match `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tok:tt)*) => { assert!($($tok)*) };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tok:tt)*) => { assert_eq!($($tok)*) };
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tok:tt)*) => { assert_ne!($($tok)*) };
}

/// Skips the current case when a precondition on the sampled inputs
/// does not hold. Upstream proptest redraws a replacement sample;
/// this port simply moves on to the next case, so heavy use of
/// assumptions reduces the effective case count.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            continue;
        }
    };
}

/// A weighted or unweighted union of strategies producing the same
/// value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Declares property tests: each function runs `config.cases` times
/// with fresh deterministic samples of its `in`-bound strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
                for _ in 0..config.cases {
                    $(let $pat = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                    $body
                }
            }
        )*
    };
}
