//! A self-contained, offline subset of the [criterion] benchmarking
//! API. The real crate cannot be fetched in this build environment, so
//! this crate implements the slice the workspace's benches use:
//! `Criterion::benchmark_group`, group tuning knobs
//! (`sample_size` / `measurement_time` / `warm_up_time`), `bench_function`
//! with a `Bencher::iter` closure, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is deliberately simple: after a warm-up period, each
//! sample times a fixed iteration batch and the report prints the
//! median ns/iter with the min–max spread. There is no outlier
//! analysis, plotting, or baseline persistence.
//!
//! [criterion]: https://crates.io/crates/criterion

use std::time::{Duration, Instant};

pub use std::hint::black_box;

pub mod measurement {
    //! Measurement markers (only wall-clock time is supported).

    /// Wall-clock time measurement.
    #[derive(Clone, Copy, Debug, Default)]
    pub struct WallTime;
}

/// The benchmark driver.
#[derive(Clone, Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_, measurement::WallTime> {
        println!("benchmark group: {name}");
        BenchmarkGroup {
            _criterion: self,
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
            _measurement: std::marker::PhantomData,
        }
    }
}

/// A group of benchmarks sharing tuning parameters.
pub struct BenchmarkGroup<'a, M> {
    _criterion: &'a mut Criterion,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    _measurement: std::marker::PhantomData<M>,
}

impl<M> BenchmarkGroup<'_, M> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Total time budget for the timed samples.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Warm-up running time before sampling starts.
    pub fn warm_up_time(&mut self, t: Duration) -> &mut Self {
        self.warm_up_time = t;
        self
    }

    /// Runs one benchmark: `f` receives a [`Bencher`] and must call
    /// [`Bencher::iter`].
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            samples_ns: Vec::new(),
        };
        f(&mut b);
        b.report(id);
        self
    }

    /// Ends the group (reports already streamed per function; kept for
    /// source compatibility).
    pub fn finish(self) {}
}

/// Times a closure in batches.
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Runs `f` repeatedly: a warm-up phase, then `sample_size` timed
    /// samples whose batch size is chosen so the whole measurement
    /// stays near the configured measurement time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // warm up and estimate the per-iteration cost
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time || warm_iters == 0 {
            black_box(f());
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_nanos() as f64 / warm_iters as f64;
        let budget_ns = self.measurement_time.as_nanos() as f64;
        let batch =
            ((budget_ns / self.sample_size as f64 / per_iter.max(1.0)) as u64).clamp(1, 100_000);

        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            self.samples_ns
                .push(t.elapsed().as_nanos() as f64 / batch as f64);
        }
    }

    fn report(&mut self, id: &str) {
        if self.samples_ns.is_empty() {
            println!("  {id}: no samples (Bencher::iter never called)");
            return;
        }
        self.samples_ns
            .sort_by(|a, b| a.partial_cmp(b).expect("times are finite"));
        let median = self.samples_ns[self.samples_ns.len() / 2];
        let min = self.samples_ns[0];
        let max = *self.samples_ns.last().expect("non-empty");
        println!("  {id}: median {median:.1} ns/iter (min {min:.1}, max {max:.1})");
    }
}

/// Groups benchmark functions under one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
