//! GPU-shrink walkthrough: run a register-hungry workload on the full
//! 128 KB register file, on the half-sized (64 KB) GPU-shrink file,
//! and on the compiler-spill baseline, comparing execution time and
//! throttle behaviour (the paper's §8.1 / Figure 11a experiment for
//! one benchmark).
//!
//! ```text
//! cargo run --release -p rfv-bench --example gpu_shrink [benchmark]
//! ```

use rfv_bench::harness::{compile_spilled, run, spill_cap, Machine};
use rfv_sim::SimConfig;
use rfv_workloads::suite;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "BackProp".into());
    let w = suite::by_name(&name).unwrap_or_else(|| {
        eprintln!("unknown benchmark `{name}`; try one of Table 1's names");
        std::process::exit(2)
    });
    println!(
        "benchmark {}: {} regs/thread, {} threads/CTA, {} concurrent CTAs",
        w.name(),
        w.kernel.num_regs(),
        w.kernel.launch().threads_per_cta(),
        w.kernel.launch().max_conc_ctas_per_sm()
    );
    let demand = w.kernel.num_regs()
        * w.kernel.launch().warps_per_cta() as usize
        * w.kernel.launch().max_conc_ctas_per_sm() as usize;
    println!("architected register demand per SM: {demand} (64 KB file holds 512)\n");

    // conventional 128 KB baseline
    let base = Machine::Conventional.run(&w);
    println!("conventional 128 KB : {:>9} cycles", base.cycles);

    // GPU-shrink 64 KB: full virtualization + CTA throttling
    let shrink = Machine::Shrink64.run(&w);
    let s = shrink.sm0();
    println!(
        "GPU-shrink 64 KB    : {:>9} cycles ({:+.2}%)  [peak live {}, no-reg stalls {}, throttled cycles {}, swap-outs {}]",
        shrink.cycles,
        100.0 * (shrink.cycles as f64 - base.cycles as f64) / base.cycles as f64,
        s.regfile.peak_live,
        s.no_reg_stalls,
        s.throttle_restricted_cycles,
        s.swap_outs,
    );

    // compiler-spill baseline: recompiled to fit 512 registers
    let cap = spill_cap(&w, 512);
    let spilled = compile_spilled(&w, 512);
    let mut cfg = SimConfig::conventional();
    cfg.regfile.phys_regs = 512;
    let spill = run(&spilled, &cfg);
    println!(
        "compiler spill 64 KB: {:>9} cycles ({:+.2}%)  [capped at {cap} regs/thread{}]",
        spill.cycles,
        100.0 * (spill.cycles as f64 - base.cycles as f64) / base.cycles as f64,
        if w.kernel.num_regs() > cap {
            ""
        } else {
            ", no spill needed"
        }
    );
}
