//! Register lifetime analysis walkthrough (the paper's §4 and §6 on
//! the MatrixMul running example): per-register lifetime statistics,
//! renaming-candidate selection, and the rewritten binary with
//! embedded `pir`/`pbr` metadata.
//!
//! ```text
//! cargo run --release -p rfv-bench --example lifetime_analysis [benchmark]
//! ```

use rfv_bench::harness::compile_full;
use rfv_workloads::suite;

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "MatrixMul".into());
    let w = suite::by_name(&name).unwrap_or_else(|| {
        eprintln!("unknown benchmark `{name}`");
        std::process::exit(2)
    });
    let ck = compile_full(&w);

    println!("== {} lifetime analysis ==", w.name());
    println!(
        "{:>5} {:>6} {:>11} {:>13} {:>9} {:>8}",
        "reg", "defs", "live instrs", "avg lifetime", "releases", "renamed"
    );
    for l in ck.lifetimes().per_reg() {
        println!(
            "{:>5} {:>6} {:>11} {:>13.1} {:>9} {:>8}",
            l.reg.to_string(),
            l.num_defs,
            l.live_instrs,
            l.avg_lifetime,
            l.num_release_sites,
            if ck.is_renamed(l.reg) {
                "yes"
            } else {
                "EXEMPT"
            }
        );
    }

    let s = ck.stats();
    println!("\nrenaming table:");
    println!(
        "  unconstrained size {} B, constrained {} B (1 KB budget)",
        s.unconstrained_table_bytes, s.table_bytes
    );
    println!(
        "  {} registers renamed, {} exempt, {} warps/SM",
        s.num_renamed, s.num_exempt, s.warps_per_sm
    );
    println!(
        "  metadata: {} pir + {} pbr over {} machine instructions ({:.1}% static growth, avg {:.1} regs/pbr)",
        s.num_pir, s.num_pbr, s.machine_instrs, s.static_increase_pct, s.avg_regs_per_pbr
    );

    println!(
        "\nregister pressure (renamed regs held, worst case over paths; \
         max {} + {} exempt = throttle bound {}):",
        ck.max_held_per_warp() - s.num_exempt,
        s.num_exempt,
        ck.max_held_per_warp()
    );
    for (pc, &held) in ck.pressure_profile().iter().enumerate() {
        if held > 0 {
            println!("  {:#06x}: {:>2} {}", pc * 8, held, "#".repeat(held));
        }
    }

    println!("\nrewritten binary:\n{}", ck.kernel().disassemble());
}
