//! Register-file energy report (the paper's Figure 12 experiment for
//! a handful of benchmarks): runs each workload on the conventional
//! GPU and the three virtualized configurations and prints the
//! dynamic / static / renaming / flag-instruction energy breakdown.
//!
//! ```text
//! cargo run --release -p rfv-bench --example energy_report [benchmark...]
//! ```

use rfv_bench::figures::fig12;
use rfv_workloads::suite;

fn main() {
    let names: Vec<String> = std::env::args().skip(1).collect();
    let workloads = if names.is_empty() {
        vec![
            suite::matrixmul(),
            suite::vectoradd(),
            suite::backprop(),
            suite::lib(),
        ]
    } else {
        names
            .iter()
            .map(|n| {
                suite::by_name(n).unwrap_or_else(|| {
                    eprintln!("unknown benchmark `{n}`");
                    std::process::exit(2)
                })
            })
            .collect()
    };

    for row in fig12(&workloads) {
        println!("== {} ==", row.name);
        println!(
            "  conventional 128 KB total: {:.1} nJ",
            row.baseline_pj / 1000.0
        );
        for (label, e) in [
            ("128KB + renaming + PG", &row.full128_pg),
            ("64KB  + renaming     ", &row.shrink64),
            ("64KB  + renaming + PG", &row.shrink64_pg),
        ] {
            println!(
                "  {label}: total {:>8.1} nJ = dyn {:>7.1} + static {:>7.1} + rename {:>6.1} + flags {:>5.1}   ({:.3}x baseline)",
                e.total_pj() / 1000.0,
                e.dynamic_pj / 1000.0,
                e.static_pj / 1000.0,
                e.renaming_pj / 1000.0,
                e.flag_pj / 1000.0,
                e.total_pj() / row.baseline_pj
            );
        }
        let (_, _, c) = row.normalized();
        println!(
            "  => GPU-shrink with power gating saves {:.0}% register file energy (~{:.1}% of total GPU power)\n",
            100.0 * (1.0 - c),
            100.0 * rfv_power::params::gpu_level_saving(1.0 - c)
        );
    }
}
