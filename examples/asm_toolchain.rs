//! Toolchain walkthrough: author a kernel as assembly text, parse it,
//! compile it for register virtualization, serialize the result to a
//! binary image, reload the image, and run it — the full
//! text → binary → silicon path.
//!
//! ```text
//! cargo run --release -p rfv-bench --example asm_toolchain
//! ```

use rfv_compiler::{compile, CompileOptions};
use rfv_isa::{decode_kernel, encode_kernel, parse_kernel, LaunchConfig};
use rfv_sim::{simulate_with_init, SimConfig};

const SOURCE: &str = r"
    # dot-product partial sums: each thread accumulates 4 elements
    S2R.TID.X r0
    S2R.CTAID.X r1
    IMAD r2, r1, 64, r0          ; global thread id
    SHL r3, r2, 2
    MOV r4, 0x0                  ; accumulator (int)
    MOV r5, 4                    ; loop counter
loop:
    IMAD r6, r5, 1024, r2
    SHL r6, r6, 2
    LDG r7, [r6+0x1000]
    LDG r8, [r6+0x8000]
    IMUL r9, r7, r8
    IADD r4, r4, r9
    IADD r5, r5, -1
    ISETP.GT p0, r5, 0x0
    @p0 BRA -> loop
    STG [r3+0x20000], r4
    EXIT
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. text -> kernel
    let launch = LaunchConfig::new(2, 64, 2);
    let kernel = parse_kernel("dot_partial", SOURCE, launch)?;
    println!(
        "parsed `{}`: {} instructions, {} regs/thread",
        kernel.name(),
        kernel.num_machine_instrs(),
        kernel.num_regs()
    );

    // 2. compile -> metadata-carrying kernel
    let compiled = compile(&kernel, &CompileOptions::default())?;
    println!(
        "compiled: +{} pir, +{} pbr ({:.1}% static growth)",
        compiled.stats().num_pir,
        compiled.stats().num_pbr,
        compiled.stats().static_increase_pct
    );

    // 3. kernel -> binary image -> kernel (lossless)
    let image = encode_kernel(compiled.kernel())?;
    println!("binary image: {} bytes", image.len());
    let reloaded = decode_kernel(&image)?;
    assert_eq!(&reloaded, compiled.kernel());
    println!("image round-trip verified");

    // 4. run on the GPU-shrink machine
    let init: Vec<(u64, u32)> = (0..8192u64)
        .flat_map(|i| [(0x1000 + i * 4, 2u32), (0x8000 + i * 4, 3u32)])
        .collect();
    let result = simulate_with_init(&compiled, &SimConfig::gpu_shrink(50), &init)?;
    println!("ran in {} cycles on the 64 KB file", result.cycles);
    for tid in 0..128u64 {
        // 4 iterations x (2 * 3)
        assert_eq!(result.memories[0].peek_word(0x20000 + tid * 4), 24);
    }
    println!("outputs verified: every partial sum is 24");
    Ok(())
}
