//! Quickstart: author a kernel, compile it for register file
//! virtualization, and run it on the simulated GPU.
//!
//! ```text
//! cargo run --release -p rfv-bench --example quickstart
//! ```

use rfv_compiler::{compile, CompileOptions};
use rfv_isa::prelude::*;
use rfv_isa::{PredGuard, Special};
use rfv_sim::{simulate_with_init, SimConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Write a kernel with the builder: out[i] = 2*in[i] + tid,
    //    repeated over a short uniform loop.
    let mut b = KernelBuilder::new("saxpy_quickstart");
    let (r0, r1, r2, r3, r4) = (
        ArchReg::R0,
        ArchReg::R1,
        ArchReg::R2,
        ArchReg::R3,
        ArchReg::R4,
    );
    b.s2r(r0, Special::TidX);
    b.s2r(r1, Special::CtaIdX);
    b.imad(r0, r1, Operand::Imm(64), Operand::Reg(r0)); // global tid
    b.shl(r1, r0, 2); // byte offset
    b.mov(r4, 4); // loop counter
    b.label("loop");
    b.ldg(r2, r1, 0x1000); // in[]
    b.imad(r3, r2, Operand::Imm(2), Operand::Reg(r0)); // 2*x + tid
    b.stg(r1, r3, 0x2000); // out[]
    b.iadd(r4, r4, -1);
    b.isetp(Cond::Gt, Pred::P0, r4, Operand::Imm(0));
    b.guard(PredGuard::if_true(Pred::P0));
    b.bra("loop");
    b.exit();
    let kernel = b.build(LaunchConfig::new(4, 64, 4))?;

    // 2. Compile: lifetime analysis + release-flag metadata insertion.
    let compiled = compile(&kernel, &CompileOptions::default())?;
    println!("compiled `{}`:", kernel.name());
    println!(
        "  machine instructions : {}",
        compiled.stats().machine_instrs
    );
    println!("  pir metadata         : {}", compiled.stats().num_pir);
    println!("  pbr metadata         : {}", compiled.stats().num_pbr);
    println!(
        "  static code increase : {:.1}%",
        compiled.stats().static_increase_pct
    );
    println!("  renamed registers    : {}", compiled.stats().num_renamed);
    println!(
        "\ndisassembly with embedded release flags:\n{}",
        compiled.kernel().disassemble()
    );

    // 3. Run on the virtualized GPU (full scheme, 128 KB file).
    let init: Vec<(u64, u32)> = (0..256).map(|i| (0x1000 + i * 4, i as u32)).collect();
    let result = simulate_with_init(&compiled, &SimConfig::baseline_full(), &init)?;
    let s = result.sm0();
    println!(
        "ran in {} cycles; {} instructions issued",
        result.cycles, s.instrs_issued
    );
    println!(
        "peak live registers {} (a conventional GPU would statically hold {})",
        s.regfile.peak_live,
        kernel.num_regs()
            * kernel.launch().warps_per_cta() as usize
            * kernel.launch().max_conc_ctas_per_sm() as usize
    );

    // 4. Verify the outputs.
    for i in 0..256u64 {
        let got = result.memories[0].peek_word(0x2000 + i * 4);
        assert_eq!(got, (3 * i) as u32, "out[{i}]");
    }
    println!("outputs verified: out[i] == 2*in[i] + tid == 3*i");
    Ok(())
}
