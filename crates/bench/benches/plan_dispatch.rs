//! Micro-benchmark of the issue-loop dispatch overhaul: the same
//! kernel simulated through the threaded-code execution plan versus
//! the reference match-dispatch interpreter, on a compute-hot
//! synthetic kernel and on the divergent BFS suite workload. The
//! ratio between the two engines is the per-instruction dispatch
//! saving the plan buys (the engines are bit-identical in output —
//! see `tests/engine_equivalence.rs`).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

use rfv_bench::harness::compile_full;
use rfv_sim::{simulate, SimConfig};
use rfv_workloads::{suite, synth, PaperGeometry, SynthParams, Workload};

fn quick(c: &mut Criterion) -> criterion::BenchmarkGroup<'_, criterion::measurement::WallTime> {
    let mut g = c.benchmark_group("plan_dispatch");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(6));
    g.warm_up_time(Duration::from_secs(1));
    g
}

/// A loop-heavy multi-CTA kernel that spends its cycles in the issue
/// path (the dispatch cost the plan removes), not in memory stalls.
fn hot_workload() -> Workload {
    let p = SynthParams {
        regs: 24,
        loop_trips: 24,
        divergent_loop: true,
        diamond: true,
        mem_ops: 1,
        ctas: 8,
        threads_per_cta: 256,
        conc_ctas: 4,
    };
    Workload {
        paper: PaperGeometry {
            name: "synth-hot",
            ctas: p.ctas,
            threads_per_cta: p.threads_per_cta,
            regs_per_kernel: 24,
            conc_ctas: p.conc_ctas,
        },
        kernel: synth(p),
    }
}

fn bench_engines(c: &mut Criterion) {
    let mut g = quick(c);
    for (name, w) in [("synth_hot", hot_workload()), ("bfs", suite::bfs())] {
        let ck = compile_full(&w);
        for (engine, reference) in [("plan", false), ("interpreter", true)] {
            let mut cfg = SimConfig::baseline_full();
            cfg.reference_interpreter = reference;
            let id = format!("{name}/{engine}");
            g.bench_function(id.as_str(), |b| {
                b.iter(|| black_box(simulate(&ck, &cfg).expect("simulates").cycles))
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
