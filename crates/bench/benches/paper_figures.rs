//! One Criterion benchmark per paper table/figure: each measures the
//! regeneration of that experiment's data (on a representative
//! subset where the full suite would be slow) and prints the headline
//! numbers once, so `cargo bench` both times and reproduces the
//! evaluation.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

use rfv_bench::figures;
use rfv_power::{figure7_sweep, TechNode};
use rfv_workloads::{suite, TABLE1};

fn quick(c: &mut Criterion) -> criterion::BenchmarkGroup<'_, criterion::measurement::WallTime> {
    let mut g = c.benchmark_group("paper");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(8));
    g.warm_up_time(Duration::from_secs(1));
    g
}

/// A small but diverse subset for the heavier figures.
fn subset() -> Vec<rfv_workloads::Workload> {
    ["MatrixMul", "VectorAdd", "BFS", "LIB"]
        .into_iter()
        .map(|n| suite::by_name(n).expect("subset name"))
        .collect()
}

fn bench_table1(c: &mut Criterion) {
    println!("Table 1: {} workloads defined", TABLE1.len());
    let mut g = quick(c);
    g.bench_function("table1_suite_construction", |b| {
        b.iter(|| black_box(suite::all()).len())
    });
    g.finish();
}

fn bench_table2(c: &mut Criterion) {
    use rfv_power::params::{register_bank, renaming_table};
    println!(
        "Table 2: renaming {} pJ/access, bank {} pJ/access",
        renaming_table::ACCESS_PJ,
        register_bank::ACCESS_PJ
    );
    let mut g = quick(c);
    g.bench_function("table2_energy_eval", |b| {
        b.iter(|| {
            let a = rfv_power::RfActivity {
                cycles: 10_000,
                rf_reads: 30_000,
                rf_writes: 10_000,
                subarray_on_cycles: 160_000,
                ..Default::default()
            };
            black_box(rfv_power::energy(&a, &rfv_power::RfGeometry::virtualized(0.5)).total_pj())
        })
    });
    g.finish();
}

fn bench_fig1(c: &mut Criterion) {
    let w = suite::matrixmul();
    let series = figures::fig1(&w);
    println!(
        "Figure 1 (MatrixMul): mean live fraction {:.0}% over {} samples",
        figures::mean(&series, |&(_, p)| p),
        series.len()
    );
    let mut g = quick(c);
    g.bench_function("fig1_live_fraction_trace", |b| {
        b.iter(|| black_box(figures::fig1(&w)).len())
    });
    g.finish();
}

fn bench_fig2(c: &mut Criterion) {
    let traces = figures::fig2();
    for (reg, iv) in &traces {
        println!("Figure 2: r{reg} has {} lifetime(s)", iv.len());
    }
    let mut g = quick(c);
    g.bench_function("fig2_lifetime_trace", |b| {
        b.iter(|| black_box(figures::fig2()).len())
    });
    g.finish();
}

fn bench_fig7(c: &mut Criterion) {
    let half = rfv_power::power_at(50.0);
    println!(
        "Figure 7: 50% size -> dyn {:.0}%, total {:.0}%",
        half.dynamic_pct, half.total_pct
    );
    let mut g = quick(c);
    g.bench_function("fig7_power_curve", |b| {
        b.iter(|| black_box(figure7_sweep()).len())
    });
    g.finish();
}

fn bench_fig8(c: &mut Criterion) {
    let w = suite::matrixmul();
    let ((_, conv), (_, virt)) = figures::fig8(&w);
    println!(
        "Figure 8: conventional powers {} subarrays, virtualized packs into {}",
        conv.iter().filter(|&&o| o > 0).count(),
        virt.iter().filter(|&&o| o > 0).count()
    );
    let mut g = quick(c);
    g.bench_function("fig8_subarray_occupancy", |b| {
        b.iter(|| black_box(figures::fig8(&w)).0 .1.len())
    });
    g.finish();
}

fn bench_fig9(c: &mut Criterion) {
    println!(
        "Figure 9: planar 22nm {:.2}x vs FinFET 22nm {:.2}x",
        TechNode::Planar22.leakage_factor(),
        TechNode::FinFet22.leakage_factor()
    );
    let mut g = quick(c);
    g.bench_function("fig9_leakage_factors", |b| {
        b.iter(|| {
            TechNode::all()
                .iter()
                .map(|n| n.leakage_factor())
                .sum::<f64>()
        })
    });
    g.finish();
}

fn bench_fig10(c: &mut Criterion) {
    let ws = subset();
    let rows = figures::fig10(&ws);
    println!(
        "Figure 10 (subset): avg allocation reduction {:.1}%",
        figures::mean(&rows, |r| r.reduction_pct)
    );
    let mut g = quick(c);
    g.bench_function("fig10_alloc_reduction", |b| {
        b.iter(|| black_box(figures::fig10(&ws)).len())
    });
    g.finish();
}

fn bench_fig11a(c: &mut Criterion) {
    let ws = subset();
    let rows = figures::fig11a(&ws);
    println!(
        "Figure 11a (subset): GPU-shrink {:+.2}% vs compiler-spill {:+.1}%",
        figures::mean(&rows, |r| r.shrink_increase_pct()),
        figures::mean(&rows, |r| r.spill_increase_pct())
    );
    let mut g = quick(c);
    g.bench_function("fig11a_shrink_vs_spill", |b| {
        b.iter(|| black_box(figures::fig11a(&ws)).len())
    });
    g.finish();
}

fn bench_fig11b(c: &mut Criterion) {
    let ws = vec![suite::vectoradd(), suite::lps()];
    let pts = figures::fig11b(&ws);
    for (wake, ratio) in &pts {
        println!("Figure 11b: wakeup {wake} -> {ratio:.4}");
    }
    let mut g = quick(c);
    g.bench_function("fig11b_wakeup_sensitivity", |b| {
        b.iter(|| black_box(figures::fig11b(&ws)).len())
    });
    g.finish();
}

fn bench_fig12(c: &mut Criterion) {
    let ws = subset();
    let rows = figures::fig12(&ws);
    let avg = figures::mean(&rows, |r| r.normalized().2);
    println!(
        "Figure 12 (subset): 64KB+PG energy {:.3}x baseline (saves {:.0}%)",
        avg,
        100.0 * (1.0 - avg)
    );
    let mut g = quick(c);
    g.bench_function("fig12_energy_breakdown", |b| {
        b.iter(|| black_box(figures::fig12(&ws)).len())
    });
    g.finish();
}

fn bench_fig13(c: &mut Criterion) {
    let ws = vec![suite::matrixmul(), suite::backprop()];
    let rows = figures::fig13(&ws);
    println!(
        "Figure 13 (subset): Dyn-0 {:.1}% -> Dyn-10 {:.2}%",
        figures::mean(&rows, |r| r.dynamic_pct[0]),
        figures::mean(&rows, |r| r.dynamic_pct[4])
    );
    let mut g = quick(c);
    g.bench_function("fig13_code_increase", |b| {
        b.iter(|| black_box(figures::fig13(&ws)).len())
    });
    g.finish();
}

fn bench_fig14(c: &mut Criterion) {
    let ws = vec![suite::heartwall(), suite::mum(), suite::matrixmul()];
    let rows = figures::fig14(&ws);
    for r in &rows {
        println!(
            "Figure 14: {} unconstrained {}B, saving {:.3}",
            r.name, r.unconstrained_bytes, r.normalized_saving
        );
    }
    let mut g = quick(c);
    g.bench_function("fig14_table_sizing", |b| {
        b.iter(|| black_box(figures::fig14(&ws)).len())
    });
    g.finish();
}

fn bench_fig15(c: &mut Criterion) {
    let ws = subset();
    let rows = figures::fig15(&ws);
    println!(
        "Figure 15 (subset): [46] alloc ratio {:.3}, static ratio {:.3}",
        figures::mean(&rows, |r| r.alloc_reduction_ratio),
        figures::mean(&rows, |r| r.static_reduction_ratio)
    );
    let mut g = quick(c);
    g.bench_function("fig15_hw_only_comparison", |b| {
        b.iter(|| black_box(figures::fig15(&ws)).len())
    });
    g.finish();
}

criterion_group!(
    figures_benches,
    bench_table1,
    bench_table2,
    bench_fig1,
    bench_fig2,
    bench_fig7,
    bench_fig8,
    bench_fig9,
    bench_fig10,
    bench_fig11a,
    bench_fig11b,
    bench_fig12,
    bench_fig13,
    bench_fig14,
    bench_fig15,
);
criterion_main!(figures_benches);
