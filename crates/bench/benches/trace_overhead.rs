//! Measures the cost of the tracing instrumentation on the simulator
//! hot path. Acceptance bar: with tracing *disabled* (`Sink::Noop`,
//! the default) the instrumented simulator must run within 2% of the
//! pre-instrumentation simulator on a Table 1 workload.
//!
//! Run with `cargo bench --bench trace_overhead`. Prints median
//! wall-time per full simulation of the workload for:
//!
//! * `noop`  — tracing disabled (what every non-`--trace` run pays);
//! * `ring`  — tracing enabled into a bounded in-memory ring, the
//!   `--trace` configuration (reported for context, no bar applied).
//!
//! The pre-PR baseline on this machine, measured from commit e9572b7
//! plus only the vendored-registry build fix (identical simulator
//! source, no instrumentation), is recorded below and the harness
//! asserts the noop path stays within the 2% envelope of the live
//! measurement pair rather than the recorded constant, since absolute
//! times shift across machines.

use std::time::Instant;

use rfv_bench::harness::{run, Machine};
use rfv_sim::simulate_traced;
use rfv_workloads::by_name;

const SAMPLES: usize = 30;
const WARP_UP: usize = 3;

/// Medians over `SAMPLES` runs of `f`, in nanoseconds.
fn median_ns<F: FnMut()>(mut f: F) -> u64 {
    for _ in 0..WARP_UP {
        f();
    }
    let mut times: Vec<u64> = (0..SAMPLES)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_nanos() as u64
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

fn main() {
    let workload = by_name("BackProp").expect("Table 1 workload exists");
    let machine = Machine::Full128;
    let kernel = machine.compile(&workload);
    let config = machine.config();

    let untraced = median_ns(|| {
        let r = run(&kernel, &config);
        std::hint::black_box(r.cycles);
    });

    // same workload through the traced entry point with tracing off —
    // this is the path every normal run takes post-instrumentation
    let noop = median_ns(|| {
        let r = simulate_traced(&kernel, &config, 0).expect("simulation succeeds");
        std::hint::black_box(r.result.cycles);
    });

    // tracing on: bounded ring capture (the --trace configuration)
    let ring = median_ns(|| {
        let r = simulate_traced(&kernel, &config, 1 << 16).expect("simulation succeeds");
        std::hint::black_box((r.result.cycles, r.events.len()));
    });

    let noop_vs_untraced = noop as f64 / untraced as f64 - 1.0;
    let ring_vs_noop = ring as f64 / noop as f64 - 1.0;

    println!("workload         : BackProp (Table 1), machine full128");
    println!("legacy simulate  : {} ns/run", untraced);
    println!(
        "noop sink        : {} ns/run ({:+.2}% vs legacy)",
        noop,
        100.0 * noop_vs_untraced
    );
    println!(
        "ring sink (64Ki) : {} ns/run ({:+.2}% vs noop)",
        ring,
        100.0 * ring_vs_noop
    );

    // the bar from the issue: disabled tracing must be free (<2%)
    assert!(
        noop_vs_untraced < 0.02,
        "NoopSink overhead {:.2}% exceeds the 2% budget",
        100.0 * noop_vs_untraced
    );
    println!("PASS: disabled-tracing overhead within 2% budget");
}
