//! Micro-benchmarks of the building blocks: renaming table,
//! availability vector, flag cache, throttle, compiler passes, and
//! raw simulator throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

use rfv_compiler::{compile, CompileOptions};
use rfv_core::{Availability, CtaThrottle, RegFileConfig, ReleaseFlagCache, RenamingTable};
use rfv_isa::{ArchReg, BankId, PhysReg};
use rfv_sim::{simulate, SimConfig};
use rfv_workloads::suite;

fn group(c: &mut Criterion) -> criterion::BenchmarkGroup<'_, criterion::measurement::WallTime> {
    let mut g = c.benchmark_group("components");
    g.sample_size(20);
    g.measurement_time(Duration::from_secs(5));
    g.warm_up_time(Duration::from_secs(1));
    g
}

fn bench_renaming_table(c: &mut Criterion) {
    let mut g = group(c);
    g.bench_function("renaming_map_lookup_release", |b| {
        let mut t = RenamingTable::new(48);
        b.iter(|| {
            for w in 0..48 {
                t.map(w, ArchReg::R3, PhysReg::new(w as u16));
            }
            for w in 0..48 {
                black_box(t.lookup(w, ArchReg::R3));
            }
            for w in 0..48 {
                t.release(w, ArchReg::R3);
            }
        })
    });
    g.finish();
}

fn bench_availability(c: &mut Criterion) {
    let mut g = group(c);
    g.bench_function("availability_alloc_free_churn", |b| {
        let mut a = Availability::new(&RegFileConfig::baseline_full());
        b.iter(|| {
            let mut held = Vec::with_capacity(64);
            for i in 0..64 {
                held.push(a.alloc_in_bank(BankId::new(i % 4)).unwrap());
            }
            for p in held {
                a.free(p);
            }
        })
    });
    g.finish();
}

fn bench_flag_cache(c: &mut Criterion) {
    let mut g = group(c);
    g.bench_function("flag_cache_probe_fill", |b| {
        let mut f = ReleaseFlagCache::new(10);
        b.iter(|| {
            for pc in 0..64usize {
                black_box(f.probe_and_fill(pc % 12));
            }
        })
    });
    g.finish();
}

fn bench_throttle(c: &mut Criterion) {
    let mut g = group(c);
    g.bench_function("throttle_decide", |b| {
        let mut t = CtaThrottle::new(8);
        for c in 0..8 {
            t.launch(c, 200);
            for _ in 0..c * 20 {
                t.on_alloc(c);
            }
        }
        b.iter(|| black_box(t.decide(black_box(64))))
    });
    g.finish();
}

fn bench_compiler(c: &mut Criterion) {
    let mut g = group(c);
    let w = suite::matrixmul();
    g.bench_function("compile_matrixmul", |b| {
        b.iter(|| black_box(compile(&w.kernel, &CompileOptions::default()).unwrap()))
    });
    let hw = suite::heartwall();
    g.bench_function("compile_heartwall", |b| {
        b.iter(|| black_box(compile(&hw.kernel, &CompileOptions::default()).unwrap()))
    });
    g.finish();
}

fn bench_simulator(c: &mut Criterion) {
    let mut g = group(c);
    let w = suite::vectoradd();
    let ck = compile(&w.kernel, &CompileOptions::default()).unwrap();
    g.bench_function("simulate_vectoradd_full", |b| {
        b.iter(|| black_box(simulate(&ck, &SimConfig::baseline_full()).unwrap().cycles))
    });
    g.bench_function("simulate_vectoradd_conventional", |b| {
        let plain = compile(
            &w.kernel,
            &CompileOptions {
                table_budget_bytes: 0,
            },
        )
        .unwrap();
        b.iter(|| black_box(simulate(&plain, &SimConfig::conventional()).unwrap().cycles))
    });
    g.finish();
}

criterion_group!(
    component_benches,
    bench_renaming_table,
    bench_availability,
    bench_flag_cache,
    bench_throttle,
    bench_compiler,
    bench_simulator,
);
criterion_main!(component_benches);
