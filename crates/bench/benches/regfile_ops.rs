//! Micro-benchmarks of the register-file hot path the engine overhaul
//! targets: word-level bitset allocation/release and renaming-table
//! lookups, plus the combined `RegisterFile` write/release cycle the
//! simulator drives per instruction.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

use rfv_core::{Availability, RegFileConfig, RegisterFile, RenamingTable};
use rfv_isa::{ArchReg, BankId, PhysReg, NUM_REG_BANKS};

fn group(c: &mut Criterion) -> criterion::BenchmarkGroup<'_, criterion::measurement::WallTime> {
    let mut g = c.benchmark_group("regfile_ops");
    g.sample_size(30);
    g.measurement_time(Duration::from_secs(4));
    g.warm_up_time(Duration::from_secs(1));
    g
}

/// Bitset allocator churn: fill one bank-preserving working set,
/// release every other register, refill — the fragmentation pattern
/// early release produces.
fn bench_availability_churn(c: &mut Criterion) {
    let mut g = group(c);
    for (label, config) in [
        ("alloc_release_baseline", RegFileConfig::baseline_full()),
        ("alloc_release_shrunk40", RegFileConfig::shrunk(40)),
    ] {
        g.bench_function(label, |b| {
            let mut a = Availability::new(&config);
            b.iter(|| {
                let mut held = Vec::with_capacity(256);
                for i in 0..256 {
                    match a.alloc_in_bank(BankId::new(i % NUM_REG_BANKS)) {
                        Some(p) => held.push(p),
                        None => break,
                    }
                }
                for (i, &p) in held.iter().enumerate() {
                    if i % 2 == 0 {
                        black_box(a.free(p));
                    }
                }
                for i in 0..held.len() / 2 {
                    black_box(a.alloc_in_bank(BankId::new(i % NUM_REG_BANKS)));
                }
                for (i, &p) in held.iter().enumerate() {
                    if i % 2 != 0 {
                        black_box(a.free(p));
                    }
                }
                a = Availability::new(&config);
            })
        });
    }
    g.finish();
}

/// Renaming-table lookups at full warp occupancy (the per-operand
/// hot-path read).
fn bench_renaming_lookup(c: &mut Criterion) {
    let mut g = group(c);
    g.bench_function("renaming_lookup_48_warps", |b| {
        let mut t = RenamingTable::new(48);
        for w in 0..48 {
            for r in 0..8u8 {
                t.map(
                    w,
                    ArchReg::new(r),
                    PhysReg::new((w * 8 + r as usize) as u16),
                );
            }
        }
        b.iter(|| {
            for w in 0..48 {
                for r in 0..8u8 {
                    black_box(t.lookup(w, ArchReg::new(r)));
                }
            }
        })
    });
    g.finish();
}

/// The full write-then-release register lifecycle through
/// `RegisterFile` (renaming + bitset + gating bookkeeping together),
/// as `issue_instr` drives it.
fn bench_regfile_write_release(c: &mut Criterion) {
    let mut g = group(c);
    g.bench_function("regfile_write_release_cycle", |b| {
        let mut rf = RegisterFile::new(RegFileConfig::baseline_full(), 48).unwrap();
        let mut now = 0u64;
        b.iter(|| {
            for w in 0..48 {
                for r in 0..4u8 {
                    black_box(rf.write(w, ArchReg::new(r), now));
                }
            }
            now += 1;
            for w in 0..48 {
                for r in 0..4u8 {
                    black_box(rf.release(w, ArchReg::new(r), now));
                }
            }
            now += 1;
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_availability_churn,
    bench_renaming_lookup,
    bench_regfile_write_release
);
criterion_main!(benches);
