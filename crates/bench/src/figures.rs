//! Regeneration of every table and figure in the paper's evaluation.
//!
//! Each `figN()` function returns the figure's data; the `figures`
//! binary prints them in the same rows/series the paper reports.
//! EXPERIMENTS.md records paper-versus-measured for each.

use rfv_power::model::{energy, EnergyBreakdown, RfGeometry};
use rfv_sim::{RegTraceEvent, SimConfig};
use rfv_workloads::{suite, Workload};

use crate::harness::{
    self, compile_full, compile_spilled, compile_unconstrained, conventional_alloc, rf_activity,
    run, Machine,
};

/// One row of Figure 10: register allocation reduction.
#[derive(Clone, Debug)]
pub struct Fig10Row {
    /// Benchmark name.
    pub name: &'static str,
    /// Conventional allocation (registers) at declared occupancy.
    pub alloc: usize,
    /// Peak concurrently-live physical registers under full
    /// virtualization.
    pub peak_live: usize,
    /// Reduction, percent.
    pub reduction_pct: f64,
}

/// Figure 10 over the given workloads.
pub fn fig10(workloads: &[Workload]) -> Vec<Fig10Row> {
    crate::pool::par_map(workloads, |w| {
        let r = Machine::Full128.run(w);
        let alloc = conventional_alloc(w);
        let peak = r.sm0().regfile.peak_live;
        Fig10Row {
            name: w.name(),
            alloc,
            peak_live: peak,
            reduction_pct: 100.0 * (alloc.saturating_sub(peak)) as f64 / alloc as f64,
        }
    })
}

/// One row of Figure 11(a): execution-cycle increase on a 64 KB file.
#[derive(Clone, Debug)]
pub struct Fig11aRow {
    /// Benchmark name.
    pub name: &'static str,
    /// Baseline (128 KB conventional) cycles.
    pub base_cycles: u64,
    /// GPU-shrink (64 KB, full virtualization) cycles.
    pub shrink_cycles: u64,
    /// Compiler-spill (64 KB, conventional + spilled binary) cycles.
    pub spill_cycles: u64,
    /// Whether the compiler had to spill at all.
    pub spilled: bool,
}

impl Fig11aRow {
    /// GPU-shrink cycle increase, percent (negative = speedup).
    pub fn shrink_increase_pct(&self) -> f64 {
        100.0 * (self.shrink_cycles as f64 - self.base_cycles as f64) / self.base_cycles as f64
    }

    /// Compiler-spill cycle increase, percent.
    pub fn spill_increase_pct(&self) -> f64 {
        100.0 * (self.spill_cycles as f64 - self.base_cycles as f64) / self.base_cycles as f64
    }
}

/// Figure 11(a) over the given workloads.
pub fn fig11a(workloads: &[Workload]) -> Vec<Fig11aRow> {
    crate::pool::par_map(workloads, |w| {
        let base = Machine::Conventional.run(w);
        let shrink = Machine::Shrink64.run(w);
        let cap = harness::spill_cap(w, 512);
        let spilled = w.kernel.num_regs() > cap;
        let spill_kernel = compile_spilled(w, 512);
        let mut spill_cfg = SimConfig::conventional();
        spill_cfg.regfile.phys_regs = 512;
        let spill = run(&spill_kernel, &spill_cfg);
        Fig11aRow {
            name: w.name(),
            base_cycles: base.cycles,
            shrink_cycles: shrink.cycles,
            spill_cycles: spill.cycles,
            spilled,
        }
    })
}

/// Figure 11(b): cycles with subarray wakeup latency `w`, normalized
/// to the ungated file, averaged over the workloads.
pub fn fig11b(workloads: &[Workload]) -> Vec<(u64, f64)> {
    [1u64, 3, 10]
        .into_iter()
        .map(|wake| {
            let ratios = crate::pool::par_map(workloads, |w| {
                let ck = compile_full(w);
                let mut gated = SimConfig::baseline_full();
                gated.regfile.wakeup_cycles = wake;
                let mut ungated = SimConfig::baseline_full();
                ungated.regfile.power_gating = false;
                let g = run(&ck, &gated);
                let u = run(&ck, &ungated);
                g.cycles as f64 / u.cycles as f64
            });
            (wake, ratios.iter().sum::<f64>() / workloads.len() as f64)
        })
        .collect()
}

/// One row of Figure 12: register-file energy for the three
/// virtualized configurations, normalized to the conventional 128 KB
/// file.
#[derive(Clone, Debug)]
pub struct Fig12Row {
    /// Benchmark name.
    pub name: &'static str,
    /// Baseline (conventional 128 KB) total energy, picojoules.
    pub baseline_pj: f64,
    /// 128 KB file with renaming + power gating.
    pub full128_pg: EnergyBreakdown,
    /// 64 KB file with renaming, no power gating.
    pub shrink64: EnergyBreakdown,
    /// 64 KB file with renaming + power gating.
    pub shrink64_pg: EnergyBreakdown,
}

impl Fig12Row {
    /// Normalized totals `(128KB+PG, 64KB, 64KB+PG)`.
    pub fn normalized(&self) -> (f64, f64, f64) {
        (
            self.full128_pg.total_pj() / self.baseline_pj,
            self.shrink64.total_pj() / self.baseline_pj,
            self.shrink64_pg.total_pj() / self.baseline_pj,
        )
    }
}

/// Figure 12 over the given workloads.
pub fn fig12(workloads: &[Workload]) -> Vec<Fig12Row> {
    crate::pool::par_map(workloads, |w| {
        let base = Machine::Conventional.run(w);
        let baseline_pj = energy(&rf_activity(base.sm0()), &RfGeometry::conventional()).total_pj();

        let ck = compile_full(w);
        let full128 = run(&ck, &SimConfig::baseline_full());
        let full128_pg = energy(&rf_activity(full128.sm0()), &RfGeometry::virtualized(1.0));

        let mut shrink_nopg_cfg = SimConfig::gpu_shrink(50);
        shrink_nopg_cfg.regfile.power_gating = false;
        let shrink_nopg = run(&ck, &shrink_nopg_cfg);
        let shrink64 = energy(
            &rf_activity(shrink_nopg.sm0()),
            &RfGeometry::virtualized(0.5),
        );

        let shrink_pg = run(&ck, &SimConfig::gpu_shrink(50));
        let shrink64_pg = energy(&rf_activity(shrink_pg.sm0()), &RfGeometry::virtualized(0.5));

        Fig12Row {
            name: w.name(),
            baseline_pj,
            full128_pg,
            shrink64,
            shrink64_pg,
        }
    })
}

/// One row of Figure 13: metadata code growth.
#[derive(Clone, Debug)]
pub struct Fig13Row {
    /// Benchmark name.
    pub name: &'static str,
    /// Static code increase, percent.
    pub static_pct: f64,
    /// Dynamic decode increase for flag caches of 0/1/2/5/10 entries,
    /// percent.
    pub dynamic_pct: [f64; 5],
}

/// Flag-cache sizes Figure 13 sweeps.
pub const FIG13_CACHE_SIZES: [usize; 5] = [0, 1, 2, 5, 10];

/// Figure 13 over the given workloads.
pub fn fig13(workloads: &[Workload]) -> Vec<Fig13Row> {
    crate::pool::par_map(workloads, |w| {
        let ck = compile_full(w);
        let static_pct = ck.stats().static_increase_pct;
        let mut dynamic_pct = [0.0; 5];
        for (i, entries) in FIG13_CACHE_SIZES.into_iter().enumerate() {
            let mut cfg = SimConfig::baseline_full();
            cfg.regfile.flag_cache_entries = entries;
            let r = run(&ck, &cfg);
            dynamic_pct[i] = r.sm0().dynamic_increase_pct();
        }
        Fig13Row {
            name: w.name(),
            static_pct,
            dynamic_pct,
        }
    })
}

/// One row of Figure 14: renaming-table sizing.
#[derive(Clone, Debug)]
pub struct Fig14Row {
    /// Benchmark name.
    pub name: &'static str,
    /// Unconstrained renaming-table size, bytes.
    pub unconstrained_bytes: usize,
    /// Table size under the 1 KB budget, bytes.
    pub constrained_bytes: usize,
    /// Registers exempted by the budget.
    pub exempted: usize,
    /// Register saving under the 1 KB budget, normalized to the
    /// unconstrained table (1.0 = no loss).
    pub normalized_saving: f64,
}

/// Figure 14 over the given workloads.
pub fn fig14(workloads: &[Workload]) -> Vec<Fig14Row> {
    crate::pool::par_map(workloads, |w| {
        let constrained = compile_full(w);
        let unconstrained = compile_unconstrained(w);
        let alloc = conventional_alloc(w);
        let saving = |peak: usize| alloc.saturating_sub(peak) as f64;
        let rc = run(&constrained, &SimConfig::baseline_full());
        let ru = run(&unconstrained, &SimConfig::baseline_full());
        let (sc, su) = (
            saving(rc.sm0().regfile.peak_live),
            saving(ru.sm0().regfile.peak_live),
        );
        Fig14Row {
            name: w.name(),
            unconstrained_bytes: constrained.stats().unconstrained_table_bytes,
            constrained_bytes: constrained.stats().table_bytes,
            exempted: constrained.stats().num_exempt,
            normalized_saving: if su == 0.0 { 1.0 } else { (sc / su).min(1.0) },
        }
    })
}

/// One row of Figure 15: hardware-only renaming \[46\] versus the
/// full compiler-assisted scheme.
#[derive(Clone, Debug)]
pub struct Fig15Row {
    /// Benchmark name.
    pub name: &'static str,
    /// Allocation reduction of \[46\] normalized to ours.
    pub alloc_reduction_ratio: f64,
    /// Static power reduction of \[46\] normalized to ours.
    pub static_reduction_ratio: f64,
}

/// Figure 15 over the given workloads.
pub fn fig15(workloads: &[Workload]) -> Vec<Fig15Row> {
    crate::pool::par_map(workloads, |w| {
        let full = Machine::Full128.run(w);
        let hw = Machine::HardwareOnly.run(w);
        let alloc = conventional_alloc(w);
        let red_full = alloc.saturating_sub(full.sm0().regfile.peak_live) as f64;
        let red_hw = alloc.saturating_sub(hw.sm0().regfile.peak_live) as f64;
        // static power saving versus an always-on file
        let saving =
            |s: &rfv_sim::SimStats| 1.0 - s.subarray_on_cycles as f64 / (16.0 * s.cycles as f64);
        let (s_full, s_hw) = (saving(full.sm0()), saving(hw.sm0()));
        Fig15Row {
            name: w.name(),
            alloc_reduction_ratio: if red_full == 0.0 {
                1.0
            } else {
                red_hw / red_full
            },
            static_reduction_ratio: if s_full <= 0.0 { 1.0 } else { s_hw / s_full },
        }
    })
}

/// Figure 8: per-subarray occupancy maps for one workload, captured
/// mid-run, with and without renaming — `(snapshot cycle, occupancy
/// per global subarray id)` for (conventional, virtualized).
pub fn fig8(w: &Workload) -> ((u64, Vec<usize>), (u64, Vec<usize>)) {
    // run once to learn the run length, then snapshot at the midpoint
    let plain = harness::compile_plain(w);
    let probe = run(&plain, &SimConfig::conventional());
    let mid = probe.cycles / 2;

    let mut conv_cfg = SimConfig::conventional();
    conv_cfg.snapshot_at_cycle = Some(mid);
    let conv = run(&plain, &conv_cfg);

    let full = compile_full(w);
    let mut virt_cfg = SimConfig::baseline_full();
    virt_cfg.snapshot_at_cycle = Some(mid);
    let virt = run(&full, &virt_cfg);

    (
        conv.sm0()
            .subarray_snapshot
            .clone()
            .expect("snapshot taken"),
        virt.sm0()
            .subarray_snapshot
            .clone()
            .expect("snapshot taken"),
    )
}

/// Figure 1: live-register fraction over time for one workload
/// (cycle, percent), within the paper's 10 K-cycle window.
pub fn fig1(w: &Workload) -> Vec<(u64, f64)> {
    let ck = compile_full(w);
    let r = run(&ck, &SimConfig::baseline_full());
    r.sm0()
        .samples
        .iter()
        .take_while(|s| s.cycle <= 10_000)
        .filter(|s| s.resident_arch_regs > 0)
        .map(|s| {
            (
                s.cycle,
                100.0 * s.live_regs as f64 / s.resident_arch_regs as f64,
            )
        })
        .collect()
}

/// The six applications Figure 1 plots.
pub fn fig1_apps() -> Vec<Workload> {
    [
        "MatrixMul",
        "Reduction",
        "VectorAdd",
        "LPS",
        "BackProp",
        "HotSpot",
    ]
    .into_iter()
    .map(|n| suite::by_name(n).expect("figure 1 app"))
    .collect()
}

/// Figure 2: warp-0 lifetime events of three representative MatrixMul
/// registers (long-lived, loop short-lived, epilogue-only), as
/// live-interval lists per register.
pub fn fig2() -> Vec<(u8, Vec<(u64, u64)>)> {
    let w = suite::matrixmul();
    let ck = compile_full(&w);
    let mut cfg = SimConfig::baseline_full();
    cfg.trace_warp0_regs = true;
    let r = run(&ck, &cfg);
    // r1 = ctaid (whole-kernel), r5 = tile/k temporary (many short
    // lives), r13 = epilogue-only — the analogues of the paper's
    // r1 / r0 / r3.
    [1u8, 5, 13]
        .into_iter()
        .map(|reg| (reg, intervals_for(reg, &r.sm0().reg_trace, r.cycles)))
        .collect()
}

fn intervals_for(reg: u8, events: &[RegTraceEvent], end: u64) -> Vec<(u64, u64)> {
    let mut intervals = Vec::new();
    let mut open: Option<u64> = None;
    for e in events.iter().filter(|e| e.reg == reg) {
        match (e.live, open) {
            (true, None) => open = Some(e.cycle),
            (false, Some(s)) => {
                intervals.push((s, e.cycle));
                open = None;
            }
            _ => {}
        }
    }
    if let Some(s) = open {
        intervals.push((s, end));
    }
    intervals
}

/// Convenience: the whole Table 1 suite.
pub fn full_suite() -> Vec<Workload> {
    suite::all()
}

/// Compile-only statistics used by several printouts.
pub fn compile_stats() -> Vec<(&'static str, rfv_compiler::CompileStats)> {
    suite::all()
        .iter()
        .map(|w| (w.name(), *compile_full(w).stats()))
        .collect()
}

/// Average of `f` over rows.
pub fn mean<T>(rows: &[T], f: impl Fn(&T) -> f64) -> f64 {
    if rows.is_empty() {
        return 0.0;
    }
    rows.iter().map(f).sum::<f64>() / rows.len() as f64
}
