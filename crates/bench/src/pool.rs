//! Zero-dependency scoped-thread job pool.
//!
//! The figure/table sweeps are embarrassingly parallel: every
//! (workload, configuration) run is independent, and the paper's
//! evaluation replays hundreds of them. [`par_map`] fans such runs
//! out across worker threads while returning results **in input
//! order**, so table rows and CSV files are byte-identical to a
//! sequential run.
//!
//! Panics are contained per job: [`par_map_catching`] catches a
//! panicking job and returns it as a typed [`JobError`] row while
//! every other job still completes — one poisoned (workload, config)
//! cell cannot take a whole sweep down. [`par_map`] is built on top
//! and re-raises the first failure only after all jobs have finished.
//!
//! The worker count comes from, in priority order: an explicit
//! [`set_jobs`] call (the binaries' `--jobs N` flag), the `RFV_JOBS`
//! environment variable, and finally the machine's available
//! parallelism. One worker short-circuits to a plain sequential map.

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Global worker-count override; `0` means "not set".
static JOBS: AtomicUsize = AtomicUsize::new(0);

/// Fixes the pool's worker count for the rest of the process (the
/// `--jobs N` flag). Values below one are clamped to one.
pub fn set_jobs(n: usize) {
    JOBS.store(n.max(1), Ordering::Relaxed);
}

/// The worker count [`par_map`] will use: [`set_jobs`] if called,
/// else [`default_jobs`].
pub fn jobs() -> usize {
    match JOBS.load(Ordering::Relaxed) {
        0 => default_jobs(),
        n => n,
    }
}

/// The environment-derived default worker count: `RFV_JOBS` when set
/// to a positive integer, else the machine's available parallelism.
/// An unparsable `RFV_JOBS` earns one stderr warning naming the bad
/// value instead of being silently ignored.
pub fn default_jobs() -> usize {
    match std::env::var("RFV_JOBS") {
        Err(_) => machine_parallelism(),
        Ok(raw) => parse_jobs(&raw).unwrap_or_else(|| {
            eprintln!(
                "warning: RFV_JOBS={raw:?} is not a positive integer; \
                 using machine parallelism"
            );
            machine_parallelism()
        }),
    }
}

/// Parses an `RFV_JOBS`-style value: a positive integer (surrounding
/// whitespace tolerated), else `None`.
pub fn parse_jobs(raw: &str) -> Option<usize> {
    raw.trim().parse().ok().filter(|&n| n > 0)
}

fn machine_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// One job's failure inside [`par_map_catching`]: the job panicked and
/// the panic was contained to its own result slot.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct JobError {
    /// Input-slice index of the failed job.
    pub index: usize,
    /// The panic payload, rendered to text.
    pub message: String,
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job {} panicked: {}", self.index, self.message)
    }
}

impl std::error::Error for JobError {}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic of unknown type".to_string()
    }
}

/// Maps `f` over `items` on the pool's workers (see [`jobs`]),
/// preserving input order in the returned vector.
///
/// # Panics
///
/// Re-raises the first job panic — but only after every other job has
/// completed, so no work is lost to an unrelated failure.
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    par_map_with(jobs(), items, f)
}

/// [`par_map`] with an explicit worker count.
///
/// # Panics
///
/// See [`par_map`].
pub fn par_map_with<T, U, F>(workers: usize, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    par_map_catching_with(workers, items, f)
        .into_iter()
        .map(|r| r.unwrap_or_else(|e| panic!("{e}")))
        .collect()
}

/// [`par_map`] with per-job panic isolation: a panicking job yields
/// `Err(JobError)` in its slot while all other jobs run to completion.
pub fn par_map_catching<T, U, F>(items: &[T], f: F) -> Vec<Result<U, JobError>>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    par_map_catching_with(jobs(), items, f)
}

/// [`par_map_catching`] with an explicit worker count.
pub fn par_map_catching_with<T, U, F>(workers: usize, items: &[T], f: F) -> Vec<Result<U, JobError>>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let workers = workers.min(items.len()).max(1);
    let catching = |i: usize, item: &T| -> Result<U, JobError> {
        catch_unwind(AssertUnwindSafe(|| f(item))).map_err(|payload| JobError {
            index: i,
            message: panic_message(payload.as_ref()),
        })
    };
    if workers == 1 {
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| catching(i, item))
            .collect();
    }
    // work-stealing by atomic cursor: workers pull the next index and
    // write the result into its slot, so output order is input order
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Result<U, JobError>>>> =
        items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                let result = catching(i, item);
                *slots[i].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("worker filled every slot")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..100).collect();
        for workers in [1, 2, 7, 64] {
            let out = par_map_with(workers, &items, |&i| i * 3);
            assert_eq!(out, items.iter().map(|i| i * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn handles_empty_and_single_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map_with(8, &empty, |x| *x).is_empty());
        assert_eq!(par_map_with(8, &[42u32], |x| *x + 1), vec![43]);
    }

    #[test]
    fn uneven_work_still_lands_in_order() {
        // later items finish first; order must still hold
        let items: Vec<u64> = (0..16).rev().collect();
        let out = par_map_with(4, &items, |&n| {
            std::thread::sleep(std::time::Duration::from_millis(n / 4));
            n
        });
        assert_eq!(out, items);
    }

    #[test]
    fn default_jobs_is_positive() {
        assert!(default_jobs() >= 1);
        assert!(jobs() >= 1);
    }

    #[test]
    fn jobs_env_values_parse_strictly() {
        assert_eq!(parse_jobs("4"), Some(4));
        assert_eq!(parse_jobs(" 16 "), Some(16));
        for garbage in ["abc", "", "0", "-2", "3.5", "4x", "1e3"] {
            assert_eq!(parse_jobs(garbage), None, "{garbage:?} must be rejected");
        }
    }

    #[test]
    fn one_panicking_job_does_not_poison_the_sweep() {
        let items: Vec<u32> = (0..24).collect();
        for workers in [1, 4] {
            let out = par_map_catching_with(workers, &items, |&i| {
                assert!(i != 13, "rigged failure on item 13");
                i * 2
            });
            assert_eq!(out.len(), items.len());
            for (i, r) in out.iter().enumerate() {
                if i == 13 {
                    let e = r.as_ref().expect_err("item 13 fails");
                    assert_eq!(e.index, 13);
                    assert!(e.message.contains("rigged failure"), "{}", e.message);
                } else {
                    assert_eq!(*r.as_ref().expect("other items succeed"), i as u32 * 2);
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "job 3 panicked")]
    fn par_map_reraises_after_all_jobs_finish() {
        let items: Vec<u32> = (0..8).collect();
        let _ = par_map_with(2, &items, |&i| {
            assert!(i != 3, "boom");
            i
        });
    }
}
