//! Compatibility re-export of the persistent job pool.
//!
//! The pool started life here in `rfv-bench`, but the simulator's
//! per-SM fan-out (`rfv_sim::gpu`) needs the same persistent workers
//! and `rfv-bench` depends on `rfv-sim` — so the implementation moved
//! to the zero-dependency [`rfv_pool`] crate at the bottom of the
//! dependency graph. Existing `rfv_bench::pool::*` call sites (the
//! figure sweeps, `rfvsim`, `rfvd`'s job runners) keep working through
//! this re-export.

pub use rfv_pool::*;
