//! Zero-dependency scoped-thread job pool.
//!
//! The figure/table sweeps are embarrassingly parallel: every
//! (workload, configuration) run is independent, and the paper's
//! evaluation replays hundreds of them. [`par_map`] fans such runs
//! out across worker threads while returning results **in input
//! order**, so table rows and CSV files are byte-identical to a
//! sequential run.
//!
//! The worker count comes from, in priority order: an explicit
//! [`set_jobs`] call (the binaries' `--jobs N` flag), the `RFV_JOBS`
//! environment variable, and finally the machine's available
//! parallelism. One worker short-circuits to a plain sequential map.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Global worker-count override; `0` means "not set".
static JOBS: AtomicUsize = AtomicUsize::new(0);

/// Fixes the pool's worker count for the rest of the process (the
/// `--jobs N` flag). Values below one are clamped to one.
pub fn set_jobs(n: usize) {
    JOBS.store(n.max(1), Ordering::Relaxed);
}

/// The worker count [`par_map`] will use: [`set_jobs`] if called,
/// else [`default_jobs`].
pub fn jobs() -> usize {
    match JOBS.load(Ordering::Relaxed) {
        0 => default_jobs(),
        n => n,
    }
}

/// The environment-derived default worker count: `RFV_JOBS` when set
/// to a positive integer, else the machine's available parallelism.
pub fn default_jobs() -> usize {
    std::env::var("RFV_JOBS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        })
}

/// Maps `f` over `items` on the pool's workers (see [`jobs`]),
/// preserving input order in the returned vector.
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    par_map_with(jobs(), items, f)
}

/// [`par_map`] with an explicit worker count.
pub fn par_map_with<T, U, F>(workers: usize, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let workers = workers.min(items.len()).max(1);
    if workers == 1 {
        return items.iter().map(f).collect();
    }
    // work-stealing by atomic cursor: workers pull the next index and
    // write the result into its slot, so output order is input order
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<U>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                let result = f(item);
                *slots[i].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("worker filled every slot")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..100).collect();
        for workers in [1, 2, 7, 64] {
            let out = par_map_with(workers, &items, |&i| i * 3);
            assert_eq!(out, items.iter().map(|i| i * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn handles_empty_and_single_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map_with(8, &empty, |x| *x).is_empty());
        assert_eq!(par_map_with(8, &[42u32], |x| *x + 1), vec![43]);
    }

    #[test]
    fn uneven_work_still_lands_in_order() {
        // later items finish first; order must still hold
        let items: Vec<u64> = (0..16).rev().collect();
        let out = par_map_with(4, &items, |&n| {
            std::thread::sleep(std::time::Duration::from_millis(n / 4));
            n
        });
        assert_eq!(out, items);
    }

    #[test]
    fn default_jobs_is_positive() {
        assert!(default_jobs() >= 1);
        assert!(jobs() >= 1);
    }
}
