//! Ablations beyond the paper's evaluation, for the design choices
//! DESIGN.md calls out: bank-preserving renaming, flag-cache sizing
//! beyond ten entries, deeper GPU-shrink points, ready-queue sizing,
//! and the extra renaming pipeline cycle.

use rfv_sim::SimConfig;
use rfv_workloads::{suite, Workload};

use crate::harness::{compile_full, run};

/// Result of the bank-preservation ablation for one workload.
#[derive(Clone, Debug)]
pub struct BankAblationRow {
    /// Benchmark name.
    pub name: &'static str,
    /// Cycles with bank-preserving renaming (the paper's design).
    pub strict_cycles: u64,
    /// Allocation stalls with bank-preserving renaming.
    pub strict_stalls: u64,
    /// Cycles when renaming may fall back to any bank.
    pub free_cycles: u64,
    /// Allocation stalls with free-bank renaming.
    pub free_stalls: u64,
}

/// Bank-preserving versus free-bank renaming on an aggressively
/// shrunk (75%) file, where bank pressure actually bites.
pub fn bank_preservation(workloads: &[Workload]) -> Vec<BankAblationRow> {
    crate::pool::par_map(workloads, |w| {
        let ck = compile_full(w);
        let strict_cfg = SimConfig::gpu_shrink(75);
        let mut free_cfg = strict_cfg;
        free_cfg.regfile.bank_preserving = false;
        let strict = run(&ck, &strict_cfg);
        let free = run(&ck, &free_cfg);
        BankAblationRow {
            name: w.name(),
            strict_cycles: strict.cycles,
            strict_stalls: strict.sm0().no_reg_stalls,
            free_cycles: free.cycles,
            free_stalls: free.sm0().no_reg_stalls,
        }
    })
}

/// Flag-cache sizes beyond the paper's ten entries: returns
/// `(entries, average dynamic decode increase %)`.
pub fn flag_cache_sweep(workloads: &[Workload], sizes: &[usize]) -> Vec<(usize, f64)> {
    sizes
        .iter()
        .map(|&entries| {
            let pcts = crate::pool::par_map(workloads, |w| {
                let ck = compile_full(w);
                let mut cfg = SimConfig::baseline_full();
                cfg.regfile.flag_cache_entries = entries;
                run(&ck, &cfg).sm0().dynamic_increase_pct()
            });
            (entries, pcts.iter().sum::<f64>() / workloads.len() as f64)
        })
        .collect()
}

/// GPU-shrink depth sweep: returns `(shrink %, average cycle increase
/// % over the conventional 128 KB file)`.
pub fn shrink_sweep(workloads: &[Workload], percents: &[usize]) -> Vec<(usize, f64)> {
    let baselines: Vec<u64> = crate::pool::par_map(workloads, |w| {
        crate::harness::Machine::Conventional.run(w).cycles
    });
    let indices: Vec<usize> = (0..workloads.len()).collect();
    percents
        .iter()
        .map(|&pct| {
            let incs = crate::pool::par_map(&indices, |&i| {
                let ck = compile_full(&workloads[i]);
                let r = run(&ck, &SimConfig::gpu_shrink(pct));
                100.0 * (r.cycles as f64 - baselines[i] as f64) / baselines[i] as f64
            });
            (pct, incs.iter().sum::<f64>() / workloads.len() as f64)
        })
        .collect()
}

/// Two-level-scheduler ready-queue sizing: returns `(queue size,
/// average cycles normalized to the paper's six-entry queue)`.
pub fn ready_queue_sweep(workloads: &[Workload], sizes: &[usize]) -> Vec<(usize, f64)> {
    let reference: Vec<u64> = crate::pool::par_map(workloads, |w| {
        let ck = compile_full(w);
        run(&ck, &SimConfig::baseline_full()).cycles
    });
    let indices: Vec<usize> = (0..workloads.len()).collect();
    sizes
        .iter()
        .map(|&size| {
            let ratios = crate::pool::par_map(&indices, |&i| {
                let ck = compile_full(&workloads[i]);
                let mut cfg = SimConfig::baseline_full();
                cfg.ready_queue = size;
                run(&ck, &cfg).cycles as f64 / reference[i] as f64
            });
            (size, ratios.iter().sum::<f64>() / workloads.len() as f64)
        })
        .collect()
}

/// The §7.1 extra renaming pipeline cycle: average cycle increase (%)
/// it costs relative to absorbing the 0.22 ns lookup for free.
pub fn rename_cycle_cost(workloads: &[Workload]) -> f64 {
    let costs = crate::pool::par_map(workloads, |w| {
        let ck = compile_full(w);
        let with = run(&ck, &SimConfig::baseline_full());
        let mut free_cfg = SimConfig::baseline_full();
        free_cfg.rename_extra_cycle = false;
        let without = run(&ck, &free_cfg);
        100.0 * (with.cycles as f64 - without.cycles as f64) / without.cycles as f64
    });
    costs.iter().sum::<f64>() / workloads.len() as f64
}

/// A pressure-heavy subset for the bank ablation.
pub fn pressure_subset() -> Vec<Workload> {
    ["Heartwall", "MUM", "BackProp", "ScalarProd"]
        .into_iter()
        .map(|n| suite::by_name(n).expect("subset name"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bank_ablation_completes_both_configurations() {
        // stall *counts* are not ordered between the two policies (a
        // retried stall is counted per attempt, and scheduling paths
        // differ), but both configurations must run to completion and
        // produce positive cycle counts
        let rows = bank_preservation(&pressure_subset()[..1]);
        assert_eq!(rows.len(), 1);
        assert!(rows[0].strict_cycles > 0);
        assert!(rows[0].free_cycles > 0);
    }

    #[test]
    fn flag_cache_sweep_is_monotone_decreasing() {
        let ws = vec![suite::matrixmul()];
        let pts = flag_cache_sweep(&ws, &[0, 10, 32]);
        assert!(pts[0].1 >= pts[1].1);
        assert!(pts[1].1 >= pts[2].1 - 1e-9);
    }

    #[test]
    fn rename_cycle_costs_little() {
        let ws = vec![suite::vectoradd()];
        let cost = rename_cycle_cost(&ws);
        assert!(cost.abs() < 20.0, "rename cycle cost {cost}% out of band");
    }
}
