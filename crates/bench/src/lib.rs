//! # rfv-bench — experiment harness for the reproduction
//!
//! Shared code between the `figures` binary (which regenerates every
//! table and figure of *GPU Register File Virtualization*, MICRO-48
//! 2015), the Criterion benches, and the workspace integration tests:
//!
//! * [`harness`] — compile-and-run helpers for the four machine
//!   configurations (conventional / full virtualization / GPU-shrink /
//!   hardware-only renaming), the compiler-spill baseline, and the
//!   simulator-statistics → energy-model glue;
//! * [`figures`] — one function per paper table/figure returning the
//!   figure's data series;
//! * [`ablations`] — sensitivity studies beyond the paper
//!   (bank-preserving renaming, flag-cache sizing, deeper shrink
//!   points, ready-queue sizing, the renaming pipeline cycle);
//! * [`pool`] — the zero-dependency job pool that fans independent
//!   (workload, configuration) runs across worker threads while
//!   keeping table and CSV row order stable (`--jobs N` / `RFV_JOBS`).
//!
//! ```no_run
//! use rfv_bench::figures;
//!
//! let rows = figures::fig10(&figures::full_suite());
//! let avg = figures::mean(&rows, |r| r.reduction_pct);
//! println!("average register allocation reduction: {avg:.1}%");
//! ```

pub mod ablations;
pub mod figures;
pub mod harness;
pub mod perf;
pub mod pool;
