//! `rfvsim` — run a Table 1 benchmark or a kernel written in assembly
//! text on the simulated GPU and print a full report.
//!
//! ```text
//! rfvsim MatrixMul
//! rfvsim MUM --machine shrink50
//! rfvsim my_kernel.asm --launch 8,128,4 --machine shrink75 --sms 4
//! rfvsim Heartwall --compare
//! rfvsim BackProp --trace trace.json --stats-json stats.json
//! ```
//!
//! Machines: `conventional` (128 KB, no virtualization), `full`
//! (128 KB + renaming + power gating, the default), `shrink50` /
//! `shrink60` / `shrink75` (under-provisioned files), `hwonly` (the
//! \[46\] hardware-only renaming baseline).
//!
//! Tracing and metrics flags:
//!
//! * `--trace <out.json>` — record structured events (register
//!   allocate/release/rename, flag-cache probes, throttle decisions,
//!   power gating, scheduler issue/stall, memory lifecycle) and write
//!   them as Chrome trace-event JSON, loadable in Perfetto or
//!   `chrome://tracing`. One track per (SM, warp).
//! * `--trace-capacity <N>` — per-SM event ring capacity (default
//!   1048576; the oldest-first ring drops the tail beyond this).
//! * `--stats-json <out.json>` — write the end-of-run counters,
//!   derived gauges, and occupancy histograms as JSON.
//!
//! Robustness flags:
//!
//! * `--sanitize off|check|recover` — online register-file sanitizer
//!   level: `check` aborts with a structured unsoundness report (exit
//!   code 3), `recover` quarantines the offending CTA and finishes
//!   the kernel.
//! * `--inject KIND:N[,KIND:N...]` — seeded fault-injection plan
//!   (e.g. `premature-release:2` or `all:1`); `--seed <n>` picks the
//!   deterministic placement stream (default 0). Active settings are
//!   echoed in every report header.
//!
//! Checkpoint/resume flags:
//!
//! * `--checkpoint-every <CYCLES>` — snapshot the whole machine at
//!   every CYCLES-cycle boundary into `--ckpt-dir` (default `.`).
//!   Files are written atomically (`*.rfvckpt.tmp` then rename), so a
//!   crash mid-write always leaves the previous checkpoint valid.
//! * `--resume <PATH>` — restore a checkpoint file and run it to
//!   completion; the final report, stats, and trace tail are
//!   bit-identical to the uninterrupted run. Corrupt, truncated, or
//!   version-mismatched files are rejected with an ordinary error.
//! * `--max-cycles <N>` — override the watchdog cycle budget. When
//!   the watchdog aborts a `--stats-json` run, the per-warp
//!   diagnostic (pc/status/outstanding) is written to the stats path
//!   instead of the normal counters.
//!
//! `rfvsim --probe-shrink WORKLOAD [PCT]` prints the GPU-shrink
//! diagnostic probe (compile stats, conventional cycles, shrink
//! pressure counters) and exits.
//!
//! With `--compare`, the machine label is inserted before the file
//! extension (`trace.json` → `trace.full.json`). The compared
//! machines run concurrently on the job pool and multi-SM
//! simulations shard SMs across worker threads; `--jobs N` bounds
//! both (default: `RFV_JOBS` or the machine's available parallelism,
//! `--jobs 1` forces fully sequential execution). Results are
//! bit-identical at every job count.

use std::env;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::process::exit;

use std::path::Path;

use rfv_bench::harness::{compile_full, compile_plain, machine_config, rf_activity, Machine};
use rfv_bench::pool;
use rfv_compiler::CompiledKernel;
use rfv_power::model::{energy, RfGeometry};
use rfv_sim::{
    simulate, simulate_resumable_traced, simulate_traced, simulate_traced_checkpointed, Checkpoint,
    FaultPlan, SanitizeLevel, SimConfig, SimError, SimResult, TracedRun, WatchdogSnapshot,
};
use rfv_trace::{MetricsRegistry, TraceEvent};
use rfv_workloads::{suite, PaperGeometry, Workload};

struct Options {
    target: String,
    machine: String,
    sms: usize,
    jobs: Option<usize>,
    launch: Option<(u32, u32, u32)>,
    compare: bool,
    trace: Option<String>,
    trace_capacity: usize,
    stats_json: Option<String>,
    sanitize: SanitizeLevel,
    inject: Option<String>,
    seed: u64,
    checkpoint_every: Option<u64>,
    ckpt_dir: String,
    resume: Option<String>,
    max_cycles: Option<u64>,
}

fn usage() -> ! {
    usage_error("")
}

fn usage_error(error: &str) -> ! {
    if !error.is_empty() {
        eprintln!("error: {error}");
    }
    eprintln!(
        "usage: rfvsim <benchmark|file.asm> [--machine conventional|full|shrink50|shrink60|shrink75|hwonly]\n\
         \x20             [--sms N] [--jobs N] [--launch CTAS,THREADS,CONC] [--compare]\n\
         \x20             [--trace out.json] [--trace-capacity N] [--stats-json out.json]\n\
         \x20             [--sanitize off|check|recover] [--inject KIND:N[,KIND:N...]] [--seed N]\n\
         \x20             [--checkpoint-every CYCLES] [--ckpt-dir DIR] [--resume PATH]\n\
         \x20             [--max-cycles N]\n\
         \x20      rfvsim --probe-shrink WORKLOAD [PCT]\n\
         fault kinds: premature-release dropped-release pir-flip pbr-flip rename-corrupt\n\
         \x20            stale-flag-hit spill-loss all\n\
         benchmarks: {}",
        suite::all()
            .iter()
            .map(Workload::name)
            .collect::<Vec<_>>()
            .join(" ")
    );
    exit(2)
}

fn parse_args() -> Options {
    let mut args = env::args().skip(1);
    let Some(target) = args.next() else { usage() };
    if target == "--probe-shrink" {
        probe_shrink(args);
    }
    let mut opts = Options {
        target,
        machine: "full".into(),
        sms: 1,
        jobs: None,
        launch: None,
        compare: false,
        trace: None,
        trace_capacity: 1 << 20,
        stats_json: None,
        sanitize: SanitizeLevel::Off,
        inject: None,
        seed: 0,
        checkpoint_every: None,
        ckpt_dir: ".".into(),
        resume: None,
        max_cycles: None,
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--machine" => opts.machine = args.next().unwrap_or_else(|| usage()),
            "--sms" => {
                opts.sms = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--jobs" => {
                opts.jobs = Some(
                    args.next()
                        .and_then(|s| s.parse().ok())
                        .filter(|&n: &usize| n > 0)
                        .unwrap_or_else(|| usage()),
                )
            }
            "--launch" => {
                let spec = args.next().unwrap_or_else(|| usage());
                let parts: Vec<u32> = spec.split(',').filter_map(|p| p.parse().ok()).collect();
                if parts.len() != 3 {
                    usage();
                }
                opts.launch = Some((parts[0], parts[1], parts[2]));
            }
            "--compare" => opts.compare = true,
            "--trace" => opts.trace = Some(args.next().unwrap_or_else(|| usage())),
            "--trace-capacity" => {
                opts.trace_capacity = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--stats-json" => opts.stats_json = Some(args.next().unwrap_or_else(|| usage())),
            "--sanitize" => {
                opts.sanitize = args
                    .next()
                    .and_then(|s| SanitizeLevel::parse(&s))
                    .unwrap_or_else(|| usage())
            }
            "--inject" => opts.inject = Some(args.next().unwrap_or_else(|| usage())),
            "--seed" => {
                opts.seed = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--checkpoint-every" => {
                opts.checkpoint_every = Some(
                    args.next()
                        .and_then(|s| s.parse().ok())
                        .filter(|&n: &u64| n > 0)
                        .unwrap_or_else(|| {
                            usage_error("--checkpoint-every needs a positive cycle count")
                        }),
                )
            }
            "--ckpt-dir" => {
                opts.ckpt_dir = args
                    .next()
                    .unwrap_or_else(|| usage_error("--ckpt-dir needs a directory"))
            }
            "--resume" => {
                opts.resume = Some(
                    args.next()
                        .unwrap_or_else(|| usage_error("--resume needs a checkpoint path")),
                )
            }
            "--max-cycles" => {
                opts.max_cycles = Some(
                    args.next()
                        .and_then(|s| s.parse().ok())
                        .filter(|&n: &u64| n > 0)
                        .unwrap_or_else(|| usage_error("--max-cycles needs a positive integer")),
                )
            }
            other => usage_error(&format!("unknown flag `{other}`")),
        }
    }
    if opts.compare && (opts.checkpoint_every.is_some() || opts.resume.is_some()) {
        usage_error("--compare cannot be combined with --checkpoint-every or --resume");
    }
    if opts.checkpoint_every.is_some() && opts.resume.is_some() {
        usage_error("--checkpoint-every and --resume are mutually exclusive");
    }
    opts
}

/// `rfvsim --probe-shrink WORKLOAD [PCT]`: the GPU-shrink diagnostic
/// probe (formerly the `debug_shrink` binary), with proper errors
/// instead of panics on unknown workloads or malformed percentages.
fn probe_shrink(mut args: impl Iterator<Item = String>) -> ! {
    let Some(name) = args.next() else {
        usage_error("--probe-shrink needs a workload name")
    };
    let pct = match args.next() {
        None => 50,
        Some(s) => s
            .parse::<usize>()
            .ok()
            .filter(|p| (1..=99).contains(p))
            .unwrap_or_else(|| {
                usage_error(&format!(
                    "--probe-shrink PCT must be a percentage in 1..=99, got `{s}`"
                ))
            }),
    };
    if let Some(stray) = args.next() {
        usage_error(&format!("unexpected argument `{stray}` after PCT"));
    }
    let Some(w) = suite::by_name(&name) else {
        usage_error(&format!("unknown benchmark `{name}`"))
    };
    let ck = compile_full(&w);
    println!(
        "{}: regs {}, exempt {}, renamed {}",
        w.name(),
        w.kernel.num_regs(),
        ck.stats().num_exempt,
        ck.stats().num_renamed
    );
    let base = Machine::Conventional.run(&w);
    println!("conventional: {} cycles", base.cycles);
    let mut cfg = SimConfig::gpu_shrink(pct);
    cfg.max_cycles = 3_000_000;
    match simulate(&ck, &cfg) {
        Ok(r) => {
            let s = r.sm0();
            println!(
                "shrink{pct}: {} cycles, stalls {}, throttled {}, swaps {}, ctas {}, bank conflicts {}",
                r.cycles,
                s.no_reg_stalls,
                s.throttle_restricted_cycles,
                s.swap_outs,
                s.ctas_completed,
                s.bank_conflicts
            );
            exit(0)
        }
        Err(e) => {
            eprintln!("shrink{pct}: simulation failed: {e}");
            exit(1)
        }
    }
}

/// Atomically persists one checkpoint: write the bytes to a `.tmp`
/// sibling, then rename into place. A crash at any point leaves every
/// previously-renamed checkpoint untouched and at worst an orphaned
/// `.tmp` that loading code never considers.
fn write_checkpoint(dir: &Path, ck: &Checkpoint) -> Result<(), String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
    let name = format!("ckpt-{:012}.rfvckpt", ck.cycle);
    let tmp = dir.join(format!("{name}.tmp"));
    let done = dir.join(&name);
    std::fs::write(&tmp, ck.to_bytes()).map_err(|e| format!("write {}: {e}", tmp.display()))?;
    std::fs::rename(&tmp, &done).map_err(|e| format!("rename {}: {e}", done.display()))?;
    eprintln!("[ckpt] cycle {} -> {}", ck.cycle, done.display());
    Ok(())
}

/// Loads and validates a checkpoint file for `--resume`.
fn load_checkpoint(path: &str) -> Result<Checkpoint, SimError> {
    let bytes = std::fs::read(path)
        .map_err(|e| SimError::BadCheckpoint(format!("cannot read {path}: {e}")))?;
    Checkpoint::from_bytes(&bytes)
}

/// When the watchdog aborts a `--stats-json` run, the artifact carries
/// the per-warp diagnostic instead of final counters, so the stall can
/// be analyzed from the JSON alone.
fn write_watchdog_json(path: &str, limit: u64, snapshot: &WatchdogSnapshot) {
    let mut m = MetricsRegistry::new();
    m.add("watchdog.limit_cycles", limit);
    m.add("watchdog.cycle", snapshot.cycle);
    m.add("watchdog.live_regs", snapshot.live_regs as u64);
    m.add("watchdog.warps", snapshot.warps.len() as u64);
    for w in &snapshot.warps {
        let p = format!("watchdog.warp.{:03}", w.slot);
        if let Some(pc) = w.pc {
            m.add(&format!("{p}.pc"), pc as u64);
        }
        m.add(&format!("{p}.status.{}", w.status), 1);
        m.add(&format!("{p}.outstanding"), w.outstanding);
        m.add(&format!("{p}.cta_slot"), w.cta_slot as u64);
        m.add(&format!("{p}.next_issue_at"), w.next_issue_at);
        m.add(&format!("{p}.mapped"), w.mapped as u64);
    }
    let file = File::create(path).unwrap_or_else(|e| {
        eprintln!("cannot create {path}: {e}");
        exit(1)
    });
    let mut w = BufWriter::new(file);
    w.write_all(m.to_json().as_bytes())
        .and_then(|()| w.flush())
        .unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            exit(1)
        });
    eprintln!("[watchdog] per-warp diagnostic -> {path}");
}

fn load_workload(opts: &Options) -> Workload {
    if let Some(w) = suite::by_name(&opts.target) {
        return w;
    }
    if opts.target.ends_with(".asm") {
        let text = std::fs::read_to_string(&opts.target).unwrap_or_else(|e| {
            eprintln!("cannot read {}: {e}", opts.target);
            exit(1)
        });
        let (ctas, threads, conc) = opts.launch.unwrap_or((4, 128, 4));
        let launch = rfv_isa::LaunchConfig::new(ctas, threads, conc);
        let kernel =
            rfv_isa::parse_kernel(opts.target.clone(), &text, launch).unwrap_or_else(|e| {
                eprintln!("parse error: {e}");
                exit(1)
            });
        return Workload {
            paper: PaperGeometry {
                name: "custom",
                ctas,
                threads_per_cta: threads,
                regs_per_kernel: kernel.num_regs(),
                conc_ctas: conc,
            },
            kernel,
        };
    }
    eprintln!("unknown benchmark `{}` (and not an .asm file)", opts.target);
    usage()
}

fn report(label: &str, ck: &CompiledKernel, cfg: &SimConfig, result: &SimResult) {
    let s = result.sm0();
    println!("== {label} ==");
    println!(
        "  machine      : {} KB file, policy {}, {} SM(s), power gating {}",
        cfg.regfile.size_kib(),
        cfg.regfile.policy,
        cfg.num_sms,
        if cfg.regfile.power_gating {
            "on"
        } else {
            "off"
        }
    );
    if cfg.sanitize.is_on() || !cfg.faults.is_empty() {
        println!(
            "  robustness   : sanitizer {}, fault plan {} (seed {})",
            cfg.sanitize,
            cfg.faults.summary(),
            cfg.faults.seed
        );
    }
    println!(
        "  compile      : {} instrs + {} pir + {} pbr ({:.1}% static growth), {} renamed / {} exempt regs, throttle bound {}/warp",
        ck.stats().machine_instrs,
        ck.stats().num_pir,
        ck.stats().num_pbr,
        ck.stats().static_increase_pct,
        ck.stats().num_renamed,
        ck.stats().num_exempt,
        ck.max_held_per_warp(),
    );
    println!(
        "  time         : {} cycles, IPC {:.2}, SIMD efficiency {:.2}",
        result.cycles,
        s.ipc(),
        s.simd_efficiency()
    );
    println!(
        "  registers    : peak live {}, allocs {}, early releases {}, alloc stalls {}, throttled cycles {}, swaps {}",
        s.regfile.peak_live,
        s.regfile.allocs,
        s.regfile.releases,
        s.no_reg_stalls,
        s.throttle_restricted_cycles,
        s.swap_outs
    );
    println!(
        "  memory       : {} transactions, {} MSHR merges, {} bank conflicts",
        s.mem_txns, s.mshr_merges, s.bank_conflicts
    );
    println!(
        "  flag cache   : {} probes, {:.1}% hit rate, {} metadata decoded ({:.2}% dynamic growth)",
        s.flag_cache.probes(),
        100.0 * s.flag_cache.hit_rate(),
        s.meta_decoded,
        s.dynamic_increase_pct()
    );
    let geometry = if cfg.regfile.policy.renames() {
        RfGeometry::virtualized(cfg.regfile.size_kib() as f64 / 128.0)
    } else {
        RfGeometry::conventional()
    };
    let e = energy(&rf_activity(s), &geometry);
    println!(
        "  RF energy    : {:.1} nJ = dyn {:.1} + static {:.1} + rename {:.1} + flags {:.1}",
        e.total_pj() / 1000.0,
        e.dynamic_pj / 1000.0,
        e.static_pj / 1000.0,
        e.renaming_pj / 1000.0,
        e.flag_pj / 1000.0
    );
}

/// `base` with `label` inserted before the extension, when several
/// machines write to the same flag (`--compare`).
fn out_path(base: &str, label: &str, multiple: bool) -> String {
    if !multiple {
        return base.to_string();
    }
    match base.rsplit_once('.') {
        Some((stem, ext)) => format!("{stem}.{label}.{ext}"),
        None => format!("{base}.{label}"),
    }
}

fn write_chrome_trace(path: &str, events: &[TraceEvent]) {
    let file = File::create(path).unwrap_or_else(|e| {
        eprintln!("cannot create {path}: {e}");
        exit(1)
    });
    let mut w = BufWriter::new(file);
    rfv_trace::chrome::write_trace(&mut w, events).unwrap_or_else(|e| {
        eprintln!("cannot write {path}: {e}");
        exit(1)
    });
    println!("  trace        : {} events -> {path}", events.len());
}

fn write_stats_json(path: &str, run: &TracedRun, cfg: &SimConfig) {
    let mut m = run.result.sm0().to_metrics();
    m.add("gpu.cycles", run.result.cycles);
    m.add("gpu.sms", cfg.num_sms as u64);
    // robustness settings ride along so the artifact is self-describing
    m.add("config.sanitize_level", cfg.sanitize as u64);
    if !cfg.faults.is_empty() {
        m.add("config.fault_seed", cfg.faults.seed);
        for k in rfv_sim::FaultKind::ALL {
            let planned = cfg.faults.count(k);
            if planned > 0 {
                m.add(
                    &format!("config.faults_planned.{}", k.name()),
                    planned.into(),
                );
            }
        }
    }
    for e in &run.events {
        m.record_event(e);
    }
    let file = File::create(path).unwrap_or_else(|e| {
        eprintln!("cannot create {path}: {e}");
        exit(1)
    });
    let mut w = BufWriter::new(file);
    w.write_all(m.to_json().as_bytes())
        .and_then(|()| w.flush())
        .unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            exit(1)
        });
    println!("  stats        : -> {path}");
}

fn main() {
    let opts = parse_args();
    if let Some(n) = opts.jobs {
        pool::set_jobs(n);
    }
    let faults = match &opts.inject {
        Some(spec) => FaultPlan::parse(spec, opts.seed).unwrap_or_else(|e| {
            eprintln!("bad --inject spec: {e}");
            exit(2)
        }),
        None => FaultPlan::none(),
    };
    let apply = |c: &mut SimConfig| {
        c.num_sms = opts.sms.max(1);
        c.sm_jobs = opts.jobs;
        c.sanitize = opts.sanitize;
        c.faults = faults;
        if let Some(n) = opts.max_cycles {
            c.max_cycles = n;
        }
    };
    let Some(mut cfg) = machine_config(&opts.machine) else {
        usage()
    };
    apply(&mut cfg);
    let w = load_workload(&opts);

    let machines: Vec<(&str, SimConfig)> = if opts.compare {
        ["conventional", "full", "shrink50", "hwonly"]
            .into_iter()
            .map(|m| {
                let mut c = machine_config(m).expect("known machine");
                apply(&mut c);
                (m, c)
            })
            .collect()
    } else {
        vec![(opts.machine.as_str(), cfg)]
    };
    // validate every configuration up front: a malformed machine must
    // die here as a usage error, not as a worker panic mid-sweep
    for (label, cfg) in &machines {
        if let Err(e) = cfg.validate() {
            usage_error(&format!("invalid configuration for `{label}`: {e}"));
        }
    }
    let multiple = machines.len() > 1;
    let capacity = if opts.trace.is_some() || opts.stats_json.is_some() {
        opts.trace_capacity
    } else {
        0
    };

    // fan the machines across the job pool, then print in the fixed
    // machine order so `--compare` output is stable (checkpoint and
    // resume runs are single-machine: --compare rejects both flags)
    let runs = pool::par_map(&machines, |(label, cfg)| {
        let ck = if cfg.regfile.policy.uses_release_flags() {
            compile_full(&w)
        } else {
            compile_plain(&w)
        };
        let run = if let Some(path) = &opts.resume {
            load_checkpoint(path).and_then(|c| simulate_resumable_traced(&ck, cfg, &c))
        } else if let Some(every) = opts.checkpoint_every {
            let dir = std::path::PathBuf::from(&opts.ckpt_dir);
            simulate_traced_checkpointed(&ck, cfg, &[], capacity, every, &mut |c| {
                write_checkpoint(&dir, c)
            })
        } else {
            simulate_traced(&ck, cfg, capacity)
        };
        (*label, *cfg, ck, run)
    });
    for (label, cfg, ck, run) in runs {
        match run {
            Ok(run) => {
                report(label, &ck, &cfg, &run.result);
                if let Some(base) = &opts.trace {
                    write_chrome_trace(&out_path(base, label, multiple), &run.events);
                }
                if let Some(base) = &opts.stats_json {
                    write_stats_json(&out_path(base, label, multiple), &run, &cfg);
                }
            }
            Err(e) => {
                // a watchdog abort still produces a stats artifact: the
                // per-warp diagnostic replaces the final counters
                if let (SimError::Watchdog { cycles, snapshot }, Some(base)) =
                    (&e, &opts.stats_json)
                {
                    write_watchdog_json(&out_path(base, label, multiple), *cycles, snapshot);
                }
                // a sanitizer detection under --sanitize check is the
                // expected outcome of a fault-injection run, not an
                // internal failure — give it its own exit code
                let code = if matches!(e, SimError::Unsound { .. }) {
                    3
                } else {
                    1
                };
                eprintln!("{label}: simulation failed: {e}");
                exit(code);
            }
        }
    }
}
