//! Diagnostic probe for GPU-shrink runs (not part of the experiment
//! surface).
use rfv_bench::harness::{compile_full, Machine};
use rfv_sim::{simulate, SimConfig};
use rfv_workloads::suite;

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "Heartwall".into());
    let w = suite::by_name(&name).unwrap();
    let ck = compile_full(&w);
    println!(
        "{}: regs {}, exempt {}, renamed {}",
        w.name(),
        w.kernel.num_regs(),
        ck.stats().num_exempt,
        ck.stats().num_renamed
    );
    let base = Machine::Conventional.run(&w);
    println!("conventional: {} cycles", base.cycles);
    let pct: usize = std::env::args()
        .nth(2)
        .map(|s| s.parse().unwrap())
        .unwrap_or(50);
    let mut cfg = SimConfig::gpu_shrink(pct);
    cfg.max_cycles = 3_000_000;
    match simulate(&ck, &cfg) {
        Ok(r) => {
            let s = r.sm0();
            println!(
                "shrink: {} cycles, stalls {}, throttled {}, swaps {}, ctas {}, bank conflicts {}",
                r.cycles,
                s.no_reg_stalls,
                s.throttle_restricted_cycles,
                s.swap_outs,
                s.ctas_completed,
                s.bank_conflicts
            );
        }
        Err(e) => println!("shrink error: {e}"),
    }
}
