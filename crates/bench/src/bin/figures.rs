//! Regenerates every table and figure of *GPU Register File
//! Virtualization* (MICRO-48, 2015).
//!
//! ```text
//! cargo run --release -p rfv-bench --bin figures -- all
//! cargo run --release -p rfv-bench --bin figures -- fig11a
//! cargo run --release -p rfv-bench --bin figures -- all --jobs 8 --csv out
//! ```
//!
//! `--jobs N` sizes the worker pool that fans independent
//! (workload, configuration) runs across threads (default: the
//! `RFV_JOBS` environment variable, else the machine's available
//! parallelism; `--jobs 1` restores fully sequential execution).
//! Table and CSV row order is identical at every job count.

use std::env;

use rfv_bench::ablations;
use rfv_bench::figures::{self, FIG13_CACHE_SIZES};
use rfv_bench::harness;
use rfv_bench::pool;
use rfv_power::params::{register_bank, renaming_table, VDD_V};
use rfv_power::{figure7_sweep, TechNode};
use rfv_workloads::TABLE1;

const KNOWN: [&str; 15] = [
    "table1",
    "table2",
    "fig1",
    "fig2",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11a",
    "fig11b",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "ablations",
];

fn usage(error: &str) -> ! {
    if !error.is_empty() {
        eprintln!("error: {error}");
    }
    eprintln!(
        "usage: figures [FIGURE] [--csv DIR] [--jobs N] [--sanitize off|check|recover]\n\
         \x20 FIGURE: all (default) {}\n\
         \x20 --csv DIR       also write each figure's data series as CSV files into DIR\n\
         \x20 --jobs N        worker threads for the sweep pool (default: RFV_JOBS or all cores)\n\
         \x20 --sanitize L    run every sweep under the online register-file sanitizer",
        KNOWN.join(" ")
    );
    std::process::exit(2);
}

/// Removes `--flag VALUE` from `args`, returning the value. Flags are
/// consumed wherever they appear, so `figures fig7 --csv out` and
/// `figures --csv out fig7` parse identically.
fn take_flag(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let pos = args.iter().position(|a| a == flag)?;
    args.remove(pos);
    if pos >= args.len() {
        usage(&format!("{flag} needs an operand"));
    }
    Some(args.remove(pos))
}

fn main() {
    let mut args: Vec<String> = env::args().skip(1).collect();
    if let Some(n) = take_flag(&mut args, "--jobs") {
        match n.parse::<usize>() {
            Ok(n) if n >= 1 => pool::set_jobs(n),
            _ => usage(&format!("--jobs needs a positive integer, got `{n}`")),
        }
    }
    if let Some(level) = take_flag(&mut args, "--sanitize") {
        match rfv_sim::SanitizeLevel::parse(&level) {
            Some(l) => harness::set_sanitize(l),
            None => usage(&format!(
                "--sanitize needs off|check|recover, got `{level}`"
            )),
        }
    }
    // optional: `--csv DIR` dumps the data series next to the tables
    if let Some(dir) = take_flag(&mut args, "--csv") {
        let dir = std::path::PathBuf::from(dir);
        std::fs::create_dir_all(&dir).expect("create csv dir");
        CSV_DIR.set(dir).expect("set once");
    }
    if let Some(stray) = args.iter().find(|a| a.starts_with('-')) {
        usage(&format!("unknown flag `{stray}`"));
    }
    if args.len() > 1 {
        usage(&format!("expected one figure name, got {args:?}"));
    }
    let what = args.first().map(String::as_str).unwrap_or("all");
    if what == "all" {
        for k in KNOWN {
            dispatch(k);
            println!();
        }
        return;
    }
    if KNOWN.contains(&what) {
        dispatch(what);
    } else {
        usage(&format!("unknown figure `{what}`"));
    }
}

fn dispatch(what: &str) {
    match what {
        "table1" => table1(),
        "table2" => table2(),
        "fig1" => fig1(),
        "fig2" => fig2(),
        "fig7" => fig7(),
        "fig8" => fig8(),
        "fig9" => fig9(),
        "fig10" => fig10(),
        "fig11a" => fig11a(),
        "fig11b" => fig11b(),
        "fig12" => fig12(),
        "fig13" => fig13(),
        "fig14" => fig14(),
        "fig15" => fig15(),
        "ablations" => run_ablations(),
        _ => unreachable!("checked by main"),
    }
}

fn header(title: &str) {
    println!("=== {title} ===");
    // echo active robustness settings so logged/CSV'd output is
    // self-describing (figures never injects faults, only sanitizes)
    let level = harness::sanitize_level();
    if level.is_on() {
        println!("[robustness] sanitizer {level}, fault plan none");
    }
}

static CSV_DIR: std::sync::OnceLock<std::path::PathBuf> = std::sync::OnceLock::new();

/// Writes a CSV data file next to the printed table when `--csv DIR`
/// was given.
fn write_csv(name: &str, header: &str, rows: &[String]) {
    let Some(dir) = CSV_DIR.get() else { return };
    let mut text = String::from(header);
    text.push('\n');
    for r in rows {
        text.push_str(r);
        text.push('\n');
    }
    let path = dir.join(format!("{name}.csv"));
    std::fs::write(&path, text).expect("write csv");
    println!("[csv] wrote {}", path.display());
}

fn table1() {
    header("Table 1: Workloads");
    println!(
        "{:<14} {:>7} {:>10} {:>12} {:>14}",
        "Name", "# CTAs", "Thrds/CTA", "Regs/Kernel", "Conc.CTAs/SM"
    );
    for g in TABLE1 {
        println!(
            "{:<14} {:>7} {:>10} {:>12} {:>14}",
            g.name, g.ctas, g.threads_per_cta, g.regs_per_kernel, g.conc_ctas
        );
    }
}

fn table2() {
    header("Table 2: Renaming table and register bank energy (40nm)");
    println!(
        "{:<22} {:>15} {:>15}",
        "Parameter", "Renaming table", "Register bank"
    );
    println!("{:<22} {:>15} {:>15}", "Size", "1KB", "4KB");
    println!("{:<22} {:>15} {:>15}", "# Banks", renaming_table::BANKS, 1);
    println!("{:<22} {:>14}V {:>14}V", "Vdd", VDD_V, VDD_V);
    println!(
        "{:<22} {:>13}pJ {:>13}pJ",
        "Per-access energy",
        renaming_table::ACCESS_PJ,
        register_bank::ACCESS_PJ
    );
    println!(
        "{:<22} {:>13}mW {:>13}mW",
        "Per-bank leakage",
        renaming_table::LEAK_PER_BANK_MW,
        register_bank::LEAK_PER_SUBBANK_MW
    );
}

fn fig1() {
    header("Figure 1: Fraction of live registers during execution (%)");
    for w in figures::fig1_apps() {
        let series = figures::fig1(&w);
        let avg = figures::mean(&series, |&(_, p)| p);
        println!("-- {} (mean {:.0}%):", w.name(), avg);
        for (cycle, pct) in series.iter().step_by(16.max(series.len() / 24)) {
            println!("   cycle {cycle:>6}: {:>5.1}%  {}", pct, bar(*pct, 100.0));
        }
        write_csv(
            &format!("fig1_{}", w.name().to_lowercase()),
            "cycle,live_pct",
            &series
                .iter()
                .map(|(c, p)| format!("{c},{p:.2}"))
                .collect::<Vec<_>>(),
        );
    }
}

fn fig2() {
    header("Figure 2: MatrixMul register lifetimes (warp 0)");
    for (reg, intervals) in figures::fig2() {
        let label = match reg {
            1 => "r1 (whole-kernel, like the paper's r1)",
            5 => "r5 (loop-lived, like the paper's r0)",
            13 => "r13 (epilogue-only, like the paper's r3)",
            _ => "r?",
        };
        println!("-- {label}");
        for (s, e) in &intervals {
            println!("   live [{s:>6}, {e:>6}]  ({} cycles)", e - s);
        }
        println!("   {} lifetime(s)", intervals.len());
    }
}

fn fig7() {
    header("Figure 7: Register file power vs size reduction (normalized %)");
    println!(
        "{:>10} {:>10} {:>10} {:>10}",
        "reduction", "dynamic", "leakage", "total"
    );
    let sweep = figure7_sweep();
    for p in &sweep {
        println!(
            "{:>9.0}% {:>9.1}% {:>9.1}% {:>9.1}%",
            p.reduction_pct, p.dynamic_pct, p.leakage_pct, p.total_pct
        );
    }
    write_csv(
        "fig7",
        "reduction_pct,dynamic_pct,leakage_pct,total_pct",
        &sweep
            .iter()
            .map(|p| {
                format!(
                    "{:.0},{:.2},{:.2},{:.2}",
                    p.reduction_pct, p.dynamic_pct, p.leakage_pct, p.total_pct
                )
            })
            .collect::<Vec<_>>(),
    );
}

fn fig8() {
    header("Figure 8: Subarray occupancy with and without renaming (MatrixMul, mid-run)");
    let w = rfv_workloads::suite::matrixmul();
    let ((c_cycle, conv), (v_cycle, virt)) = figures::fig8(&w);
    let grid = |occ: &[usize]| {
        for bank in 0..4 {
            let row: Vec<String> = (0..4)
                .map(|sa| {
                    let o = occ[bank * 4 + sa];
                    if o == 0 {
                        "  off ".into()
                    } else {
                        format!("{o:>5} ")
                    }
                })
                .collect();
            println!("   bank{bank}: {}", row.join(""));
        }
    };
    println!("-- conventional (cycle {c_cycle}): every subarray holds registers");
    grid(&conv);
    println!(
        "-- virtualized (cycle {v_cycle}): live registers packed into {} of 16 subarrays",
        virt.iter().filter(|&&o| o > 0).count()
    );
    grid(&virt);
}

fn fig9() {
    header("Figure 9: Leakage fraction vs technology (normalized to 40nm)");
    for node in TechNode::all() {
        println!(
            "{:<10} {:>5.2}  {}",
            node.to_string(),
            node.leakage_factor(),
            bar(node.leakage_factor() * 50.0, 100.0)
        );
    }
}

fn fig10() {
    header("Figure 10: Register allocation reduction (%)");
    let rows = figures::fig10(&figures::full_suite());
    for r in &rows {
        println!(
            "{:<14} alloc {:>5}  peak {:>5}  reduction {:>5.1}%  {}",
            r.name,
            r.alloc,
            r.peak_live,
            r.reduction_pct,
            bar(r.reduction_pct, 50.0)
        );
    }
    println!(
        "AVG reduction: {:.1}%",
        figures::mean(&rows, |r| r.reduction_pct)
    );
    write_csv(
        "fig10",
        "benchmark,alloc,peak_live,reduction_pct",
        &rows
            .iter()
            .map(|r| {
                format!(
                    "{},{},{},{:.2}",
                    r.name, r.alloc, r.peak_live, r.reduction_pct
                )
            })
            .collect::<Vec<_>>(),
    );
}

fn fig11a() {
    header("Figure 11(a): Execution cycle increase with a 64KB register file (%)");
    let rows = figures::fig11a(&figures::full_suite());
    println!(
        "{:<14} {:>10} {:>12} {:>12} {:>10} {:>10}",
        "Name", "base(cyc)", "GPU-shrink", "Comp.spill", "shrink%", "spill%"
    );
    for r in &rows {
        println!(
            "{:<14} {:>10} {:>12} {:>12} {:>9.2}% {:>9.1}%{}",
            r.name,
            r.base_cycles,
            r.shrink_cycles,
            r.spill_cycles,
            r.shrink_increase_pct(),
            r.spill_increase_pct(),
            if r.spilled { "" } else { "  (no spill needed)" }
        );
    }
    println!(
        "AVG: GPU-shrink {:+.2}%  compiler-spill {:+.1}%",
        figures::mean(&rows, Fig11aShrink::get),
        figures::mean(&rows, |r| r.spill_increase_pct())
    );
    write_csv(
        "fig11a",
        "benchmark,base_cycles,shrink_cycles,spill_cycles,shrink_pct,spill_pct",
        &rows
            .iter()
            .map(|r| {
                format!(
                    "{},{},{},{},{:.3},{:.3}",
                    r.name,
                    r.base_cycles,
                    r.shrink_cycles,
                    r.spill_cycles,
                    r.shrink_increase_pct(),
                    r.spill_increase_pct()
                )
            })
            .collect::<Vec<_>>(),
    );
}

struct Fig11aShrink;
impl Fig11aShrink {
    fn get(r: &rfv_bench::figures::Fig11aRow) -> f64 {
        r.shrink_increase_pct()
    }
}

fn fig11b() {
    header("Figure 11(b): Sensitivity to subarray wakeup latency");
    for (wake, ratio) in figures::fig11b(&figures::full_suite()) {
        println!("wakeup {wake:>2} cycles: normalized cycles {ratio:.4}");
    }
}

fn fig12() {
    header("Figure 12: Register file energy breakdown (normalized to 128KB RF)");
    let rows = figures::fig12(&figures::full_suite());
    println!(
        "{:<14} {:>12} {:>10} {:>12}",
        "Name", "128KB w/PG", "64KB", "64KB w/PG"
    );
    for r in &rows {
        let (a, b, c) = r.normalized();
        println!("{:<14} {:>12.3} {:>10.3} {:>12.3}", r.name, a, b, c);
    }
    let avg = |f: fn(&rfv_bench::figures::Fig12Row) -> f64| {
        rows.iter().map(f).sum::<f64>() / rows.len() as f64
    };
    println!(
        "AVG          {:>12.3} {:>10.3} {:>12.3}   (paper: 64KB w/PG saves ~42%)",
        avg(|r| r.normalized().0),
        avg(|r| r.normalized().1),
        avg(|r| r.normalized().2)
    );
    write_csv(
        "fig12",
        "benchmark,norm_128kb_pg,norm_64kb,norm_64kb_pg",
        &rows
            .iter()
            .map(|r| {
                let (a, b, c) = r.normalized();
                format!("{},{a:.4},{b:.4},{c:.4}", r.name)
            })
            .collect::<Vec<_>>(),
    );
}

fn fig13() {
    header("Figure 13: Static and dynamic code increase (%)");
    let rows = figures::fig13(&figures::full_suite());
    println!(
        "{:<14} {:>7} {:>9} {:>9} {:>9} {:>9} {:>10}",
        "Name", "Static", "Dyn-0", "Dyn-1", "Dyn-2", "Dyn-5", "Dyn-10"
    );
    for r in &rows {
        println!(
            "{:<14} {:>6.1}% {:>8.1}% {:>8.1}% {:>8.1}% {:>8.1}% {:>9.2}%",
            r.name,
            r.static_pct,
            r.dynamic_pct[0],
            r.dynamic_pct[1],
            r.dynamic_pct[2],
            r.dynamic_pct[3],
            r.dynamic_pct[4]
        );
    }
    for (i, entries) in FIG13_CACHE_SIZES.into_iter().enumerate() {
        println!(
            "AVG Dynamic-{entries}: {:.2}%",
            figures::mean(&rows, |r| r.dynamic_pct[i])
        );
    }
    write_csv(
        "fig13",
        "benchmark,static_pct,dyn0,dyn1,dyn2,dyn5,dyn10",
        &rows
            .iter()
            .map(|r| {
                format!(
                    "{},{:.2},{:.2},{:.2},{:.2},{:.2},{:.2}",
                    r.name,
                    r.static_pct,
                    r.dynamic_pct[0],
                    r.dynamic_pct[1],
                    r.dynamic_pct[2],
                    r.dynamic_pct[3],
                    r.dynamic_pct[4]
                )
            })
            .collect::<Vec<_>>(),
    );
}

fn fig14() {
    header("Figure 14: Renaming table size and 1KB-constrained saving");
    let rows = figures::fig14(&figures::full_suite());
    for r in &rows {
        println!(
            "{:<14} unconstrained {:>5}B  constrained {:>5}B  exempt {:>2}  saving {:>5.3}",
            r.name, r.unconstrained_bytes, r.constrained_bytes, r.exempted, r.normalized_saving
        );
    }
    let over: Vec<&str> = rows
        .iter()
        .filter(|r| r.unconstrained_bytes > 1024)
        .map(|r| r.name)
        .collect();
    println!("benchmarks exceeding 1KB unconstrained: {over:?}");
    write_csv(
        "fig14",
        "benchmark,unconstrained_bytes,constrained_bytes,exempted,normalized_saving",
        &rows
            .iter()
            .map(|r| {
                format!(
                    "{},{},{},{},{:.4}",
                    r.name,
                    r.unconstrained_bytes,
                    r.constrained_bytes,
                    r.exempted,
                    r.normalized_saving
                )
            })
            .collect::<Vec<_>>(),
    );
}

fn fig15() {
    header("Figure 15: Hardware-only renaming [46] normalized to ours");
    let rows = figures::fig15(&figures::full_suite());
    println!(
        "{:<14} {:>16} {:>18}",
        "Name", "alloc reduction", "static power red."
    );
    for r in &rows {
        println!(
            "{:<14} {:>16.3} {:>18.3}",
            r.name, r.alloc_reduction_ratio, r.static_reduction_ratio
        );
    }
    println!(
        "AVG: alloc {:.3}, static {:.3}  (paper: ours saves ~2x more static power)",
        figures::mean(&rows, |r| r.alloc_reduction_ratio),
        figures::mean(&rows, |r| r.static_reduction_ratio)
    );
    write_csv(
        "fig15",
        "benchmark,alloc_reduction_ratio,static_reduction_ratio",
        &rows
            .iter()
            .map(|r| {
                format!(
                    "{},{:.4},{:.4}",
                    r.name, r.alloc_reduction_ratio, r.static_reduction_ratio
                )
            })
            .collect::<Vec<_>>(),
    );
    let _ = harness::spill_cap; // keep harness linked for doc purposes
}

fn run_ablations() {
    header("Ablations (beyond the paper)");
    println!("-- bank-preserving vs free-bank renaming (75% shrink):");
    for r in ablations::bank_preservation(&ablations::pressure_subset()) {
        println!(
            "   {:<12} strict {:>8} cyc / {:>6} stalls   free {:>8} cyc / {:>6} stalls",
            r.name, r.strict_cycles, r.strict_stalls, r.free_cycles, r.free_stalls
        );
    }
    let ws = figures::full_suite();
    println!("-- flag cache size sweep (avg dynamic increase %):");
    for (entries, pct) in ablations::flag_cache_sweep(&ws, &[0, 5, 10, 16, 32]) {
        println!("   {entries:>3} entries: {pct:>5.2}%");
    }
    println!("-- GPU-shrink depth sweep (avg cycle increase %):");
    for (pct, inc) in ablations::shrink_sweep(&ws, &[30, 40, 50, 60, 75]) {
        println!("   {pct:>2}% shrink: {inc:>+6.2}%");
    }
    println!("-- ready-queue size sweep (avg cycles vs 6-entry queue):");
    for (size, ratio) in ablations::ready_queue_sweep(&ws, &[2, 4, 6, 8, 12]) {
        println!("   {size:>2} entries: {ratio:.4}x");
    }
    println!(
        "-- extra renaming pipeline cycle costs {:+.2}% on average",
        ablations::rename_cycle_cost(&ws)
    );
}

fn bar(value: f64, full_scale: f64) -> String {
    let n = ((value / full_scale) * 40.0).clamp(0.0, 40.0) as usize;
    "#".repeat(n)
}
