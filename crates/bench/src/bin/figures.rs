//! Regenerates every table and figure of *GPU Register File
//! Virtualization* (MICRO-48, 2015).
//!
//! ```text
//! cargo run --release -p rfv-bench --bin figures -- all
//! cargo run --release -p rfv-bench --bin figures -- fig11a
//! cargo run --release -p rfv-bench --bin figures -- all --jobs 8 --csv out
//! cargo run --release -p rfv-bench --bin figures -- all --journal sweep --retries 2
//! ```
//!
//! `--jobs N` sizes the worker pool that fans independent
//! (workload, configuration) runs across threads (default: the
//! `RFV_JOBS` environment variable, else the machine's available
//! parallelism; `--jobs 1` restores fully sequential execution).
//! Table and CSV row order is identical at every job count.
//!
//! # Crash-safe sweeps
//!
//! Every figure is a *cell*: it renders its whole table into memory
//! and only then prints it. With `--journal DIR`, each completed
//! cell's text is persisted (atomic write + rename) under `DIR/out/`
//! and recorded in an append-only `DIR/manifest`; a re-run after a
//! crash replays completed cells verbatim and computes only what is
//! missing, so the final output is byte-identical to an uninterrupted
//! sweep. A cell that panics or errors is retried up to `--retries N`
//! times with exponential backoff; a persistently failing cell is
//! emitted as `FAILED(reason)` while every other cell still completes
//! (exit code 4 distinguishes a degraded sweep from a clean one).

use std::collections::HashSet;
use std::env;
use std::io::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;

use rfv_bench::ablations;
use rfv_bench::figures::{self, FIG13_CACHE_SIZES};
use rfv_bench::harness;
use rfv_bench::pool;
use rfv_power::params::{register_bank, renaming_table, VDD_V};
use rfv_power::{figure7_sweep, TechNode};
use rfv_workloads::TABLE1;

/// Appends a formatted line to a cell's output buffer (writing to a
/// `String` cannot fail, so the `expect` is unreachable).
macro_rules! wln {
    ($out:expr) => {
        $out.push('\n')
    };
    ($out:expr, $($arg:tt)*) => {{
        use std::fmt::Write as _;
        writeln!($out, $($arg)*).expect("write to String");
    }};
}

const KNOWN: [&str; 15] = [
    "table1",
    "table2",
    "fig1",
    "fig2",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11a",
    "fig11b",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "ablations",
];

fn usage(error: &str) -> ! {
    if !error.is_empty() {
        eprintln!("error: {error}");
    }
    eprintln!(
        "usage: figures [FIGURE...] [--csv DIR] [--jobs N] [--sanitize off|check|recover]\n\
         \x20              [--journal DIR] [--retries N]\n\
         \x20 FIGURE: all (default) {}\n\
         \x20 --csv DIR       also write each figure's data series as CSV files into DIR\n\
         \x20 --jobs N        worker threads for the sweep pool (default: RFV_JOBS or all cores)\n\
         \x20 --sanitize L    run every sweep under the online register-file sanitizer\n\
         \x20 --journal DIR   record completed figures so an interrupted sweep resumes\n\
         \x20 --retries N     retry a failed figure N times with exponential backoff",
        KNOWN.join(" ")
    );
    std::process::exit(2);
}

/// Removes `--flag VALUE` from `args`, returning the value. Flags are
/// consumed wherever they appear, so `figures fig7 --csv out` and
/// `figures --csv out fig7` parse identically.
fn take_flag(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let pos = args.iter().position(|a| a == flag)?;
    args.remove(pos);
    if pos >= args.len() {
        usage(&format!("{flag} needs an operand"));
    }
    Some(args.remove(pos))
}

/// The append-only sweep journal: `DIR/manifest` lists completed
/// cells, `DIR/out/<cell>.txt` holds their rendered text. Both are
/// written atomically (temp file + rename, append-only manifest), so
/// a crash at any instant leaves every prior record intact.
struct Journal {
    dir: PathBuf,
    done: HashSet<String>,
}

impl Journal {
    fn open(dir: PathBuf) -> Result<Journal, String> {
        std::fs::create_dir_all(dir.join("out"))
            .map_err(|e| format!("--journal: cannot create {}: {e}", dir.display()))?;
        let mut done = HashSet::new();
        if let Ok(text) = std::fs::read_to_string(dir.join("manifest")) {
            for line in text.lines() {
                if let Some(name) = line.strip_prefix("ok ") {
                    done.insert(name.to_string());
                }
            }
        }
        Ok(Journal { dir, done })
    }

    /// The saved text of a completed cell, if this journal has one.
    fn replay(&self, cell: &str) -> Option<String> {
        if !self.done.contains(cell) {
            return None;
        }
        std::fs::read_to_string(self.dir.join("out").join(format!("{cell}.txt"))).ok()
    }

    /// Persists a freshly-computed cell: text first (atomically), then
    /// the manifest line — a crash between the two re-computes the
    /// cell on resume, never replays a half-written file.
    fn record(&mut self, cell: &str, text: &str) -> Result<(), String> {
        let out = self.dir.join("out").join(format!("{cell}.txt"));
        let tmp = self.dir.join("out").join(format!("{cell}.txt.tmp"));
        std::fs::write(&tmp, text).map_err(|e| format!("write {}: {e}", tmp.display()))?;
        std::fs::rename(&tmp, &out).map_err(|e| format!("rename {}: {e}", out.display()))?;
        let manifest = self.dir.join("manifest");
        std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&manifest)
            .and_then(|mut f| writeln!(f, "ok {cell}"))
            .map_err(|e| format!("append {}: {e}", manifest.display()))?;
        self.done.insert(cell.to_string());
        Ok(())
    }
}

fn panic_text(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic of unknown type".to_string()
    }
}

/// Renders one cell, retrying panics and errors up to `retries` times
/// with exponential backoff (50 ms, 100 ms, 200 ms, ...).
fn run_cell(cell: &str, retries: usize) -> Result<String, String> {
    let mut attempt = 0;
    loop {
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let mut out = String::new();
            dispatch(cell, &mut out).map(|()| out)
        }));
        let reason = match outcome {
            Ok(Ok(text)) => return Ok(text),
            Ok(Err(e)) => e,
            Err(payload) => panic_text(payload),
        };
        if attempt >= retries {
            return Err(reason);
        }
        let delay = 50u64 << attempt.min(6);
        eprintln!(
            "warning: {cell} attempt {} failed ({reason}); retrying in {delay}ms",
            attempt + 1
        );
        std::thread::sleep(std::time::Duration::from_millis(delay));
        attempt += 1;
    }
}

fn main() {
    let mut args: Vec<String> = env::args().skip(1).collect();
    if let Some(n) = take_flag(&mut args, "--jobs") {
        match n.parse::<usize>() {
            Ok(n) if n >= 1 => pool::set_jobs(n),
            _ => usage(&format!("--jobs needs a positive integer, got `{n}`")),
        }
    }
    if let Some(level) = take_flag(&mut args, "--sanitize") {
        match rfv_sim::SanitizeLevel::parse(&level) {
            Some(l) => harness::set_sanitize(l),
            None => usage(&format!(
                "--sanitize needs off|check|recover, got `{level}`"
            )),
        }
    }
    let retries = match take_flag(&mut args, "--retries") {
        None => 0,
        Some(n) => n
            .parse::<usize>()
            .unwrap_or_else(|_| usage(&format!("--retries needs an integer, got `{n}`"))),
    };
    let mut journal = take_flag(&mut args, "--journal").map(|dir| {
        Journal::open(PathBuf::from(dir)).unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(1)
        })
    });
    // optional: `--csv DIR` dumps the data series next to the tables
    if let Some(dir) = take_flag(&mut args, "--csv") {
        let dir = std::path::PathBuf::from(dir);
        if let Err(e) = std::fs::create_dir_all(&dir) {
            usage(&format!("--csv: cannot create {}: {e}", dir.display()));
        }
        CSV_DIR.set(dir).expect("set once");
    }
    if let Some(stray) = args.iter().find(|a| a.starts_with('-')) {
        usage(&format!("unknown flag `{stray}`"));
    }
    let mut cells: Vec<&str> = Vec::new();
    if args.is_empty() {
        cells.extend(KNOWN);
    }
    for name in &args {
        match name.as_str() {
            "all" => cells.extend(KNOWN),
            k if KNOWN.contains(&k) => cells.push(k),
            _ => usage(&format!("unknown figure `{name}`")),
        }
    }
    let multi = cells.len() > 1;

    let mut degraded = false;
    for cell in cells {
        let replayed = journal.as_ref().and_then(|j| j.replay(cell));
        let text = match replayed {
            Some(text) => text,
            None => match run_cell(cell, retries) {
                Ok(text) => {
                    if let Some(j) = journal.as_mut() {
                        if let Err(e) = j.record(cell, &text) {
                            eprintln!("error: journal: {e}");
                            std::process::exit(1);
                        }
                    }
                    text
                }
                Err(reason) => {
                    degraded = true;
                    let reason = reason.replace('\n', "; ");
                    format!("=== {cell} ===\nFAILED({reason})\n")
                }
            },
        };
        print!("{text}");
        if multi {
            println!();
        }
    }
    if degraded {
        std::process::exit(4);
    }
}

fn dispatch(what: &str, out: &mut String) -> Result<(), String> {
    match what {
        "table1" => table1(out),
        "table2" => table2(out),
        "fig1" => fig1(out),
        "fig2" => fig2(out),
        "fig7" => fig7(out),
        "fig8" => fig8(out),
        "fig9" => fig9(out),
        "fig10" => fig10(out),
        "fig11a" => fig11a(out),
        "fig11b" => fig11b(out),
        "fig12" => fig12(out),
        "fig13" => fig13(out),
        "fig14" => fig14(out),
        "fig15" => fig15(out),
        "ablations" => run_ablations(out),
        _ => unreachable!("checked by main"),
    }
}

fn header(out: &mut String, title: &str) {
    wln!(out, "=== {title} ===");
    // echo active robustness settings so logged/CSV'd output is
    // self-describing (figures never injects faults, only sanitizes)
    let level = harness::sanitize_level();
    if level.is_on() {
        wln!(out, "[robustness] sanitizer {level}, fault plan none");
    }
}

static CSV_DIR: std::sync::OnceLock<std::path::PathBuf> = std::sync::OnceLock::new();

/// Writes a CSV data file next to the printed table when `--csv DIR`
/// was given. An unwritable path is an ordinary cell error (the cell
/// is retried/reported `FAILED`), never a panic.
fn write_csv(out: &mut String, name: &str, header: &str, rows: &[String]) -> Result<(), String> {
    let Some(dir) = CSV_DIR.get() else {
        return Ok(());
    };
    let mut text = String::from(header);
    text.push('\n');
    for r in rows {
        text.push_str(r);
        text.push('\n');
    }
    let path = dir.join(format!("{name}.csv"));
    std::fs::write(&path, text).map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    wln!(out, "[csv] wrote {}", path.display());
    Ok(())
}

fn table1(out: &mut String) -> Result<(), String> {
    header(out, "Table 1: Workloads");
    wln!(
        out,
        "{:<14} {:>7} {:>10} {:>12} {:>14}",
        "Name",
        "# CTAs",
        "Thrds/CTA",
        "Regs/Kernel",
        "Conc.CTAs/SM"
    );
    for g in TABLE1 {
        wln!(
            out,
            "{:<14} {:>7} {:>10} {:>12} {:>14}",
            g.name,
            g.ctas,
            g.threads_per_cta,
            g.regs_per_kernel,
            g.conc_ctas
        );
    }
    Ok(())
}

fn table2(out: &mut String) -> Result<(), String> {
    header(
        out,
        "Table 2: Renaming table and register bank energy (40nm)",
    );
    wln!(
        out,
        "{:<22} {:>15} {:>15}",
        "Parameter",
        "Renaming table",
        "Register bank"
    );
    wln!(out, "{:<22} {:>15} {:>15}", "Size", "1KB", "4KB");
    wln!(
        out,
        "{:<22} {:>15} {:>15}",
        "# Banks",
        renaming_table::BANKS,
        1
    );
    wln!(out, "{:<22} {:>14}V {:>14}V", "Vdd", VDD_V, VDD_V);
    wln!(
        out,
        "{:<22} {:>13}pJ {:>13}pJ",
        "Per-access energy",
        renaming_table::ACCESS_PJ,
        register_bank::ACCESS_PJ
    );
    wln!(
        out,
        "{:<22} {:>13}mW {:>13}mW",
        "Per-bank leakage",
        renaming_table::LEAK_PER_BANK_MW,
        register_bank::LEAK_PER_SUBBANK_MW
    );
    Ok(())
}

fn fig1(out: &mut String) -> Result<(), String> {
    header(
        out,
        "Figure 1: Fraction of live registers during execution (%)",
    );
    for w in figures::fig1_apps() {
        let series = figures::fig1(&w);
        let avg = figures::mean(&series, |&(_, p)| p);
        wln!(out, "-- {} (mean {:.0}%):", w.name(), avg);
        for (cycle, pct) in series.iter().step_by(16.max(series.len() / 24)) {
            wln!(
                out,
                "   cycle {cycle:>6}: {:>5.1}%  {}",
                pct,
                bar(*pct, 100.0)
            );
        }
        write_csv(
            out,
            &format!("fig1_{}", w.name().to_lowercase()),
            "cycle,live_pct",
            &series
                .iter()
                .map(|(c, p)| format!("{c},{p:.2}"))
                .collect::<Vec<_>>(),
        )?;
    }
    Ok(())
}

fn fig2(out: &mut String) -> Result<(), String> {
    header(out, "Figure 2: MatrixMul register lifetimes (warp 0)");
    for (reg, intervals) in figures::fig2() {
        let label = match reg {
            1 => "r1 (whole-kernel, like the paper's r1)",
            5 => "r5 (loop-lived, like the paper's r0)",
            13 => "r13 (epilogue-only, like the paper's r3)",
            _ => "r?",
        };
        wln!(out, "-- {label}");
        for (s, e) in &intervals {
            wln!(out, "   live [{s:>6}, {e:>6}]  ({} cycles)", e - s);
        }
        wln!(out, "   {} lifetime(s)", intervals.len());
    }
    Ok(())
}

fn fig7(out: &mut String) -> Result<(), String> {
    header(
        out,
        "Figure 7: Register file power vs size reduction (normalized %)",
    );
    wln!(
        out,
        "{:>10} {:>10} {:>10} {:>10}",
        "reduction",
        "dynamic",
        "leakage",
        "total"
    );
    let sweep = figure7_sweep();
    for p in &sweep {
        wln!(
            out,
            "{:>9.0}% {:>9.1}% {:>9.1}% {:>9.1}%",
            p.reduction_pct,
            p.dynamic_pct,
            p.leakage_pct,
            p.total_pct
        );
    }
    write_csv(
        out,
        "fig7",
        "reduction_pct,dynamic_pct,leakage_pct,total_pct",
        &sweep
            .iter()
            .map(|p| {
                format!(
                    "{:.0},{:.2},{:.2},{:.2}",
                    p.reduction_pct, p.dynamic_pct, p.leakage_pct, p.total_pct
                )
            })
            .collect::<Vec<_>>(),
    )
}

fn fig8(out: &mut String) -> Result<(), String> {
    header(
        out,
        "Figure 8: Subarray occupancy with and without renaming (MatrixMul, mid-run)",
    );
    let w = rfv_workloads::suite::matrixmul();
    let ((c_cycle, conv), (v_cycle, virt)) = figures::fig8(&w);
    let grid = |out: &mut String, occ: &[usize]| {
        for bank in 0..4 {
            let row: Vec<String> = (0..4)
                .map(|sa| {
                    let o = occ[bank * 4 + sa];
                    if o == 0 {
                        "  off ".into()
                    } else {
                        format!("{o:>5} ")
                    }
                })
                .collect();
            wln!(out, "   bank{bank}: {}", row.join(""));
        }
    };
    wln!(
        out,
        "-- conventional (cycle {c_cycle}): every subarray holds registers"
    );
    grid(out, &conv);
    wln!(
        out,
        "-- virtualized (cycle {v_cycle}): live registers packed into {} of 16 subarrays",
        virt.iter().filter(|&&o| o > 0).count()
    );
    grid(out, &virt);
    Ok(())
}

fn fig9(out: &mut String) -> Result<(), String> {
    header(
        out,
        "Figure 9: Leakage fraction vs technology (normalized to 40nm)",
    );
    for node in TechNode::all() {
        wln!(
            out,
            "{:<10} {:>5.2}  {}",
            node.to_string(),
            node.leakage_factor(),
            bar(node.leakage_factor() * 50.0, 100.0)
        );
    }
    Ok(())
}

fn fig10(out: &mut String) -> Result<(), String> {
    header(out, "Figure 10: Register allocation reduction (%)");
    let rows = figures::fig10(&figures::full_suite());
    for r in &rows {
        wln!(
            out,
            "{:<14} alloc {:>5}  peak {:>5}  reduction {:>5.1}%  {}",
            r.name,
            r.alloc,
            r.peak_live,
            r.reduction_pct,
            bar(r.reduction_pct, 50.0)
        );
    }
    wln!(
        out,
        "AVG reduction: {:.1}%",
        figures::mean(&rows, |r| r.reduction_pct)
    );
    write_csv(
        out,
        "fig10",
        "benchmark,alloc,peak_live,reduction_pct",
        &rows
            .iter()
            .map(|r| {
                format!(
                    "{},{},{},{:.2}",
                    r.name, r.alloc, r.peak_live, r.reduction_pct
                )
            })
            .collect::<Vec<_>>(),
    )
}

fn fig11a(out: &mut String) -> Result<(), String> {
    header(
        out,
        "Figure 11(a): Execution cycle increase with a 64KB register file (%)",
    );
    let rows = figures::fig11a(&figures::full_suite());
    wln!(
        out,
        "{:<14} {:>10} {:>12} {:>12} {:>10} {:>10}",
        "Name",
        "base(cyc)",
        "GPU-shrink",
        "Comp.spill",
        "shrink%",
        "spill%"
    );
    for r in &rows {
        wln!(
            out,
            "{:<14} {:>10} {:>12} {:>12} {:>9.2}% {:>9.1}%{}",
            r.name,
            r.base_cycles,
            r.shrink_cycles,
            r.spill_cycles,
            r.shrink_increase_pct(),
            r.spill_increase_pct(),
            if r.spilled { "" } else { "  (no spill needed)" }
        );
    }
    wln!(
        out,
        "AVG: GPU-shrink {:+.2}%  compiler-spill {:+.1}%",
        figures::mean(&rows, Fig11aShrink::get),
        figures::mean(&rows, |r| r.spill_increase_pct())
    );
    write_csv(
        out,
        "fig11a",
        "benchmark,base_cycles,shrink_cycles,spill_cycles,shrink_pct,spill_pct",
        &rows
            .iter()
            .map(|r| {
                format!(
                    "{},{},{},{},{:.3},{:.3}",
                    r.name,
                    r.base_cycles,
                    r.shrink_cycles,
                    r.spill_cycles,
                    r.shrink_increase_pct(),
                    r.spill_increase_pct()
                )
            })
            .collect::<Vec<_>>(),
    )
}

struct Fig11aShrink;
impl Fig11aShrink {
    fn get(r: &rfv_bench::figures::Fig11aRow) -> f64 {
        r.shrink_increase_pct()
    }
}

fn fig11b(out: &mut String) -> Result<(), String> {
    header(out, "Figure 11(b): Sensitivity to subarray wakeup latency");
    for (wake, ratio) in figures::fig11b(&figures::full_suite()) {
        wln!(out, "wakeup {wake:>2} cycles: normalized cycles {ratio:.4}");
    }
    Ok(())
}

fn fig12(out: &mut String) -> Result<(), String> {
    header(
        out,
        "Figure 12: Register file energy breakdown (normalized to 128KB RF)",
    );
    let rows = figures::fig12(&figures::full_suite());
    wln!(
        out,
        "{:<14} {:>12} {:>10} {:>12}",
        "Name",
        "128KB w/PG",
        "64KB",
        "64KB w/PG"
    );
    for r in &rows {
        let (a, b, c) = r.normalized();
        wln!(out, "{:<14} {:>12.3} {:>10.3} {:>12.3}", r.name, a, b, c);
    }
    let avg = |f: fn(&rfv_bench::figures::Fig12Row) -> f64| {
        rows.iter().map(f).sum::<f64>() / rows.len() as f64
    };
    wln!(
        out,
        "AVG          {:>12.3} {:>10.3} {:>12.3}   (paper: 64KB w/PG saves ~42%)",
        avg(|r| r.normalized().0),
        avg(|r| r.normalized().1),
        avg(|r| r.normalized().2)
    );
    write_csv(
        out,
        "fig12",
        "benchmark,norm_128kb_pg,norm_64kb,norm_64kb_pg",
        &rows
            .iter()
            .map(|r| {
                let (a, b, c) = r.normalized();
                format!("{},{a:.4},{b:.4},{c:.4}", r.name)
            })
            .collect::<Vec<_>>(),
    )
}

fn fig13(out: &mut String) -> Result<(), String> {
    header(out, "Figure 13: Static and dynamic code increase (%)");
    let rows = figures::fig13(&figures::full_suite());
    wln!(
        out,
        "{:<14} {:>7} {:>9} {:>9} {:>9} {:>9} {:>10}",
        "Name",
        "Static",
        "Dyn-0",
        "Dyn-1",
        "Dyn-2",
        "Dyn-5",
        "Dyn-10"
    );
    for r in &rows {
        wln!(
            out,
            "{:<14} {:>6.1}% {:>8.1}% {:>8.1}% {:>8.1}% {:>8.1}% {:>9.2}%",
            r.name,
            r.static_pct,
            r.dynamic_pct[0],
            r.dynamic_pct[1],
            r.dynamic_pct[2],
            r.dynamic_pct[3],
            r.dynamic_pct[4]
        );
    }
    for (i, entries) in FIG13_CACHE_SIZES.into_iter().enumerate() {
        wln!(
            out,
            "AVG Dynamic-{entries}: {:.2}%",
            figures::mean(&rows, |r| r.dynamic_pct[i])
        );
    }
    write_csv(
        out,
        "fig13",
        "benchmark,static_pct,dyn0,dyn1,dyn2,dyn5,dyn10",
        &rows
            .iter()
            .map(|r| {
                format!(
                    "{},{:.2},{:.2},{:.2},{:.2},{:.2},{:.2}",
                    r.name,
                    r.static_pct,
                    r.dynamic_pct[0],
                    r.dynamic_pct[1],
                    r.dynamic_pct[2],
                    r.dynamic_pct[3],
                    r.dynamic_pct[4]
                )
            })
            .collect::<Vec<_>>(),
    )
}

fn fig14(out: &mut String) -> Result<(), String> {
    header(
        out,
        "Figure 14: Renaming table size and 1KB-constrained saving",
    );
    let rows = figures::fig14(&figures::full_suite());
    for r in &rows {
        wln!(
            out,
            "{:<14} unconstrained {:>5}B  constrained {:>5}B  exempt {:>2}  saving {:>5.3}",
            r.name,
            r.unconstrained_bytes,
            r.constrained_bytes,
            r.exempted,
            r.normalized_saving
        );
    }
    let over: Vec<&str> = rows
        .iter()
        .filter(|r| r.unconstrained_bytes > 1024)
        .map(|r| r.name)
        .collect();
    wln!(out, "benchmarks exceeding 1KB unconstrained: {over:?}");
    write_csv(
        out,
        "fig14",
        "benchmark,unconstrained_bytes,constrained_bytes,exempted,normalized_saving",
        &rows
            .iter()
            .map(|r| {
                format!(
                    "{},{},{},{},{:.4}",
                    r.name,
                    r.unconstrained_bytes,
                    r.constrained_bytes,
                    r.exempted,
                    r.normalized_saving
                )
            })
            .collect::<Vec<_>>(),
    )
}

fn fig15(out: &mut String) -> Result<(), String> {
    header(
        out,
        "Figure 15: Hardware-only renaming [46] normalized to ours",
    );
    let rows = figures::fig15(&figures::full_suite());
    wln!(
        out,
        "{:<14} {:>16} {:>18}",
        "Name",
        "alloc reduction",
        "static power red."
    );
    for r in &rows {
        wln!(
            out,
            "{:<14} {:>16.3} {:>18.3}",
            r.name,
            r.alloc_reduction_ratio,
            r.static_reduction_ratio
        );
    }
    wln!(
        out,
        "AVG: alloc {:.3}, static {:.3}  (paper: ours saves ~2x more static power)",
        figures::mean(&rows, |r| r.alloc_reduction_ratio),
        figures::mean(&rows, |r| r.static_reduction_ratio)
    );
    write_csv(
        out,
        "fig15",
        "benchmark,alloc_reduction_ratio,static_reduction_ratio",
        &rows
            .iter()
            .map(|r| {
                format!(
                    "{},{:.4},{:.4}",
                    r.name, r.alloc_reduction_ratio, r.static_reduction_ratio
                )
            })
            .collect::<Vec<_>>(),
    )?;
    let _ = harness::spill_cap; // keep harness linked for doc purposes
    Ok(())
}

fn run_ablations(out: &mut String) -> Result<(), String> {
    header(out, "Ablations (beyond the paper)");
    wln!(
        out,
        "-- bank-preserving vs free-bank renaming (75% shrink):"
    );
    for r in ablations::bank_preservation(&ablations::pressure_subset()) {
        wln!(
            out,
            "   {:<12} strict {:>8} cyc / {:>6} stalls   free {:>8} cyc / {:>6} stalls",
            r.name,
            r.strict_cycles,
            r.strict_stalls,
            r.free_cycles,
            r.free_stalls
        );
    }
    let ws = figures::full_suite();
    wln!(out, "-- flag cache size sweep (avg dynamic increase %):");
    for (entries, pct) in ablations::flag_cache_sweep(&ws, &[0, 5, 10, 16, 32]) {
        wln!(out, "   {entries:>3} entries: {pct:>5.2}%");
    }
    wln!(out, "-- GPU-shrink depth sweep (avg cycle increase %):");
    for (pct, inc) in ablations::shrink_sweep(&ws, &[30, 40, 50, 60, 75]) {
        wln!(out, "   {pct:>2}% shrink: {inc:>+6.2}%");
    }
    wln!(
        out,
        "-- ready-queue size sweep (avg cycles vs 6-entry queue):"
    );
    for (size, ratio) in ablations::ready_queue_sweep(&ws, &[2, 4, 6, 8, 12]) {
        wln!(out, "   {size:>2} entries: {ratio:.4}x");
    }
    wln!(
        out,
        "-- extra renaming pipeline cycle costs {:+.2}% on average",
        ablations::rename_cycle_cost(&ws)
    );
    Ok(())
}

fn bar(value: f64, full_scale: f64) -> String {
    let n = ((value / full_scale) * 40.0).clamp(0.0, 40.0) as usize;
    "#".repeat(n)
}
