//! Engine perf-trajectory harness: times the cycle engine on the
//! figure workloads under all four machine policies and writes a
//! JSON report (see `rfv_bench::perf`).
//!
//! ```text
//! cargo run --release -p rfv-bench --bin perf
//! cargo run --release -p rfv-bench --bin perf -- --quick --out /tmp/perf.json
//! cargo run --release -p rfv-bench --bin perf -- --repeat 5 \
//!     --sweep-before 6.608 --sweep-after 3.899
//! ```
//!
//! `--quick` measures a reduced workload set (the CI smoke
//! configuration); `--sweep-before/--sweep-after` record an
//! end-to-end `figures all` wall-time comparison in the report.

use std::env;
use std::process::exit;

use rfv_bench::perf;

fn usage(error: &str) -> ! {
    if !error.is_empty() {
        eprintln!("error: {error}");
    }
    eprintln!(
        "usage: perf [--quick] [--repeat N] [--out PATH] [--sweep-before S --sweep-after S]\n\
         \x20           [--baseline FILE [--max-regress PCT]]\n\
         \x20 --quick           reduced workload set (CI smoke)\n\
         \x20 --repeat N        timed runs per (workload, policy); best kept (default 3)\n\
         \x20 --out PATH        report destination (default BENCH_PR4.json)\n\
         \x20 --sweep-before S  record a figures-sweep wall time before the overhaul, seconds\n\
         \x20 --sweep-after S   record the matching wall time after, seconds\n\
         \x20 --baseline FILE   rfv-perf-v1 report to gate against: exit 1 when any\n\
         \x20                   policy's wall time regresses past --max-regress\n\
         \x20 --max-regress PCT allowed regression percentage (default 50)"
    );
    exit(2);
}

fn take_flag(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let pos = args.iter().position(|a| a == flag)?;
    args.remove(pos);
    if pos >= args.len() {
        usage(&format!("{flag} needs an operand"));
    }
    Some(args.remove(pos))
}

fn take_switch(args: &mut Vec<String>, flag: &str) -> bool {
    let pos = args.iter().position(|a| a == flag);
    if let Some(pos) = pos {
        args.remove(pos);
        true
    } else {
        false
    }
}

fn parse_secs(flag: &str, v: &str) -> f64 {
    match v.parse::<f64>() {
        Ok(x) if x > 0.0 && x.is_finite() => x,
        _ => usage(&format!("{flag} needs a positive number, got `{v}`")),
    }
}

fn main() {
    let mut args: Vec<String> = env::args().skip(1).collect();
    let quick = take_switch(&mut args, "--quick");
    let repeat = match take_flag(&mut args, "--repeat") {
        Some(n) => match n.parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => usage(&format!("--repeat needs a positive integer, got `{n}`")),
        },
        None => 3,
    };
    let out = take_flag(&mut args, "--out").unwrap_or_else(|| "BENCH_PR4.json".to_string());
    let before = take_flag(&mut args, "--sweep-before").map(|v| parse_secs("--sweep-before", &v));
    let after = take_flag(&mut args, "--sweep-after").map(|v| parse_secs("--sweep-after", &v));
    let sweep = match (before, after) {
        (Some(before_s), Some(after_s)) => Some(perf::SweepRecord { before_s, after_s }),
        (None, None) => None,
        _ => usage("--sweep-before and --sweep-after must be given together"),
    };
    let baseline_path = take_flag(&mut args, "--baseline");
    let max_regress = match take_flag(&mut args, "--max-regress") {
        Some(v) => {
            if baseline_path.is_none() {
                usage("--max-regress needs --baseline");
            }
            match v.parse::<f64>() {
                Ok(x) if x >= 0.0 && x.is_finite() => x,
                _ => usage(&format!(
                    "--max-regress needs a non-negative number, got `{v}`"
                )),
            }
        }
        None => 50.0,
    };
    let baseline = baseline_path.map(|path| {
        let json = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("error: cannot read baseline {path}: {e}");
            exit(2);
        });
        match perf::parse_baseline(&json) {
            Ok(b) => (path, b),
            Err(e) => {
                eprintln!("error: baseline {path}: {e}");
                exit(2);
            }
        }
    });
    if !args.is_empty() {
        usage(&format!("unknown argument `{}`", args[0]));
    }

    let report = perf::run(quick, repeat);
    for p in &report {
        eprintln!(
            "{:22} {:>9.3} s total, {:>13} cycles, {:>12.0} cycles/s",
            p.machine,
            p.total_wall_s(),
            p.total_cycles(),
            p.cycles_per_sec()
        );
    }
    let json = perf::to_json(&report, quick, repeat, sweep);
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("error: cannot write {out}: {e}");
        exit(1);
    }
    eprintln!("wrote {out}");
    if let Some((path, baseline)) = baseline {
        let violations = perf::regressions(&report, &baseline, max_regress);
        if violations.is_empty() {
            eprintln!("perf gate: within {max_regress}% of {path}");
        } else {
            for v in &violations {
                eprintln!("perf gate FAILED: {v}");
            }
            exit(1);
        }
    }
}
