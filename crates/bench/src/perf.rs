//! Perf-trajectory harness: wall-clock measurements of the cycle
//! engine itself, as opposed to the *simulated* results everything
//! else in this crate reports.
//!
//! [`run`] executes the figure workloads under all four machine
//! policies ([`Machine`]), timing each simulation and recording
//! simulated cycles, issued instructions, and the engine's
//! cycles-per-second throughput. [`to_json`] renders the report as
//! JSON (schema `rfv-perf-v1`) so successive commits can track engine
//! performance over time — the `perf` binary writes it to
//! `BENCH_PR4.json` at the repo root by default.
//!
//! Wall-clock numbers are machine-dependent; `cycles` and `instrs`
//! are bit-deterministic and double as a cheap cross-check that a
//! perf-motivated change did not alter simulated behaviour.

use std::fmt::Write as _;
use std::time::Instant;

use crate::figures::full_suite;
use crate::harness::{self, Machine};

/// Workloads measured in `--quick` mode (CI smoke): enough to touch
/// every policy's interesting paths without a full sweep.
const QUICK_WORKLOADS: usize = 4;

/// One (workload, policy) measurement.
#[derive(Clone, Debug)]
pub struct WorkloadPerf {
    /// Workload name (Table 1 row).
    pub name: &'static str,
    /// Simulated GPU cycles (slowest SM).
    pub cycles: u64,
    /// Instructions issued, summed over SMs.
    pub instrs: u64,
    /// Best wall time over the configured repeats, seconds.
    pub wall_s: f64,
}

impl WorkloadPerf {
    /// Engine throughput in simulated cycles per wall-clock second.
    pub fn cycles_per_sec(&self) -> f64 {
        if self.wall_s > 0.0 {
            self.cycles as f64 / self.wall_s
        } else {
            0.0
        }
    }
}

/// All workload measurements under one machine policy.
#[derive(Clone, Debug)]
pub struct PolicyPerf {
    /// Policy name (JSON key style).
    pub machine: &'static str,
    /// Per-workload rows, suite order.
    pub rows: Vec<WorkloadPerf>,
}

impl PolicyPerf {
    /// Summed best wall time, seconds.
    pub fn total_wall_s(&self) -> f64 {
        self.rows.iter().map(|r| r.wall_s).sum()
    }

    /// Summed simulated cycles.
    pub fn total_cycles(&self) -> u64 {
        self.rows.iter().map(|r| r.cycles).sum()
    }

    /// Aggregate engine throughput, simulated cycles per second.
    pub fn cycles_per_sec(&self) -> f64 {
        let wall = self.total_wall_s();
        if wall > 0.0 {
            self.total_cycles() as f64 / wall
        } else {
            0.0
        }
    }
}

/// The four measured machine policies with their JSON names.
pub const MACHINES: [(Machine, &str); 4] = [
    (Machine::Conventional, "conventional"),
    (Machine::Full128, "full_virtualization"),
    (Machine::Shrink64, "gpu_shrink_50"),
    (Machine::HardwareOnly, "hardware_only"),
];

/// Runs the harness: every suite workload (or the first
/// [`QUICK_WORKLOADS`] under `quick`) under all four policies,
/// `repeat` timed runs each (the best is kept — the engine is
/// deterministic, so variance is scheduler noise, not workload
/// noise). Compilation happens outside the timed region.
pub fn run(quick: bool, repeat: usize) -> Vec<PolicyPerf> {
    let mut suite = full_suite();
    if quick {
        suite.truncate(QUICK_WORKLOADS);
    }
    let repeat = repeat.max(1);
    MACHINES
        .iter()
        .map(|&(machine, name)| {
            let rows = suite
                .iter()
                .map(|w| {
                    let compiled = machine.compile(w);
                    let config = machine.config();
                    let mut best = f64::INFINITY;
                    let mut cycles = 0;
                    let mut instrs = 0;
                    for _ in 0..repeat {
                        let t0 = Instant::now();
                        let result = harness::run(&compiled, &config);
                        let wall = t0.elapsed().as_secs_f64();
                        best = best.min(wall);
                        cycles = result.cycles;
                        instrs = result.per_sm.iter().map(|s| s.instrs_issued).sum();
                    }
                    WorkloadPerf {
                        name: w.name(),
                        cycles,
                        instrs,
                        wall_s: best,
                    }
                })
                .collect();
            PolicyPerf {
                machine: name,
                rows,
            }
        })
        .collect()
}

/// An end-to-end `figures all` sweep measurement recorded alongside
/// the per-workload data (the PR's before/after wall times).
#[derive(Clone, Copy, Debug)]
pub struct SweepRecord {
    /// Wall seconds before the engine overhaul.
    pub before_s: f64,
    /// Wall seconds after.
    pub after_s: f64,
}

impl SweepRecord {
    /// `before / after` speedup.
    pub fn speedup(&self) -> f64 {
        if self.after_s > 0.0 {
            self.before_s / self.after_s
        } else {
            0.0
        }
    }
}

/// Renders the report as JSON (schema `rfv-perf-v1`).
pub fn to_json(
    policies: &[PolicyPerf],
    quick: bool,
    repeat: usize,
    sweep: Option<SweepRecord>,
) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"schema\": \"rfv-perf-v1\",");
    let _ = writeln!(s, "  \"quick\": {quick},");
    let _ = writeln!(s, "  \"repeat\": {repeat},");
    if let Some(rec) = sweep {
        let _ = writeln!(s, "  \"figures_sweep\": {{");
        let _ = writeln!(s, "    \"before_s\": {:.3},", rec.before_s);
        let _ = writeln!(s, "    \"after_s\": {:.3},", rec.after_s);
        let _ = writeln!(s, "    \"speedup\": {:.3}", rec.speedup());
        let _ = writeln!(s, "  }},");
    }
    let _ = writeln!(s, "  \"policies\": [");
    for (pi, p) in policies.iter().enumerate() {
        let _ = writeln!(s, "    {{");
        let _ = writeln!(s, "      \"machine\": \"{}\",", p.machine);
        let _ = writeln!(s, "      \"total_wall_s\": {:.6},", p.total_wall_s());
        let _ = writeln!(s, "      \"total_cycles\": {},", p.total_cycles());
        let _ = writeln!(s, "      \"cycles_per_sec\": {:.1},", p.cycles_per_sec());
        let _ = writeln!(s, "      \"workloads\": [");
        for (ri, r) in p.rows.iter().enumerate() {
            let comma = if ri + 1 == p.rows.len() { "" } else { "," };
            let _ = writeln!(
                s,
                "        {{\"name\": \"{}\", \"cycles\": {}, \"instrs\": {}, \
                 \"wall_s\": {:.6}, \"cycles_per_sec\": {:.1}}}{comma}",
                r.name,
                r.cycles,
                r.instrs,
                r.wall_s,
                r.cycles_per_sec()
            );
        }
        let _ = writeln!(s, "      ]");
        let comma = if pi + 1 == policies.len() { "" } else { "," };
        let _ = writeln!(s, "    }}{comma}");
    }
    let _ = writeln!(s, "  ]");
    let _ = writeln!(s, "}}");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_all_policies() {
        let report = run(true, 1);
        assert_eq!(report.len(), 4);
        for p in &report {
            assert_eq!(p.rows.len(), QUICK_WORKLOADS);
            assert!(p.total_cycles() > 0);
            assert!(p.rows.iter().all(|r| r.instrs > 0));
        }
    }

    #[test]
    fn json_is_well_formed_enough() {
        let report = run(true, 1);
        let json = to_json(
            &report,
            true,
            1,
            Some(SweepRecord {
                before_s: 2.0,
                after_s: 1.0,
            }),
        );
        assert!(json.contains("\"schema\": \"rfv-perf-v1\""));
        assert!(json.contains("\"speedup\": 2.000"));
        assert_eq!(json.matches("\"machine\"").count(), 4);
        // balanced braces / brackets (hand-rolled writer)
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
