//! Perf-trajectory harness: wall-clock measurements of the cycle
//! engine itself, as opposed to the *simulated* results everything
//! else in this crate reports.
//!
//! [`run`] executes the figure workloads under all four machine
//! policies ([`Machine`]), timing each simulation and recording
//! simulated cycles, issued instructions, and the engine's
//! cycles-per-second throughput. [`to_json`] renders the report as
//! JSON (schema `rfv-perf-v1`) so successive commits can track engine
//! performance over time — the `perf` binary writes it to
//! `BENCH_PR4.json` at the repo root by default.
//!
//! Wall-clock numbers are machine-dependent; `cycles` and `instrs`
//! are bit-deterministic and double as a cheap cross-check that a
//! perf-motivated change did not alter simulated behaviour.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use rfv_sim::PredecodedKernel;

use crate::figures::full_suite;
use crate::harness::{self, Machine};

/// Workloads measured in `--quick` mode (CI smoke): enough to touch
/// every policy's interesting paths without a full sweep.
const QUICK_WORKLOADS: usize = 4;

/// One (workload, policy) measurement.
#[derive(Clone, Debug)]
pub struct WorkloadPerf {
    /// Workload name (Table 1 row).
    pub name: &'static str,
    /// Simulated GPU cycles (slowest SM).
    pub cycles: u64,
    /// Instructions issued, summed over SMs.
    pub instrs: u64,
    /// Best wall time over the configured repeats, seconds.
    pub wall_s: f64,
}

impl WorkloadPerf {
    /// Engine throughput in simulated cycles per wall-clock second.
    pub fn cycles_per_sec(&self) -> f64 {
        if self.wall_s > 0.0 {
            self.cycles as f64 / self.wall_s
        } else {
            0.0
        }
    }
}

/// All workload measurements under one machine policy.
#[derive(Clone, Debug)]
pub struct PolicyPerf {
    /// Policy name (JSON key style).
    pub machine: &'static str,
    /// Per-workload rows, suite order.
    pub rows: Vec<WorkloadPerf>,
}

impl PolicyPerf {
    /// Summed best wall time, seconds.
    pub fn total_wall_s(&self) -> f64 {
        self.rows.iter().map(|r| r.wall_s).sum()
    }

    /// Summed simulated cycles.
    pub fn total_cycles(&self) -> u64 {
        self.rows.iter().map(|r| r.cycles).sum()
    }

    /// Aggregate engine throughput, simulated cycles per second.
    pub fn cycles_per_sec(&self) -> f64 {
        let wall = self.total_wall_s();
        if wall > 0.0 {
            self.total_cycles() as f64 / wall
        } else {
            0.0
        }
    }
}

/// The four measured machine policies with their JSON names.
pub const MACHINES: [(Machine, &str); 4] = [
    (Machine::Conventional, "conventional"),
    (Machine::Full128, "full_virtualization"),
    (Machine::Shrink64, "gpu_shrink_50"),
    (Machine::HardwareOnly, "hardware_only"),
];

/// Runs the harness: every suite workload (or the first
/// [`QUICK_WORKLOADS`] under `quick`) under all four policies,
/// `repeat` timed runs each (the best is kept — the engine is
/// deterministic, so variance is scheduler noise, not workload
/// noise). Compilation happens outside the timed region.
pub fn run(quick: bool, repeat: usize) -> Vec<PolicyPerf> {
    let mut suite = full_suite();
    if quick {
        suite.truncate(QUICK_WORKLOADS);
    }
    let repeat = repeat.max(1);
    MACHINES
        .iter()
        .map(|&(machine, name)| {
            let rows = suite
                .iter()
                .map(|w| {
                    // compile, predecode, and plan-lower once: the
                    // timed region repeats only the simulation itself
                    let compiled = machine.compile(w);
                    let config = machine.config();
                    let prog = Arc::new(PredecodedKernel::new(&compiled));
                    let mut best = f64::INFINITY;
                    let mut cycles = 0;
                    let mut instrs = 0;
                    for _ in 0..repeat {
                        let t0 = Instant::now();
                        let result = harness::run_predecoded(&compiled, &config, &prog);
                        let wall = t0.elapsed().as_secs_f64();
                        best = best.min(wall);
                        cycles = result.cycles;
                        instrs = result.per_sm.iter().map(|s| s.instrs_issued).sum();
                    }
                    WorkloadPerf {
                        name: w.name(),
                        cycles,
                        instrs,
                        wall_s: best,
                    }
                })
                .collect();
            PolicyPerf {
                machine: name,
                rows,
            }
        })
        .collect()
}

/// An end-to-end `figures all` sweep measurement recorded alongside
/// the per-workload data (the PR's before/after wall times).
#[derive(Clone, Copy, Debug)]
pub struct SweepRecord {
    /// Wall seconds before the engine overhaul.
    pub before_s: f64,
    /// Wall seconds after.
    pub after_s: f64,
}

impl SweepRecord {
    /// `before / after` speedup.
    pub fn speedup(&self) -> f64 {
        if self.after_s > 0.0 {
            self.before_s / self.after_s
        } else {
            0.0
        }
    }
}

/// Renders the report as JSON (schema `rfv-perf-v1`).
pub fn to_json(
    policies: &[PolicyPerf],
    quick: bool,
    repeat: usize,
    sweep: Option<SweepRecord>,
) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"schema\": \"rfv-perf-v1\",");
    let _ = writeln!(s, "  \"quick\": {quick},");
    let _ = writeln!(s, "  \"repeat\": {repeat},");
    if let Some(rec) = sweep {
        let _ = writeln!(s, "  \"figures_sweep\": {{");
        let _ = writeln!(s, "    \"before_s\": {:.3},", rec.before_s);
        let _ = writeln!(s, "    \"after_s\": {:.3},", rec.after_s);
        let _ = writeln!(s, "    \"speedup\": {:.3}", rec.speedup());
        let _ = writeln!(s, "  }},");
    }
    let _ = writeln!(s, "  \"policies\": [");
    for (pi, p) in policies.iter().enumerate() {
        let _ = writeln!(s, "    {{");
        let _ = writeln!(s, "      \"machine\": \"{}\",", p.machine);
        let _ = writeln!(s, "      \"total_wall_s\": {:.6},", p.total_wall_s());
        let _ = writeln!(s, "      \"total_cycles\": {},", p.total_cycles());
        let _ = writeln!(s, "      \"cycles_per_sec\": {:.1},", p.cycles_per_sec());
        let _ = writeln!(s, "      \"workloads\": [");
        for (ri, r) in p.rows.iter().enumerate() {
            let comma = if ri + 1 == p.rows.len() { "" } else { "," };
            let _ = writeln!(
                s,
                "        {{\"name\": \"{}\", \"cycles\": {}, \"instrs\": {}, \
                 \"wall_s\": {:.6}, \"cycles_per_sec\": {:.1}}}{comma}",
                r.name,
                r.cycles,
                r.instrs,
                r.wall_s,
                r.cycles_per_sec()
            );
        }
        let _ = writeln!(s, "      ]");
        let comma = if pi + 1 == policies.len() { "" } else { "," };
        let _ = writeln!(s, "    }}{comma}");
    }
    let _ = writeln!(s, "  ]");
    let _ = writeln!(s, "}}");
    s
}

// ------------------------------------------------- regression gating

/// Per-machine workload wall times parsed back out of an
/// `rfv-perf-v1` report — the baseline side of the CI regression
/// gate. Hand-rolled line scanning, mirroring the hand-rolled writer.
#[derive(Clone, Debug, Default)]
pub struct BaselineReport {
    /// `(machine, [(workload, wall_s)])` in report order.
    pub machines: Vec<(String, Vec<(String, f64)>)>,
}

/// Extracts the value following `"key": ` on `line` up to the next
/// `,`, `}`, or end of line.
fn field_after<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    Some(rest[..end].trim())
}

/// Extracts the string value of `"key": "..."` on `line`.
fn str_field_after<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    field_after(line, key)?.strip_prefix('"')?.strip_suffix('"')
}

/// Parses an `rfv-perf-v1` report's machine/workload wall times.
///
/// # Errors
///
/// Rejects reports without the `rfv-perf-v1` schema marker or with no
/// machine sections (anything else in the file is ignored — the gate
/// only needs the wall times).
pub fn parse_baseline(json: &str) -> Result<BaselineReport, String> {
    if !json.contains("\"schema\": \"rfv-perf-v1\"") {
        return Err("not an rfv-perf-v1 report".into());
    }
    let mut report = BaselineReport::default();
    for line in json.lines() {
        if let Some(machine) = str_field_after(line, "machine") {
            report.machines.push((machine.to_string(), Vec::new()));
        } else if let (Some(name), Some(wall)) =
            (str_field_after(line, "name"), field_after(line, "wall_s"))
        {
            let wall: f64 = wall
                .parse()
                .map_err(|_| format!("bad wall_s `{wall}` for workload `{name}`"))?;
            let Some((_, rows)) = report.machines.last_mut() else {
                return Err(format!("workload `{name}` precedes any machine section"));
            };
            rows.push((name.to_string(), wall));
        }
    }
    if report.machines.is_empty() {
        return Err("report contains no machine sections".into());
    }
    Ok(report)
}

/// Compares a fresh report against a baseline, returning one message
/// per machine whose wall time regressed by more than
/// `max_regress_pct` percent. Totals are summed over the workloads
/// present in *both* reports, so a `--quick` run gates correctly
/// against a full baseline. Empty means the gate passes.
pub fn regressions(
    current: &[PolicyPerf],
    baseline: &BaselineReport,
    max_regress_pct: f64,
) -> Vec<String> {
    let mut msgs = Vec::new();
    for p in current {
        let Some((_, base_rows)) = baseline.machines.iter().find(|(m, _)| m == p.machine) else {
            continue;
        };
        let mut base_sum = 0.0;
        let mut cur_sum = 0.0;
        for r in &p.rows {
            if let Some((_, wall)) = base_rows.iter().find(|(n, _)| n == r.name) {
                base_sum += wall;
                cur_sum += r.wall_s;
            }
        }
        if base_sum <= 0.0 {
            continue;
        }
        let pct = (cur_sum - base_sum) / base_sum * 100.0;
        if pct > max_regress_pct {
            msgs.push(format!(
                "{}: {cur_sum:.3}s vs baseline {base_sum:.3}s (+{pct:.1}% > {max_regress_pct:.1}%)",
                p.machine
            ));
        }
    }
    msgs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_all_policies() {
        let report = run(true, 1);
        assert_eq!(report.len(), 4);
        for p in &report {
            assert_eq!(p.rows.len(), QUICK_WORKLOADS);
            assert!(p.total_cycles() > 0);
            assert!(p.rows.iter().all(|r| r.instrs > 0));
        }
    }

    #[test]
    fn json_is_well_formed_enough() {
        let report = run(true, 1);
        let json = to_json(
            &report,
            true,
            1,
            Some(SweepRecord {
                before_s: 2.0,
                after_s: 1.0,
            }),
        );
        assert!(json.contains("\"schema\": \"rfv-perf-v1\""));
        assert!(json.contains("\"speedup\": 2.000"));
        assert_eq!(json.matches("\"machine\"").count(), 4);
        // balanced braces / brackets (hand-rolled writer)
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    /// A tiny report: one machine, two workloads with the given times.
    fn fake_policy(machine: &'static str, walls: &[(&'static str, f64)]) -> PolicyPerf {
        PolicyPerf {
            machine,
            rows: walls
                .iter()
                .map(|&(name, wall_s)| WorkloadPerf {
                    name,
                    cycles: 100,
                    instrs: 10,
                    wall_s,
                })
                .collect(),
        }
    }

    #[test]
    fn baseline_round_trips_through_json() {
        let report = vec![
            fake_policy("conventional", &[("mm", 1.5), ("stencil", 0.5)]),
            fake_policy("full_virtualization", &[("mm", 2.0), ("stencil", 1.0)]),
        ];
        let json = to_json(&report, false, 3, None);
        let parsed = parse_baseline(&json).expect("writer output parses");
        assert_eq!(parsed.machines.len(), 2);
        assert_eq!(parsed.machines[0].0, "conventional");
        assert_eq!(
            parsed.machines[0].1,
            vec![("mm".into(), 1.5), ("stencil".into(), 0.5)]
        );
        // identical report → no regression at any threshold
        assert!(regressions(&report, &parsed, 0.0).is_empty());
    }

    #[test]
    fn gate_flags_only_past_threshold_regressions() {
        let baseline_report = vec![fake_policy(
            "conventional",
            &[("mm", 1.0), ("stencil", 1.0)],
        )];
        let baseline = parse_baseline(&to_json(&baseline_report, false, 3, None)).unwrap();
        // 50% slower on the common workloads
        let current = vec![fake_policy(
            "conventional",
            &[("mm", 1.5), ("stencil", 1.5)],
        )];
        assert!(regressions(&current, &baseline, 60.0).is_empty());
        let flagged = regressions(&current, &baseline, 25.0);
        assert_eq!(flagged.len(), 1);
        assert!(flagged[0].starts_with("conventional:"), "{}", flagged[0]);
        // unknown machines and workloads are ignored, not flagged
        let unknown = vec![fake_policy("gpu_shrink_50", &[("mm", 9.0)])];
        assert!(regressions(&unknown, &baseline, 0.0).is_empty());
        let disjoint = vec![fake_policy("conventional", &[("other", 9.0)])];
        assert!(regressions(&disjoint, &baseline, 0.0).is_empty());
    }

    #[test]
    fn baseline_parser_rejects_foreign_json() {
        assert!(parse_baseline("{}").is_err());
        assert!(parse_baseline("{\"schema\": \"rfv-perf-v1\"}").is_err());
    }
}
