//! Shared experiment harness: compiles workloads under the paper's
//! configurations, runs them, and converts simulator statistics into
//! energy-model activity.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use rfv_compiler::{compile, spill_to_cap, CompileOptions, CompiledKernel};
use rfv_core::VirtualizationPolicy;
use rfv_power::model::RfActivity;
use rfv_sim::{
    simulate, simulate_predecoded, PredecodedKernel, SanitizeLevel, SimConfig, SimResult, SimStats,
};
use rfv_workloads::Workload;

/// Process-wide sanitizer override for harness-driven experiments
/// (set once from a CLI flag before any runs start). Sweep code never
/// threads a sanitize level through its dozens of config sites; the
/// override is applied centrally in [`run`].
static SANITIZE: OnceLock<SanitizeLevel> = OnceLock::new();

/// Requests that every subsequent [`run`] executes under `level`.
/// First call wins; later calls are ignored.
pub fn set_sanitize(level: SanitizeLevel) {
    let _ = SANITIZE.set(level);
}

/// The sanitize level harness runs execute under ([`SanitizeLevel::Off`]
/// unless [`set_sanitize`] was called).
pub fn sanitize_level() -> SanitizeLevel {
    SANITIZE.get().copied().unwrap_or_default()
}

/// Compiled-kernel memo shared by the `compile_*` helpers. Sweep
/// drivers recompile the same workload at every sweep point (the
/// compiler is pure, so the output is identical each time); the memo
/// turns those repeats into a clone. Keyed like [`RESULT_MEMO`] by
/// the `Debug` rendering of the input kernel and options — exact, not
/// name-based, so a mutated kernel under a reused name cannot collide.
static COMPILE_MEMO: OnceLock<Mutex<HashMap<String, CompiledKernel>>> = OnceLock::new();

/// Entry cap for [`COMPILE_MEMO`]; saturates rather than evicts, like
/// [`RESULT_MEMO_CAP`].
const COMPILE_MEMO_CAP: usize = 256;

fn compile_memoized(kernel: &rfv_isa::Kernel, opts: &CompileOptions) -> CompiledKernel {
    let key = format!("{kernel:?}|{opts:?}");
    let memo = COMPILE_MEMO.get_or_init(Default::default);
    if let Some(hit) = memo.lock().expect("compile memo lock").get(&key) {
        return hit.clone();
    }
    let ck = compile(kernel, opts).expect("suite kernels compile");
    let mut memo = memo.lock().expect("compile memo lock");
    if memo.len() < COMPILE_MEMO_CAP {
        memo.insert(key, ck.clone());
    }
    ck
}

/// Compiles a workload with the paper's default 1 KB renaming-table
/// budget (metadata embedded).
///
/// # Panics
///
/// Panics when compilation fails — suite kernels are known-good.
pub fn compile_full(w: &Workload) -> CompiledKernel {
    compile_memoized(&w.kernel, &CompileOptions::default())
}

/// Compiles a workload with a zero renaming budget: no registers are
/// renamed and no metadata is embedded — the binary the conventional
/// and hardware-only configurations execute.
///
/// # Panics
///
/// Panics when compilation fails.
pub fn compile_plain(w: &Workload) -> CompiledKernel {
    let opts = CompileOptions {
        table_budget_bytes: 0,
    };
    compile_memoized(&w.kernel, &opts)
}

/// Compiles a workload with an effectively unlimited renaming-table
/// budget (Figure 14's unconstrained point).
///
/// # Panics
///
/// Panics when compilation fails.
pub fn compile_unconstrained(w: &Workload) -> CompiledKernel {
    let opts = CompileOptions {
        table_budget_bytes: 64 * 1024,
    };
    compile_memoized(&w.kernel, &opts)
}

/// The register cap the *compiler-spill* baseline must hit so that a
/// conventionally-allocated kernel fits a file of `phys_regs`
/// registers at the declared occupancy.
pub fn spill_cap(w: &Workload, phys_regs: usize) -> usize {
    let launch = w.kernel.launch();
    let warps_per_sm = launch.warps_per_cta() as usize * launch.max_conc_ctas_per_sm() as usize;
    (phys_regs / warps_per_sm.max(1)).max(4)
}

/// Compiles the compiler-spill baseline for a `phys_regs`-sized file:
/// spill to the cap, then compile without metadata.
///
/// # Panics
///
/// Panics when the spill pass or compilation fails.
pub fn compile_spilled(w: &Workload, phys_regs: usize) -> CompiledKernel {
    let cap = spill_cap(w, phys_regs);
    let spilled = spill_to_cap(&w.kernel, cap).expect("spill caps are feasible");
    let opts = CompileOptions {
        table_budget_bytes: 0,
    };
    compile_memoized(&spilled.kernel, &opts)
}

/// Completed-run memo for [`run`]. The simulator is deterministic
/// (the engine-equivalence and parallel-determinism suites assert
/// bit-identical results across engines, thread counts, and
/// checkpoint boundaries), so a repeated `(kernel, config)` pair —
/// common across sweeps that share a baseline point, e.g. every
/// sweep's `baseline_full` reference row — can reuse the first run's
/// result verbatim. Keyed by the full `Debug` rendering of both
/// kernel and resolved config, so any semantic difference (compile
/// options, shrink depth, sanitize level) produces a distinct key and
/// a hit is exact, not approximate.
///
/// The timed benchmark path ([`run_predecoded`], used by the `perf`
/// harness's repeat loops) deliberately bypasses the memo: its
/// repeats must exercise the engine, not a table lookup.
static RESULT_MEMO: OnceLock<Mutex<HashMap<String, SimResult>>> = OnceLock::new();

/// Memo entry cap. A full `figures all` sweep needs a few hundred
/// entries; the cap only guards long-lived embedders against
/// unbounded growth. On overflow the memo saturates (stops inserting)
/// rather than evicting — results never change, so a stale entry is
/// impossible and saturation merely lowers the hit rate.
const RESULT_MEMO_CAP: usize = 1024;

/// Runs a compiled kernel, panicking on simulator errors (used by
/// experiments where failure means a harness bug). The process-wide
/// sanitize override (see [`set_sanitize`]) is applied unless the
/// config already requests a level itself.
///
/// Identical `(kernel, config)` pairs are memoized per process (see
/// [`RESULT_MEMO`]); the first call simulates, later calls return a
/// clone of the recorded result.
///
/// # Panics
///
/// Panics when the simulation errors.
pub fn run(kernel: &CompiledKernel, config: &SimConfig) -> SimResult {
    // test hook for the sweep-resilience suite: rig the named workload
    // to panic so journal/retry behaviour can be exercised end to end
    if let Ok(rigged) = std::env::var("RFV_RIG_PANIC") {
        if rigged == kernel.kernel().name() {
            panic!("rigged panic for workload {rigged:?} (RFV_RIG_PANIC)");
        }
    }
    let mut config = *config;
    if !config.sanitize.is_on() {
        config.sanitize = sanitize_level();
    }
    let key = format!("{kernel:?}|{config:?}");
    let memo = RESULT_MEMO.get_or_init(Default::default);
    if let Some(hit) = memo.lock().expect("result memo lock").get(&key) {
        return hit.clone();
    }
    // the lock is NOT held while simulating: concurrent workers may
    // race on the same key and both simulate, but determinism makes
    // the duplicate insert harmless
    let result = simulate(kernel, &config).unwrap_or_else(|e| panic!("simulation failed: {e}"));
    let mut memo = memo.lock().expect("result memo lock");
    if memo.len() < RESULT_MEMO_CAP {
        memo.insert(key, result.clone());
    }
    result
}

/// [`run`] reusing an already-predecoded program image, so timing
/// loops repeat only the simulation itself (predecode + plan lowering
/// happen once, outside the timed region).
///
/// # Panics
///
/// Panics when the simulation errors.
pub fn run_predecoded(
    kernel: &CompiledKernel,
    config: &SimConfig,
    prog: &Arc<PredecodedKernel>,
) -> SimResult {
    let mut config = *config;
    if !config.sanitize.is_on() {
        config.sanitize = sanitize_level();
    }
    simulate_predecoded(kernel, &config, prog).unwrap_or_else(|e| panic!("simulation failed: {e}"))
}

/// Converts an SM's statistics into energy-model activity counts.
pub fn rf_activity(stats: &SimStats) -> RfActivity {
    RfActivity {
        cycles: stats.cycles,
        rf_reads: stats.regfile.rf_reads,
        rf_writes: stats.regfile.rf_writes,
        renaming_lookups: stats.renaming.lookups,
        renaming_updates: stats.renaming.updates,
        flag_fetch_decodes: stats.meta_decoded,
        flag_cache_probes: stats.flag_cache.probes(),
        subarray_on_cycles: stats.subarray_on_cycles,
    }
}

/// The four machine configurations the evaluation compares.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Machine {
    /// Conventional 128 KB file, no virtualization.
    Conventional,
    /// 128 KB file with full virtualization (+ power gating).
    Full128,
    /// GPU-shrink: 64 KB file with full virtualization.
    Shrink64,
    /// Hardware-only renaming \[46\] on the 128 KB file.
    HardwareOnly,
}

impl Machine {
    /// The simulator configuration for this machine.
    pub fn config(self) -> SimConfig {
        match self {
            Machine::Conventional => SimConfig::conventional(),
            Machine::Full128 => SimConfig::baseline_full(),
            Machine::Shrink64 => SimConfig::gpu_shrink(50),
            Machine::HardwareOnly => {
                let mut c = SimConfig::baseline_full();
                c.regfile.policy = VirtualizationPolicy::HardwareOnly;
                c
            }
        }
    }

    /// The binary this machine executes (with or without metadata).
    pub fn compile(self, w: &Workload) -> CompiledKernel {
        match self {
            Machine::Conventional | Machine::HardwareOnly => compile_plain(w),
            Machine::Full128 | Machine::Shrink64 => compile_full(w),
        }
    }

    /// Compile + run in one step.
    pub fn run(self, w: &Workload) -> SimResult {
        run(&self.compile(w), &self.config())
    }
}

/// Named machine configurations shared by the `rfvsim` CLI and the
/// `rfvd` daemon: the four evaluated machines plus the extra shrink
/// points the CLI exposes. `None` for an unknown name — callers turn
/// that into a usage error or a typed protocol error.
pub fn machine_config(name: &str) -> Option<SimConfig> {
    Some(match name {
        "conventional" => SimConfig::conventional(),
        "full" => SimConfig::baseline_full(),
        "shrink50" => SimConfig::gpu_shrink(50),
        "shrink60" => SimConfig::gpu_shrink(60),
        "shrink75" => SimConfig::gpu_shrink(75),
        "hwonly" => {
            let mut c = SimConfig::baseline_full();
            c.regfile.policy = VirtualizationPolicy::HardwareOnly;
            c
        }
        _ => return None,
    })
}

/// The machine names [`machine_config`] accepts, for usage/help text.
pub const MACHINE_NAMES: [&str; 6] = [
    "conventional",
    "full",
    "shrink50",
    "shrink60",
    "shrink75",
    "hwonly",
];

/// Theoretical conventional register allocation per SM at the
/// workload's declared occupancy (what Figure 10 normalizes against).
pub fn conventional_alloc(w: &Workload) -> usize {
    let launch = w.kernel.launch();
    w.kernel.num_regs() * launch.warps_per_cta() as usize * launch.max_conc_ctas_per_sm() as usize
}
