//! Compiler analysis edge cases: multi-exit loops, nested loops,
//! unreachable code, spill interactions with control flow, and the
//! max-held bound.

use rfv_compiler::{
    compile, spill_to_cap, Cfg, CompileOptions, DivergenceRegions, Liveness, PostDominators,
    RegSet, ReleasePoints, Uniformity,
};
use rfv_isa::prelude::*;
use rfv_isa::{ArchReg as R, PredGuard, Special};

fn build(f: impl FnOnce(&mut KernelBuilder)) -> Kernel {
    let mut b = KernelBuilder::new("edge");
    f(&mut b);
    b.build(LaunchConfig::new(2, 64, 2)).unwrap()
}

fn release_points(kernel: &Kernel) -> (Cfg, ReleasePoints) {
    let cfg = Cfg::build(kernel).unwrap();
    let lv = Liveness::compute(&cfg);
    let pd = PostDominators::compute(&cfg);
    let uni = Uniformity::compute(cfg.instrs());
    let dr = DivergenceRegions::compute(&cfg, &pd, &uni);
    let all: RegSet = R::all().collect();
    let rp = ReleasePoints::compute(&cfg, &lv, &dr, all);
    (cfg, rp)
}

#[test]
fn loop_with_break_style_exit() {
    // a uniform loop with an early-exit branch in the middle of the
    // body: two exits reaching the same block
    let k = build(|b| {
        b.mov(R::R0, 16);
        b.mov(R::R1, 0);
        b.label("top");
        b.iadd(R::R1, R::R1, 3);
        b.isetp(Cond::Gt, Pred::P1, R::R1, Operand::Imm(30));
        b.guard(PredGuard::if_true(Pred::P1));
        b.bra("out"); // early exit
        b.iadd(R::R0, R::R0, -1);
        b.isetp(Cond::Gt, Pred::P0, R::R0, Operand::Imm(0));
        b.guard(PredGuard::if_true(Pred::P0));
        b.bra("top");
        b.label("out");
        b.stg(R::R2, R::R1, 0);
        b.exit();
    });
    let ck = compile(&k, &CompileOptions::default()).unwrap();
    assert!(ck.stats().num_pir + ck.stats().num_pbr > 0);
    // r0 (the counter) is dead at "out": must be released there or
    // earlier, never kept forever
    let (cfg, rp) = release_points(&k);
    let sites = rp.release_sites_of(&cfg, R::R0);
    assert!(!sites.is_empty(), "loop counter must have a release site");
}

#[test]
fn nested_uniform_loops_release_inner_temporaries() {
    let k = build(|b| {
        b.mov(R::R0, 4); // outer counter
        b.label("outer");
        b.mov(R::R1, 4); // inner counter
        b.label("inner");
        b.mov(R::R2, 7); // inner temporary: dead within the iteration
        b.stg(R::R3, R::R2, 0);
        b.iadd(R::R1, R::R1, -1);
        b.isetp(Cond::Gt, Pred::P0, R::R1, Operand::Imm(0));
        b.guard(PredGuard::if_true(Pred::P0));
        b.bra("inner");
        b.iadd(R::R0, R::R0, -1);
        b.isetp(Cond::Gt, Pred::P0, R::R0, Operand::Imm(0));
        b.guard(PredGuard::if_true(Pred::P0));
        b.bra("outer");
        b.exit();
    });
    let (cfg, rp) = release_points(&k);
    // r2's value dies at the STG inside the innermost (uniform) loop
    let sites = rp.release_sites_of(&cfg, R::R2);
    assert!(
        sites
            .iter()
            .any(|&pc| cfg.instrs()[pc].opcode == rfv_isa::Opcode::Stg),
        "inner temporary must release at its in-loop read, got {sites:?}"
    );
}

#[test]
fn divergent_region_nested_in_uniform_loop() {
    let k = build(|b| {
        b.s2r(R::R4, Special::TidX);
        b.mov(R::R0, 4);
        b.label("top");
        b.mov(R::R2, 9); // consumed inside the divergent arm
        b.isetp(Cond::Lt, Pred::P1, R::R4, Operand::Imm(16));
        b.guard(PredGuard::if_false(Pred::P1));
        b.bra("skip");
        b.stg(R::R3, R::R2, 0);
        b.label("skip");
        b.iadd(R::R0, R::R0, -1);
        b.isetp(Cond::Gt, Pred::P0, R::R0, Operand::Imm(0));
        b.guard(PredGuard::if_true(Pred::P0));
        b.bra("top");
        b.exit();
    });
    let (cfg, rp) = release_points(&k);
    // the STG's read of r2 is inside a divergence region: no pir there
    let stg_pc = cfg
        .instrs()
        .iter()
        .position(|i| i.opcode == rfv_isa::Opcode::Stg)
        .unwrap();
    assert!(!rp.pir_flags(stg_pc).any(), "no release under divergence");
    // r2 still gets released at the reconvergence ("skip") block
    let sites = rp.release_sites_of(&cfg, R::R2);
    assert!(!sites.is_empty(), "r2 must release at reconvergence");
}

#[test]
fn spill_preserves_semantics_through_branches() {
    // a branchy kernel before/after spilling computes identical values
    use rfv_sim::{simulate, SimConfig};
    let k = build(|b| {
        b.s2r(R::new(0), Special::TidX);
        for i in 1..20u8 {
            b.iadd(R::new(i), R::new(i - 1), i as i32);
        }
        b.isetp(Cond::Lt, Pred::P0, R::new(0), Operand::Imm(16));
        b.guard(PredGuard::if_false(Pred::P0));
        b.bra("else");
        b.iadd(R::new(19), R::new(19), 1000);
        b.bra("join");
        b.label("else");
        b.iadd(R::new(19), R::new(19), 2000);
        b.label("join");
        b.shl(R::new(1), R::new(0), 2);
        b.stg(R::new(1), R::new(19), 0x7000);
        b.exit();
    });
    let spilled = spill_to_cap(&k, 10).unwrap();
    assert!(spilled.num_spilled > 0);
    let plain = CompileOptions {
        table_budget_bytes: 0,
    };
    let base = simulate(&compile(&k, &plain).unwrap(), &SimConfig::conventional()).unwrap();
    let after = simulate(
        &compile(&spilled.kernel, &plain).unwrap(),
        &SimConfig::conventional(),
    )
    .unwrap();
    for tid in 0..64u64 {
        assert_eq!(
            base.memories[0].peek_word(0x7000 + tid * 4),
            after.memories[0].peek_word(0x7000 + tid * 4),
            "tid {tid}"
        );
    }
    assert!(
        after.cycles > base.cycles,
        "spilling must cost cycles: {} vs {}",
        after.cycles,
        base.cycles
    );
}

#[test]
fn max_held_bound_is_respected_at_runtime() {
    use rfv_sim::{simulate, SimConfig};
    // the runtime peak dynamic holding of one warp can never exceed
    // the compiler's max-held bound; with 1 CTA of 1 warp we can check
    // the SM-wide peak against it
    let k = {
        let mut b = KernelBuilder::new("held");
        b.s2r(R::new(0), Special::TidX);
        for i in 1..24u8 {
            b.iadd(R::new(i), R::new(i - 1), 1);
        }
        // consume everything so registers stay live to this point
        for i in 1..24u8 {
            b.iadd(R::new(0), R::new(0), Operand::Reg(R::new(i)));
        }
        b.stg(R::new(1), R::new(0), 0);
        b.exit();
        b.build(LaunchConfig::new(1, 32, 1)).unwrap()
    };
    let ck = compile(&k, &CompileOptions::default()).unwrap();
    let r = simulate(&ck, &SimConfig::baseline_full()).unwrap();
    assert!(
        r.sm0().regfile.peak_live <= ck.max_held_per_warp(),
        "runtime peak {} exceeded the compiler bound {}",
        r.sm0().regfile.peak_live,
        ck.max_held_per_warp()
    );
}

#[test]
fn unreachable_code_does_not_break_compilation() {
    // code after an unconditional branch that nothing targets
    let k = build(|b| {
        b.mov(R::R0, 1);
        b.bra("end");
        b.iadd(R::R1, R::R0, 1); // unreachable
        b.stg(R::R1, R::R1, 0); // unreachable
        b.label("end");
        b.stg(R::R0, R::R0, 0);
        b.exit();
    });
    let ck = compile(&k, &CompileOptions::default()).unwrap();
    assert!(ck.kernel().len() >= k.len());
}

#[test]
fn empty_arm_diamond() {
    // if-without-else on a divergent condition
    let k = build(|b| {
        b.s2r(R::R0, Special::TidX);
        b.mov(R::R1, 5);
        b.isetp(Cond::Lt, Pred::P0, R::R0, Operand::Imm(7));
        b.guard(PredGuard::if_false(Pred::P0));
        b.bra("join");
        b.stg(R::R2, R::R1, 0); // then-arm only
        b.label("join");
        b.exit();
    });
    let (cfg, rp) = release_points(&k);
    // r1 read only in the arm; released at the join
    let join = cfg.block_of(cfg.instrs().len() - 1);
    assert!(rp.pbr_regs(join).contains(&R::R1));
}

#[test]
fn more_than_nine_deaths_split_across_pbrs() {
    // twelve registers read only inside a divergent arm die at the
    // join: one pbr holds at most nine ids, so two must be emitted
    let k = build(|b| {
        b.s2r(R::new(0), Special::TidX);
        for i in 1..=12u8 {
            b.mov(R::new(i), i as i32);
        }
        b.isetp(Cond::Lt, Pred::P0, R::new(0), Operand::Imm(16));
        b.guard(PredGuard::if_false(Pred::P0));
        b.bra("join");
        for i in 1..=12u8 {
            b.stg(R::new(13), R::new(i), 4 * i as i32);
        }
        b.label("join");
        b.exit();
    });
    let ck = compile(&k, &CompileOptions::default()).unwrap();
    assert!(
        ck.stats().num_pbr >= 2,
        "12 dying registers need at least two pbrs, got {}",
        ck.stats().num_pbr
    );
    // every pbr carries at most nine registers by construction
    for item in ck.kernel().items() {
        if let rfv_isa::kernel::ProgItem::Pbr(p) = item {
            assert!(p.len() <= 9);
        }
    }
}

#[test]
fn pir_windows_cover_long_blocks() {
    // a 40-instruction basic block with releases throughout needs a
    // pir every 18 instructions (three windows)
    let k = build(|b| {
        for _ in 0..20 {
            b.mov(R::R0, 1);
            b.stg(R::R1, R::R0, 0);
        }
        b.exit();
    });
    let ck = compile(&k, &CompileOptions::default()).unwrap();
    assert_eq!(ck.stats().num_pir, 3, "41 instructions = 3 pir windows");
}

#[test]
fn avg_regs_per_pbr_is_paper_scale() {
    // the paper quotes ~2 registers per pbr on average; our suite
    // should be in the low single digits
    let mut total = 0.0;
    let mut n = 0;
    for w in rfv_workloads::suite::all() {
        let ck = compile(&w.kernel, &CompileOptions::default()).unwrap();
        if ck.stats().num_pbr > 0 {
            total += ck.stats().avg_regs_per_pbr;
            n += 1;
        }
    }
    let avg = total / n as f64;
    assert!(
        (1.0..=6.0).contains(&avg),
        "average registers per pbr {avg:.2} out of the paper's scale"
    );
}
