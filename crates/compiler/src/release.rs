//! Register release-point analysis — the heart of the paper's
//! compiler support (§6.1, Figure 4).
//!
//! Two kinds of release points are computed:
//!
//! * **`pir` releases** — at a read of register `r` in a *convergent*
//!   block, `r` is released when thread-level liveness proves it dead
//!   immediately after the read (cases (a) and (e) of Figure 4, the
//!   latter recovered for uniform loops by the uniformity analysis).
//! * **`pbr` releases** — registers that die inside a divergence
//!   region are conservatively released at the region's reconvergence
//!   point (cases (b), (c) and (d) of Figure 4). Only *convergent*
//!   reconvergence blocks emit `pbr`s; deaths inside nested regions
//!   defer to the outermost convergent reconvergence.
//!
//! The analysis can be restricted to a set of *releasable* registers:
//! the renaming-candidate selection (§6.2) exempts long-lived
//! registers, and exempted registers must never be released.

use std::collections::BTreeMap;

use rfv_isa::meta::PBR_CAPACITY;
use rfv_isa::{ArchReg, ReleaseFlags};

use crate::cfg::{BlockId, Cfg};
use crate::liveness::{Liveness, RegSet};
use crate::regions::DivergenceRegions;

/// Computed release points for one kernel, in *original* (pre-flag-
/// insertion) instruction indices.
#[derive(Clone, Debug, Default)]
pub struct ReleasePoints {
    /// Per-instruction release flags (original pc → flags); absent
    /// entries release nothing.
    pir: BTreeMap<usize, ReleaseFlags>,
    /// Registers released at the start of a block (reconvergence
    /// point), ordered by register id.
    pbr: BTreeMap<BlockId, Vec<ArchReg>>,
}

impl ReleasePoints {
    /// Computes release points for every register in `releasable`.
    pub fn compute(
        cfg: &Cfg,
        liveness: &Liveness,
        regions: &DivergenceRegions,
        releasable: RegSet,
    ) -> ReleasePoints {
        let mut pir: BTreeMap<usize, ReleaseFlags> = BTreeMap::new();
        let mut pbr: BTreeMap<BlockId, RegSet> = BTreeMap::new();

        // --- pir: last reads in convergent blocks ---
        for (bi, block) in cfg.blocks().iter().enumerate() {
            if regions.is_divergent(BlockId(bi)) {
                continue;
            }
            for pc in block.range() {
                let instr = &cfg.instrs()[pc];
                let live_out = liveness.live_out_at(pc);
                let mut flags = ReleaseFlags::NONE;
                let mut flagged = RegSet::EMPTY;
                for (slot, r) in instr.src_regs() {
                    if !releasable.contains(r) || live_out.contains(r) {
                        continue;
                    }
                    // the destination keeps its mapping; a release of a
                    // register that is also being redefined here is
                    // unnecessary (the new value reuses the mapping)
                    if instr.dst == Some(r) {
                        continue;
                    }
                    // flag each dying register once even when it
                    // occupies several operand slots
                    if flagged.insert(r) {
                        flags.set(slot);
                    }
                }
                if flags.any() {
                    pir.insert(pc, flags);
                }
            }
        }

        // --- pbr: deaths inside divergence regions, released at the
        //     region's convergent reconvergence point ---
        for (branch, reconv) in regions.divergent_branches() {
            let Some(r_block) = reconv else {
                // reconverges only at program end; CTA completion
                // releases everything anyway
                continue;
            };
            if regions.is_divergent(r_block) {
                // nested region: defer to the outer reconvergence
                continue;
            }
            // registers live at the branch, or defined inside the
            // region, that are dead when the region reconverges
            let mut live_in_region = liveness.live_out(branch);
            for &member in regions.region_blocks(branch) {
                for pc in cfg.block(member).range() {
                    live_in_region.extend(cfg.instrs()[pc].writes());
                }
            }
            let dead_at_reconv = live_in_region
                .difference(liveness.live_in(r_block))
                .intersection(releasable);
            if !dead_at_reconv.is_empty() {
                let entry = pbr.entry(r_block).or_default();
                *entry = entry.union(dead_at_reconv);
            }
        }

        // --- pbr: death edges into convergent blocks (Figure 4(d):
        //     a register used across loop iterations is released when
        //     the loop completes). A register live out of a branching
        //     predecessor but dead on entry to a convergent successor
        //     dies on that edge; the successor's pbr reclaims it. The
        //     common case is the exit block of a uniform loop, whose
        //     loop-carried registers otherwise never release.
        for (bi, block) in cfg.blocks().iter().enumerate() {
            let b = BlockId(bi);
            if regions.is_divergent(b) || block.preds.is_empty() {
                continue;
            }
            let mut incoming = RegSet::EMPTY;
            for p in &block.preds {
                incoming = incoming.union(liveness.live_out(*p));
            }
            let dead = incoming
                .difference(liveness.live_in(b))
                .intersection(releasable);
            if !dead.is_empty() {
                let entry = pbr.entry(b).or_default();
                *entry = entry.union(dead);
            }
        }

        ReleasePoints {
            pir,
            pbr: pbr
                .into_iter()
                .map(|(b, set)| (b, set.iter().collect()))
                .collect(),
        }
    }

    /// The release flags attached to original instruction `pc`.
    pub fn pir_flags(&self, pc: usize) -> ReleaseFlags {
        self.pir.get(&pc).copied().unwrap_or(ReleaseFlags::NONE)
    }

    /// All instructions carrying a `pir` flag.
    pub fn pir_sites(&self) -> impl Iterator<Item = (usize, ReleaseFlags)> + '_ {
        self.pir.iter().map(|(&pc, &f)| (pc, f))
    }

    /// Registers released at the start of block `b`.
    pub fn pbr_regs(&self, b: BlockId) -> &[ArchReg] {
        self.pbr.get(&b).map_or(&[], |v| v.as_slice())
    }

    /// All blocks carrying `pbr` releases.
    pub fn pbr_sites(&self) -> impl Iterator<Item = (BlockId, &[ArchReg])> + '_ {
        self.pbr.iter().map(|(&b, v)| (b, v.as_slice()))
    }

    /// Total number of `pir` release bits.
    pub fn num_pir_releases(&self) -> usize {
        self.pir
            .values()
            .map(|f| f.bits().count_ones() as usize)
            .sum()
    }

    /// Total number of registers released via `pbr`, and the number of
    /// `pbr` instructions needed (each carries at most nine registers).
    pub fn pbr_totals(&self) -> (usize, usize) {
        let regs: usize = self.pbr.values().map(Vec::len).sum();
        let instrs: usize = self
            .pbr
            .values()
            .map(|v| v.len().div_ceil(PBR_CAPACITY))
            .sum();
        (regs, instrs)
    }

    /// The set of registers that have at least one release point.
    ///
    /// Registers outside this set would never be released by the
    /// hardware; renaming them is pointless (candidate selection
    /// exempts them for free). Needs the CFG to map `pir` operand
    /// slots back to register ids.
    pub fn released_regs_with(&self, cfg: &Cfg) -> RegSet {
        let mut set = RegSet::EMPTY;
        for (&pc, &flags) in &self.pir {
            for (slot, r) in cfg.instrs()[pc].src_regs() {
                if flags.releases(slot) {
                    set.insert(r);
                }
            }
        }
        set.extend(self.pbr.values().flatten().copied());
        set
    }

    /// Upper-bounds the number of *renamed* registers one warp can
    /// hold concurrently (allocated at first write, freed at a
    /// `pir`/`pbr` release), by a forward union-meet dataflow over the
    /// held set.
    ///
    /// GPU-shrink's CTA throttle uses `this + |exempt|` as the
    /// per-warp worst case (§8.1: "the maximum number of registers
    /// required for executing a CTA can be obtained from the GPU
    /// compiler") — far tighter than the architected register count
    /// once dead registers release early.
    pub fn max_held(&self, cfg: &Cfg, renamed: RegSet) -> usize {
        self.held_profile(cfg, renamed)
            .into_iter()
            .max()
            .unwrap_or(0)
    }

    /// Per-instruction register-pressure profile: for each original
    /// PC, the worst-case number of *renamed* registers held at that
    /// point over any path reaching it (the max-over-paths dataflow
    /// behind [`ReleasePoints::max_held`]).
    pub fn held_profile(&self, cfg: &Cfg, renamed: RegSet) -> Vec<usize> {
        let nblocks = cfg.num_blocks();
        let mut held_out = vec![RegSet::EMPTY; nblocks];
        let mut profile = vec![0usize; cfg.instrs().len()];
        let mut changed = true;
        while changed {
            changed = false;
            for &b in &cfg.reverse_post_order() {
                let bi = b.0;
                let mut inn = RegSet::EMPTY;
                for p in &cfg.block(b).preds {
                    inn = inn.union(held_out[p.0]);
                }
                // pbr releases fire at the block head
                for &r in self.pbr_regs(b) {
                    inn.remove(r);
                }
                let mut held = inn;
                for pc in cfg.block(b).range() {
                    let instr = &cfg.instrs()[pc];
                    // the destination is allocated before the sources
                    // release, so the transient point counts both
                    if let Some(d) = instr.writes() {
                        if renamed.contains(d) {
                            held.insert(d);
                        }
                    }
                    profile[pc] = profile[pc].max(held.len());
                    let flags = self.pir_flags(pc);
                    if flags.any() {
                        for (slot, r) in instr.src_regs() {
                            if flags.releases(slot) {
                                held.remove(r);
                            }
                        }
                    }
                }
                if held != held_out[bi] {
                    held_out[bi] = held;
                    changed = true;
                }
            }
        }
        profile
    }

    /// For lifetime estimation: all release sites of register `r`, as
    /// original instruction indices (`pbr` sites use the first
    /// instruction of their block).
    pub fn release_sites_of(&self, cfg: &Cfg, r: ArchReg) -> Vec<usize> {
        let mut sites = Vec::new();
        for (&pc, &flags) in &self.pir {
            for (slot, reg) in cfg.instrs()[pc].src_regs() {
                if reg == r && flags.releases(slot) {
                    sites.push(pc);
                }
            }
        }
        for (&b, regs) in &self.pbr {
            if regs.contains(&r) {
                sites.push(cfg.block(b).start);
            }
        }
        sites.sort_unstable();
        sites
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dom::PostDominators;
    use crate::uniform::Uniformity;
    use rfv_isa::prelude::*;
    use rfv_isa::{PredGuard, Special};

    fn analyze(f: impl FnOnce(&mut KernelBuilder)) -> (Cfg, ReleasePoints) {
        let mut b = KernelBuilder::new("t");
        f(&mut b);
        let k = b.build(LaunchConfig::new(1, 32, 1)).unwrap();
        let cfg = Cfg::build(&k).unwrap();
        let lv = Liveness::compute(&cfg);
        let pd = PostDominators::compute(&cfg);
        let uni = Uniformity::compute(cfg.instrs());
        let dr = DivergenceRegions::compute(&cfg, &pd, &uni);
        let all: RegSet = ArchReg::all().collect();
        let rp = ReleasePoints::compute(&cfg, &lv, &dr, all);
        (cfg, rp)
    }

    #[test]
    fn straight_line_last_read_released() {
        let (_, rp) = analyze(|b| {
            b.mov(ArchReg::R0, 1); // pc 0
            b.iadd(ArchReg::R1, ArchReg::R0, 1); // pc 1: last read of r0
            b.stg(ArchReg::R2, ArchReg::R1, 0); // pc 2: last read of r1, r2
            b.exit();
        });
        assert!(rp.pir_flags(1).releases(0), "r0 dies at its read in pc 1");
        // pc 2 reads r2 (slot 0, addr) and r1 (slot 1, data); both die
        assert!(rp.pir_flags(2).releases(0));
        assert!(rp.pir_flags(2).releases(1));
    }

    #[test]
    fn redefined_register_not_released_at_its_own_redefinition() {
        let (_, rp) = analyze(|b| {
            b.mov(ArchReg::R0, 1);
            b.iadd(ArchReg::R0, ArchReg::R0, 1); // src == dst: keep mapping
            b.stg(ArchReg::R1, ArchReg::R0, 0);
            b.exit();
        });
        assert!(!rp.pir_flags(1).any(), "no release when src is also dst");
    }

    #[test]
    fn divergent_arm_reads_deferred_to_pbr_at_join() {
        let (cfg, rp) = analyze(|b| {
            b.s2r(ArchReg::R0, Special::TidX); // pc 0
            b.mov(ArchReg::R2, 7); // pc 1: r2 read in both arms
            b.isetp(Cond::Lt, Pred::P0, ArchReg::R0, Operand::Imm(16)); // pc 2
            b.guard(PredGuard::if_false(Pred::P0));
            b.bra("else"); // pc 3
            b.iadd(ArchReg::R1, ArchReg::R2, 1); // pc 4: then
            b.bra("join"); // pc 5
            b.label("else");
            b.iadd(ArchReg::R1, ArchReg::R2, 2); // pc 6: else
            b.label("join");
            b.stg(ArchReg::R0, ArchReg::R1, 0); // pc 7
            b.exit();
        });
        // the reads of r2 inside the arms must NOT carry pir flags
        assert!(!rp.pir_flags(4).any());
        assert!(!rp.pir_flags(6).any());
        // instead r2 is released by pbr at the join block
        let join = cfg.block_of(7);
        assert_eq!(rp.pbr_regs(join), &[ArchReg::R2]);
    }

    #[test]
    fn register_defined_in_region_dead_at_join_released_by_pbr() {
        let (cfg, rp) = analyze(|b| {
            b.s2r(ArchReg::R0, Special::TidX);
            b.isetp(Cond::Lt, Pred::P0, ArchReg::R0, Operand::Imm(16));
            b.guard(PredGuard::if_false(Pred::P0));
            b.bra("join");
            // then-only block defines and uses r3
            b.iadd(ArchReg::R3, ArchReg::R0, 5);
            b.stg(ArchReg::R0, ArchReg::R3, 0);
            b.label("join");
            b.exit();
        });
        let join = cfg.block_of(cfg.instrs().len() - 1);
        assert!(rp.pbr_regs(join).contains(&ArchReg::R3));
    }

    #[test]
    fn uniform_loop_releases_inside_body() {
        // Figure 4(e): no loop-carried dependence; uniform trip count
        let (_, rp) = analyze(|b| {
            b.mov(ArchReg::R0, 8); // counter (uniform)
            b.mov(ArchReg::R2, 0x100); // base addr
            b.label("top");
            b.ldg(ArchReg::R1, ArchReg::R2, 0); // pc 2: r1 fresh each iter
            b.stg(ArchReg::R2, ArchReg::R1, 4); // pc 3: last read of r1
            b.iadd(ArchReg::R0, ArchReg::R0, -1); // pc 4
            b.isetp(Cond::Gt, Pred::P0, ArchReg::R0, Operand::Imm(0)); // pc 5
            b.guard(PredGuard::if_true(Pred::P0));
            b.bra("top"); // pc 6
            b.exit();
        });
        // r1 dies at pc 3 (slot 1 = data operand) inside the uniform loop
        assert!(rp.pir_flags(3).releases(1), "in-loop release of r1");
    }

    #[test]
    fn loop_carried_register_not_released_in_body() {
        let (_, rp) = analyze(|b| {
            b.mov(ArchReg::R0, 8);
            b.mov(ArchReg::R1, 0);
            b.label("top");
            b.iadd(ArchReg::R1, ArchReg::R1, 1); // loop-carried
            b.iadd(ArchReg::R0, ArchReg::R0, -1);
            b.isetp(Cond::Gt, Pred::P0, ArchReg::R0, Operand::Imm(0));
            b.guard(PredGuard::if_true(Pred::P0));
            b.bra("top");
            b.stg(ArchReg::R0, ArchReg::R1, 0); // final read after loop
            b.exit();
        });
        for pc in 2..=5 {
            {
                let (slot, r) = (0usize, ArchReg::R1);
                let _ = r;
                if pc == 2 {
                    assert!(
                        !rp.pir_flags(pc).releases(slot),
                        "loop-carried r1 must not be released in the body"
                    );
                }
            }
        }
        // after the loop the STG reads r0 (addr) and r1 (data): both die
        assert!(rp.pir_flags(6).releases(0));
        assert!(rp.pir_flags(6).releases(1));
    }

    #[test]
    fn loop_carried_register_released_at_uniform_loop_exit() {
        // Figure 4(d): r1 is carried around a uniform loop and never
        // read after it — its release point is the loop exit block
        let (cfg, rp) = analyze(|b| {
            b.mov(ArchReg::R0, 8);
            b.mov(ArchReg::R1, 0);
            b.label("top");
            b.iadd(ArchReg::R1, ArchReg::R1, 1); // loop-carried, dead after
            b.iadd(ArchReg::R0, ArchReg::R0, -1);
            b.isetp(Cond::Gt, Pred::P0, ArchReg::R0, Operand::Imm(0));
            b.guard(PredGuard::if_true(Pred::P0));
            b.bra("top");
            b.stg(ArchReg::R2, ArchReg::R0, 0); // r1 not read after the loop
            b.exit();
        });
        let exit_block = cfg.block_of(6);
        assert!(
            rp.pbr_regs(exit_block).contains(&ArchReg::R1),
            "loop-carried r1 must release at the loop exit, got {:?}",
            rp.pbr_regs(exit_block)
        );
        // and never inside the body
        for pc in 2..=5 {
            assert!(!rp.release_sites_of(&cfg, ArchReg::R1).contains(&pc));
        }
    }

    #[test]
    fn restriction_to_releasable_set() {
        let mut only_r0 = RegSet::EMPTY;
        only_r0.insert(ArchReg::R0);
        let mut b = KernelBuilder::new("t");
        b.mov(ArchReg::R0, 1);
        b.mov(ArchReg::R1, 2);
        b.iadd(ArchReg::R2, ArchReg::R0, Operand::Reg(ArchReg::R1));
        b.stg(ArchReg::R2, ArchReg::R2, 0);
        b.exit();
        let k = b.build(LaunchConfig::new(1, 32, 1)).unwrap();
        let cfg = Cfg::build(&k).unwrap();
        let lv = Liveness::compute(&cfg);
        let pd = PostDominators::compute(&cfg);
        let uni = Uniformity::compute(cfg.instrs());
        let dr = DivergenceRegions::compute(&cfg, &pd, &uni);
        let rp = ReleasePoints::compute(&cfg, &lv, &dr, only_r0);
        // pc 2 reads r0 (slot 0) and r1 (slot 1); only r0 is releasable
        assert!(rp.pir_flags(2).releases(0));
        assert!(!rp.pir_flags(2).releases(1));
        let released = rp.released_regs_with(&cfg);
        assert!(released.contains(ArchReg::R0));
        assert!(!released.contains(ArchReg::R1));
    }

    #[test]
    fn duplicate_operand_released_once() {
        let (_, rp) = analyze(|b| {
            b.mov(ArchReg::R0, 3);
            b.imul(ArchReg::R1, ArchReg::R0, Operand::Reg(ArchReg::R0)); // r0 * r0
            b.stg(ArchReg::R1, ArchReg::R1, 0);
            b.exit();
        });
        let f = rp.pir_flags(1);
        assert!(f.releases(0) ^ f.releases(1), "exactly one slot flagged");
    }

    #[test]
    fn release_sites_reported_for_lifetime_estimation() {
        let (cfg, rp) = analyze(|b| {
            b.mov(ArchReg::R0, 1); // def at 0
            b.iadd(ArchReg::R1, ArchReg::R0, 1); // release site of r0 at 1
            b.stg(ArchReg::R1, ArchReg::R1, 0);
            b.exit();
        });
        assert_eq!(rp.release_sites_of(&cfg, ArchReg::R0), vec![1]);
        assert_eq!(
            rp.num_pir_releases(),
            rp.pir_sites()
                .map(|(_, f)| f.bits().count_ones() as usize)
                .sum::<usize>()
        );
    }
}
