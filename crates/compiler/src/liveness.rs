//! Thread-level register liveness: a standard iterative backward
//! dataflow over the CFG, with per-instruction resolution.
//!
//! Guarded (predicated) definitions are *partial* writes — in a SIMT
//! machine they update only the lanes whose guard holds — so they do
//! not kill liveness.

use std::fmt;

use rfv_isa::{ArchReg, Instr, MAX_REGS_PER_THREAD};

use crate::cfg::{BlockId, Cfg};

/// A compact set of architected registers (bitmask over `r0..r62`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct RegSet(u64);

impl RegSet {
    /// The empty set.
    pub const EMPTY: RegSet = RegSet(0);

    /// Inserts a register; returns whether it was newly inserted.
    pub fn insert(&mut self, r: ArchReg) -> bool {
        let bit = 1u64 << r.index();
        let newly = self.0 & bit == 0;
        self.0 |= bit;
        newly
    }

    /// Removes a register.
    pub fn remove(&mut self, r: ArchReg) {
        self.0 &= !(1u64 << r.index());
    }

    /// Whether the set contains `r`.
    pub fn contains(&self, r: ArchReg) -> bool {
        self.0 & (1u64 << r.index()) != 0
    }

    /// Set union.
    pub fn union(self, other: RegSet) -> RegSet {
        RegSet(self.0 | other.0)
    }

    /// Set difference (`self \ other`).
    pub fn difference(self, other: RegSet) -> RegSet {
        RegSet(self.0 & !other.0)
    }

    /// Set intersection.
    pub fn intersection(self, other: RegSet) -> RegSet {
        RegSet(self.0 & other.0)
    }

    /// Number of registers in the set.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether the set is empty.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Iterates the registers in ascending id order.
    pub fn iter(self) -> impl Iterator<Item = ArchReg> {
        (0..MAX_REGS_PER_THREAD as u8)
            .filter(move |&i| self.0 & (1u64 << i) != 0)
            .map(ArchReg::new)
    }
}

impl FromIterator<ArchReg> for RegSet {
    fn from_iter<T: IntoIterator<Item = ArchReg>>(iter: T) -> RegSet {
        let mut s = RegSet::EMPTY;
        for r in iter {
            s.insert(r);
        }
        s
    }
}

impl Extend<ArchReg> for RegSet {
    fn extend<T: IntoIterator<Item = ArchReg>>(&mut self, iter: T) {
        for r in iter {
            self.insert(r);
        }
    }
}

impl fmt::Debug for RegSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

/// The registers an instruction reads.
pub fn uses(i: &Instr) -> RegSet {
    i.reads().collect()
}

/// The register an instruction *kills* (fully defines).
///
/// A guarded write is partial and kills nothing.
pub fn kill(i: &Instr) -> Option<ArchReg> {
    if i.guard.is_some() {
        None
    } else {
        i.dst
    }
}

/// The register an instruction defines (fully or partially).
pub fn def(i: &Instr) -> Option<ArchReg> {
    i.dst
}

/// Liveness facts for one kernel, at block and instruction
/// granularity.
#[derive(Clone, Debug)]
pub struct Liveness {
    block_in: Vec<RegSet>,
    block_out: Vec<RegSet>,
    /// `instr_out[pc]`: registers live immediately after instruction
    /// `pc`.
    instr_out: Vec<RegSet>,
    /// `instr_in[pc]`: registers live immediately before instruction
    /// `pc`.
    instr_in: Vec<RegSet>,
}

impl Liveness {
    /// Runs the dataflow to a fixpoint.
    pub fn compute(cfg: &Cfg) -> Liveness {
        let n = cfg.num_blocks();
        let instrs = cfg.instrs();

        // per-block use/def summaries
        let mut b_use = vec![RegSet::EMPTY; n];
        let mut b_def = vec![RegSet::EMPTY; n];
        for (bi, b) in cfg.blocks().iter().enumerate() {
            for pc in b.range() {
                let i = &instrs[pc];
                for r in uses(i).iter() {
                    if !b_def[bi].contains(r) {
                        b_use[bi].insert(r);
                    }
                }
                if let Some(d) = kill(i) {
                    b_def[bi].insert(d);
                } else if let Some(d) = def(i) {
                    // partial def: the old value flows through, so the
                    // register counts as used (upward exposed).
                    if !b_def[bi].contains(d) {
                        b_use[bi].insert(d);
                    }
                }
            }
        }

        let mut block_in = vec![RegSet::EMPTY; n];
        let mut block_out = vec![RegSet::EMPTY; n];
        let mut changed = true;
        while changed {
            changed = false;
            // backward problem: iterate blocks in reverse RPO
            for &b in cfg.reverse_post_order().iter().rev() {
                let bi = b.0;
                let mut out = RegSet::EMPTY;
                for s in &cfg.block(b).succs {
                    out = out.union(block_in[s.0]);
                }
                let inn = b_use[bi].union(out.difference(b_def[bi]));
                if out != block_out[bi] || inn != block_in[bi] {
                    block_out[bi] = out;
                    block_in[bi] = inn;
                    changed = true;
                }
            }
        }

        // per-instruction facts by walking each block backward
        let mut instr_out = vec![RegSet::EMPTY; instrs.len()];
        let mut instr_in = vec![RegSet::EMPTY; instrs.len()];
        for (bi, b) in cfg.blocks().iter().enumerate() {
            let mut live = block_out[bi];
            for pc in b.range().rev() {
                let i = &instrs[pc];
                instr_out[pc] = live;
                if let Some(d) = kill(i) {
                    live.remove(d);
                }
                live = live.union(uses(i));
                if i.guard.is_some() {
                    if let Some(d) = def(i) {
                        live.insert(d);
                    }
                }
                instr_in[pc] = live;
            }
        }

        Liveness {
            block_in,
            block_out,
            instr_out,
            instr_in,
        }
    }

    /// Registers live at entry to block `b`.
    pub fn live_in(&self, b: BlockId) -> RegSet {
        self.block_in[b.0]
    }

    /// Registers live at exit from block `b`.
    pub fn live_out(&self, b: BlockId) -> RegSet {
        self.block_out[b.0]
    }

    /// Registers live immediately after instruction `pc`.
    pub fn live_out_at(&self, pc: usize) -> RegSet {
        self.instr_out[pc]
    }

    /// Registers live immediately before instruction `pc`.
    pub fn live_in_at(&self, pc: usize) -> RegSet {
        self.instr_in[pc]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfv_isa::prelude::*;
    use rfv_isa::PredGuard;

    fn build(f: impl FnOnce(&mut KernelBuilder)) -> Cfg {
        let mut b = KernelBuilder::new("t");
        f(&mut b);
        Cfg::build(&b.build(LaunchConfig::new(1, 32, 1)).unwrap()).unwrap()
    }

    #[test]
    fn regset_basics() {
        let mut s = RegSet::EMPTY;
        assert!(s.is_empty());
        assert!(s.insert(ArchReg::R3));
        assert!(!s.insert(ArchReg::R3));
        s.insert(ArchReg::new(62));
        assert_eq!(s.len(), 2);
        assert!(s.contains(ArchReg::R3));
        s.remove(ArchReg::R3);
        assert!(!s.contains(ArchReg::R3));
        let t: RegSet = [ArchReg::R0, ArchReg::R1].into_iter().collect();
        assert_eq!(t.union(s).len(), 3);
        assert_eq!(t.difference(t), RegSet::EMPTY);
        assert_eq!(t.intersection(s), RegSet::EMPTY);
    }

    #[test]
    fn straight_line_death() {
        let cfg = build(|b| {
            b.mov(ArchReg::R0, 1); // pc 0
            b.iadd(ArchReg::R1, ArchReg::R0, 1); // pc 1: last read of r0
            b.iadd(ArchReg::R2, ArchReg::R1, 1); // pc 2
            b.exit(); // pc 3
        });
        let lv = Liveness::compute(&cfg);
        assert!(lv.live_out_at(0).contains(ArchReg::R0));
        assert!(!lv.live_out_at(1).contains(ArchReg::R0));
        assert!(lv.live_out_at(1).contains(ArchReg::R1));
        assert!(!lv.live_out_at(2).contains(ArchReg::R1));
        assert_eq!(lv.live_out_at(3), RegSet::EMPTY);
    }

    #[test]
    fn redefinition_splits_lifetimes() {
        let cfg = build(|b| {
            b.mov(ArchReg::R0, 1); // pc 0
            b.iadd(ArchReg::R1, ArchReg::R0, 1); // pc 1
            b.mov(ArchReg::R0, 2); // pc 2: redefine r0
            b.iadd(ArchReg::R2, ArchReg::R0, 1); // pc 3
            b.exit();
        });
        let lv = Liveness::compute(&cfg);
        assert!(
            !lv.live_out_at(1).contains(ArchReg::R0),
            "dead between uses"
        );
        assert!(lv.live_out_at(2).contains(ArchReg::R0));
    }

    #[test]
    fn branch_keeps_register_live_on_other_path() {
        let cfg = build(|b| {
            b.mov(ArchReg::R0, 1);
            b.isetp(Cond::Lt, Pred::P0, ArchReg::R0, Operand::Imm(5));
            b.guard(PredGuard::if_false(Pred::P0));
            b.bra("else");
            // then: reads r0
            b.iadd(ArchReg::R1, ArchReg::R0, 1);
            b.bra("join");
            b.label("else");
            // else: also reads r0
            b.iadd(ArchReg::R1, ArchReg::R0, 2);
            b.label("join");
            b.exit();
        });
        let lv = Liveness::compute(&cfg);
        // at end of bb0, r0 live (both arms read it)
        assert!(lv.live_out(BlockId(0)).contains(ArchReg::R0));
        // after the read in the THEN arm (pc 3), r0 is dead on that path
        assert!(!lv.live_out_at(3).contains(ArchReg::R0));
        // at the join, nothing is live except... r1 dead too (no reads)
        assert!(!lv.live_in(BlockId(3)).contains(ArchReg::R0));
    }

    #[test]
    fn loop_carried_register_stays_live() {
        let cfg = build(|b| {
            b.mov(ArchReg::R0, 8);
            b.mov(ArchReg::R1, 0);
            b.label("top");
            b.iadd(ArchReg::R1, ArchReg::R1, 1); // r1 loop-carried
            b.iadd(ArchReg::R0, ArchReg::R0, -1);
            b.isetp(Cond::Gt, Pred::P0, ArchReg::R0, Operand::Imm(0));
            b.guard(PredGuard::if_true(Pred::P0));
            b.bra("top");
            b.stg(ArchReg::R0, ArchReg::R1, 0);
            b.exit();
        });
        let lv = Liveness::compute(&cfg);
        // body block is bb1; r1 and r0 live around the backedge
        assert!(lv.live_out(BlockId(1)).contains(ArchReg::R1));
        assert!(lv.live_out(BlockId(1)).contains(ArchReg::R0));
    }

    #[test]
    fn guarded_write_does_not_kill() {
        let cfg = build(|b| {
            b.mov(ArchReg::R0, 1); // pc 0
            b.isetp(Cond::Lt, Pred::P0, ArchReg::R0, Operand::Imm(5)); // pc 1
            b.guard(PredGuard::if_true(Pred::P0));
            b.mov(ArchReg::R0, 2); // pc 2: partial write
            b.stg(ArchReg::R1, ArchReg::R0, 0); // pc 3: read
            b.exit();
        });
        let lv = Liveness::compute(&cfg);
        // the partial write must not end the previous value's liveness
        assert!(lv.live_in_at(2).contains(ArchReg::R0));
        assert!(lv.live_out_at(1).contains(ArchReg::R0));
    }

    #[test]
    fn store_reads_both_addr_and_data() {
        let cfg = build(|b| {
            b.mov(ArchReg::R0, 0);
            b.mov(ArchReg::R1, 7);
            b.stg(ArchReg::R0, ArchReg::R1, 0);
            b.exit();
        });
        let lv = Liveness::compute(&cfg);
        assert!(lv.live_in_at(2).contains(ArchReg::R0));
        assert!(lv.live_in_at(2).contains(ArchReg::R1));
    }
}
