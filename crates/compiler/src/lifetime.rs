//! Static register-lifetime statistics.
//!
//! These drive the renaming-candidate selection (§6.2): the compiler
//! estimates each register's *value lifetime* (instructions between a
//! write and the next release point) and its number of *value
//! instances* (definitions), preferring to rename registers with short
//! lifetimes and few instances.

use rfv_isa::ArchReg;

use crate::cfg::Cfg;
use crate::liveness::Liveness;
use crate::release::ReleasePoints;

/// Lifetime statistics for one architected register.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct RegLifetime {
    /// The register.
    pub reg: ArchReg,
    /// Number of static definitions (value instances).
    pub num_defs: usize,
    /// Number of instructions at which the register is live-in.
    pub live_instrs: usize,
    /// Estimated lifetime per value instance, in instructions.
    pub avg_lifetime: f64,
    /// Number of static release sites (`pir` flags + `pbr` listings).
    pub num_release_sites: usize,
}

/// Lifetime statistics for every register a kernel uses.
#[derive(Clone, Debug)]
pub struct LifetimeStats {
    per_reg: Vec<RegLifetime>,
}

impl LifetimeStats {
    /// Computes lifetime statistics from liveness facts and
    /// (unrestricted) release points.
    pub fn analyze(cfg: &Cfg, liveness: &Liveness, release: &ReleasePoints) -> LifetimeStats {
        let mut defs = [0usize; rfv_isa::MAX_REGS_PER_THREAD];
        let mut used = [false; rfv_isa::MAX_REGS_PER_THREAD];
        for i in cfg.instrs() {
            if let Some(d) = i.dst {
                defs[d.index()] += 1;
                used[d.index()] = true;
            }
            for r in i.reads() {
                used[r.index()] = true;
            }
        }
        let mut live = [0usize; rfv_isa::MAX_REGS_PER_THREAD];
        for pc in 0..cfg.instrs().len() {
            for r in liveness.live_in_at(pc).iter() {
                live[r.index()] += 1;
            }
        }
        let per_reg = ArchReg::all()
            .filter(|r| used[r.index()])
            .map(|reg| {
                let num_defs = defs[reg.index()];
                let live_instrs = live[reg.index()];
                RegLifetime {
                    reg,
                    num_defs,
                    live_instrs,
                    avg_lifetime: live_instrs as f64 / num_defs.max(1) as f64,
                    num_release_sites: release.release_sites_of(cfg, reg).len(),
                }
            })
            .collect();
        LifetimeStats { per_reg }
    }

    /// Statistics per used register, ordered by register id.
    pub fn per_reg(&self) -> &[RegLifetime] {
        &self.per_reg
    }

    /// Statistics for one register, if it is used.
    pub fn of(&self, reg: ArchReg) -> Option<&RegLifetime> {
        self.per_reg.iter().find(|l| l.reg == reg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dom::PostDominators;
    use crate::liveness::RegSet;
    use crate::regions::DivergenceRegions;
    use crate::uniform::Uniformity;
    use rfv_isa::prelude::*;

    fn stats(f: impl FnOnce(&mut KernelBuilder)) -> LifetimeStats {
        let mut b = KernelBuilder::new("t");
        f(&mut b);
        let k = b.build(LaunchConfig::new(1, 32, 1)).unwrap();
        let cfg = Cfg::build(&k).unwrap();
        let lv = Liveness::compute(&cfg);
        let pd = PostDominators::compute(&cfg);
        let uni = Uniformity::compute(cfg.instrs());
        let dr = DivergenceRegions::compute(&cfg, &pd, &uni);
        let all: RegSet = ArchReg::all().collect();
        let rp = ReleasePoints::compute(&cfg, &lv, &dr, all);
        LifetimeStats::analyze(&cfg, &lv, &rp)
    }

    #[test]
    fn long_vs_short_lifetime_distinguished() {
        let s = stats(|b| {
            b.mov(ArchReg::R0, 1); // long-lived: read at the very end
            b.mov(ArchReg::R1, 2); // short-lived: read immediately
            b.iadd(ArchReg::R2, ArchReg::R1, 3);
            b.iadd(ArchReg::R2, ArchReg::R2, 4);
            b.iadd(ArchReg::R2, ArchReg::R2, 5);
            b.stg(ArchReg::R2, ArchReg::R0, 0);
            b.exit();
        });
        let r0 = s.of(ArchReg::R0).unwrap();
        let r1 = s.of(ArchReg::R1).unwrap();
        assert!(r0.avg_lifetime > r1.avg_lifetime);
        assert_eq!(r0.num_defs, 1);
        assert_eq!(r1.num_release_sites, 1);
    }

    #[test]
    fn value_instances_counted() {
        let s = stats(|b| {
            b.mov(ArchReg::R0, 1);
            b.stg(ArchReg::R1, ArchReg::R0, 0);
            b.mov(ArchReg::R0, 2); // second instance
            b.stg(ArchReg::R1, ArchReg::R0, 4);
            b.exit();
        });
        assert_eq!(s.of(ArchReg::R0).unwrap().num_defs, 2);
        assert_eq!(s.of(ArchReg::R0).unwrap().num_release_sites, 2);
    }

    #[test]
    fn unused_registers_absent() {
        let s = stats(|b| {
            b.mov(ArchReg::R0, 1);
            b.stg(ArchReg::R0, ArchReg::R0, 0);
            b.exit();
        });
        assert!(s.of(ArchReg::new(40)).is_none());
        assert_eq!(s.per_reg().len(), 1);
    }
}
