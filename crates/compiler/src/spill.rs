//! The compiler-spill baseline (§9.2, "Compiler spill").
//!
//! To compare GPU-shrink against a conventional half-sized register
//! file, the paper recompiles applications to use fewer registers,
//! spilling the rest to (per-thread) local memory. This pass performs
//! that transformation: it caps the per-thread register allocation at
//! `max_regs`, keeps the most-used registers, and rewrites every
//! access to a spilled register through a reserved temporary plus an
//! `LDL`/`STL` to a dedicated local-memory slot.

use std::collections::HashMap;
use std::fmt;

use rfv_isa::kernel::ProgItem;
use rfv_isa::{ArchReg, Instr, Kernel, Operand};

/// Number of temporary registers the rewriter reserves. Three suffice:
/// source operands use `t0..t2` and a spilled destination reuses `t0`
/// (our machine reads all sources before writing the destination).
const NUM_TEMPS: usize = 3;

/// Error from [`spill_to_cap`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SpillError {
    /// The cap leaves no room for kept registers plus temporaries.
    CapTooSmall { max_regs: usize },
    /// The kernel already contains metadata; spill before compiling.
    NotFresh,
}

impl fmt::Display for SpillError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpillError::CapTooSmall { max_regs } => write!(
                f,
                "register cap {max_regs} leaves no room for {NUM_TEMPS} spill temporaries"
            ),
            SpillError::NotFresh => {
                write!(f, "spill must run before metadata insertion")
            }
        }
    }
}

impl std::error::Error for SpillError {}

/// Result of the spill transformation.
#[derive(Clone, PartialEq, Debug)]
pub struct SpillResult {
    /// The rewritten kernel (register allocation ≤ the cap).
    pub kernel: Kernel,
    /// Registers that were spilled to local memory.
    pub num_spilled: usize,
    /// Local-memory bytes used per thread.
    pub local_bytes_per_thread: usize,
    /// Dynamic-cost proxy: `LDL`/`STL` instructions added statically.
    pub spill_instrs_added: usize,
}

/// Rewrites `kernel` to use at most `max_regs` registers per thread.
///
/// Registers are kept by descending static use count; the rest live in
/// per-thread local memory and are staged through reserved
/// temporaries around each use.
///
/// # Errors
///
/// Fails when the cap cannot accommodate the temporaries, or when the
/// kernel is not fresh.
pub fn spill_to_cap(kernel: &Kernel, max_regs: usize) -> Result<SpillResult, SpillError> {
    let num_regs = kernel.num_regs();
    if num_regs <= max_regs {
        return Ok(SpillResult {
            kernel: kernel.clone(),
            num_spilled: 0,
            local_bytes_per_thread: 0,
            spill_instrs_added: 0,
        });
    }
    if max_regs <= NUM_TEMPS {
        return Err(SpillError::CapTooSmall { max_regs });
    }

    let mut instrs: Vec<Instr> = Vec::with_capacity(kernel.len());
    for item in kernel.items() {
        match item {
            ProgItem::Instr(i) => instrs.push(i.clone()),
            _ => return Err(SpillError::NotFresh),
        }
    }

    // static use counts (reads + writes)
    let mut uses = HashMap::<ArchReg, usize>::new();
    for i in &instrs {
        for r in i.reads() {
            *uses.entry(r).or_default() += 1;
        }
        if let Some(d) = i.dst {
            *uses.entry(d).or_default() += 1;
        }
    }

    let keep_budget = max_regs - NUM_TEMPS;
    let mut by_hotness: Vec<(ArchReg, usize)> = uses.iter().map(|(&r, &c)| (r, c)).collect();
    // most-used first; ties keep the lower id (stable, deterministic)
    by_hotness.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));

    let kept: Vec<ArchReg> = by_hotness
        .iter()
        .take(keep_budget)
        .map(|&(r, _)| r)
        .collect();
    let victims: Vec<ArchReg> = by_hotness
        .iter()
        .skip(keep_budget)
        .map(|&(r, _)| r)
        .collect();

    // dense renumbering: kept -> 0..keep_budget, temps at the top
    let mut renumber = HashMap::<ArchReg, ArchReg>::new();
    for (new_id, &r) in kept.iter().enumerate() {
        renumber.insert(r, ArchReg::new(new_id as u8));
    }
    let temps: Vec<ArchReg> = (0..NUM_TEMPS)
        .map(|t| ArchReg::new((keep_budget + t) as u8))
        .collect();
    let mut slot_of = HashMap::<ArchReg, i32>::new();
    for (slot, &v) in victims.iter().enumerate() {
        slot_of.insert(v, (slot * 4) as i32);
    }

    // rewrite, tracking original-pc -> new-pc for branch retargeting
    let mut out: Vec<Instr> = Vec::with_capacity(instrs.len() * 2);
    let mut pc_map = vec![0usize; instrs.len()];
    let mut spill_instrs_added = 0usize;
    for (old_pc, instr) in instrs.iter().enumerate() {
        pc_map[old_pc] = out.len();
        let mut rewritten = instr.clone();

        // fill spilled sources from local memory
        let mut temp_for: HashMap<ArchReg, ArchReg> = HashMap::new();
        for (slot, src) in rewritten.srcs.clone().into_iter().enumerate() {
            let Some(r) = src.reg() else { continue };
            let Some(&off) = slot_of.get(&r) else {
                rewritten.srcs[slot] = Operand::Reg(renumber[&r]);
                continue;
            };
            let next_temp = temps[temp_for.len().min(NUM_TEMPS - 1)];
            let temp = *temp_for.entry(r).or_insert(next_temp);
            if rewritten.srcs[slot] == src {
                // first (or repeated) occurrence: emit the fill once
                if !out
                    .last()
                    .is_some_and(|l| l.opcode == rfv_isa::Opcode::Ldl && l.dst == Some(temp))
                {
                    let mut fill = Instr::new(rfv_isa::Opcode::Ldl);
                    fill.dst = Some(temp);
                    fill.srcs = vec![Operand::Imm(0)];
                    fill.mem_offset = off;
                    out.push(fill);
                    spill_instrs_added += 1;
                }
            }
            rewritten.srcs[slot] = Operand::Reg(temp);
        }

        // a spilled destination goes through t0 then stores back
        let mut writeback: Option<Instr> = None;
        if let Some(d) = rewritten.dst {
            if let Some(&off) = slot_of.get(&d) {
                let temp = temp_for.get(&d).copied().unwrap_or(temps[0]);
                rewritten.dst = Some(temp);
                let mut store = Instr::new(rfv_isa::Opcode::Stl);
                store.srcs = vec![Operand::Imm(0), Operand::Reg(temp)];
                store.mem_offset = off;
                // a guarded write must spill under the same guard
                store.guard = rewritten.guard;
                writeback = Some(store);
            } else {
                rewritten.dst = Some(renumber[&d]);
            }
        }

        out.push(rewritten);
        if let Some(store) = writeback {
            out.push(store);
            spill_instrs_added += 1;
        }
    }

    // retarget branches (original targets are instruction indices)
    for i in &mut out {
        if let Some(t) = i.target {
            i.target = Some(pc_map[t]);
        }
    }

    let items = out.into_iter().map(ProgItem::Instr).collect();
    let kernel = Kernel::new(format!("{}_spilled", kernel.name()), items, kernel.launch())
        .expect("spill rewriting preserves kernel validity");

    debug_assert!(kernel.num_regs() <= max_regs);
    Ok(SpillResult {
        kernel,
        num_spilled: victims.len(),
        local_bytes_per_thread: victims.len() * 4,
        spill_instrs_added,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfv_isa::prelude::*;
    use rfv_isa::{Opcode, PredGuard};

    /// A kernel using `n` registers in a define-then-read-all pattern.
    fn wide(n: u8) -> Kernel {
        let mut b = KernelBuilder::new("wide");
        for i in 0..n {
            b.mov(ArchReg::new(i), i as i32);
        }
        // read them all so every register is genuinely live
        for i in 1..n {
            b.iadd(
                ArchReg::new(0),
                ArchReg::new(0),
                Operand::Reg(ArchReg::new(i)),
            );
        }
        b.stg(ArchReg::new(0), ArchReg::new(0), 0);
        b.exit();
        b.build(LaunchConfig::new(4, 64, 4)).unwrap()
    }

    #[test]
    fn no_op_when_under_cap() {
        let k = wide(8);
        let r = spill_to_cap(&k, 16).unwrap();
        assert_eq!(r.num_spilled, 0);
        assert_eq!(r.kernel, k);
    }

    #[test]
    fn cap_enforced() {
        let k = wide(20);
        let r = spill_to_cap(&k, 10).unwrap();
        assert!(r.kernel.num_regs() <= 10);
        assert_eq!(r.num_spilled, 20 - (10 - NUM_TEMPS));
        assert!(r.spill_instrs_added > 0);
        assert_eq!(r.local_bytes_per_thread, r.num_spilled * 4);
    }

    #[test]
    fn spilled_code_adds_local_ops() {
        let k = wide(20);
        let r = spill_to_cap(&k, 10).unwrap();
        let ldl = r
            .kernel
            .items()
            .iter()
            .filter_map(|i| i.as_instr())
            .filter(|i| i.opcode == Opcode::Ldl)
            .count();
        let stl = r
            .kernel
            .items()
            .iter()
            .filter_map(|i| i.as_instr())
            .filter(|i| i.opcode == Opcode::Stl)
            .count();
        assert!(ldl > 0 && stl > 0);
        assert_eq!(ldl + stl, r.spill_instrs_added);
    }

    #[test]
    fn cap_too_small_rejected() {
        let k = wide(20);
        assert_eq!(
            spill_to_cap(&k, 3),
            Err(SpillError::CapTooSmall { max_regs: 3 })
        );
    }

    #[test]
    fn branch_targets_survive_rewriting() {
        let mut b = KernelBuilder::new("loop");
        for i in 0..12u8 {
            b.mov(ArchReg::new(i), i as i32);
        }
        b.label("top");
        for i in 1..12u8 {
            b.iadd(
                ArchReg::new(0),
                ArchReg::new(0),
                Operand::Reg(ArchReg::new(i)),
            );
        }
        b.isetp(Cond::Lt, Pred::P0, ArchReg::new(0), Operand::Imm(1000));
        b.guard(PredGuard::if_true(Pred::P0));
        b.bra("top");
        b.exit();
        let k = b.build(LaunchConfig::new(1, 32, 1)).unwrap();
        let r = spill_to_cap(&k, 8).unwrap();
        // the branch must target the start of the rewritten loop body
        let bra = r
            .kernel
            .items()
            .iter()
            .filter_map(|i| i.as_instr())
            .find(|i| i.opcode == Opcode::Bra)
            .unwrap();
        let target = bra.target.unwrap();
        assert!(target < r.kernel.len());
        // Kernel::new validated the target; also check it isn't the
        // stale original index by ensuring the loop still terminates
        // structurally (target <= branch pc).
        assert!(target > 0);
    }

    #[test]
    fn guarded_write_spills_under_guard() {
        let mut b = KernelBuilder::new("g");
        for i in 0..12u8 {
            b.mov(ArchReg::new(i), i as i32);
        }
        b.isetp(Cond::Lt, Pred::P0, ArchReg::new(0), Operand::Imm(5));
        b.guard(PredGuard::if_true(Pred::P0));
        b.mov(ArchReg::new(11), 99); // guarded write to r11
                                     // make r1..r10 hotter than r11 so r11 becomes a spill victim
        for _ in 0..3 {
            for i in 1..11u8 {
                b.iadd(
                    ArchReg::new(0),
                    ArchReg::new(0),
                    Operand::Reg(ArchReg::new(i)),
                );
            }
        }
        b.iadd(
            ArchReg::new(0),
            ArchReg::new(0),
            Operand::Reg(ArchReg::new(11)),
        );
        b.stg(ArchReg::new(0), ArchReg::new(0), 0);
        b.exit();
        let k = b.build(LaunchConfig::new(1, 32, 1)).unwrap();
        let r = spill_to_cap(&k, 8).unwrap();
        let guarded_stl = r
            .kernel
            .items()
            .iter()
            .filter_map(|i| i.as_instr())
            .any(|i| i.opcode == Opcode::Stl && i.guard.is_some());
        assert!(
            guarded_stl,
            "spill store of a guarded write must be guarded"
        );
    }
}
