//! Metadata-instruction insertion: embeds `pir`/`pbr` flag-set
//! instructions into the code stream and remaps branch targets into
//! the final PC space.
//!
//! Layout per basic block (paper §6.2): any `pbr`s first (they execute
//! at the reconvergence point, so branch targets land on them), then a
//! `pir` before each 18-instruction window that contains at least one
//! release flag, then the machine instructions.

use rfv_isa::kernel::ProgItem;
use rfv_isa::meta::{PBR_CAPACITY, PIR_COVERAGE};
use rfv_isa::{Pbr, Pir, ReleaseFlags};

use crate::cfg::Cfg;
use crate::release::ReleasePoints;

/// Result of metadata insertion.
#[derive(Clone, Debug)]
pub struct Insertion {
    /// The final program stream (machine + metadata instructions) with
    /// branch targets remapped.
    pub items: Vec<ProgItem>,
    /// Release flags aligned with `items` (metadata slots hold
    /// [`ReleaseFlags::NONE`]); the simulator's decode stage consults
    /// this instead of re-decoding `pir` payloads.
    pub flags: Vec<ReleaseFlags>,
    /// New PC of each basic block's first slot, indexed by block id.
    pub block_start: Vec<usize>,
    /// New PC of each original machine instruction.
    pub pc_map: Vec<usize>,
}

/// Embeds release metadata into the instruction stream.
pub fn insert_flags(cfg: &Cfg, release: &ReleasePoints) -> Insertion {
    let mut items: Vec<ProgItem> = Vec::with_capacity(cfg.instrs().len() * 2);
    let mut flags: Vec<ReleaseFlags> = Vec::with_capacity(items.capacity());
    let mut block_start = vec![0usize; cfg.num_blocks()];
    let mut pc_map = vec![0usize; cfg.instrs().len()];

    for (bi, block) in cfg.blocks().iter().enumerate() {
        block_start[bi] = items.len();

        // pbr(s) at the block head
        let pbr_regs = release.pbr_regs(crate::cfg::BlockId(bi));
        for chunk in pbr_regs.chunks(PBR_CAPACITY) {
            let pbr = Pbr::from_regs(chunk.to_vec())
                .expect("chunks() bounds the register count to PBR_CAPACITY");
            items.push(ProgItem::Pbr(pbr));
            flags.push(ReleaseFlags::NONE);
        }

        // 18-instruction windows, each preceded by a pir when needed
        let pcs: Vec<usize> = block.range().collect();
        for window in pcs.chunks(PIR_COVERAGE) {
            let mut pir = Pir::new();
            let mut any = false;
            for (off, &pc) in window.iter().enumerate() {
                let f = release.pir_flags(pc);
                if f.any() {
                    pir.set_flags(off, f);
                    any = true;
                }
            }
            if any {
                items.push(ProgItem::Pir(pir));
                flags.push(ReleaseFlags::NONE);
            }
            for &pc in window {
                pc_map[pc] = items.len();
                items.push(ProgItem::Instr(cfg.instrs()[pc].clone()));
                flags.push(release.pir_flags(pc));
            }
        }
    }

    // remap branch targets: original targets are always block leaders
    for item in &mut items {
        if let ProgItem::Instr(i) = item {
            if let Some(t) = i.target {
                i.target = Some(block_start[cfg.block_of(t).0]);
            }
        }
    }

    Insertion {
        items,
        flags,
        block_start,
        pc_map,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::BlockId;
    use crate::dom::PostDominators;
    use crate::liveness::{Liveness, RegSet};
    use crate::regions::DivergenceRegions;
    use crate::uniform::Uniformity;
    use rfv_isa::prelude::*;
    use rfv_isa::{ArchReg, Opcode, PredGuard, Special};

    fn insert(f: impl FnOnce(&mut KernelBuilder)) -> (Cfg, Insertion) {
        let mut b = KernelBuilder::new("t");
        f(&mut b);
        let k = b.build(LaunchConfig::new(1, 32, 1)).unwrap();
        let cfg = Cfg::build(&k).unwrap();
        let lv = Liveness::compute(&cfg);
        let pd = PostDominators::compute(&cfg);
        let uni = Uniformity::compute(cfg.instrs());
        let dr = DivergenceRegions::compute(&cfg, &pd, &uni);
        let all: RegSet = ArchReg::all().collect();
        let rp = ReleasePoints::compute(&cfg, &lv, &dr, all);
        let ins = insert_flags(&cfg, &rp);
        (cfg, ins)
    }

    #[test]
    fn pir_inserted_before_releasing_window() {
        let (_, ins) = insert(|b| {
            b.mov(ArchReg::R0, 1);
            b.iadd(ArchReg::R1, ArchReg::R0, 1); // r0 dies
            b.stg(ArchReg::R1, ArchReg::R1, 0); // r1 dies
            b.exit();
        });
        assert!(matches!(ins.items[0], ProgItem::Pir(_)));
        assert_eq!(ins.items.len(), 5); // 1 pir + 4 instrs
                                        // flags survive alignment
        assert!(ins.flags[2].releases(0)); // IADD at new pc 2
    }

    #[test]
    fn no_pir_for_release_free_block() {
        let (_, ins) = insert(|b| {
            b.mov(ArchReg::R0, 1);
            b.mov(ArchReg::R0, 2); // overwrite; no reads at all
            b.exit();
        });
        assert!(ins.items.iter().all(|i| !i.is_meta()));
    }

    #[test]
    fn long_block_gets_one_pir_per_window() {
        let (_, ins) = insert(|b| {
            // 40 instructions, each defining then killing a register
            for _ in 0..20 {
                b.mov(ArchReg::R0, 1);
                b.stg(ArchReg::R0, ArchReg::R0, 0); // r0 read & dies
            }
            b.exit();
        });
        let pirs = ins
            .items
            .iter()
            .filter(|i| matches!(i, ProgItem::Pir(_)))
            .count();
        // 41 machine instrs -> 3 windows of 18 -> 3 pirs
        assert_eq!(pirs, 3);
    }

    #[test]
    fn branch_targets_remapped_to_block_heads() {
        let (cfg, ins) = insert(|b| {
            b.s2r(ArchReg::R0, Special::TidX);
            b.mov(ArchReg::R2, 7);
            b.isetp(Cond::Lt, Pred::P0, ArchReg::R0, Operand::Imm(16));
            b.guard(PredGuard::if_false(Pred::P0));
            b.bra("else");
            b.iadd(ArchReg::R1, ArchReg::R2, 1);
            b.bra("join");
            b.label("else");
            b.iadd(ArchReg::R1, ArchReg::R2, 2);
            b.label("join");
            b.stg(ArchReg::R0, ArchReg::R1, 0);
            b.exit();
        });
        // find the conditional branch in the final stream
        let cond_bra = ins
            .items
            .iter()
            .filter_map(|i| i.as_instr())
            .find(|i| i.opcode == Opcode::Bra && i.guard.is_some())
            .unwrap();
        // its target must be the new start of the else block (bb2)
        assert_eq!(cond_bra.target, Some(ins.block_start[2]));
        // the join block (bb3) starts with the pbr releasing r2
        let join_start = ins.block_start[cfg.block_of(7).0];
        assert!(matches!(ins.items[join_start], ProgItem::Pbr(_)));
    }

    #[test]
    fn pc_map_is_consistent() {
        let (cfg, ins) = insert(|b| {
            b.mov(ArchReg::R0, 1);
            b.iadd(ArchReg::R1, ArchReg::R0, 1);
            b.stg(ArchReg::R1, ArchReg::R1, 0);
            b.exit();
        });
        for (old_pc, &new_pc) in ins.pc_map.iter().enumerate() {
            let old = &cfg.instrs()[old_pc];
            let new = ins.items[new_pc].as_instr().unwrap();
            assert_eq!(old.opcode, new.opcode);
        }
        let _ = BlockId(0);
    }
}
