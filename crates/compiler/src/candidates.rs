//! Renaming-candidate selection under a renaming-table size budget
//! (paper §6.2, "Reducing renaming table size").
//!
//! The full per-SM renaming table (48 warps × 63 registers × 10-bit
//! physical ids) is 3.8 KB; the paper constrains it to 1 KB and
//! exempts the registers that benefit least from renaming:
//!
//! 1. registers with **no release sites** are exempted for free — the
//!    hardware could never reclaim them anyway;
//! 2. among the rest, registers with the **longest estimated value
//!    lifetimes** (tie-break: **more value instances**) are exempted
//!    until the table fits.
//!
//! Exempted registers are statically direct-mapped (the hardware
//! assigns each warp a fixed physical register per exempt register)
//! and are never released before CTA completion.

use rfv_isa::LaunchConfig;

use crate::lifetime::LifetimeStats;
use crate::liveness::RegSet;

/// Bits per renaming-table entry: a physical register id for a 1024-
/// entry register file.
pub const ENTRY_BITS: usize = 10;

/// The paper's default renaming-table budget.
pub const DEFAULT_TABLE_BUDGET_BYTES: usize = 1024;

/// Outcome of candidate selection.
#[derive(Clone, Debug)]
pub struct CandidateSelection {
    /// Registers that participate in renaming (and may be released).
    pub renamed: RegSet,
    /// Registers exempted from renaming (statically mapped, never
    /// released).
    pub exempt: RegSet,
    /// Renaming-table size with *no* budget, in bytes (Figure 14,
    /// left): every allocated register × warps/SM × 10 bits.
    pub unconstrained_table_bytes: usize,
    /// Renaming-table size after exemption, in bytes.
    pub table_bytes: usize,
    /// Maximum renameable registers under the budget.
    pub max_renamed: usize,
    /// Concurrent warps per SM this kernel sustains
    /// (warps/CTA × concurrent CTAs).
    pub warps_per_sm: usize,
}

impl CandidateSelection {
    /// Selects renaming candidates for a kernel.
    ///
    /// `num_regs` is the per-thread register allocation (max id + 1);
    /// `releasable` is the set of registers that have at least one
    /// release point; `budget_bytes` is the renaming-table budget
    /// (the paper uses 1 KB).
    pub fn select(
        launch: LaunchConfig,
        num_regs: usize,
        stats: &LifetimeStats,
        releasable: RegSet,
        budget_bytes: usize,
    ) -> CandidateSelection {
        let warps_per_sm = launch.warps_per_cta() as usize * launch.max_conc_ctas_per_sm() as usize;
        let bits_per_reg = ENTRY_BITS * warps_per_sm;
        let unconstrained_table_bytes = (num_regs * bits_per_reg).div_ceil(8);
        let max_renamed = (budget_bytes * 8)
            .checked_div(bits_per_reg)
            .unwrap_or(num_regs);

        // candidates: used registers with at least one release site
        let mut candidates: Vec<_> = stats
            .per_reg()
            .iter()
            .filter(|l| releasable.contains(l.reg) && l.num_release_sites > 0)
            .collect();
        // shortest lifetime first; fewer value instances break ties
        candidates.sort_by(|a, b| {
            a.avg_lifetime
                .total_cmp(&b.avg_lifetime)
                .then(a.num_defs.cmp(&b.num_defs))
                .then(a.reg.cmp(&b.reg))
        });

        let mut renamed = RegSet::EMPTY;
        for l in candidates.iter().take(max_renamed) {
            renamed.insert(l.reg);
        }
        let mut exempt = RegSet::EMPTY;
        for l in stats.per_reg() {
            if !renamed.contains(l.reg) {
                exempt.insert(l.reg);
            }
        }

        let table_bytes = (renamed.len() * bits_per_reg).div_ceil(8);
        CandidateSelection {
            renamed,
            exempt,
            unconstrained_table_bytes,
            table_bytes,
            max_renamed,
            warps_per_sm,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::Cfg;
    use crate::dom::PostDominators;
    use crate::liveness::Liveness;
    use crate::regions::DivergenceRegions;
    use crate::release::ReleasePoints;
    use crate::uniform::Uniformity;
    use rfv_isa::prelude::*;
    use rfv_isa::ArchReg;

    struct Analysis {
        stats: LifetimeStats,
        releasable: RegSet,
        num_regs: usize,
    }

    fn analyze(f: impl FnOnce(&mut KernelBuilder), launch: LaunchConfig) -> Analysis {
        let mut b = KernelBuilder::new("t");
        f(&mut b);
        let k = b.build(launch).unwrap();
        let cfg = Cfg::build(&k).unwrap();
        let lv = Liveness::compute(&cfg);
        let pd = PostDominators::compute(&cfg);
        let uni = Uniformity::compute(cfg.instrs());
        let dr = DivergenceRegions::compute(&cfg, &pd, &uni);
        let all: RegSet = ArchReg::all().collect();
        let rp = ReleasePoints::compute(&cfg, &lv, &dr, all);
        Analysis {
            stats: LifetimeStats::analyze(&cfg, &lv, &rp),
            releasable: rp.released_regs_with(&cfg),
            num_regs: k.num_regs(),
        }
    }

    /// A kernel touching `n` registers, each defined once and read once.
    fn wide_kernel(n: u8) -> impl FnOnce(&mut KernelBuilder) {
        move |b: &mut KernelBuilder| {
            for i in 0..n {
                b.mov(ArchReg::new(i), i as i32);
            }
            for i in 0..n {
                b.stg(ArchReg::new(i), ArchReg::new(i), 4 * i as i32);
            }
            b.exit();
        }
    }

    #[test]
    fn all_renamed_when_budget_suffices() {
        // 8 warps/CTA × 6 CTAs = 48 warps; 14 regs × 48 × 10 bits = 840 B < 1 KB
        let a = analyze(wide_kernel(14), LaunchConfig::new(64, 256, 6));
        let sel = CandidateSelection::select(
            LaunchConfig::new(64, 256, 6),
            a.num_regs,
            &a.stats,
            a.releasable,
            DEFAULT_TABLE_BUDGET_BYTES,
        );
        assert_eq!(sel.warps_per_sm, 48);
        assert_eq!(sel.max_renamed, 17); // 8192 / 480
        assert_eq!(sel.renamed.len(), 14);
        assert!(sel.exempt.is_empty());
        assert_eq!(sel.unconstrained_table_bytes, 840);
        assert!(sel.table_bytes <= DEFAULT_TABLE_BUDGET_BYTES);
    }

    #[test]
    fn heartwall_geometry_exempts_four_of_29() {
        // Heartwall: 512 thr/CTA (16 warps), 2 conc CTAs, 29 regs.
        // 32 warps -> max renameable = 8192 / 320 = 25 -> 4 exempt.
        let launch = LaunchConfig::new(51, 512, 2);
        let a = analyze(wide_kernel(29), launch);
        let sel = CandidateSelection::select(
            launch,
            a.num_regs,
            &a.stats,
            a.releasable,
            DEFAULT_TABLE_BUDGET_BYTES,
        );
        assert_eq!(sel.max_renamed, 25);
        assert_eq!(sel.renamed.len(), 25);
        assert_eq!(sel.exempt.len(), 4);
        assert!(sel.unconstrained_table_bytes > DEFAULT_TABLE_BUDGET_BYTES);
    }

    #[test]
    fn longest_lived_registers_exempted_first() {
        // r0 is long-lived (read at the end); the rest are short-lived.
        let launch = LaunchConfig::new(51, 512, 2); // tight budget: 25 renameable
        let a = analyze(
            |b| {
                b.mov(ArchReg::R0, 1);
                for i in 1..29u8 {
                    b.mov(ArchReg::new(i), i as i32);
                    b.stg(ArchReg::new(i), ArchReg::new(i), 0);
                }
                b.stg(ArchReg::R0, ArchReg::R0, 0); // r0 read last
                b.exit();
            },
            launch,
        );
        let sel = CandidateSelection::select(
            launch,
            a.num_regs,
            &a.stats,
            a.releasable,
            DEFAULT_TABLE_BUDGET_BYTES,
        );
        assert!(
            sel.exempt.contains(ArchReg::R0),
            "the long-lived register must be exempted"
        );
    }

    #[test]
    fn never_released_registers_are_exempt() {
        let launch = LaunchConfig::new(1, 32, 1);
        // r1 is written but the only read is loop-carried-like via a
        // divergent region with no convergent reconvergence... simplest:
        // a register written and read at EXIT-adjacent code is released;
        // instead craft r1 written but never read: no release sites.
        let a = analyze(
            |b| {
                b.mov(ArchReg::R0, 1);
                b.mov(ArchReg::R1, 2); // never read -> no release site
                b.stg(ArchReg::R0, ArchReg::R0, 0);
                b.exit();
            },
            launch,
        );
        let sel = CandidateSelection::select(
            launch,
            a.num_regs,
            &a.stats,
            a.releasable,
            DEFAULT_TABLE_BUDGET_BYTES,
        );
        assert!(sel.exempt.contains(ArchReg::R1));
        assert!(sel.renamed.contains(ArchReg::R0));
    }

    #[test]
    fn zero_budget_renames_nothing() {
        let launch = LaunchConfig::new(1, 256, 4);
        let a = analyze(wide_kernel(10), launch);
        let sel = CandidateSelection::select(launch, a.num_regs, &a.stats, a.releasable, 0);
        assert!(sel.renamed.is_empty());
        assert_eq!(sel.exempt.len(), 10);
        assert_eq!(sel.table_bytes, 0);
    }
}
