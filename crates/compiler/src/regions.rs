//! Divergence regions: the CFG blocks that can execute with a partial
//! lane mask.
//!
//! For every conditional branch that may split the warp (per
//! [`crate::uniform::Uniformity`]) with immediate post-dominator `R`,
//! every block reachable from the branch's successors without passing
//! through `R` belongs to the branch's *divergence region*. Inside a
//! region a warp-register release is unsafe even when thread-level
//! liveness says the value is dead, because sibling-path lanes may
//! still read their lanes of the value (the paper's Figure 4(b)
//! hazard); deaths inside a region are deferred to a `pbr` at the
//! region's reconvergence point.

use std::collections::BTreeMap;

use rfv_isa::Opcode;

use crate::cfg::{BlockId, Cfg};
use crate::dom::PostDominators;
use crate::uniform::Uniformity;

/// Divergence structure of one kernel.
#[derive(Clone, Debug)]
pub struct DivergenceRegions {
    divergent: Vec<bool>,
    /// For each divergent-branch block: its reconvergence block
    /// (`None` = the virtual exit; such branches never reconverge
    /// before program end).
    reconv: BTreeMap<BlockId, Option<BlockId>>,
    /// For each reconvergence block: the divergent-branch blocks that
    /// reconverge there.
    branches_at: BTreeMap<BlockId, Vec<BlockId>>,
    /// For each divergent-branch block: the blocks inside its region.
    region_blocks: BTreeMap<BlockId, Vec<BlockId>>,
}

impl DivergenceRegions {
    /// Computes divergence regions.
    pub fn compute(cfg: &Cfg, pdom: &PostDominators, uniformity: &Uniformity) -> DivergenceRegions {
        let mut divergent = vec![false; cfg.num_blocks()];
        let mut reconv = BTreeMap::new();
        let mut branches_at: BTreeMap<BlockId, Vec<BlockId>> = BTreeMap::new();
        let mut region_blocks: BTreeMap<BlockId, Vec<BlockId>> = BTreeMap::new();

        for b in cfg.cond_branch_blocks() {
            let branch = &cfg.instrs()[cfg.block(b).end - 1];
            debug_assert_eq!(branch.opcode, Opcode::Bra);
            if !uniformity.branch_may_diverge(branch) {
                continue;
            }
            let r = pdom.ipdom(b);
            reconv.insert(b, r);
            if let Some(r) = r {
                branches_at.entry(r).or_default().push(b);
            }
            // flood-fill from the successors, stopping at R
            let mut stack: Vec<BlockId> = cfg.block(b).succs.clone();
            let mut seen = vec![false; cfg.num_blocks()];
            let mut members = Vec::new();
            while let Some(x) = stack.pop() {
                if Some(x) == r || seen[x.0] {
                    continue;
                }
                seen[x.0] = true;
                divergent[x.0] = true;
                members.push(x);
                stack.extend(cfg.block(x).succs.iter().copied());
            }
            members.sort();
            region_blocks.insert(b, members);
        }

        DivergenceRegions {
            divergent,
            reconv,
            branches_at,
            region_blocks,
        }
    }

    /// Whether block `b` may execute with a partial lane mask.
    pub fn is_divergent(&self, b: BlockId) -> bool {
        self.divergent[b.0]
    }

    /// Whether block `b` always executes fully converged.
    pub fn is_convergent(&self, b: BlockId) -> bool {
        !self.divergent[b.0]
    }

    /// Divergent-branch blocks and their reconvergence points.
    pub fn divergent_branches(&self) -> impl Iterator<Item = (BlockId, Option<BlockId>)> + '_ {
        self.reconv.iter().map(|(&b, &r)| (b, r))
    }

    /// Blocks that serve as reconvergence points, with the branches
    /// reconverging at each.
    pub fn reconvergence_points(&self) -> impl Iterator<Item = (BlockId, &[BlockId])> + '_ {
        self.branches_at.iter().map(|(&r, bs)| (r, bs.as_slice()))
    }

    /// Number of divergent blocks.
    pub fn num_divergent(&self) -> usize {
        self.divergent.iter().filter(|&&d| d).count()
    }

    /// The blocks inside the region of divergent-branch block
    /// `branch` (empty for unknown branches).
    pub fn region_blocks(&self, branch: BlockId) -> &[BlockId] {
        self.region_blocks
            .get(&branch)
            .map_or(&[], |v| v.as_slice())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfv_isa::prelude::*;
    use rfv_isa::{PredGuard, Special};

    fn compute(f: impl FnOnce(&mut KernelBuilder)) -> (Cfg, DivergenceRegions) {
        let mut b = KernelBuilder::new("t");
        f(&mut b);
        let k = b.build(LaunchConfig::new(1, 32, 1)).unwrap();
        let cfg = Cfg::build(&k).unwrap();
        let pdom = PostDominators::compute(&cfg);
        let uni = Uniformity::compute(cfg.instrs());
        let dr = DivergenceRegions::compute(&cfg, &pdom, &uni);
        (cfg, dr)
    }

    fn divergent_diamond(b: &mut KernelBuilder) {
        b.s2r(ArchReg::R0, Special::TidX);
        b.isetp(Cond::Lt, Pred::P0, ArchReg::R0, Operand::Imm(16));
        b.guard(PredGuard::if_false(Pred::P0));
        b.bra("else");
        b.iadd(ArchReg::R1, ArchReg::R0, 1);
        b.bra("join");
        b.label("else");
        b.iadd(ArchReg::R1, ArchReg::R0, 2);
        b.label("join");
        b.exit();
    }

    #[test]
    fn divergent_diamond_arms_are_divergent() {
        let (_, dr) = compute(divergent_diamond);
        assert!(dr.is_convergent(BlockId(0)));
        assert!(dr.is_divergent(BlockId(1)), "then arm");
        assert!(dr.is_divergent(BlockId(2)), "else arm");
        assert!(dr.is_convergent(BlockId(3)), "join");
        let branches: Vec<_> = dr.divergent_branches().collect();
        assert_eq!(branches, vec![(BlockId(0), Some(BlockId(3)))]);
        let rps: Vec<_> = dr.reconvergence_points().collect();
        assert_eq!(rps.len(), 1);
        assert_eq!(rps[0].0, BlockId(3));
    }

    #[test]
    fn uniform_diamond_has_no_region() {
        let (_, dr) = compute(|b| {
            b.s2r(ArchReg::R0, Special::CtaIdX); // uniform condition
            b.isetp(Cond::Lt, Pred::P0, ArchReg::R0, Operand::Imm(16));
            b.guard(PredGuard::if_false(Pred::P0));
            b.bra("else");
            b.iadd(ArchReg::R1, ArchReg::R0, 1);
            b.bra("join");
            b.label("else");
            b.iadd(ArchReg::R1, ArchReg::R0, 2);
            b.label("join");
            b.exit();
        });
        assert_eq!(dr.num_divergent(), 0);
        assert_eq!(dr.divergent_branches().count(), 0);
    }

    #[test]
    fn divergent_loop_body_is_a_region() {
        let (_, dr) = compute(|b| {
            b.s2r(ArchReg::R0, Special::TidX); // lane-dependent trip count
            b.label("top");
            b.iadd(ArchReg::R0, ArchReg::R0, -1);
            b.isetp(Cond::Gt, Pred::P0, ArchReg::R0, Operand::Imm(0));
            b.guard(PredGuard::if_true(Pred::P0));
            b.bra("top");
            b.exit();
        });
        // bb0 header, bb1 body+branch, bb2 exit
        assert!(
            dr.is_divergent(BlockId(1)),
            "loop body diverges by trip count"
        );
        assert!(dr.is_convergent(BlockId(2)), "loop exit reconverges");
    }

    #[test]
    fn uniform_loop_body_is_convergent() {
        let (_, dr) = compute(|b| {
            b.mov(ArchReg::R0, 8); // uniform trip count
            b.label("top");
            b.iadd(ArchReg::R0, ArchReg::R0, -1);
            b.isetp(Cond::Gt, Pred::P0, ArchReg::R0, Operand::Imm(0));
            b.guard(PredGuard::if_true(Pred::P0));
            b.bra("top");
            b.exit();
        });
        assert_eq!(dr.num_divergent(), 0);
    }

    #[test]
    fn nested_divergence_marks_inner_join_divergent() {
        let (_, dr) = compute(|b| {
            b.s2r(ArchReg::R0, Special::TidX);
            b.isetp(Cond::Lt, Pred::P0, ArchReg::R0, Operand::Imm(16));
            b.guard(PredGuard::if_false(Pred::P0));
            b.bra("outer_else");
            b.isetp(Cond::Gt, Pred::P1, ArchReg::R0, Operand::Imm(8));
            b.guard(PredGuard::if_false(Pred::P1));
            b.bra("inner_else");
            b.iadd(ArchReg::R1, ArchReg::R0, 1);
            b.bra("inner_join");
            b.label("inner_else");
            b.iadd(ArchReg::R1, ArchReg::R0, 2);
            b.label("inner_join");
            b.iadd(ArchReg::R2, ArchReg::R1, 0);
            b.bra("outer_join");
            b.label("outer_else");
            b.iadd(ArchReg::R2, ArchReg::R0, 3);
            b.label("outer_join");
            b.exit();
        });
        // inner join (bb4) is inside the outer region -> divergent
        assert!(dr.is_divergent(BlockId(4)));
        // outer join is convergent
        let outer_join = BlockId(6);
        assert!(dr.is_convergent(outer_join));
        // both branch blocks recorded
        assert_eq!(dr.divergent_branches().count(), 2);
    }
}
