//! Uniformity analysis: which registers and predicates provably hold
//! the same value in every lane of a warp.
//!
//! A branch guarded by a *uniform* predicate can never split a warp,
//! so its body is not a divergence region and intra-region `pir`
//! releases stay safe (this recovers the paper's Figure 4(e) in-loop
//! release for uniform-trip loops such as matrixMul's k-loop).
//!
//! The analysis is flow-insensitive and monotone: it starts by
//! assuming everything uniform and demotes a register/predicate when
//! any definition of it is non-uniform, iterating to a fixpoint.

use rfv_isa::{Instr, Opcode, Special};

use crate::liveness::RegSet;

/// Result of uniformity analysis over one kernel.
#[derive(Clone, Debug)]
pub struct Uniformity {
    uniform_regs: RegSet,
    uniform_preds: [bool; 4],
}

impl Uniformity {
    /// Analyzes an instruction stream.
    pub fn compute(instrs: &[Instr]) -> Uniformity {
        let mut uniform_regs: RegSet = rfv_isa::ArchReg::all().collect();
        let mut uniform_preds = [true; 4];

        let special_uniform = |s: Special| {
            matches!(
                s,
                Special::CtaIdX | Special::NTidX | Special::NCtaIdX | Special::WarpId
            )
        };

        let mut changed = true;
        while changed {
            changed = false;
            for i in instrs {
                let srcs_uniform = i.reads().all(|r| uniform_regs.contains(r));
                let psrc_uniform = i.psrc.is_none_or(|p| uniform_preds[p.index()]);
                let guard_uniform = i.guard.is_none_or(|g| uniform_preds[g.pred.index()]);
                let def_uniform = match i.opcode {
                    // loads produce arbitrary (lane-varying) data
                    op if op.is_load() => false,
                    Opcode::S2r(s) => special_uniform(s) && guard_uniform,
                    _ => srcs_uniform && psrc_uniform && guard_uniform,
                };
                if !def_uniform {
                    if let Some(d) = i.dst {
                        if uniform_regs.contains(d) {
                            uniform_regs.remove(d);
                            changed = true;
                        }
                    }
                    if let Some(p) = i.pdst {
                        if uniform_preds[p.index()] {
                            uniform_preds[p.index()] = false;
                            changed = true;
                        }
                    }
                }
            }
        }

        Uniformity {
            uniform_regs,
            uniform_preds,
        }
    }

    /// Whether register `r` is uniform across the warp.
    pub fn reg_is_uniform(&self, r: rfv_isa::ArchReg) -> bool {
        self.uniform_regs.contains(r)
    }

    /// Whether predicate `p` is uniform across the warp.
    pub fn pred_is_uniform(&self, p: rfv_isa::Pred) -> bool {
        self.uniform_preds[p.index()]
    }

    /// Whether a conditional branch can split a warp.
    ///
    /// Unconditional branches and branches guarded by uniform
    /// predicates cannot diverge.
    pub fn branch_may_diverge(&self, branch: &Instr) -> bool {
        debug_assert_eq!(branch.opcode, Opcode::Bra);
        match branch.guard {
            None => false,
            Some(g) => !self.pred_is_uniform(g.pred),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfv_isa::prelude::*;
    use rfv_isa::PredGuard;

    fn analyze(f: impl FnOnce(&mut KernelBuilder)) -> (Uniformity, Vec<Instr>) {
        let mut b = KernelBuilder::new("t");
        f(&mut b);
        let k = b.build(LaunchConfig::new(1, 32, 1)).unwrap();
        let instrs: Vec<Instr> = k
            .items()
            .iter()
            .filter_map(|i| i.as_instr().cloned())
            .collect();
        (Uniformity::compute(&instrs), instrs)
    }

    #[test]
    fn tid_is_divergent_ctaid_is_uniform() {
        let (u, _) = analyze(|b| {
            b.s2r(ArchReg::R0, Special::TidX);
            b.s2r(ArchReg::R1, Special::CtaIdX);
            b.exit();
        });
        assert!(!u.reg_is_uniform(ArchReg::R0));
        assert!(u.reg_is_uniform(ArchReg::R1));
    }

    #[test]
    fn uniformity_propagates_through_arithmetic() {
        let (u, _) = analyze(|b| {
            b.s2r(ArchReg::R0, Special::CtaIdX);
            b.iadd(ArchReg::R1, ArchReg::R0, 4); // uniform + imm
            b.s2r(ArchReg::R2, Special::TidX);
            b.iadd(ArchReg::R3, ArchReg::R1, Operand::Reg(ArchReg::R2)); // mixes tid
            b.exit();
        });
        assert!(u.reg_is_uniform(ArchReg::R1));
        assert!(!u.reg_is_uniform(ArchReg::R3));
    }

    #[test]
    fn loads_are_divergent() {
        let (u, _) = analyze(|b| {
            b.mov(ArchReg::R0, 0);
            b.ldg(ArchReg::R1, ArchReg::R0, 0);
            b.exit();
        });
        assert!(u.reg_is_uniform(ArchReg::R0));
        assert!(!u.reg_is_uniform(ArchReg::R1));
    }

    #[test]
    fn uniform_loop_branch_does_not_diverge() {
        let (u, instrs) = analyze(|b| {
            b.mov(ArchReg::R0, 8); // immediate: uniform counter
            b.label("top");
            b.iadd(ArchReg::R0, ArchReg::R0, -1);
            b.isetp(Cond::Gt, Pred::P0, ArchReg::R0, Operand::Imm(0));
            b.guard(PredGuard::if_true(Pred::P0));
            b.bra("top");
            b.exit();
        });
        assert!(u.pred_is_uniform(Pred::P0));
        let bra = instrs.iter().find(|i| i.opcode == Opcode::Bra).unwrap();
        assert!(!u.branch_may_diverge(bra));
    }

    #[test]
    fn tid_dependent_branch_diverges() {
        let (u, instrs) = analyze(|b| {
            b.s2r(ArchReg::R0, Special::TidX);
            b.isetp(Cond::Lt, Pred::P0, ArchReg::R0, Operand::Imm(16));
            b.guard(PredGuard::if_true(Pred::P0));
            b.bra("skip");
            b.label("skip");
            b.exit();
        });
        let bra = instrs.iter().find(|i| i.opcode == Opcode::Bra).unwrap();
        assert!(u.branch_may_diverge(bra));
    }

    #[test]
    fn partial_write_under_divergent_guard_demotes() {
        let (u, _) = analyze(|b| {
            b.s2r(ArchReg::R0, Special::TidX);
            b.isetp(Cond::Lt, Pred::P0, ArchReg::R0, Operand::Imm(16));
            b.mov(ArchReg::R1, 3); // uniform so far
            b.guard(PredGuard::if_true(Pred::P0));
            b.mov(ArchReg::R1, 4); // lane-dependent overwrite
            b.exit();
        });
        assert!(!u.reg_is_uniform(ArchReg::R1));
    }

    #[test]
    fn fixpoint_handles_mutual_dependence() {
        // r0 seeded divergent, r1 = f(r0), r0 = g(r1): both divergent
        let (u, _) = analyze(|b| {
            b.s2r(ArchReg::R0, Special::LaneId);
            b.label("top");
            b.iadd(ArchReg::R1, ArchReg::R0, 1);
            b.iadd(ArchReg::R0, ArchReg::R1, 1);
            b.isetp(Cond::Lt, Pred::P0, ArchReg::R0, Operand::Imm(100));
            b.guard(PredGuard::if_true(Pred::P0));
            b.bra("top");
            b.exit();
        });
        assert!(!u.reg_is_uniform(ArchReg::R0));
        assert!(!u.reg_is_uniform(ArchReg::R1));
        assert!(!u.pred_is_uniform(Pred::P0));
    }
}
