//! Control-flow graph construction over a kernel's machine
//! instructions.
//!
//! The CFG is built on the *pre-metadata* program (the output of
//! [`rfv_isa::KernelBuilder`]); instruction indices used here are
//! therefore indices into that original stream. The release-flag
//! insertion pass later remaps them into the final PC space.

use std::collections::BTreeSet;
use std::fmt;

use rfv_isa::{Instr, Kernel, Opcode};

/// A basic-block id (index into [`Cfg::blocks`]).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub usize);

impl fmt::Debug for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

/// A basic block: a maximal straight-line instruction range.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BasicBlock {
    /// First instruction index (inclusive).
    pub start: usize,
    /// One past the last instruction index (exclusive).
    pub end: usize,
    /// Successor blocks in CFG order (fall-through first, then branch
    /// target).
    pub succs: Vec<BlockId>,
    /// Predecessor blocks.
    pub preds: Vec<BlockId>,
}

impl BasicBlock {
    /// Instruction indices in this block.
    pub fn range(&self) -> std::ops::Range<usize> {
        self.start..self.end
    }

    /// Number of instructions in the block.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the block holds no instructions (never true in a built
    /// CFG).
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// A control-flow graph for one kernel.
#[derive(Clone, Debug)]
pub struct Cfg {
    blocks: Vec<BasicBlock>,
    /// Map from instruction index to owning block.
    block_of: Vec<BlockId>,
    /// The instructions the CFG was built over (machine instructions
    /// only, in original order).
    instrs: Vec<Instr>,
}

/// Error building a CFG.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CfgError {
    /// The kernel still contains metadata instructions; the CFG is
    /// built before flag insertion.
    UnexpectedMetadata { pc: usize },
}

impl fmt::Display for CfgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CfgError::UnexpectedMetadata { pc } => write!(
                f,
                "kernel already contains a metadata instruction at {pc:#x}; \
                 the compiler expects a fresh (pre-metadata) kernel"
            ),
        }
    }
}

impl std::error::Error for CfgError {}

impl Cfg {
    /// Builds the CFG of a fresh kernel.
    ///
    /// # Errors
    ///
    /// Fails if the kernel already embeds metadata instructions.
    pub fn build(kernel: &Kernel) -> Result<Cfg, CfgError> {
        let mut instrs = Vec::with_capacity(kernel.len());
        for (pc, item) in kernel.items().iter().enumerate() {
            match item.as_instr() {
                Some(i) => instrs.push(i.clone()),
                None => return Err(CfgError::UnexpectedMetadata { pc }),
            }
        }
        Ok(Cfg::from_instrs(instrs))
    }

    /// Builds a CFG directly from an instruction list (used internally
    /// and by tests).
    pub fn from_instrs(instrs: Vec<Instr>) -> Cfg {
        assert!(
            !instrs.is_empty(),
            "cannot build a CFG over no instructions"
        );
        // 1. leaders: entry, branch targets, instructions following a
        //    control transfer.
        let mut leaders = BTreeSet::new();
        leaders.insert(0usize);
        for (pc, i) in instrs.iter().enumerate() {
            if let Some(t) = i.target {
                leaders.insert(t);
                leaders.insert(pc + 1);
            }
            if i.opcode == Opcode::Exit {
                leaders.insert(pc + 1);
            }
        }
        leaders.retain(|&l| l < instrs.len());

        // 2. carve blocks.
        let bounds: Vec<usize> = leaders.iter().copied().collect();
        let mut blocks = Vec::with_capacity(bounds.len());
        for (bi, &start) in bounds.iter().enumerate() {
            let end = bounds.get(bi + 1).copied().unwrap_or(instrs.len());
            blocks.push(BasicBlock {
                start,
                end,
                succs: Vec::new(),
                preds: Vec::new(),
            });
        }

        let mut block_of = vec![BlockId(0); instrs.len()];
        for (bi, b) in blocks.iter().enumerate() {
            for pc in b.range() {
                block_of[pc] = BlockId(bi);
            }
        }

        // 3. edges.
        for bi in 0..blocks.len() {
            let last_pc = blocks[bi].end - 1;
            let last = &instrs[last_pc];
            let mut succs = Vec::new();
            if last.falls_through() && blocks[bi].end < instrs.len() {
                succs.push(block_of[blocks[bi].end]);
            }
            if let Some(t) = last.target {
                let tb = block_of[t];
                if !succs.contains(&tb) {
                    succs.push(tb);
                }
            }
            blocks[bi].succs = succs.clone();
            for s in succs {
                blocks[s.0].preds.push(BlockId(bi));
            }
        }

        Cfg {
            blocks,
            block_of,
            instrs,
        }
    }

    /// All blocks, indexable by [`BlockId`].
    pub fn blocks(&self) -> &[BasicBlock] {
        &self.blocks
    }

    /// The block with id `id`.
    pub fn block(&self, id: BlockId) -> &BasicBlock {
        &self.blocks[id.0]
    }

    /// Number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// The block containing instruction `pc`.
    pub fn block_of(&self, pc: usize) -> BlockId {
        self.block_of[pc]
    }

    /// The instruction stream the CFG covers.
    pub fn instrs(&self) -> &[Instr] {
        &self.instrs
    }

    /// The entry block (always `bb0`).
    pub fn entry(&self) -> BlockId {
        BlockId(0)
    }

    /// Blocks with no successors (EXIT blocks or trailing blocks).
    pub fn exit_blocks(&self) -> impl Iterator<Item = BlockId> + '_ {
        self.blocks
            .iter()
            .enumerate()
            .filter(|(_, b)| b.succs.is_empty())
            .map(|(i, _)| BlockId(i))
    }

    /// Reverse-post-order traversal from the entry (unreachable blocks
    /// excluded).
    pub fn reverse_post_order(&self) -> Vec<BlockId> {
        let mut visited = vec![false; self.blocks.len()];
        let mut post = Vec::with_capacity(self.blocks.len());
        // iterative DFS
        let mut stack: Vec<(BlockId, usize)> = vec![(self.entry(), 0)];
        visited[0] = true;
        while let Some(&mut (b, ref mut next)) = stack.last_mut() {
            let succs = &self.blocks[b.0].succs;
            if *next < succs.len() {
                let s = succs[*next];
                *next += 1;
                if !visited[s.0] {
                    visited[s.0] = true;
                    stack.push((s, 0));
                }
            } else {
                post.push(b);
                stack.pop();
            }
        }
        post.reverse();
        post
    }

    /// Conditional-branch blocks: blocks ending in a guarded `BRA`
    /// with two distinct successors.
    pub fn cond_branch_blocks(&self) -> impl Iterator<Item = BlockId> + '_ {
        self.blocks
            .iter()
            .enumerate()
            .filter(|(_, b)| {
                b.succs.len() == 2 && {
                    let last = &self.instrs[b.end - 1];
                    last.opcode == Opcode::Bra && last.guard.is_some()
                }
            })
            .map(|(i, _)| BlockId(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfv_isa::prelude::*;
    use rfv_isa::PredGuard;

    fn diamond() -> Kernel {
        // bb0: setp, bra else
        // bb1: then, bra join
        // bb2: else
        // bb3: join, exit
        let mut b = KernelBuilder::new("diamond");
        b.isetp(Cond::Lt, Pred::P0, ArchReg::R0, Operand::Imm(5));
        b.guard(PredGuard::if_false(Pred::P0));
        b.bra("else");
        b.iadd(ArchReg::R1, ArchReg::R0, 1);
        b.bra("join");
        b.label("else");
        b.iadd(ArchReg::R1, ArchReg::R0, 2);
        b.label("join");
        b.exit();
        b.build(LaunchConfig::new(1, 32, 1)).unwrap()
    }

    fn looped() -> Kernel {
        let mut b = KernelBuilder::new("loop");
        b.mov(ArchReg::R0, 8);
        b.label("top");
        b.iadd(ArchReg::R0, ArchReg::R0, -1);
        b.isetp(Cond::Gt, Pred::P0, ArchReg::R0, Operand::Imm(0));
        b.guard(PredGuard::if_true(Pred::P0));
        b.bra("top");
        b.exit();
        b.build(LaunchConfig::new(1, 32, 1)).unwrap()
    }

    #[test]
    fn diamond_shape() {
        let cfg = Cfg::build(&diamond()).unwrap();
        assert_eq!(cfg.num_blocks(), 4);
        assert_eq!(cfg.block(BlockId(0)).succs, vec![BlockId(1), BlockId(2)]);
        assert_eq!(cfg.block(BlockId(1)).succs, vec![BlockId(3)]);
        assert_eq!(cfg.block(BlockId(2)).succs, vec![BlockId(3)]);
        assert_eq!(cfg.block(BlockId(3)).succs, Vec::<BlockId>::new());
        let mut preds = cfg.block(BlockId(3)).preds.clone();
        preds.sort();
        assert_eq!(preds, vec![BlockId(1), BlockId(2)]);
    }

    #[test]
    fn loop_shape() {
        let cfg = Cfg::build(&looped()).unwrap();
        // bb0: mov; bb1: body (iadd, setp, bra); bb2: exit
        assert_eq!(cfg.num_blocks(), 3);
        assert_eq!(cfg.block(BlockId(1)).succs, vec![BlockId(2), BlockId(1)]);
        assert!(cfg.block(BlockId(1)).preds.contains(&BlockId(1)));
    }

    #[test]
    fn block_of_maps_each_pc() {
        let cfg = Cfg::build(&diamond()).unwrap();
        assert_eq!(cfg.block_of(0), BlockId(0));
        assert_eq!(cfg.block_of(1), BlockId(0));
        assert_eq!(cfg.block_of(2), BlockId(1));
        assert_eq!(cfg.block_of(5), BlockId(3));
    }

    #[test]
    fn rpo_starts_at_entry_and_covers_reachable() {
        let cfg = Cfg::build(&diamond()).unwrap();
        let rpo = cfg.reverse_post_order();
        assert_eq!(rpo[0], BlockId(0));
        assert_eq!(rpo.len(), 4);
        // join must come after both arms
        let pos = |b: BlockId| rpo.iter().position(|&x| x == b).unwrap();
        assert!(pos(BlockId(3)) > pos(BlockId(1)));
        assert!(pos(BlockId(3)) > pos(BlockId(2)));
    }

    #[test]
    fn cond_branch_detection() {
        let cfg = Cfg::build(&diamond()).unwrap();
        let cb: Vec<BlockId> = cfg.cond_branch_blocks().collect();
        assert_eq!(cb, vec![BlockId(0)]);
        let cfg = Cfg::build(&looped()).unwrap();
        let cb: Vec<BlockId> = cfg.cond_branch_blocks().collect();
        assert_eq!(cb, vec![BlockId(1)]);
    }

    #[test]
    fn straight_line_is_one_block() {
        let mut b = KernelBuilder::new("s");
        b.mov(ArchReg::R0, 1);
        b.iadd(ArchReg::R1, ArchReg::R0, 1);
        b.exit();
        let cfg = Cfg::build(&b.build(LaunchConfig::new(1, 32, 1)).unwrap()).unwrap();
        assert_eq!(cfg.num_blocks(), 1);
        assert_eq!(cfg.block(BlockId(0)).len(), 3);
        assert_eq!(cfg.exit_blocks().count(), 1);
    }
}
