//! The compile driver and its output, [`CompiledKernel`].

use std::collections::HashMap;
use std::fmt;

use rfv_isa::{ArchReg, Kernel, Opcode, ReleaseFlags};

use crate::candidates::{CandidateSelection, DEFAULT_TABLE_BUDGET_BYTES};
use crate::cfg::{Cfg, CfgError};
use crate::dom::PostDominators;
use crate::insert::insert_flags;
use crate::lifetime::LifetimeStats;
use crate::liveness::{Liveness, RegSet};
use crate::regions::DivergenceRegions;
use crate::release::ReleasePoints;
use crate::uniform::Uniformity;

/// Compilation options.
#[derive(Clone, Copy, Debug)]
pub struct CompileOptions {
    /// Renaming-table budget in bytes (paper default: 1 KB). Registers
    /// beyond the budget are exempted from renaming.
    pub table_budget_bytes: usize,
}

impl Default for CompileOptions {
    fn default() -> CompileOptions {
        CompileOptions {
            table_budget_bytes: DEFAULT_TABLE_BUDGET_BYTES,
        }
    }
}

/// Aggregate statistics from one compilation.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct CompileStats {
    /// Machine instructions in the kernel.
    pub machine_instrs: usize,
    /// Embedded `pir` metadata instructions.
    pub num_pir: usize,
    /// Embedded `pbr` metadata instructions.
    pub num_pbr: usize,
    /// Static code growth from metadata, in percent (Figure 13,
    /// "Static").
    pub static_increase_pct: f64,
    /// Renaming-table size without the budget, in bytes (Figure 14).
    pub unconstrained_table_bytes: usize,
    /// Renaming-table size under the budget, in bytes.
    pub table_bytes: usize,
    /// Registers participating in renaming.
    pub num_renamed: usize,
    /// Registers exempted from renaming.
    pub num_exempt: usize,
    /// Concurrent warps per SM at full occupancy.
    pub warps_per_sm: usize,
    /// Branches that may split a warp.
    pub num_divergent_branches: usize,
    /// Average registers released per `pbr` (paper quotes ≈ 2).
    pub avg_regs_per_pbr: f64,
}

/// Error from [`compile`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CompileError {
    /// The input kernel was not fresh (already carries metadata).
    Cfg(CfgError),
    /// The rewritten kernel failed validation (an internal invariant
    /// violation).
    Internal(String),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Cfg(e) => write!(f, "{e}"),
            CompileError::Internal(e) => write!(f, "internal compiler error: {e}"),
        }
    }
}

impl std::error::Error for CompileError {}

impl From<CfgError> for CompileError {
    fn from(e: CfgError) -> CompileError {
        CompileError::Cfg(e)
    }
}

/// A kernel compiled for register file virtualization.
///
/// Carries the rewritten program (with embedded metadata), per-PC
/// release flags, the reconvergence table the SIMT stack consumes, and
/// the renamed/exempt register partition.
#[derive(Clone, Debug)]
pub struct CompiledKernel {
    kernel: Kernel,
    flags: Vec<ReleaseFlags>,
    /// Final branch PC → reconvergence PC (`None`: reconverges only at
    /// program end).
    reconv: HashMap<usize, Option<usize>>,
    renamed: RegSet,
    exempt: RegSet,
    stats: CompileStats,
    lifetimes: LifetimeStats,
    max_held_per_warp: usize,
    pressure_profile: Vec<usize>,
}

impl CompiledKernel {
    /// The rewritten kernel (machine + metadata instructions).
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    /// Release flags for the instruction at final PC `pc`.
    pub fn flags_at(&self, pc: usize) -> ReleaseFlags {
        self.flags[pc]
    }

    /// Reconvergence PC for the conditional branch at final PC `pc`.
    ///
    /// Returns `None` for non-branches; `Some(None)` marks a branch
    /// that reconverges only at program end.
    pub fn reconv_at(&self, pc: usize) -> Option<Option<usize>> {
        self.reconv.get(&pc).copied()
    }

    /// Whether `r` participates in renaming.
    pub fn is_renamed(&self, r: ArchReg) -> bool {
        self.renamed.contains(r)
    }

    /// Whether `r` is exempted from renaming (statically mapped).
    pub fn is_exempt(&self, r: ArchReg) -> bool {
        self.exempt.contains(r)
    }

    /// The renamed register set.
    pub fn renamed(&self) -> RegSet {
        self.renamed
    }

    /// The exempt register set.
    pub fn exempt(&self) -> RegSet {
        self.exempt
    }

    /// Compilation statistics.
    pub fn stats(&self) -> &CompileStats {
        &self.stats
    }

    /// Static lifetime statistics (Figure 2 inputs).
    pub fn lifetimes(&self) -> &LifetimeStats {
        &self.lifetimes
    }

    /// Registers allocated per thread.
    pub fn num_regs(&self) -> usize {
        self.kernel.num_regs()
    }

    /// Worst-case held-register count at each final PC (0 at metadata
    /// slots): the static register-pressure curve a warp can exert.
    pub fn pressure_profile(&self) -> &[usize] {
        &self.pressure_profile
    }

    /// Compiler-provided per-warp worst-case *concurrent* register
    /// holding under early release: renamed registers that can be
    /// held at once plus the always-held exempt registers. GPU-shrink
    /// uses `this × warps/CTA` as the CTA throttle budget (§8.1).
    pub fn max_held_per_warp(&self) -> usize {
        self.max_held_per_warp
    }
}

/// Compiles a fresh kernel: lifetime analysis, release-point
/// computation, candidate selection, and metadata insertion.
///
/// # Errors
///
/// Fails if the kernel already contains metadata instructions.
pub fn compile(kernel: &Kernel, options: &CompileOptions) -> Result<CompiledKernel, CompileError> {
    let cfg = Cfg::build(kernel)?;
    let liveness = Liveness::compute(&cfg);
    let pdom = PostDominators::compute(&cfg);
    let uniformity = Uniformity::compute(cfg.instrs());
    let regions = DivergenceRegions::compute(&cfg, &pdom, &uniformity);

    // unrestricted pass: find every register that *could* be released,
    // and estimate lifetimes for candidate selection
    let all: RegSet = ArchReg::all().collect();
    let unrestricted = ReleasePoints::compute(&cfg, &liveness, &regions, all);
    let lifetimes = LifetimeStats::analyze(&cfg, &liveness, &unrestricted);
    let releasable = unrestricted.released_regs_with(&cfg);
    let selection = CandidateSelection::select(
        kernel.launch(),
        kernel.num_regs(),
        &lifetimes,
        releasable,
        options.table_budget_bytes,
    );

    // restricted pass: only renamed registers carry release flags
    let release = ReleasePoints::compute(&cfg, &liveness, &regions, selection.renamed);
    let held = release.held_profile(&cfg, selection.renamed);
    let max_held_per_warp = held.iter().copied().max().unwrap_or(0) + selection.exempt.len();
    let insertion = insert_flags(&cfg, &release);
    let mut pressure_profile = vec![0usize; insertion.items.len()];
    for (orig_pc, &new_pc) in insertion.pc_map.iter().enumerate() {
        pressure_profile[new_pc] = held[orig_pc];
    }

    // reconvergence table over all conditional branches (the runtime
    // mask decides whether a branch actually diverges)
    let mut reconv = HashMap::new();
    for b in cfg.cond_branch_blocks() {
        let old_branch_pc = cfg.block(b).end - 1;
        let new_branch_pc = insertion.pc_map[old_branch_pc];
        let target = pdom.ipdom(b).map(|r| insertion.block_start[r.0]);
        reconv.insert(new_branch_pc, target);
    }

    let machine_instrs = cfg.instrs().len();
    let num_pir = insertion
        .items
        .iter()
        .filter(|i| matches!(i, rfv_isa::kernel::ProgItem::Pir(_)))
        .count();
    let num_pbr = insertion
        .items
        .iter()
        .filter(|i| matches!(i, rfv_isa::kernel::ProgItem::Pbr(_)))
        .count();
    let (pbr_regs_total, _) = release.pbr_totals();
    let num_divergent_branches = regions.divergent_branches().count();

    let stats = CompileStats {
        machine_instrs,
        num_pir,
        num_pbr,
        static_increase_pct: 100.0 * (num_pir + num_pbr) as f64 / machine_instrs as f64,
        unconstrained_table_bytes: selection.unconstrained_table_bytes,
        table_bytes: selection.table_bytes,
        num_renamed: selection.renamed.len(),
        num_exempt: selection.exempt.len(),
        warps_per_sm: selection.warps_per_sm,
        num_divergent_branches,
        avg_regs_per_pbr: if num_pbr == 0 {
            0.0
        } else {
            pbr_regs_total as f64 / num_pbr as f64
        },
    };

    let rewritten = Kernel::new(kernel.name(), insertion.items, kernel.launch())
        .map_err(CompileError::Internal)?;

    debug_assert_eq!(rewritten.len(), insertion.flags.len());
    debug_assert!(reconv.keys().all(|&pc| {
        rewritten.items()[pc]
            .as_instr()
            .is_some_and(|i| i.opcode == Opcode::Bra)
    }));

    Ok(CompiledKernel {
        kernel: rewritten,
        flags: insertion.flags,
        reconv,
        renamed: selection.renamed,
        exempt: selection.exempt,
        stats,
        lifetimes,
        max_held_per_warp,
        pressure_profile,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfv_isa::prelude::*;
    use rfv_isa::{PredGuard, Special};

    fn sample_kernel() -> Kernel {
        let mut b = KernelBuilder::new("sample");
        b.s2r(ArchReg::R0, Special::TidX);
        b.mov(ArchReg::R2, 7);
        b.isetp(Cond::Lt, Pred::P0, ArchReg::R0, Operand::Imm(16));
        b.guard(PredGuard::if_false(Pred::P0));
        b.bra("else");
        b.iadd(ArchReg::R1, ArchReg::R2, 1);
        b.bra("join");
        b.label("else");
        b.iadd(ArchReg::R1, ArchReg::R2, 2);
        b.label("join");
        b.stg(ArchReg::R0, ArchReg::R1, 0);
        b.exit();
        b.build(LaunchConfig::new(16, 256, 4)).unwrap()
    }

    #[test]
    fn compile_produces_metadata_and_stats() {
        let ck = compile(&sample_kernel(), &CompileOptions::default()).unwrap();
        let s = ck.stats();
        assert_eq!(s.machine_instrs, 9);
        assert!(s.num_pir >= 1);
        assert_eq!(s.num_pbr, 1, "r2 released at the join");
        assert!(s.static_increase_pct > 0.0);
        assert!(s.num_renamed > 0);
        assert_eq!(s.num_divergent_branches, 1);
        assert!(s.avg_regs_per_pbr >= 1.0);
    }

    #[test]
    fn reconv_table_points_at_branch_and_join() {
        let ck = compile(&sample_kernel(), &CompileOptions::default()).unwrap();
        // exactly one conditional branch
        let branch_pcs: Vec<usize> = ck
            .kernel()
            .items()
            .iter()
            .enumerate()
            .filter(|(_, it)| {
                it.as_instr()
                    .is_some_and(|i| i.opcode == Opcode::Bra && i.guard.is_some())
            })
            .map(|(pc, _)| pc)
            .collect();
        assert_eq!(branch_pcs.len(), 1);
        let reconv = ck.reconv_at(branch_pcs[0]).unwrap().unwrap();
        // the reconvergence slot is the pbr at the join block head
        assert!(matches!(
            ck.kernel().items()[reconv],
            rfv_isa::kernel::ProgItem::Pbr(_)
        ));
    }

    #[test]
    fn flags_align_with_final_pcs() {
        let ck = compile(&sample_kernel(), &CompileOptions::default()).unwrap();
        for (pc, item) in ck.kernel().items().iter().enumerate() {
            if item.is_meta() {
                assert!(!ck.flags_at(pc).any());
            }
        }
        // at least one machine instruction carries a release flag
        let any = (0..ck.kernel().len()).any(|pc| ck.flags_at(pc).any());
        assert!(any);
    }

    #[test]
    fn renamed_and_exempt_partition_used_regs() {
        let ck = compile(&sample_kernel(), &CompileOptions::default()).unwrap();
        for r in [ArchReg::R0, ArchReg::R1, ArchReg::R2] {
            assert!(
                ck.is_renamed(r) ^ ck.is_exempt(r),
                "{r} must be exactly one of renamed/exempt"
            );
        }
    }

    #[test]
    fn compiling_twice_fails_cleanly() {
        let ck = compile(&sample_kernel(), &CompileOptions::default()).unwrap();
        let err = compile(ck.kernel(), &CompileOptions::default()).unwrap_err();
        assert!(matches!(err, CompileError::Cfg(_)));
    }

    #[test]
    fn zero_budget_compiles_with_everything_exempt() {
        let opts = CompileOptions {
            table_budget_bytes: 0,
        };
        let ck = compile(&sample_kernel(), &opts).unwrap();
        assert_eq!(ck.stats().num_renamed, 0);
        assert_eq!(ck.stats().num_pir, 0, "nothing to release");
        assert_eq!(ck.stats().num_pbr, 0);
    }
}
