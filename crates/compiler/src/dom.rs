//! Post-dominator analysis (Cooper–Harvey–Kennedy), used to locate
//! reconvergence points of divergent branches.
//!
//! SIMT hardware reconverges a diverged warp at the *immediate
//! post-dominator* of the branch; the compiler uses the same points to
//! place `pbr` release flags (paper §6.1, Figure 4b/4c: "the register
//! can be safely released at the reconvergence point").

use crate::cfg::{BlockId, Cfg};

/// Post-dominator tree over a CFG.
///
/// Computed on the reverse CFG with a virtual exit node that all
/// exit blocks (and none others) flow into; a block whose immediate
/// post-dominator is the virtual exit reports `None`.
#[derive(Clone, Debug)]
pub struct PostDominators {
    /// `ipdom[b]`: immediate post-dominator of block `b`, or `None`
    /// when it is the virtual exit.
    ipdom: Vec<Option<BlockId>>,
}

impl PostDominators {
    /// Computes post-dominators for `cfg`.
    pub fn compute(cfg: &Cfg) -> PostDominators {
        let n = cfg.num_blocks();
        // Node numbering: 0..n are real blocks, n is the virtual exit.
        let virt = n;
        let mut preds_rev: Vec<Vec<usize>> = vec![Vec::new(); n + 1];
        // reverse CFG: an edge b -> s becomes s -> b, so the reverse
        // predecessors of b are its successors.
        for (bi, b) in cfg.blocks().iter().enumerate() {
            for s in &b.succs {
                preds_rev[bi].push(s.0);
            }
            if b.succs.is_empty() {
                preds_rev[bi].push(virt);
            }
        }

        // Reverse-post-order on the reverse CFG starting from the
        // virtual exit: DFS over reversed edges.
        let mut succs_rev: Vec<Vec<usize>> = vec![Vec::new(); n + 1];
        for (b, ps) in preds_rev.iter().enumerate() {
            for &p in ps {
                succs_rev[p].push(b);
            }
        }
        let mut order = Vec::with_capacity(n + 1);
        let mut visited = vec![false; n + 1];
        let mut stack = vec![(virt, 0usize)];
        visited[virt] = true;
        while let Some(&mut (node, ref mut next)) = stack.last_mut() {
            if *next < succs_rev[node].len() {
                let s = succs_rev[node][*next];
                *next += 1;
                if !visited[s] {
                    visited[s] = true;
                    stack.push((s, 0));
                }
            } else {
                order.push(node);
                stack.pop();
            }
        }
        order.reverse(); // reverse post-order, virtual exit first

        let mut rpo_num = vec![usize::MAX; n + 1];
        for (i, &node) in order.iter().enumerate() {
            rpo_num[node] = i;
        }

        // Cooper–Harvey–Kennedy iteration.
        let undefined = usize::MAX;
        let mut idom = vec![undefined; n + 1];
        idom[virt] = virt;
        let mut changed = true;
        while changed {
            changed = false;
            for &node in order.iter().skip(1) {
                let mut new_idom = undefined;
                for &p in &preds_rev[node] {
                    if idom[p] == undefined {
                        continue;
                    }
                    new_idom = if new_idom == undefined {
                        p
                    } else {
                        intersect(&idom, &rpo_num, p, new_idom)
                    };
                }
                if new_idom != undefined && idom[node] != new_idom {
                    idom[node] = new_idom;
                    changed = true;
                }
            }
        }

        let ipdom = (0..n)
            .map(|b| {
                let d = idom[b];
                if d == undefined || d == virt {
                    None
                } else {
                    Some(BlockId(d))
                }
            })
            .collect();
        PostDominators { ipdom }
    }

    /// The immediate post-dominator of `b` (`None` = the virtual exit,
    /// i.e. the program end).
    pub fn ipdom(&self, b: BlockId) -> Option<BlockId> {
        self.ipdom[b.0]
    }

    /// Whether `a` post-dominates `b` (every path from `b` to exit
    /// passes through `a`). A block post-dominates itself.
    pub fn post_dominates(&self, a: BlockId, b: BlockId) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.ipdom(cur) {
                Some(next) => cur = next,
                None => return false,
            }
        }
    }
}

fn intersect(idom: &[usize], rpo_num: &[usize], mut a: usize, mut b: usize) -> usize {
    while a != b {
        while rpo_num[a] > rpo_num[b] {
            a = idom[a];
        }
        while rpo_num[b] > rpo_num[a] {
            b = idom[b];
        }
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfv_isa::prelude::*;
    use rfv_isa::PredGuard;

    fn build(f: impl FnOnce(&mut KernelBuilder)) -> Cfg {
        let mut b = KernelBuilder::new("t");
        f(&mut b);
        Cfg::build(&b.build(LaunchConfig::new(1, 32, 1)).unwrap()).unwrap()
    }

    #[test]
    fn diamond_reconverges_at_join() {
        let cfg = build(|b| {
            b.isetp(Cond::Lt, Pred::P0, ArchReg::R0, Operand::Imm(5));
            b.guard(PredGuard::if_false(Pred::P0));
            b.bra("else");
            b.iadd(ArchReg::R1, ArchReg::R0, 1);
            b.bra("join");
            b.label("else");
            b.iadd(ArchReg::R1, ArchReg::R0, 2);
            b.label("join");
            b.exit();
        });
        let pd = PostDominators::compute(&cfg);
        // bb0 branch, bb1 then, bb2 else, bb3 join
        assert_eq!(pd.ipdom(BlockId(0)), Some(BlockId(3)));
        assert_eq!(pd.ipdom(BlockId(1)), Some(BlockId(3)));
        assert_eq!(pd.ipdom(BlockId(2)), Some(BlockId(3)));
        assert_eq!(pd.ipdom(BlockId(3)), None);
        assert!(pd.post_dominates(BlockId(3), BlockId(0)));
        assert!(!pd.post_dominates(BlockId(1), BlockId(0)));
    }

    #[test]
    fn loop_bottom_test_reconverges_at_exit() {
        let cfg = build(|b| {
            b.mov(ArchReg::R0, 8);
            b.label("top");
            b.iadd(ArchReg::R0, ArchReg::R0, -1);
            b.isetp(Cond::Gt, Pred::P0, ArchReg::R0, Operand::Imm(0));
            b.guard(PredGuard::if_true(Pred::P0));
            b.bra("top");
            b.exit();
        });
        let pd = PostDominators::compute(&cfg);
        // bb0 preheader, bb1 body+branch, bb2 exit
        assert_eq!(pd.ipdom(BlockId(1)), Some(BlockId(2)));
        assert_eq!(pd.ipdom(BlockId(0)), Some(BlockId(1)));
    }

    #[test]
    fn branch_to_separate_exits_has_virtual_ipdom() {
        let cfg = build(|b| {
            b.isetp(Cond::Lt, Pred::P0, ArchReg::R0, Operand::Imm(5));
            b.guard(PredGuard::if_false(Pred::P0));
            b.bra("other");
            b.exit();
            b.label("other");
            b.exit();
        });
        let pd = PostDominators::compute(&cfg);
        assert_eq!(pd.ipdom(BlockId(0)), None);
    }

    #[test]
    fn nested_diamonds() {
        let cfg = build(|b| {
            b.isetp(Cond::Lt, Pred::P0, ArchReg::R0, Operand::Imm(5));
            b.guard(PredGuard::if_false(Pred::P0));
            b.bra("outer_else");
            // outer then: contains inner diamond
            b.isetp(Cond::Gt, Pred::P1, ArchReg::R0, Operand::Imm(2));
            b.guard(PredGuard::if_false(Pred::P1));
            b.bra("inner_else");
            b.iadd(ArchReg::R1, ArchReg::R0, 1);
            b.bra("inner_join");
            b.label("inner_else");
            b.iadd(ArchReg::R1, ArchReg::R0, 2);
            b.label("inner_join");
            b.iadd(ArchReg::R2, ArchReg::R1, 0);
            b.bra("outer_join");
            b.label("outer_else");
            b.iadd(ArchReg::R2, ArchReg::R0, 3);
            b.label("outer_join");
            b.exit();
        });
        let pd = PostDominators::compute(&cfg);
        // bb0 outer branch; bb1 inner branch; bb2 inner then;
        // bb3 inner else; bb4 inner join; bb5 outer else; bb6 outer join
        assert_eq!(pd.ipdom(BlockId(1)), Some(BlockId(4)));
        assert_eq!(pd.ipdom(BlockId(0)), Some(BlockId(6)));
        assert!(pd.post_dominates(BlockId(6), BlockId(1)));
        assert!(pd.post_dominates(BlockId(4), BlockId(2)));
        assert!(!pd.post_dominates(BlockId(4), BlockId(5)));
    }
}
