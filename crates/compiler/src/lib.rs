//! # rfv-compiler — compiler support for GPU register file virtualization
//!
//! This crate implements §6 of *GPU Register File Virtualization*
//! (MICRO-48, 2015): the static analyses and code rewriting that let
//! the hardware release dead registers early.
//!
//! Pipeline (driven by [`compile`]):
//!
//! 1. [`cfg::Cfg`] — basic blocks and edges;
//! 2. [`dom::PostDominators`] — reconvergence points;
//! 3. [`liveness::Liveness`] — thread-level register liveness;
//! 4. [`uniform::Uniformity`] — which branches can actually split a
//!    warp;
//! 5. [`regions::DivergenceRegions`] — blocks that may run with a
//!    partial lane mask;
//! 6. [`release::ReleasePoints`] — `pir` flags at last reads in
//!    convergent code, `pbr` lists at reconvergence points;
//! 7. [`candidates::CandidateSelection`] — renaming-table budgeting
//!    (§6.2) that exempts long-lived registers;
//! 8. [`insert::insert_flags`] — embeds the 64-bit metadata
//!    instructions and remaps branch targets.
//!
//! The [`spill::spill_to_cap`] pass implements the paper's
//! *compiler-spill* baseline: capping the register allocation and
//! spilling the excess to per-thread local memory.
//!
//! ```
//! use rfv_isa::prelude::*;
//! use rfv_compiler::{compile, CompileOptions};
//!
//! let mut b = KernelBuilder::new("demo");
//! b.mov(ArchReg::R0, 1);
//! b.iadd(ArchReg::R1, ArchReg::R0, 41); // last read of r0
//! b.stg(ArchReg::R1, ArchReg::R1, 0);
//! b.exit();
//! let kernel = b.build(LaunchConfig::new(1, 64, 2))?;
//!
//! let compiled = compile(&kernel, &CompileOptions::default())?;
//! assert!(compiled.stats().num_pir >= 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod candidates;
pub mod cfg;
pub mod compiled;
pub mod dom;
pub mod insert;
pub mod lifetime;
pub mod liveness;
pub mod regions;
pub mod release;
pub mod spill;
pub mod uniform;

pub use candidates::CandidateSelection;
pub use cfg::{BasicBlock, BlockId, Cfg};
pub use compiled::{compile, CompileError, CompileOptions, CompileStats, CompiledKernel};
pub use dom::PostDominators;
pub use lifetime::{LifetimeStats, RegLifetime};
pub use liveness::{Liveness, RegSet};
pub use regions::DivergenceRegions;
pub use release::ReleasePoints;
pub use spill::{spill_to_cap, SpillError, SpillResult};
pub use uniform::Uniformity;
