//! End-to-end execution tests: functional correctness of the SIMT
//! simulator and transparency of register virtualization.

use rfv_compiler::{compile, CompileOptions, CompiledKernel};
use rfv_isa::prelude::*;
use rfv_isa::{PredGuard, Special};
use rfv_sim::{simulate, simulate_with_init, SimConfig, SimResult};

fn compiled(f: impl FnOnce(&mut KernelBuilder), launch: LaunchConfig) -> CompiledKernel {
    let mut b = KernelBuilder::new("test");
    f(&mut b);
    let kernel = b.build(launch).unwrap();
    compile(&kernel, &CompileOptions::default()).unwrap()
}

/// `out[tid] = in[tid] + 1` over one CTA of 64 threads.
fn increment_kernel(b: &mut KernelBuilder) {
    let (r0, r1, r2) = (ArchReg::R0, ArchReg::R1, ArchReg::R2);
    b.s2r(r0, Special::TidX);
    b.shl(r1, r0, 2);
    b.ldg(r2, r1, 0); // in[] at 0x0
    b.iadd(r2, r2, 1);
    b.stg(r1, r2, 0x1000); // out[] at 0x1000
    b.exit();
}

#[test]
fn increment_kernel_produces_correct_outputs() {
    let ck = compiled(increment_kernel, LaunchConfig::new(1, 64, 1));
    let init: Vec<(u64, u32)> = (0..64).map(|i| (i * 4, 100 + i as u32)).collect();
    let r = simulate_with_init(&ck, &SimConfig::baseline_full(), &init).unwrap();
    for i in 0..64u64 {
        assert_eq!(
            r.memories[0].peek_word(0x1000 + i * 4),
            101 + i as u32,
            "thread {i}"
        );
    }
    assert_eq!(r.sm0().ctas_completed, 1);
    assert!(r.cycles > 0);
}

/// Divergent kernel: threads below 16 in each warp double, the rest
/// negate-add; all write results.
fn divergent_kernel(b: &mut KernelBuilder) {
    let (r0, r1, r2) = (ArchReg::R0, ArchReg::R1, ArchReg::R2);
    b.s2r(r0, Special::TidX);
    b.s2r(r2, Special::LaneId);
    b.isetp(Cond::Lt, Pred::P0, r2, Operand::Imm(16));
    b.guard(PredGuard::if_false(Pred::P0));
    b.bra("else");
    b.imul(r1, r0, 2); // lanes 0..15
    b.bra("join");
    b.label("else");
    b.iadd(r1, r0, 1000); // lanes 16..31
    b.label("join");
    b.shl(r2, r0, 2);
    b.stg(r2, r1, 0x2000);
    b.exit();
}

#[test]
fn divergent_branches_reconverge_correctly() {
    let ck = compiled(divergent_kernel, LaunchConfig::new(1, 64, 1));
    let r = simulate(&ck, &SimConfig::baseline_full()).unwrap();
    for tid in 0..64u64 {
        let expected = if tid % 32 < 16 {
            (tid * 2) as u32
        } else {
            tid as u32 + 1000
        };
        assert_eq!(
            r.memories[0].peek_word(0x2000 + tid * 4),
            expected,
            "thread {tid}"
        );
    }
}

/// Uniform loop: out[tid] = tid summed over 8 iterations.
fn loop_kernel(b: &mut KernelBuilder) {
    let (r0, r1, r2, r3) = (ArchReg::R0, ArchReg::R1, ArchReg::R2, ArchReg::R3);
    b.s2r(r0, Special::TidX);
    b.mov(r1, 0); // acc
    b.mov(r2, 8); // counter (uniform)
    b.label("top");
    b.iadd(r1, r1, Operand::Reg(r0));
    b.iadd(r2, r2, -1);
    b.isetp(Cond::Gt, Pred::P0, r2, Operand::Imm(0));
    b.guard(PredGuard::if_true(Pred::P0));
    b.bra("top");
    b.shl(r3, r0, 2);
    b.stg(r3, r1, 0x3000);
    b.exit();
}

#[test]
fn uniform_loops_iterate_correctly() {
    let ck = compiled(loop_kernel, LaunchConfig::new(2, 32, 2));
    let r = simulate(&ck, &SimConfig::baseline_full()).unwrap();
    for tid in 0..32u64 {
        assert_eq!(
            r.memories[0].peek_word(0x3000 + tid * 4),
            (tid * 8) as u32,
            "thread {tid}"
        );
    }
}

/// Data-dependent (divergent) loop: each lane iterates `laneid % 4 + 1`
/// times.
fn divergent_loop_kernel(b: &mut KernelBuilder) {
    let (r0, r1, r2, r3) = (ArchReg::R0, ArchReg::R1, ArchReg::R2, ArchReg::R3);
    b.s2r(r0, Special::LaneId);
    b.and(r2, r0, 3);
    b.iadd(r2, r2, 1); // trip count: 1..4 per lane
    b.mov(r1, 0);
    b.label("top");
    b.iadd(r1, r1, 10);
    b.iadd(r2, r2, -1);
    b.isetp(Cond::Gt, Pred::P0, r2, Operand::Imm(0));
    b.guard(PredGuard::if_true(Pred::P0));
    b.bra("top");
    b.s2r(r0, Special::TidX);
    b.shl(r3, r0, 2);
    b.stg(r3, r1, 0x4000);
    b.exit();
}

#[test]
fn divergent_trip_counts_execute_per_lane() {
    let ck = compiled(divergent_loop_kernel, LaunchConfig::new(1, 32, 1));
    let r = simulate(&ck, &SimConfig::baseline_full()).unwrap();
    for tid in 0..32u64 {
        let trips = (tid % 4) + 1;
        assert_eq!(
            r.memories[0].peek_word(0x4000 + tid * 4),
            (trips * 10) as u32,
            "thread {tid}"
        );
    }
}

/// Barrier kernel: warp 0 writes shared memory, all warps read after
/// the barrier.
fn barrier_kernel(b: &mut KernelBuilder) {
    let (r0, r1, r2, r3) = (ArchReg::R0, ArchReg::R1, ArchReg::R2, ArchReg::R3);
    b.s2r(r0, Special::TidX);
    b.s2r(r1, Special::WarpId);
    // warp 0 fills shared[lane] = lane * 7
    b.isetp(Cond::Eq, Pred::P0, r1, Operand::Imm(0));
    b.s2r(r2, Special::LaneId);
    b.imul(r3, r2, 7);
    b.shl(r2, r2, 2);
    b.guard(PredGuard::if_true(Pred::P0));
    b.sts(r2, r3, 0);
    b.bar();
    // everyone reads shared[lane]
    b.s2r(r2, Special::LaneId);
    b.shl(r2, r2, 2);
    b.lds(r3, r2, 0);
    b.shl(r2, r0, 2);
    b.stg(r2, r3, 0x5000);
    b.exit();
}

#[test]
fn barriers_synchronize_shared_memory() {
    let ck = compiled(barrier_kernel, LaunchConfig::new(1, 128, 1));
    let r = simulate(&ck, &SimConfig::baseline_full()).unwrap();
    assert!(r.sm0().barrier_waits >= 4, "four warps hit the barrier");
    for tid in 0..128u64 {
        let lane = tid % 32;
        assert_eq!(
            r.memories[0].peek_word(0x5000 + tid * 4),
            (lane * 7) as u32,
            "thread {tid}"
        );
    }
}

/// Virtualization transparency: the full scheme (and GPU-shrink, and
/// the hardware-only scheme) must produce bit-identical outputs to the
/// conventional GPU. Functional values live in *physical* registers,
/// so an unsound early release would corrupt this comparison.
type NamedKernel = (&'static str, fn(&mut KernelBuilder), LaunchConfig);

#[test]
fn virtualization_is_transparent() {
    let kernels: Vec<NamedKernel> = vec![
        ("inc", increment_kernel, LaunchConfig::new(4, 64, 2)),
        ("div", divergent_kernel, LaunchConfig::new(4, 64, 2)),
        ("loop", loop_kernel, LaunchConfig::new(4, 32, 4)),
        ("dloop", divergent_loop_kernel, LaunchConfig::new(4, 32, 4)),
        ("bar", barrier_kernel, LaunchConfig::new(2, 128, 2)),
    ];
    for (name, f, launch) in kernels {
        let ck = compiled(f, launch);
        let reference = simulate(&ck, &SimConfig::conventional()).unwrap();
        // compile a flag-free copy for the policies that ignore flags
        for (cfg_name, cfg) in [
            ("full-128KB", SimConfig::baseline_full()),
            ("gpu-shrink-50", SimConfig::gpu_shrink(50)),
            ("hw-only", {
                let mut c = SimConfig::baseline_full();
                c.regfile.policy = rfv_core::VirtualizationPolicy::HardwareOnly;
                c
            }),
        ] {
            let got = simulate(&ck, &cfg).unwrap();
            compare_outputs(name, cfg_name, &reference, &got);
        }
    }
}

fn compare_outputs(kernel: &str, cfg: &str, a: &SimResult, b: &SimResult) {
    for base in [0x1000u64, 0x2000, 0x3000, 0x4000, 0x5000] {
        for off in (0..2048).step_by(4) {
            let (x, y) = (
                a.memories[0].peek_word(base + off),
                b.memories[0].peek_word(base + off),
            );
            assert_eq!(x, y, "{kernel}/{cfg}: divergence at {:#x}", base + off);
        }
    }
}

#[test]
fn full_policy_reduces_peak_registers() {
    // many short-lived registers: the full scheme should need fewer
    // physical registers than the conventional allocation
    let ck = compiled(
        |b| {
            for i in 0..16u8 {
                b.mov(ArchReg::new(i), i as i32);
                b.stg(ArchReg::new(i), ArchReg::new(i), 0x6000 + 4 * i as i32);
            }
            b.exit();
        },
        LaunchConfig::new(8, 64, 4),
    );
    let full = simulate(&ck, &SimConfig::baseline_full()).unwrap();
    let base = simulate(&ck, &SimConfig::conventional()).unwrap();
    assert!(
        full.sm0().regfile.peak_live < base.sm0().regfile.peak_live,
        "virtualization must shrink peak demand: {} vs {}",
        full.sm0().regfile.peak_live,
        base.sm0().regfile.peak_live
    );
}

#[test]
fn flag_cache_absorbs_metadata_decodes() {
    let ck = compiled(loop_kernel, LaunchConfig::new(8, 256, 4));
    let with_cache = simulate(&ck, &SimConfig::baseline_full()).unwrap();
    let mut no_cache_cfg = SimConfig::baseline_full();
    no_cache_cfg.regfile.flag_cache_entries = 0;
    let without = simulate(&ck, &no_cache_cfg).unwrap();
    assert!(
        with_cache.sm0().meta_decoded < without.sm0().meta_decoded,
        "{} !< {}",
        with_cache.sm0().meta_decoded,
        without.sm0().meta_decoded
    );
    assert!(with_cache.sm0().flag_cache.hits > 0);
}

#[test]
fn multi_sm_distribution_covers_all_ctas() {
    let ck = compiled(increment_kernel, LaunchConfig::new(8, 64, 2));
    let mut cfg = SimConfig::baseline_full();
    cfg.num_sms = 4;
    let r = simulate(&ck, &cfg).unwrap();
    let total: u64 = r.total(|s| s.ctas_completed);
    assert_eq!(total, 8);
    assert_eq!(r.per_sm.len(), 4);
    assert!(r.cycles >= r.per_sm.iter().map(|s| s.cycles).min().unwrap());
}

#[test]
fn sampling_records_occupancy() {
    let ck = compiled(loop_kernel, LaunchConfig::new(4, 256, 4));
    let r = simulate(&ck, &SimConfig::baseline_full()).unwrap();
    let s = r.sm0();
    assert!(!s.samples.is_empty());
    assert!(s.mean_live_regs() > 0.0);
    assert!(s.mean_live_fraction() > 0.0 && s.mean_live_fraction() <= 1.0);
}
