//! Timing-behaviour tests: the simulator's latency, scheduling, and
//! contention mechanisms must be *observable* in cycle counts, not
//! just bookkept.

use rfv_compiler::{compile, CompileOptions, CompiledKernel};
use rfv_isa::prelude::*;
use rfv_isa::{ArchReg as R, PredGuard, Special};
use rfv_sim::{simulate, SimConfig};

fn build(f: impl FnOnce(&mut KernelBuilder), launch: LaunchConfig) -> CompiledKernel {
    let mut b = KernelBuilder::new("timing");
    f(&mut b);
    compile(&b.build(launch).unwrap(), &CompileOptions::default()).unwrap()
}

fn cycles(ck: &CompiledKernel, cfg: &SimConfig) -> u64 {
    simulate(ck, cfg).unwrap().cycles
}

#[test]
fn sfu_chain_is_slower_than_alu_chain() {
    let launch = LaunchConfig::new(1, 32, 1);
    let alu = build(
        |b| {
            b.mov(R::R0, 0x3f80_0000);
            for _ in 0..32 {
                b.fadd(R::R0, R::R0, Operand::Imm(0x3f80_0000));
            }
            b.stg(R::R1, R::R0, 0);
            b.exit();
        },
        launch,
    );
    let sfu = build(
        |b| {
            b.mov(R::R0, 0x3f80_0000);
            for _ in 0..32 {
                b.fsqrt(R::R0, R::R0);
            }
            b.stg(R::R1, R::R0, 0);
            b.exit();
        },
        launch,
    );
    let cfg = SimConfig::baseline_full();
    assert!(
        cycles(&sfu, &cfg) > cycles(&alu, &cfg) + 32,
        "32 SFU ops must cost several cycles more each than ALU ops"
    );
}

#[test]
fn strided_loads_cost_more_than_coalesced() {
    let launch = LaunchConfig::new(1, 32, 1);
    let coalesced = build(
        |b| {
            b.s2r(R::R0, Special::LaneId);
            b.shl(R::R1, R::R0, 2); // 4-byte stride: one 128 B segment
            b.ldg(R::R2, R::R1, 0);
            b.stg(R::R1, R::R2, 0x8000);
            b.exit();
        },
        launch,
    );
    let strided = build(
        |b| {
            b.s2r(R::R0, Special::LaneId);
            b.shl(R::R1, R::R0, 7); // 128-byte stride: 32 segments
            b.ldg(R::R2, R::R1, 0);
            b.stg(R::R1, R::R2, 0x8000);
            b.exit();
        },
        launch,
    );
    let cfg = SimConfig::baseline_full();
    assert!(
        cycles(&strided, &cfg) > cycles(&coalesced, &cfg),
        "uncoalesced access must pay per-transaction latency"
    );
}

#[test]
fn bank_conflicts_cost_cycles() {
    let launch = LaunchConfig::new(1, 32, 1);
    // r4 and r8 share a bank (ids ≡ 0 mod 4); r4 and r5 do not
    let conflicting = build(
        |b| {
            b.mov(R::new(4), 1);
            b.mov(R::new(8), 2);
            for _ in 0..64 {
                b.iadd(R::new(12), R::new(4), Operand::Reg(R::new(8)));
            }
            b.stg(R::new(0), R::new(12), 0);
            b.exit();
        },
        launch,
    );
    let clean = build(
        |b| {
            b.mov(R::new(4), 1);
            b.mov(R::new(5), 2);
            for _ in 0..64 {
                b.iadd(R::new(12), R::new(4), Operand::Reg(R::new(5)));
            }
            b.stg(R::new(0), R::new(12), 0);
            b.exit();
        },
        launch,
    );
    let cfg = SimConfig::baseline_full();
    let (rc, rn) = (
        simulate(&conflicting, &cfg).unwrap(),
        simulate(&clean, &cfg).unwrap(),
    );
    assert!(rc.sm0().bank_conflicts >= 64);
    assert_eq!(rn.sm0().bank_conflicts, 0);
    assert!(rc.cycles > rn.cycles, "{} !> {}", rc.cycles, rn.cycles);
}

#[test]
fn memory_latency_config_is_respected() {
    let launch = LaunchConfig::new(1, 32, 1);
    let ck = build(
        |b| {
            b.s2r(R::R0, Special::LaneId);
            b.shl(R::R1, R::R0, 2);
            b.ldg(R::R2, R::R1, 0);
            b.iadd(R::R2, R::R2, 1); // dependent: must wait for the load
            b.stg(R::R1, R::R2, 0x8000);
            b.exit();
        },
        launch,
    );
    let mut slow = SimConfig::baseline_full();
    slow.mem_base_latency = 800;
    let fast_cycles = cycles(&ck, &SimConfig::baseline_full());
    let slow_cycles = cycles(&ck, &slow);
    assert!(
        slow_cycles >= fast_cycles + 550,
        "quadrupled memory latency must dominate: {slow_cycles} vs {fast_cycles}"
    );
}

#[test]
fn two_level_scheduler_hides_memory_latency() {
    // many warps interleaving loads: more concurrent warps should
    // give strictly better throughput per CTA than one warp
    let kernel = |b: &mut KernelBuilder| {
        b.s2r(R::R0, Special::TidX);
        b.s2r(R::R1, Special::CtaIdX);
        b.imad(R::R0, R::R1, Operand::Imm(256), Operand::Reg(R::R0));
        b.shl(R::R1, R::R0, 2);
        b.mov(R::R4, 8);
        b.label("loop");
        b.ldg(R::R2, R::R1, 0);
        b.iadd(R::R3, R::R2, 1);
        b.stg(R::R1, R::R3, 0x40000);
        b.iadd(R::R4, R::R4, -1);
        b.isetp(Cond::Gt, Pred::P0, R::R4, Operand::Imm(0));
        b.guard(PredGuard::if_true(Pred::P0));
        b.bra("loop");
        b.exit();
    };
    let one_warp = build(kernel, LaunchConfig::new(1, 32, 1));
    let eight_warps = build(kernel, LaunchConfig::new(1, 256, 1));
    let cfg = SimConfig::baseline_full();
    let c1 = cycles(&one_warp, &cfg);
    let c8 = cycles(&eight_warps, &cfg);
    // 8x the work in far less than 8x the time (latency hiding)
    assert!(
        c8 < c1 * 3,
        "8 warps must overlap memory latency: {c8} vs {c1} for one warp"
    );
}

#[test]
fn rename_pipeline_cycle_is_observable() {
    let launch = LaunchConfig::new(1, 32, 1);
    let ck = build(
        |b| {
            b.mov(R::R0, 0);
            for _ in 0..64 {
                b.iadd(R::R0, R::R0, 1);
            }
            b.stg(R::R1, R::R0, 0);
            b.exit();
        },
        launch,
    );
    let with = SimConfig::baseline_full();
    let mut without = SimConfig::baseline_full();
    without.rename_extra_cycle = false;
    assert!(
        cycles(&ck, &with) > cycles(&ck, &without),
        "the extra renaming pipeline cycle must show up for a dependent chain"
    );
}

#[test]
fn wakeup_latency_delays_first_write() {
    let launch = LaunchConfig::new(1, 32, 1);
    let ck = build(
        |b| {
            // a dependent chain of fresh allocations
            b.mov(R::R0, 1);
            for i in 1..16u8 {
                b.iadd(R::new(i), R::new(i - 1), 1);
            }
            b.stg(R::R0, R::new(15), 0);
            b.exit();
        },
        launch,
    );
    let mut fast = SimConfig::baseline_full();
    fast.regfile.wakeup_cycles = 0;
    let mut slow = SimConfig::baseline_full();
    slow.regfile.wakeup_cycles = 40;
    assert!(
        cycles(&ck, &slow) > cycles(&ck, &fast),
        "a 40-cycle subarray wakeup must be visible on a cold file"
    );
}

#[test]
fn partial_tail_warp_executes_correct_lane_count() {
    // 169 threads/CTA (the NN benchmark shape): the sixth warp has
    // only 9 active lanes
    let ck = build(
        |b| {
            b.s2r(R::R0, Special::TidX);
            b.shl(R::R1, R::R0, 2);
            b.stg(R::R1, R::R0, 0x9000);
            b.exit();
        },
        LaunchConfig::new(1, 169, 1),
    );
    let r = simulate(&ck, &SimConfig::baseline_full()).unwrap();
    for tid in 0..169u64 {
        assert_eq!(r.memories[0].peek_word(0x9000 + tid * 4), tid as u32);
    }
    // lane 169..192 never wrote
    for tid in 169..192u64 {
        assert_ne!(r.memories[0].peek_word(0x9000 + tid * 4), tid as u32);
    }
}

#[test]
fn cta_slot_reuse_resets_shared_memory() {
    // CTA n reads shared memory before writing it; a stale value from
    // the previous resident CTA would leak into its output
    let ck = build(
        |b| {
            b.s2r(R::R0, Special::TidX);
            b.s2r(R::R1, Special::CtaIdX);
            b.shl(R::R2, R::R0, 2);
            b.lds(R::R3, R::R2, 0); // must read 0 on a fresh CTA
            b.iadd(R::R4, R::R3, Operand::Reg(R::R1));
            b.sts(R::R2, R::R4, 0); // pollute for the next tenant
            b.imad(R::R5, R::R1, Operand::Imm(32), Operand::Reg(R::R0));
            b.shl(R::R5, R::R5, 2);
            b.stg(R::R5, R::R4, 0xa000);
            b.exit();
        },
        LaunchConfig::new(6, 32, 1), // six CTAs reuse one slot
    );
    let r = simulate(&ck, &SimConfig::baseline_full()).unwrap();
    for cta in 0..6u64 {
        for tid in 0..32u64 {
            assert_eq!(
                r.memories[0].peek_word(0xa000 + (cta * 32 + tid) * 4),
                cta as u32,
                "cta {cta} tid {tid} saw stale shared memory"
            );
        }
    }
}

#[test]
fn simd_efficiency_reflects_divergence() {
    let uniform = build(
        |b| {
            b.s2r(R::R0, Special::TidX);
            b.shl(R::R1, R::R0, 2);
            b.stg(R::R1, R::R0, 0xb000);
            b.exit();
        },
        LaunchConfig::new(1, 32, 1),
    );
    let divergent = build(
        |b| {
            b.s2r(R::R0, Special::LaneId);
            b.isetp(Cond::Lt, Pred::P0, R::R0, Operand::Imm(8));
            b.guard(PredGuard::if_false(Pred::P0));
            b.bra("else");
            // quarter-mask arm with real work
            for _ in 0..8 {
                b.iadd(R::R1, R::R0, 1);
            }
            b.bra("join");
            b.label("else");
            for _ in 0..8 {
                b.iadd(R::R1, R::R0, 2);
            }
            b.label("join");
            b.shl(R::R2, R::R0, 2);
            b.stg(R::R2, R::R1, 0xb100);
            b.exit();
        },
        LaunchConfig::new(1, 32, 1),
    );
    let cfg = SimConfig::baseline_full();
    let eu = simulate(&uniform, &cfg).unwrap().sm0().simd_efficiency();
    let ed = simulate(&divergent, &cfg).unwrap().sm0().simd_efficiency();
    assert!(
        eu > 0.99,
        "uniform kernel must keep all lanes busy, got {eu}"
    );
    assert!(
        ed < 0.75,
        "the divergent kernel spends most instructions under partial masks, got {ed}"
    );
}

#[test]
fn mshr_merges_same_segment_loads() {
    // eight warps all load the SAME cache line: only the first pays a
    // transaction, the rest merge
    let shared_line = build(
        |b| {
            b.s2r(R::R0, Special::LaneId);
            b.and(R::R1, R::R0, 0); // addr 0 for every lane
            b.ldg(R::R2, R::R1, 0x100);
            b.shl(R::R3, R::R0, 2);
            b.stg(R::R3, R::R2, 0xc000);
            b.exit();
        },
        LaunchConfig::new(1, 256, 1),
    );
    let r = simulate(&shared_line, &SimConfig::baseline_full()).unwrap();
    assert!(
        r.sm0().mshr_merges >= 4,
        "later warps must merge into the in-flight segment, got {}",
        r.sm0().mshr_merges
    );
    assert!(
        r.sm0().mem_txns < 8 + 8, // 8 warps x (1 load + 1 store segment)
        "merged loads must not re-issue transactions, got {}",
        r.sm0().mem_txns
    );
}
