//! Tracing integration tests: the structured trace must be a pure
//! observer (identical statistics and outputs with tracing on or off)
//! and its Chrome-JSON export must parse as the trace-event format.

use rfv_compiler::{compile, CompileOptions, CompiledKernel};
use rfv_isa::prelude::*;
use rfv_isa::Special;
use rfv_sim::{simulate_traced_with_init, simulate_with_init, SimConfig};
use rfv_trace::{ChromeWriter, TraceKind};

fn compiled(f: impl FnOnce(&mut KernelBuilder), launch: LaunchConfig) -> CompiledKernel {
    let mut b = KernelBuilder::new("test");
    f(&mut b);
    let kernel = b.build(launch).unwrap();
    compile(&kernel, &CompileOptions::default()).unwrap()
}

/// A kernel with loads, stores, ALU work, and a barrier, so the trace
/// exercises register, memory, scheduler, and barrier events.
fn worker_kernel(b: &mut KernelBuilder) {
    let (r0, r1, r2, r3) = (ArchReg::R0, ArchReg::R1, ArchReg::R2, ArchReg::R3);
    b.s2r(r0, Special::TidX);
    b.shl(r1, r0, 2);
    b.ldg(r2, r1, 0);
    b.imul(r3, r2, 3);
    b.bar();
    b.iadd(r3, r3, 7);
    b.stg(r1, r3, 0x4000);
    b.exit();
}

fn init_words() -> Vec<(u64, u32)> {
    (0..128).map(|i| (i * 4, i as u32)).collect()
}

#[test]
fn tracing_does_not_perturb_simulation() {
    let ck = compiled(worker_kernel, LaunchConfig::new(2, 128, 2));
    let init = init_words();
    for config in [
        SimConfig::baseline_full(),
        SimConfig::conventional(),
        SimConfig::gpu_shrink(75),
    ] {
        let plain = simulate_with_init(&ck, &config, &init).unwrap();
        let traced = simulate_traced_with_init(&ck, &config, &init, 1 << 20).unwrap();
        assert_eq!(plain.cycles, traced.result.cycles);
        assert_eq!(
            plain.per_sm, traced.result.per_sm,
            "statistics must be identical with tracing on"
        );
        for (a, b) in plain.memories.iter().zip(&traced.result.memories) {
            for i in 0..128u64 {
                assert_eq!(
                    a.peek_word(0x4000 + i * 4),
                    b.peek_word(0x4000 + i * 4),
                    "outputs must be identical with tracing on"
                );
            }
        }
        assert!(!traced.events.is_empty(), "traced run must record events");
    }
}

#[test]
fn trace_capacity_zero_records_nothing() {
    let ck = compiled(worker_kernel, LaunchConfig::new(1, 64, 1));
    let traced =
        simulate_traced_with_init(&ck, &SimConfig::baseline_full(), &init_words(), 0).unwrap();
    assert!(traced.events.is_empty());
    assert!(traced.result.cycles > 0);
}

#[test]
fn traced_run_covers_the_event_vocabulary() {
    let ck = compiled(worker_kernel, LaunchConfig::new(2, 128, 2));
    let mut config = SimConfig::baseline_full();
    config.num_sms = 2;
    let traced = simulate_traced_with_init(&ck, &config, &init_words(), 1 << 20).unwrap();
    let has = |pred: &dyn Fn(&TraceKind) -> bool| traced.events.iter().any(|e| pred(&e.kind));
    assert!(has(&|k| matches!(k, TraceKind::RegAlloc { .. })));
    assert!(has(&|k| matches!(k, TraceKind::RegRelease { .. })));
    assert!(has(&|k| matches!(k, TraceKind::RegRename { .. })));
    assert!(has(&|k| matches!(k, TraceKind::Issue { .. })));
    assert!(has(&|k| matches!(k, TraceKind::Stall { .. })));
    assert!(has(&|k| matches!(k, TraceKind::Mem { .. })));
    assert!(has(&|k| matches!(k, TraceKind::GateOn { .. })));
    assert!(has(&|k| matches!(k, TraceKind::CtaLaunch { .. })));
    assert!(has(&|k| matches!(k, TraceKind::CtaComplete { .. })));
    assert!(has(&|k| matches!(k, TraceKind::ThrottleAdmit { .. })));
    assert!(has(&|k| matches!(k, TraceKind::ThrottleBalance { .. })));
    // events are sorted by cycle and stamped with real SM ids
    assert!(traced.events.windows(2).all(|w| w[0].cycle <= w[1].cycle));
    assert!(traced.events.iter().any(|e| e.sm == 1), "two SMs traced");
}

#[test]
fn chrome_export_of_a_real_run_parses() {
    let ck = compiled(worker_kernel, LaunchConfig::new(2, 128, 2));
    let traced =
        simulate_traced_with_init(&ck, &SimConfig::baseline_full(), &init_words(), 1 << 20)
            .unwrap();
    let mut out = Vec::new();
    let mut w = ChromeWriter::new(&mut out).unwrap();
    for e in &traced.events {
        w.write_event(e).unwrap();
    }
    w.finish().unwrap();
    let text = String::from_utf8(out).unwrap();
    let parsed = rfv_trace::json::parse(&text).expect("Chrome trace JSON must parse");
    let records = parsed
        .get("traceEvents")
        .and_then(|v| v.as_arr())
        .expect("traceEvents array");
    // more records than events: metadata rows name the tracks
    assert!(records.len() > traced.events.len());
    for r in records {
        let ph = r.get("ph").and_then(|v| v.as_str()).expect("phase");
        assert!(matches!(ph, "i" | "C" | "M"), "unexpected phase {ph}");
    }
}
