//! The `rfv-ckpt-v1` checkpoint container: a versioned, checksummed,
//! zero-dependency binary file holding every SM's mid-run machine
//! state.
//!
//! Layout (all integers little-endian, via [`rfv_trace::wire`]):
//!
//! | section       | contents                                     |
//! |---------------|----------------------------------------------|
//! | magic         | 8 bytes `rfv-ckpt`                           |
//! | version       | `u32`, currently 1                           |
//! | config hash   | `u64` — [`SimConfig::stable_hash`]           |
//! | kernel hash   | `u64` — [`kernel_identity_hash`]             |
//! | cycle         | `u64` — the boundary the snapshot was taken at |
//! | SM frames     | count, then one length-prefixed frame per SM |
//! | checksum      | trailing FNV-1a over everything above        |
//!
//! [`Checkpoint::from_bytes`] rejects truncation, bit flips, version
//! bumps, and wrong-machine resumes with a typed
//! [`SimError::BadCheckpoint`] — never a panic — so a corrupt file on
//! disk degrades into an ordinary CLI error.

use rfv_compiler::CompiledKernel;
use rfv_trace::wire::fnv1a;
use rfv_trace::{Dec, Enc};

use crate::config::SimConfig;
use crate::sm::SimError;

/// Leading magic of every checkpoint file.
pub const CKPT_MAGIC: [u8; 8] = *b"rfv-ckpt";

/// Current container version.
pub const CKPT_VERSION: u32 = 1;

/// One whole-GPU snapshot: per-SM machine frames plus the identity
/// hashes that pin which run they belong to.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Checkpoint {
    /// Container version ([`CKPT_VERSION`] for files this build writes).
    pub version: u32,
    /// [`SimConfig::stable_hash`] of the producing run.
    pub config_hash: u64,
    /// [`kernel_identity_hash`] of the producing run.
    pub kernel_hash: u64,
    /// Cycle boundary the snapshot was taken at.
    pub cycle: u64,
    /// One opaque [`crate::sm::Sm::snapshot_frame`] per SM, in SM order.
    pub sm_frames: Vec<Vec<u8>>,
}

impl Checkpoint {
    /// Serializes to the `rfv-ckpt-v1` byte layout, checksum included.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.raw(&CKPT_MAGIC);
        e.u32(self.version);
        e.u64(self.config_hash);
        e.u64(self.kernel_hash);
        e.u64(self.cycle);
        e.usize(self.sm_frames.len());
        for frame in &self.sm_frames {
            e.frame(frame);
        }
        let checksum = fnv1a(e.bytes());
        e.u64(checksum);
        e.into_bytes()
    }

    /// Parses and verifies a checkpoint file.
    ///
    /// # Errors
    ///
    /// [`SimError::BadCheckpoint`] on truncation, bad magic, checksum
    /// mismatch (bit flips anywhere in the file), or an unsupported
    /// version.
    pub fn from_bytes(bytes: &[u8]) -> Result<Checkpoint, SimError> {
        let bad = |what: &str| SimError::BadCheckpoint(what.to_string());
        if bytes.len() < CKPT_MAGIC.len() + 8 {
            return Err(bad("file too short to be a checkpoint"));
        }
        let (body, tail) = bytes.split_at(bytes.len() - 8);
        let stored = u64::from_le_bytes(tail.try_into().expect("8-byte checksum"));
        if fnv1a(body) != stored {
            return Err(bad("checksum mismatch (truncated or corrupted file)"));
        }
        let d = &mut Dec::new(body);
        let wire =
            |e: rfv_trace::WireError| SimError::BadCheckpoint(format!("malformed file: {e}"));
        if d.raw(CKPT_MAGIC.len()).map_err(wire)? != CKPT_MAGIC {
            return Err(bad("not a checkpoint file (bad magic)"));
        }
        let version = d.u32().map_err(wire)?;
        if version != CKPT_VERSION {
            return Err(SimError::BadCheckpoint(format!(
                "unsupported checkpoint version {version} (this build reads {CKPT_VERSION})"
            )));
        }
        let config_hash = d.u64().map_err(wire)?;
        let kernel_hash = d.u64().map_err(wire)?;
        let cycle = d.u64().map_err(wire)?;
        let n = d.usize().map_err(wire)?;
        if n == 0 || n > 4096 {
            return Err(bad("implausible SM count"));
        }
        let mut sm_frames = Vec::with_capacity(n);
        for _ in 0..n {
            sm_frames.push(d.frame().map_err(wire)?.to_vec());
        }
        if !d.is_done() {
            return Err(bad("trailing bytes after SM frames"));
        }
        Ok(Checkpoint {
            version,
            config_hash,
            kernel_hash,
            cycle,
            sm_frames,
        })
    }

    /// Verifies this checkpoint belongs to (`kernel`, `config`).
    ///
    /// # Errors
    ///
    /// [`SimError::BadCheckpoint`] naming the mismatched identity.
    pub fn verify_identity(
        &self,
        kernel: &CompiledKernel,
        config: &SimConfig,
    ) -> Result<(), SimError> {
        self.verify_identity_hashed(kernel_identity_hash(kernel), config)
    }

    /// [`Checkpoint::verify_identity`] against an already-computed
    /// [`kernel_identity_hash`] — callers that share a predecoded
    /// image (which memoizes the hash) skip the program walk.
    ///
    /// # Errors
    ///
    /// [`SimError::BadCheckpoint`] naming the mismatched identity.
    pub fn verify_identity_hashed(
        &self,
        kernel_hash: u64,
        config: &SimConfig,
    ) -> Result<(), SimError> {
        if self.config_hash != config.stable_hash() {
            return Err(SimError::BadCheckpoint(
                "checkpoint was taken under a different machine configuration".into(),
            ));
        }
        if self.kernel_hash != kernel_hash {
            return Err(SimError::BadCheckpoint(
                "checkpoint was taken under a different kernel".into(),
            ));
        }
        if self.sm_frames.len() != config.num_sms {
            return Err(SimError::BadCheckpoint(format!(
                "checkpoint holds {} SM frames but the configuration has {} SMs",
                self.sm_frames.len(),
                config.num_sms
            )));
        }
        Ok(())
    }
}

/// A stable identity hash over everything the simulator reads from a
/// compiled kernel: program items, per-PC release flags and
/// reconvergence points, the exempt set, register counts, and launch
/// geometry. Two kernels that hash equal execute identically, so a
/// checkpoint from one resumes under the other.
pub fn kernel_identity_hash(kernel: &CompiledKernel) -> u64 {
    let mut e = Enc::new();
    let k = kernel.kernel();
    let launch = k.launch();
    e.u32(launch.grid_ctas());
    e.u32(launch.threads_per_cta());
    e.u32(launch.max_conc_ctas_per_sm());
    e.usize(kernel.num_regs());
    e.usize(kernel.max_held_per_warp());
    for r in kernel.exempt().iter() {
        e.u8(r.raw());
    }
    e.usize(k.items().len());
    for (pc, item) in k.items().iter().enumerate() {
        // ProgItem has no wire codec of its own; its Debug rendering is
        // deterministic and covers every field the simulator consumes
        e.frame(format!("{item:?}").as_bytes());
        e.opt_u64(kernel.reconv_at(pc).flatten().map(|r| r as u64));
        e.frame(format!("{:?}", kernel.flags_at(pc)).as_bytes());
    }
    fnv1a(e.bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        Checkpoint {
            version: CKPT_VERSION,
            config_hash: 0x1122_3344_5566_7788,
            kernel_hash: 0x99aa_bbcc_ddee_ff00,
            cycle: 12_345,
            sm_frames: vec![vec![1, 2, 3], vec![], vec![0xff; 64]],
        }
    }

    #[test]
    fn container_round_trips() {
        let ck = sample();
        let bytes = ck.to_bytes();
        assert_eq!(Checkpoint::from_bytes(&bytes).expect("parse"), ck);
    }

    #[test]
    fn corruption_is_rejected_not_panicked() {
        let bytes = sample().to_bytes();
        // truncation at every prefix length
        for cut in 0..bytes.len() {
            assert!(matches!(
                Checkpoint::from_bytes(&bytes[..cut]),
                Err(SimError::BadCheckpoint(_))
            ));
        }
        // a bit flip anywhere trips the trailing checksum
        for i in (0..bytes.len()).step_by(7) {
            let mut b = bytes.clone();
            b[i] ^= 0x40;
            assert!(matches!(
                Checkpoint::from_bytes(&b),
                Err(SimError::BadCheckpoint(_))
            ));
        }
    }

    #[test]
    fn version_bump_is_rejected() {
        let mut ck = sample();
        ck.version = CKPT_VERSION + 1;
        let bytes = ck.to_bytes(); // checksum is valid, version is not
        let err = Checkpoint::from_bytes(&bytes).expect_err("version must be rejected");
        assert!(matches!(err, SimError::BadCheckpoint(ref m) if m.contains("version")));
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(Checkpoint::from_bytes(b"").is_err());
        assert!(Checkpoint::from_bytes(b"rfv-ckpt").is_err());
        assert!(Checkpoint::from_bytes(&[0xAB; 256]).is_err());
    }
}
