//! Threaded-code execution plans: the `match`-free issue engine.
//!
//! The interpreter in `sm.rs` re-dispatches every issued item twice —
//! once on the [`PdItem`] variant and once on the [`Opcode`] — through
//! `match` ladders whose branch targets the hardware cannot predict
//! across a mixed instruction stream. [`ExecPlan::lower`] walks the
//! predecoded program once at kernel-build time and resolves each PC
//! to a *handler*: a monomorphized function pointer specialized to
//! exactly that item (`h_alu::<OpIadd>`, `h_isetp::<CLt>`, `h_ldg`,
//! …). Issue then becomes one indexed load and one indirect call —
//! classic threaded code.
//!
//! The plan is a pure lowering of the same image the interpreter
//! reads: every handler replicates its interpreter arm *operation for
//! operation* — the same RNG draws in the same order, the same stats
//! increments, the same trace emissions, the same register-file and
//! sanitizer calls. The interpreter stays compiled in as the
//! executable specification (`SimConfig::reference_interpreter`), and
//! the engine-equivalence suite runs both engines and asserts
//! bit-identical results. Any divergence is a bug in this module.
//!
//! Layout: `handlers[pc]` is the dispatch table; `instrs[pc]` is a
//! dense array of [`PredecodedInstr`] (an inert placeholder occupies
//! `pir`/`pbr` PCs so handlers index unconditionally); `meta[pc]`
//! carries the `pir` flag count / `pbr` arena range as a `(u32, u32)`
//! pair.

#![deny(clippy::perf)]

use std::cmp::Reverse;
use std::fmt;

use rfv_core::{SanitizeLevel, Violation, WriteOutcome};
use rfv_faults::FaultKind;
use rfv_isa::{Cond, Opcode, Operand, PhysReg, Special, MAX_SRC_OPERANDS, WARP_SIZE};
use rfv_trace::{FaultLabel, MemPhase, StallReason, TraceEvent, TraceKind};

use super::{IssueOutcome, Lanes, Sm, POISON};
use crate::memory::coalesce_count;
use crate::predecode::{PdItem, PredecodedInstr};
use crate::warp::WarpStatus;

/// What one handler invocation did with its PC.
pub(crate) enum Step {
    /// An instruction (or paid-for metadata) issued this cycle.
    Issued,
    /// Scoreboard hazard: the warp must retry later.
    Blocked,
    /// Destination allocation failed; the warp retries unchanged.
    NoReg,
    /// Free metadata (flag-cache hit): the PC advanced, keep fetching.
    Fall,
}

/// One pre-resolved issue routine. The higher-ranked lifetimes let a
/// single table serve every `Sm` borrow.
pub(crate) type Handler = for<'a, 'k> fn(&'a mut Sm<'k>, usize, usize) -> Step;

/// A predecoded program lowered to threaded code (see module docs).
#[derive(Clone)]
pub(crate) struct ExecPlan {
    handlers: Vec<Handler>,
    instrs: Vec<PredecodedInstr>,
    meta: Vec<(u32, u32)>,
}

impl fmt::Debug for ExecPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // fn-pointer addresses are not stable across runs; print shape
        f.debug_struct("ExecPlan")
            .field("handlers", &self.handlers.len())
            .finish_non_exhaustive()
    }
}

impl ExecPlan {
    /// Lowers a predecoded item list. One pass, paid once per kernel
    /// build; every run sharing the image shares the plan.
    pub(crate) fn lower(items: &[PdItem]) -> ExecPlan {
        let mut handlers: Vec<Handler> = Vec::with_capacity(items.len());
        let mut instrs = Vec::with_capacity(items.len());
        let mut meta = Vec::with_capacity(items.len());
        for item in items {
            match *item {
                PdItem::Pir { release_count } => {
                    handlers.push(h_pir);
                    instrs.push(PredecodedInstr::placeholder());
                    meta.push((u32::from(release_count), 0));
                }
                PdItem::Pbr { lo, hi } => {
                    handlers.push(h_pbr);
                    instrs.push(PredecodedInstr::placeholder());
                    meta.push((lo, hi));
                }
                PdItem::Instr(i) => {
                    handlers.push(instr_handler(&i));
                    instrs.push(i);
                    meta.push((0, 0));
                }
            }
        }
        ExecPlan {
            handlers,
            instrs,
            meta,
        }
    }

    #[inline]
    fn handler(&self, pc: usize) -> Handler {
        self.handlers[pc]
    }

    #[inline]
    fn instr(&self, pc: usize) -> &PredecodedInstr {
        &self.instrs[pc]
    }

    #[inline]
    fn meta(&self, pc: usize) -> (u32, u32) {
        self.meta[pc]
    }
}

/// Resolves an instruction to its specialized handler — the one
/// `match` on opcode that the plan performs, at lowering time instead
/// of per issue.
fn instr_handler(i: &PredecodedInstr) -> Handler {
    use Opcode::*;
    match i.opcode {
        Bra => h_bra,
        Exit => h_exit,
        Bar => h_bar,
        Nop => h_nop,
        Ldg => h_ldg,
        Ldl => h_ldl,
        Lds => h_lds,
        Stg => h_stg,
        Stl => h_stl,
        Sts => h_sts,
        Isetp(c) => match c {
            Cond::Lt => h_isetp::<CLt>,
            Cond::Le => h_isetp::<CLe>,
            Cond::Gt => h_isetp::<CGt>,
            Cond::Ge => h_isetp::<CGe>,
            Cond::Eq => h_isetp::<CEq>,
            Cond::Ne => h_isetp::<CNe>,
        },
        Fsetp(c) => match c {
            Cond::Lt => h_fsetp::<CLt>,
            Cond::Le => h_fsetp::<CLe>,
            Cond::Gt => h_fsetp::<CGt>,
            Cond::Ge => h_fsetp::<CGe>,
            Cond::Eq => h_fsetp::<CEq>,
            Cond::Ne => h_fsetp::<CNe>,
        },
        Iadd => h_alu::<OpIadd>,
        Isub => h_alu::<OpIsub>,
        Imul => h_alu::<OpImul>,
        Imad => h_alu::<OpImad>,
        And => h_alu::<OpAnd>,
        Or => h_alu::<OpOr>,
        Xor => h_alu::<OpXor>,
        Shl => h_alu::<OpShl>,
        Shr => h_alu::<OpShr>,
        Mov => h_alu::<OpMov>,
        Imin => h_alu::<OpImin>,
        Imax => h_alu::<OpImax>,
        Sel => h_alu::<OpSel>,
        Fadd => h_alu::<OpFadd>,
        Fmul => h_alu::<OpFmul>,
        Ffma => h_alu::<OpFfma>,
        Fmin => h_alu::<OpFmin>,
        Fmax => h_alu::<OpFmax>,
        Frcp => h_alu::<OpFrcp>,
        Fsqrt => h_alu::<OpFsqrt>,
        Fexp => h_alu::<OpFexp>,
        Flog => h_alu::<OpFlog>,
        S2r(s) => match s {
            Special::TidX => h_alu::<OpTidX>,
            Special::CtaIdX => h_alu::<OpCtaIdX>,
            Special::NTidX => h_alu::<OpNTidX>,
            Special::NCtaIdX => h_alu::<OpNCtaIdX>,
            Special::LaneId => h_alu::<OpLaneId>,
            Special::WarpId => h_alu::<OpWarpId>,
        },
    }
}

// ------------------------------------------------------------ lane ops

/// Per-lane context for [`LaneOp`] evaluation, gathered once per
/// instruction instead of re-read per lane.
struct LaneCx {
    psrc_bits: Option<u32>,
    cta_id: u32,
    warp_in_cta: usize,
    threads_per_cta: u32,
    grid_ctas: u32,
}

/// One lane-wise operation, monomorphized into its own `h_alu`
/// instantiation so the per-lane body compiles to straight-line code
/// with no opcode match.
trait LaneOp {
    /// Whether the op issues on the SFU pipe (`Opcode::exec_class`).
    const SFU: bool = false;
    fn eval(cx: &LaneCx, a: u32, b: u32, c: u32, l: usize) -> u32;
}

macro_rules! lane_op {
    ($name:ident, sfu: $sfu:expr, |$cx:ident, $a:ident, $b:ident, $c:ident, $l:ident| $body:expr) => {
        struct $name;
        impl LaneOp for $name {
            const SFU: bool = $sfu;
            #[inline(always)]
            fn eval($cx: &LaneCx, $a: u32, $b: u32, $c: u32, $l: usize) -> u32 {
                let _ = ($cx, $a, $b, $c, $l);
                $body
            }
        }
    };
}

lane_op!(OpIadd, sfu: false, |cx, a, b, c, l| a.wrapping_add(b));
lane_op!(OpIsub, sfu: false, |cx, a, b, c, l| a.wrapping_sub(b));
lane_op!(OpImul, sfu: false, |cx, a, b, c, l| a.wrapping_mul(b));
lane_op!(OpImad, sfu: false, |cx, a, b, c, l| a
    .wrapping_mul(b)
    .wrapping_add(c));
lane_op!(OpAnd, sfu: false, |cx, a, b, c, l| a & b);
lane_op!(OpOr, sfu: false, |cx, a, b, c, l| a | b);
lane_op!(OpXor, sfu: false, |cx, a, b, c, l| a ^ b);
lane_op!(OpShl, sfu: false, |cx, a, b, c, l| a.wrapping_shl(b & 31));
lane_op!(OpShr, sfu: false, |cx, a, b, c, l| a.wrapping_shr(b & 31));
lane_op!(OpMov, sfu: false, |cx, a, b, c, l| a);
lane_op!(OpImin, sfu: false, |cx, a, b, c, l| (a as i32).min(b as i32)
    as u32);
lane_op!(OpImax, sfu: false, |cx, a, b, c, l| (a as i32).max(b as i32)
    as u32);
lane_op!(OpSel, sfu: false, |cx, a, b, c, l| {
    if cx.psrc_bits.expect("validated sel") & (1 << l) != 0 {
        a
    } else {
        b
    }
});
lane_op!(OpFadd, sfu: false, |cx, a, b, c, l| crate::fp::fadd(
    f32::from_bits(a),
    f32::from_bits(b)
)
.to_bits());
lane_op!(OpFmul, sfu: false, |cx, a, b, c, l| crate::fp::fmul(
    f32::from_bits(a),
    f32::from_bits(b)
)
.to_bits());
lane_op!(OpFfma, sfu: false, |cx, a, b, c, l| crate::fp::ffma(
    f32::from_bits(a),
    f32::from_bits(b),
    f32::from_bits(c)
)
.to_bits());
lane_op!(OpFmin, sfu: false, |cx, a, b, c, l| crate::fp::fmin(
    f32::from_bits(a),
    f32::from_bits(b)
)
.to_bits());
lane_op!(OpFmax, sfu: false, |cx, a, b, c, l| crate::fp::fmax(
    f32::from_bits(a),
    f32::from_bits(b)
)
.to_bits());
lane_op!(OpFrcp, sfu: true, |cx, a, b, c, l| (1.0 / f32::from_bits(a))
    .to_bits());
lane_op!(OpFsqrt, sfu: true, |cx, a, b, c, l| f32::from_bits(a)
    .sqrt()
    .to_bits());
lane_op!(OpFexp, sfu: true, |cx, a, b, c, l| f32::from_bits(a)
    .exp2()
    .to_bits());
lane_op!(OpFlog, sfu: true, |cx, a, b, c, l| f32::from_bits(a)
    .log2()
    .to_bits());
lane_op!(OpTidX, sfu: false, |cx, a, b, c, l| (cx.warp_in_cta * WARP_SIZE
    + l) as u32);
lane_op!(OpCtaIdX, sfu: false, |cx, a, b, c, l| cx.cta_id);
lane_op!(OpNTidX, sfu: false, |cx, a, b, c, l| cx.threads_per_cta);
lane_op!(OpNCtaIdX, sfu: false, |cx, a, b, c, l| cx.grid_ctas);
lane_op!(OpLaneId, sfu: false, |cx, a, b, c, l| l as u32);
lane_op!(OpWarpId, sfu: false, |cx, a, b, c, l| cx.warp_in_cta as u32);

/// A SETP condition lifted to a type, so `h_isetp::<CLt>` folds the
/// `Cond` match away. Evaluation still goes through [`Cond::eval_i32`]
/// / [`Cond::eval_f32`] — the constant condition makes those inline to
/// a single compare.
trait CmpCond {
    const COND: Cond;
}

macro_rules! cmp_cond {
    ($name:ident, $cond:expr) => {
        struct $name;
        impl CmpCond for $name {
            const COND: Cond = $cond;
        }
    };
}

cmp_cond!(CLt, Cond::Lt);
cmp_cond!(CLe, Cond::Le);
cmp_cond!(CGt, Cond::Gt);
cmp_cond!(CGe, Cond::Ge);
cmp_cond!(CEq, Cond::Eq);
cmp_cond!(CNe, Cond::Ne);

// ------------------------------------------------------ shared stages

/// Masks and CTA identity computed by the issue front end.
struct Front {
    active: u32,
    exec: u32,
    cta: usize,
}

/// Destination mapping and fetched operands (the interpreter's
/// locals, lifted into a struct the handler stages share).
struct Regs {
    dst_phys: Option<PhysReg>,
    ready_at: u64,
    conflicts: u64,
    nsrcs: usize,
    srcs: [[u32; WARP_SIZE]; MAX_SRC_OPERANDS],
}

impl Regs {
    #[inline(always)]
    fn new(now: u64) -> Regs {
        Regs {
            dst_phys: None,
            ready_at: now,
            conflicts: 0,
            nsrcs: 0,
            srcs: [[0; WARP_SIZE]; MAX_SRC_OPERANDS],
        }
    }
}

enum RegsStatus {
    Ok,
    NoReg,
    /// Recover-mode squash: the issue was traced and charged, but the
    /// machine state must stay untouched for the post-quarantine
    /// retry.
    Squashed,
}

impl<'k> Sm<'k> {
    /// Plan-engine issue loop: `try_issue` with the two dispatch
    /// matches replaced by one indexed handler call per item.
    pub(super) fn try_issue_plan(&mut self, slot: usize) -> IssueOutcome {
        loop {
            let pc = self.warps[slot].stack.pc();
            debug_assert!(pc < self.prog.len(), "pc {pc} out of program");
            // fn pointers are Copy: lifting the handler off the plan
            // ends the borrow before it takes `&mut self`
            let h = self.prog.plan().handler(pc);
            match h(self, slot, pc) {
                Step::Fall => {}
                Step::Issued => return IssueOutcome::Issued,
                Step::Blocked => return IssueOutcome::Blocked,
                Step::NoReg => return IssueOutcome::NoReg,
            }
        }
    }

    /// `issue_instr`'s front end: scoreboard check, premature-release
    /// fault draw, mask and CTA resolution. `None` means a scoreboard
    /// hazard (the fault draw still happened, as in the interpreter).
    #[inline(always)]
    fn plan_front(&mut self, slot: usize, i: &PredecodedInstr) -> Option<Front> {
        if self.warp_outstanding[slot] & i.hazard_mask != 0 {
            return None;
        }
        if self.injector.should_fire(FaultKind::PrematureRelease) {
            self.inject_release(
                slot,
                FaultKind::PrematureRelease,
                FaultLabel::PrematureRelease,
            );
        }
        let active = self.warps[slot].stack.mask();
        let exec = active & self.guard_mask(slot, i.guard);
        let cta = self.warps[slot].cta_slot;
        Some(Front { active, exec, cta })
    }

    /// `issue_instr`'s register stage: destination allocation, operand
    /// fetch with bank-conflict accounting, the Recover squash check,
    /// and the release-flag machinery — in exactly the interpreter's
    /// order (every RNG draw, stat, and trace event included).
    #[inline(always)]
    fn plan_regs(
        &mut self,
        slot: usize,
        pc: usize,
        i: &PredecodedInstr,
        f: &Front,
        regs: &mut Regs,
    ) -> RegsStatus {
        if let Some(d) = i.dst {
            match self
                .regfile
                .write_traced(slot, d, self.now, self.sm_id, &mut self.sink)
            {
                WriteOutcome::Mapped {
                    phys,
                    ready_at: r,
                    newly_allocated,
                } => {
                    if newly_allocated {
                        self.throttle
                            .on_alloc_traced(f.cta, self.now, self.sm_id, &mut self.sink);
                        self.values[phys.index()] = [POISON; WARP_SIZE];
                        self.trace_reg(slot, d, true);
                    }
                    if r > self.now {
                        self.trace_stall(slot, StallReason::GateWakeup);
                    }
                    let v = self.sanitizer.note_map(slot, d, phys, self.now);
                    self.flag_violation(v);
                    if self.injector.should_fire(FaultKind::RenameCorrupt) {
                        let target = PhysReg::new(
                            self.injector
                                .pick(FaultKind::RenameCorrupt, self.config.regfile.phys_regs)
                                as u16,
                        );
                        if self.regfile.inject_remap(slot, d, target).is_some() {
                            self.trace_fault(
                                slot,
                                FaultLabel::RenameCorrupt,
                                u16::from(d.raw()),
                                target.index() as u32,
                            );
                        }
                    }
                    regs.dst_phys = Some(phys);
                    regs.ready_at = regs.ready_at.max(r);
                }
                WriteOutcome::NoFreeRegister => return RegsStatus::NoReg,
            }
        }

        let mut src_banks = [false; rfv_isa::NUM_REG_BANKS];
        let mut conflicts = 0u64;
        let nsrcs = i.srcs().len();
        for (k, &op) in i.srcs().iter().enumerate() {
            match op {
                Operand::Imm(v) => regs.srcs[k] = [v as u32; WARP_SIZE],
                Operand::Reg(r) => {
                    let table = self.regfile.read(slot, r);
                    if let Some(p) = table {
                        let b = self.regfile.bank_of_phys(p).index();
                        if src_banks[b] {
                            conflicts += 1;
                        }
                        src_banks[b] = true;
                    }
                    if self.sanitizer.enabled() {
                        let live = table.is_some_and(|p| self.regfile.is_phys_live(p));
                        let v = self.sanitizer.check_read(slot, r, table, live, self.now);
                        self.flag_violation(v);
                    }
                    regs.srcs[k] = match table {
                        Some(p) => self.values[p.index()],
                        None => [POISON; WARP_SIZE],
                    };
                }
            }
        }
        regs.nsrcs = nsrcs;
        regs.conflicts = conflicts;
        self.stats.bank_conflicts += conflicts;

        if self.violation.is_some() && self.sanitizer.level() == SanitizeLevel::Recover {
            self.trace_issue(slot, pc, f.exec);
            return RegsStatus::Squashed;
        }

        if self.policy.uses_release_flags() {
            let flags = i.flags;
            if flags.any() {
                for (op_slot, r) in i.src_regs() {
                    if !flags.releases(op_slot) {
                        continue;
                    }
                    self.sanitizer.note_release(slot, r);
                    if self.injector.should_fire(FaultKind::DroppedRelease) {
                        let phys = self
                            .regfile
                            .peek(slot, r)
                            .map_or(Violation::NO_PHYS, |ph| ph.index() as u32);
                        self.trace_fault(
                            slot,
                            FaultLabel::DroppedRelease,
                            u16::from(r.raw()),
                            phys,
                        );
                        continue;
                    }
                    if self.release_checked(slot, r) {
                        self.throttle.on_release_traced(
                            f.cta,
                            self.now,
                            self.sm_id,
                            &mut self.sink,
                        );
                        self.trace_reg(slot, r, false);
                    }
                }
            }
            if self.injector.should_fire(FaultKind::PirFlagFlip) {
                let extra: Vec<rfv_isa::ArchReg> = i
                    .src_regs()
                    .filter(|&(s, _)| !flags.releases(s))
                    .map(|(_, r)| r)
                    .collect();
                if !extra.is_empty() {
                    let r = extra[self.injector.pick(FaultKind::PirFlagFlip, extra.len())];
                    let phys = self
                        .regfile
                        .peek(slot, r)
                        .map_or(Violation::NO_PHYS, |ph| ph.index() as u32);
                    if self.release_checked(slot, r) {
                        self.throttle.on_release_traced(
                            f.cta,
                            self.now,
                            self.sm_id,
                            &mut self.sink,
                        );
                        self.trace_reg(slot, r, false);
                        self.trace_fault(slot, FaultLabel::PirFlip, u16::from(r.raw()), phys);
                    }
                }
            }
        }
        RegsStatus::Ok
    }

    /// The issue bookkeeping every completed instruction pays.
    #[inline(always)]
    fn plan_finish(&mut self, exec: u32) {
        self.stats.instrs_issued += 1;
        self.stats.active_lane_sum += u64::from(exec.count_ones());
    }

    /// §7.1's extra renaming-table pipeline cycle.
    #[inline(always)]
    fn rename_penalty(&self) -> u64 {
        if self.config.rename_extra_cycle && self.policy.renames() {
            1
        } else {
            0
        }
    }
}

/// Handler prologue for data instructions: instruction copy, front
/// end, register stage, and the issue trace event.
macro_rules! prologue {
    ($sm:ident, $slot:ident, $pc:ident => $i:ident, $f:ident, $regs:ident) => {
        let $i = *$sm.prog.plan().instr($pc);
        let Some($f) = $sm.plan_front($slot, &$i) else {
            return Step::Blocked;
        };
        let mut $regs = Regs::new($sm.now);
        match $sm.plan_regs($slot, $pc, &$i, &$f, &mut $regs) {
            RegsStatus::Ok => {}
            RegsStatus::NoReg => return Step::NoReg,
            RegsStatus::Squashed => return Step::Issued,
        }
        $sm.trace_issue($slot, $pc, $f.exec);
    };
}

/// Handler prologue for control instructions (no register stage).
macro_rules! control_prologue {
    ($sm:ident, $slot:ident, $pc:ident => $i:ident, $f:ident) => {
        let $i = *$sm.prog.plan().instr($pc);
        let Some($f) = $sm.plan_front($slot, &$i) else {
            return Step::Blocked;
        };
    };
}

/// Per-lane addresses for the active lanes — warp-wide bitset
/// iteration instead of a 32-iteration conditional loop; inactive
/// lanes keep `None` exactly as the interpreter leaves them.
#[inline(always)]
fn lane_addrs(exec: u32, src0: &[u32; WARP_SIZE], mem_offset: i32) -> [Option<u64>; WARP_SIZE] {
    let mut addrs = [None; WARP_SIZE];
    for l in Lanes(exec) {
        addrs[l] = Some((src0[l] as u64).wrapping_add(mem_offset as i64 as u64));
    }
    addrs
}

// ------------------------------------------------------ meta handlers

fn h_pir(sm: &mut Sm<'_>, slot: usize, pc: usize) -> Step {
    let (flags, _) = sm.prog.plan().meta(pc);
    sm.stats.meta_encountered += 1;
    if sm.injector.should_fire(FaultKind::StaleFlagCacheHit) {
        sm.flag_cache
            .force_hit_traced(pc, sm.now, sm.sm_id, slot, &mut sm.sink);
        sm.inject_release(slot, FaultKind::StaleFlagCacheHit, FaultLabel::StaleFlagHit);
        sm.warps[slot].stack.advance(pc + 1);
        return Step::Fall;
    }
    if sm
        .flag_cache
        .probe_and_fill_traced(pc, sm.now, sm.sm_id, slot, &mut sm.sink)
    {
        sm.warps[slot].stack.advance(pc + 1);
        return Step::Fall;
    }
    sm.stats.meta_decoded += 1;
    if sm.sink.enabled() {
        sm.sink.emit(TraceEvent::warp_event(
            sm.now,
            sm.sm_id,
            slot,
            TraceKind::PirDecode {
                pc: pc as u32,
                flags: flags as u16,
            },
        ));
    }
    sm.warps[slot].stack.advance(pc + 1);
    sm.issue_cost(slot, 1);
    Step::Issued
}

fn h_pbr(sm: &mut Sm<'_>, slot: usize, pc: usize) -> Step {
    let (lo, hi) = sm.prog.plan().meta(pc);
    sm.stats.meta_encountered += 1;
    sm.stats.meta_decoded += 1;
    if sm.sink.enabled() {
        sm.sink.emit(TraceEvent::warp_event(
            sm.now,
            sm.sm_id,
            slot,
            TraceKind::PbrDecode {
                pc: pc as u32,
                released: (hi - lo) as u16,
            },
        ));
    }
    if sm.policy.uses_release_flags() {
        let cta = sm.warps[slot].cta_slot;
        for idx in lo..hi {
            let r = sm.prog.pbr_regs(idx, idx + 1)[0];
            sm.sanitizer.note_release(slot, r);
            let dropped = sm.injector.should_fire(FaultKind::DroppedRelease);
            let flipped = sm.injector.should_fire(FaultKind::PbrFlagFlip);
            if dropped || flipped {
                let phys = sm
                    .regfile
                    .peek(slot, r)
                    .map_or(Violation::NO_PHYS, |ph| ph.index() as u32);
                let label = if dropped {
                    FaultLabel::DroppedRelease
                } else {
                    FaultLabel::PbrFlip
                };
                sm.trace_fault(slot, label, u16::from(r.raw()), phys);
                continue;
            }
            if sm.release_checked(slot, r) {
                sm.throttle
                    .on_release_traced(cta, sm.now, sm.sm_id, &mut sm.sink);
                sm.trace_reg(slot, r, false);
            }
        }
    }
    sm.warps[slot].stack.advance(pc + 1);
    sm.issue_cost(slot, 1);
    Step::Issued
}

// --------------------------------------------------- control handlers

fn h_bra(sm: &mut Sm<'_>, slot: usize, pc: usize) -> Step {
    control_prologue!(sm, slot, pc => i, f);
    sm.issue_cost(slot, 1);
    sm.stats.instrs_issued += 1;
    sm.stats.active_lane_sum += u64::from(f.active.count_ones());
    sm.trace_issue(slot, pc, f.active);
    let target = i.target as usize;
    let reconv = i.reconv;
    if f.exec == f.active {
        sm.warps[slot].stack.advance(target);
    } else if f.exec == 0 {
        sm.warps[slot].stack.advance(pc + 1);
    } else {
        sm.warps[slot].stack.diverge(f.exec, target, pc + 1, reconv);
    }
    sm.after_control(slot);
    Step::Issued
}

fn h_exit(sm: &mut Sm<'_>, slot: usize, pc: usize) -> Step {
    control_prologue!(sm, slot, pc => i, f);
    let _ = i;
    sm.stats.instrs_issued += 1;
    sm.stats.active_lane_sum += u64::from(f.active.count_ones());
    sm.trace_issue(slot, pc, f.active);
    sm.warps[slot].stack.exit_lanes(f.active);
    if sm.warps[slot].stack.is_done() {
        sm.finish_warp(slot);
    } else {
        sm.issue_cost(slot, 1);
    }
    Step::Issued
}

fn h_bar(sm: &mut Sm<'_>, slot: usize, pc: usize) -> Step {
    control_prologue!(sm, slot, pc => i, f);
    let _ = i;
    sm.stats.instrs_issued += 1;
    sm.stats.active_lane_sum += u64::from(f.active.count_ones());
    sm.stats.barrier_waits += 1;
    sm.trace_issue(slot, pc, f.active);
    sm.trace_stall(slot, StallReason::Barrier);
    sm.warps[slot].stack.advance(pc + 1);
    sm.warp_status[slot] = WarpStatus::AtBarrier;
    sm.remove_from_ready(slot);
    if let Some(cs) = sm.cta_slots[f.cta].as_mut() {
        cs.at_barrier += 1;
    }
    sm.maybe_release_barrier(f.cta);
    Step::Issued
}

fn h_nop(sm: &mut Sm<'_>, slot: usize, pc: usize) -> Step {
    control_prologue!(sm, slot, pc => i, f);
    let _ = i;
    sm.stats.instrs_issued += 1;
    sm.stats.active_lane_sum += u64::from(f.active.count_ones());
    sm.trace_issue(slot, pc, f.active);
    sm.warps[slot].stack.advance(pc + 1);
    sm.issue_cost(slot, 1);
    Step::Issued
}

// ------------------------------------------------------ load handlers

/// Writeback + scoreboard tail shared by all three loads; returns the
/// completion cycle for the caller's latency-class epilogue.
#[inline(always)]
fn load_tail(
    sm: &mut Sm<'_>,
    slot: usize,
    pc: usize,
    i: &PredecodedInstr,
    regs: &Regs,
    latency: u64,
) -> u64 {
    let dst = i.dst.expect("loads have a destination");
    let done_at = regs.ready_at.max(sm.now) + regs.conflicts + latency;
    sm.warp_outstanding[slot] |= 1u64 << dst.index();
    sm.load_events.push(Reverse((done_at, slot, dst.raw())));
    sm.warps[slot].stack.advance(pc + 1);
    done_at
}

/// Long-latency loads park in the two-level scheduler pending queue.
#[inline(always)]
fn load_pending(sm: &mut Sm<'_>, slot: usize) {
    sm.warp_status[slot] = WarpStatus::PendingMem;
    sm.remove_from_ready(slot);
    sm.trace_stall(slot, StallReason::Memory);
}

fn h_ldg(sm: &mut Sm<'_>, slot: usize, pc: usize) -> Step {
    prologue!(sm, slot, pc => i, f, regs);
    let addrs = lane_addrs(f.exec, &regs.srcs[0], i.mem_offset);
    // writeback lands straight in the physical register: the operand
    // stage already copied the sources, so no alias is possible (a
    // dropped destination still performs — and counts — every read)
    match regs.dst_phys {
        Some(p) => {
            let (values, global) = (&mut sm.values, &mut sm.global);
            let out = &mut values[p.index()];
            for l in Lanes(f.exec) {
                out[l] = global.read_word(addrs[l].unwrap());
            }
        }
        None => {
            for l in Lanes(f.exec) {
                sm.global.read_word(addrs[l].unwrap());
            }
        }
    }
    let latency = sm.global_load_latency(slot, &addrs);
    let done_at = load_tail(sm, slot, pc, &i, &regs, latency);
    load_pending(sm, slot);
    if sm.sink.enabled() {
        let base = addrs.iter().flatten().next().copied().unwrap_or(0);
        sm.sink.emit(TraceEvent::warp_event(
            done_at,
            sm.sm_id,
            slot,
            TraceKind::Mem {
                phase: MemPhase::Complete,
                addr: base,
                segments: 0,
            },
        ));
    }
    sm.plan_finish(f.exec);
    Step::Issued
}

fn h_ldl(sm: &mut Sm<'_>, slot: usize, pc: usize) -> Step {
    prologue!(sm, slot, pc => i, f, regs);
    let addrs = lane_addrs(f.exec, &regs.srcs[0], i.mem_offset);
    match regs.dst_phys {
        Some(p) => {
            let (values, local) = (&mut sm.values, &mut sm.local);
            let out = &mut values[p.index()];
            for l in Lanes(f.exec) {
                out[l] = local.read_word(slot, l, addrs[l].unwrap());
            }
        }
        None => {
            for l in Lanes(f.exec) {
                sm.local.read_word(slot, l, addrs[l].unwrap());
            }
        }
    }
    let txns = f.exec.count_ones() as u64 * 4 / 32 + 1;
    sm.stats.mem_txns += txns;
    let latency = sm.config.mem_base_latency + txns * sm.config.mem_per_txn;
    load_tail(sm, slot, pc, &i, &regs, latency);
    load_pending(sm, slot);
    sm.plan_finish(f.exec);
    Step::Issued
}

fn h_lds(sm: &mut Sm<'_>, slot: usize, pc: usize) -> Step {
    prologue!(sm, slot, pc => i, f, regs);
    let addrs = lane_addrs(f.exec, &regs.srcs[0], i.mem_offset);
    match regs.dst_phys {
        Some(p) => {
            let (values, shared) = (&mut sm.values, &mut sm.shared);
            let out = &mut values[p.index()];
            for l in Lanes(f.exec) {
                out[l] = shared[f.cta].read_word(addrs[l].unwrap());
            }
        }
        None => {
            for l in Lanes(f.exec) {
                sm.shared[f.cta].read_word(addrs[l].unwrap());
            }
        }
    }
    let latency = sm.config.shared_latency;
    load_tail(sm, slot, pc, &i, &regs, latency);
    // short-latency: stay in the ready queue
    sm.issue_cost(slot, 1 + sm.rename_penalty());
    sm.plan_finish(f.exec);
    Step::Issued
}

// ----------------------------------------------------- store handlers

/// Store epilogue: advance and charge the issue slot.
#[inline(always)]
fn store_tail(sm: &mut Sm<'_>, slot: usize, pc: usize, regs: &Regs) {
    sm.warps[slot].stack.advance(pc + 1);
    sm.issue_cost(slot, 1 + sm.rename_penalty() + regs.conflicts);
}

fn h_stg(sm: &mut Sm<'_>, slot: usize, pc: usize) -> Step {
    prologue!(sm, slot, pc => i, f, regs);
    let addrs = lane_addrs(f.exec, &regs.srcs[0], i.mem_offset);
    for l in Lanes(f.exec) {
        sm.global.write_word(addrs[l].unwrap(), regs.srcs[1][l]);
    }
    sm.stats.mem_txns += coalesce_count(&addrs) as u64;
    store_tail(sm, slot, pc, &regs);
    sm.plan_finish(f.exec);
    Step::Issued
}

fn h_stl(sm: &mut Sm<'_>, slot: usize, pc: usize) -> Step {
    prologue!(sm, slot, pc => i, f, regs);
    let addrs = lane_addrs(f.exec, &regs.srcs[0], i.mem_offset);
    for l in Lanes(f.exec) {
        sm.local
            .write_word(slot, l, addrs[l].unwrap(), regs.srcs[1][l]);
    }
    sm.stats.mem_txns += f.exec.count_ones() as u64 * 4 / 32 + 1;
    store_tail(sm, slot, pc, &regs);
    sm.plan_finish(f.exec);
    Step::Issued
}

fn h_sts(sm: &mut Sm<'_>, slot: usize, pc: usize) -> Step {
    prologue!(sm, slot, pc => i, f, regs);
    let addrs = lane_addrs(f.exec, &regs.srcs[0], i.mem_offset);
    for l in Lanes(f.exec) {
        sm.shared[f.cta].write_word(addrs[l].unwrap(), regs.srcs[1][l]);
    }
    store_tail(sm, slot, pc, &regs);
    sm.plan_finish(f.exec);
    Step::Issued
}

// ---------------------------------------------------- setp + lane ops

fn h_isetp<C: CmpCond>(sm: &mut Sm<'_>, slot: usize, pc: usize) -> Step {
    prologue!(sm, slot, pc => i, f, regs);
    let srcs = &regs.srcs[..regs.nsrcs];
    let pd = i.pdst.expect("validated setp");
    let mut bits = sm.preds[slot][pd.index()];
    for l in Lanes(f.exec) {
        if C::COND.eval_i32(srcs[0][l] as i32, srcs[1][l] as i32) {
            bits |= 1 << l;
        } else {
            bits &= !(1 << l);
        }
    }
    sm.preds[slot][pd.index()] = bits;
    sm.warps[slot].stack.advance(pc + 1);
    sm.issue_cost(
        slot,
        sm.config.alu_latency + sm.rename_penalty() + regs.conflicts,
    );
    sm.plan_finish(f.exec);
    Step::Issued
}

fn h_fsetp<C: CmpCond>(sm: &mut Sm<'_>, slot: usize, pc: usize) -> Step {
    prologue!(sm, slot, pc => i, f, regs);
    let srcs = &regs.srcs[..regs.nsrcs];
    let pd = i.pdst.expect("validated setp");
    let mut bits = sm.preds[slot][pd.index()];
    for l in Lanes(f.exec) {
        if C::COND.eval_f32(f32::from_bits(srcs[0][l]), f32::from_bits(srcs[1][l])) {
            bits |= 1 << l;
        } else {
            bits &= !(1 << l);
        }
    }
    sm.preds[slot][pd.index()] = bits;
    sm.warps[slot].stack.advance(pc + 1);
    sm.issue_cost(
        slot,
        sm.config.alu_latency + sm.rename_penalty() + regs.conflicts,
    );
    sm.plan_finish(f.exec);
    Step::Issued
}

fn h_alu<O: LaneOp>(sm: &mut Sm<'_>, slot: usize, pc: usize) -> Step {
    prologue!(sm, slot, pc => i, f, regs);
    let w = &sm.warps[slot];
    let cx = LaneCx {
        psrc_bits: i.psrc.map(|p| sm.preds[slot][p.index()]),
        cta_id: w.cta_id,
        warp_in_cta: w.warp_in_cta,
        threads_per_cta: sm.threads_per_cta,
        grid_ctas: sm.grid_ctas,
    };
    let srcs = &regs.srcs[..regs.nsrcs];
    // operands were copied into `regs`, so writing the destination in
    // place cannot alias a source read even when dst renames a source
    if let Some(p) = regs.dst_phys {
        let out = &mut sm.values[p.index()];
        for l in Lanes(f.exec) {
            let a = srcs.first().map_or(0, |s| s[l]);
            let b = srcs.get(1).map_or(0, |s| s[l]);
            let c = srcs.get(2).map_or(0, |s| s[l]);
            out[l] = O::eval(&cx, a, b, c, l);
        }
    }
    let lat = if O::SFU {
        sm.config.sfu_latency
    } else {
        sm.config.alu_latency
    };
    sm.warps[slot].stack.advance(pc + 1);
    let wait =
        (regs.ready_at.saturating_sub(sm.now)).max(lat + sm.rename_penalty()) + regs.conflicts;
    sm.issue_cost(slot, wait);
    sm.plan_finish(f.exec);
    Step::Issued
}
