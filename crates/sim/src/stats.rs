//! Simulation statistics and per-cycle samples.

use rfv_core::{FlagCacheStats, RegFileStats, RenamingStats};

/// One periodic sample of register-file occupancy (drives Figure 1 and
/// the energy model's averages).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Sample {
    /// Sample cycle.
    pub cycle: u64,
    /// Live (allocated) physical registers.
    pub live_regs: usize,
    /// Architected registers currently resident (allocation the
    /// conventional GPU would hold): `regs/kernel × resident warps`.
    pub resident_arch_regs: usize,
    /// Subarrays powered on.
    pub subarrays_on: usize,
}

/// One register allocate/release event of warp slot 0 (Figure 2's
/// lifetime traces).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RegTraceEvent {
    /// Event cycle.
    pub cycle: u64,
    /// Architected register id.
    pub reg: u8,
    /// `true` = became live (allocated), `false` = released.
    pub live: bool,
}

/// Aggregate statistics for one SM run.
#[derive(Clone, Default, Debug)]
pub struct SimStats {
    /// Total simulated cycles.
    pub cycles: u64,
    /// Machine instructions issued (warp granularity).
    pub instrs_issued: u64,
    /// Sum of active lanes over all issued instructions (SIMD
    /// efficiency numerator).
    pub active_lane_sum: u64,
    /// Metadata instructions decoded (`pir` flag-cache misses plus all
    /// `pbr` fetches) — Figure 13's dynamic overhead.
    pub meta_decoded: u64,
    /// Metadata slots encountered in fetch (decoded or skipped).
    pub meta_encountered: u64,
    /// Global/local memory transactions issued.
    pub mem_txns: u64,
    /// Global-memory requests merged into an already-in-flight
    /// 128 B segment (MSHR hits).
    pub mshr_merges: u64,
    /// Cycles a warp stalled because its bank had no free register.
    pub no_reg_stalls: u64,
    /// Operand-collector register-bank conflicts (two source operands
    /// of one instruction resident in the same bank; each costs an
    /// extra collection cycle).
    pub bank_conflicts: u64,
    /// GPU-shrink emergency register spills (warp swap-outs).
    pub swap_outs: u64,
    /// Barrier waits observed.
    pub barrier_waits: u64,
    /// CTAs completed.
    pub ctas_completed: u64,
    /// Scheduler cycles with a CTA-throttle restriction active.
    pub throttle_restricted_cycles: u64,
    /// Periodic occupancy samples.
    pub samples: Vec<Sample>,
    /// Register file event counters.
    pub regfile: RegFileStats,
    /// Renaming table access counters.
    pub renaming: RenamingStats,
    /// Release flag cache counters.
    pub flag_cache: FlagCacheStats,
    /// Integral of powered subarrays over time (subarray-cycles).
    pub subarray_on_cycles: u64,
    /// Subarray wakeup events.
    pub wakeups: u64,
    /// Warp-slot-0 register lifetime events (only populated when
    /// `SimConfig::trace_warp0_regs` is set).
    pub reg_trace: Vec<RegTraceEvent>,
    /// Per-subarray live-register occupancy captured at
    /// `SimConfig::snapshot_at_cycle` (cycle, occupancy per global
    /// subarray id) — the Figure 8 map.
    pub subarray_snapshot: Option<(u64, Vec<usize>)>,
}

impl SimStats {
    /// Total dynamic decode count: machine instructions plus decoded
    /// metadata (Figure 13 compares this against machine-only).
    pub fn total_decoded(&self) -> u64 {
        self.instrs_issued + self.meta_decoded
    }

    /// SIMD efficiency: mean fraction of the 32 lanes active per
    /// issued instruction (1.0 = never diverged).
    pub fn simd_efficiency(&self) -> f64 {
        if self.instrs_issued == 0 {
            0.0
        } else {
            self.active_lane_sum as f64 / (self.instrs_issued as f64 * 32.0)
        }
    }

    /// Instructions per cycle (warp-instruction granularity; the
    /// baseline dual-issue SM peaks at 2.0).
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instrs_issued as f64 / self.cycles as f64
        }
    }

    /// Dynamic code increase from metadata, percent.
    pub fn dynamic_increase_pct(&self) -> f64 {
        if self.instrs_issued == 0 {
            0.0
        } else {
            100.0 * self.meta_decoded as f64 / self.instrs_issued as f64
        }
    }

    /// Mean live physical registers across samples.
    pub fn mean_live_regs(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().map(|s| s.live_regs as f64).sum::<f64>() / self.samples.len() as f64
    }

    /// Mean fraction of resident architected registers that are live
    /// (Figure 1's Y axis).
    pub fn mean_live_fraction(&self) -> f64 {
        let pts: Vec<f64> = self
            .samples
            .iter()
            .filter(|s| s.resident_arch_regs > 0)
            .map(|s| s.live_regs as f64 / s.resident_arch_regs as f64)
            .collect();
        if pts.is_empty() {
            0.0
        } else {
            pts.iter().sum::<f64>() / pts.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decode_accounting() {
        let s = SimStats {
            instrs_issued: 1000,
            meta_decoded: 110,
            ..SimStats::default()
        };
        assert_eq!(s.total_decoded(), 1110);
        assert!((s.dynamic_increase_pct() - 11.0).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = SimStats::default();
        assert_eq!(s.dynamic_increase_pct(), 0.0);
        assert_eq!(s.mean_live_regs(), 0.0);
        assert_eq!(s.mean_live_fraction(), 0.0);
        assert_eq!(s.ipc(), 0.0);
    }

    #[test]
    fn simd_efficiency_math() {
        let s = SimStats {
            instrs_issued: 10,
            active_lane_sum: 160, // half the lanes on average
            ..SimStats::default()
        };
        assert!((s.simd_efficiency() - 0.5).abs() < 1e-12);
        assert_eq!(SimStats::default().simd_efficiency(), 0.0);
    }

    #[test]
    fn ipc_math() {
        let s = SimStats {
            cycles: 500,
            instrs_issued: 800,
            ..SimStats::default()
        };
        assert!((s.ipc() - 1.6).abs() < 1e-12);
    }

    #[test]
    fn sample_means() {
        let mk = |cycle, live, arch| Sample {
            cycle,
            live_regs: live,
            resident_arch_regs: arch,
            subarrays_on: 4,
        };
        let s = SimStats {
            samples: vec![mk(0, 10, 100), mk(16, 30, 100), mk(32, 20, 0)],
            ..SimStats::default()
        };
        assert!((s.mean_live_regs() - 20.0).abs() < 1e-12);
        // the zero-resident sample is excluded from the fraction
        assert!((s.mean_live_fraction() - 0.2).abs() < 1e-12);
    }
}
