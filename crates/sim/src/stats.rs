//! Simulation statistics and per-cycle samples.

use rfv_core::{FlagCacheStats, RegFileStats, RenamingStats};
use rfv_trace::{Dec, Enc, MetricsRegistry, WireError};

/// One periodic sample of register-file occupancy (drives Figure 1 and
/// the energy model's averages).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Sample {
    /// Sample cycle.
    pub cycle: u64,
    /// Live (allocated) physical registers.
    pub live_regs: usize,
    /// Architected registers currently resident (allocation the
    /// conventional GPU would hold): `regs/kernel × resident warps`.
    pub resident_arch_regs: usize,
    /// Subarrays powered on.
    pub subarrays_on: usize,
}

/// One register allocate/release event of warp slot 0 (Figure 2's
/// lifetime traces).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RegTraceEvent {
    /// Event cycle.
    pub cycle: u64,
    /// Architected register id.
    pub reg: u8,
    /// `true` = became live (allocated), `false` = released.
    pub live: bool,
}

/// Aggregate statistics for one SM run.
#[derive(Clone, PartialEq, Default, Debug)]
pub struct SimStats {
    /// Total simulated cycles.
    pub cycles: u64,
    /// Machine instructions issued (warp granularity).
    pub instrs_issued: u64,
    /// Sum of active lanes over all issued instructions (SIMD
    /// efficiency numerator).
    pub active_lane_sum: u64,
    /// Metadata instructions decoded (`pir` flag-cache misses plus all
    /// `pbr` fetches) — Figure 13's dynamic overhead.
    pub meta_decoded: u64,
    /// Metadata slots encountered in fetch (decoded or skipped).
    pub meta_encountered: u64,
    /// Global/local memory transactions issued.
    pub mem_txns: u64,
    /// Global-memory requests merged into an already-in-flight
    /// 128 B segment (MSHR hits).
    pub mshr_merges: u64,
    /// Cycles a warp stalled because its bank had no free register.
    pub no_reg_stalls: u64,
    /// Operand-collector register-bank conflicts (two source operands
    /// of one instruction resident in the same bank; each costs an
    /// extra collection cycle).
    pub bank_conflicts: u64,
    /// GPU-shrink emergency register spills (warp swap-outs).
    pub swap_outs: u64,
    /// Barrier waits observed.
    pub barrier_waits: u64,
    /// CTAs completed.
    pub ctas_completed: u64,
    /// Scheduler cycles with a CTA-throttle restriction active.
    pub throttle_restricted_cycles: u64,
    /// Faults injected by the configured `FaultPlan`.
    pub faults_injected: u64,
    /// Soundness violations the sanitizer detected (0 when the
    /// sanitizer is off).
    pub sanitizer_detections: u64,
    /// Warps quarantined by `SanitizeLevel::Recover`.
    pub quarantined_warps: u64,
    /// CTAs quarantined by `SanitizeLevel::Recover`.
    pub quarantined_ctas: u64,
    /// Periodic occupancy samples.
    pub samples: Vec<Sample>,
    /// Register file event counters.
    pub regfile: RegFileStats,
    /// Renaming table access counters.
    pub renaming: RenamingStats,
    /// Release flag cache counters.
    pub flag_cache: FlagCacheStats,
    /// Integral of powered subarrays over time (subarray-cycles).
    pub subarray_on_cycles: u64,
    /// Subarray wakeup events.
    pub wakeups: u64,
    /// Warp-slot-0 register lifetime events (only populated when
    /// `SimConfig::trace_warp0_regs` is set).
    pub reg_trace: Vec<RegTraceEvent>,
    /// Per-subarray live-register occupancy captured at
    /// `SimConfig::snapshot_at_cycle` (cycle, occupancy per global
    /// subarray id) — the Figure 8 map.
    pub subarray_snapshot: Option<(u64, Vec<usize>)>,
}

impl SimStats {
    /// Serializes every counter, sample, and trace event into a
    /// checkpoint frame.
    pub fn encode(&self, e: &mut Enc) {
        e.u64(self.cycles);
        e.u64(self.instrs_issued);
        e.u64(self.active_lane_sum);
        e.u64(self.meta_decoded);
        e.u64(self.meta_encountered);
        e.u64(self.mem_txns);
        e.u64(self.mshr_merges);
        e.u64(self.no_reg_stalls);
        e.u64(self.bank_conflicts);
        e.u64(self.swap_outs);
        e.u64(self.barrier_waits);
        e.u64(self.ctas_completed);
        e.u64(self.throttle_restricted_cycles);
        e.u64(self.faults_injected);
        e.u64(self.sanitizer_detections);
        e.u64(self.quarantined_warps);
        e.u64(self.quarantined_ctas);
        e.usize(self.samples.len());
        for s in &self.samples {
            e.u64(s.cycle);
            e.usize(s.live_regs);
            e.usize(s.resident_arch_regs);
            e.usize(s.subarrays_on);
        }
        e.u64(self.regfile.rf_reads);
        e.u64(self.regfile.rf_writes);
        e.u64(self.regfile.allocs);
        e.u64(self.regfile.releases);
        e.u64(self.regfile.static_allocs);
        e.u64(self.regfile.alloc_failures);
        e.usize(self.regfile.peak_live);
        e.u64(self.regfile.double_free_attempts);
        e.u64(self.renaming.lookups);
        e.u64(self.renaming.updates);
        e.u64(self.flag_cache.hits);
        e.u64(self.flag_cache.misses);
        e.u64(self.subarray_on_cycles);
        e.u64(self.wakeups);
        e.usize(self.reg_trace.len());
        for t in &self.reg_trace {
            e.u64(t.cycle);
            e.u8(t.reg);
            e.bool(t.live);
        }
        match &self.subarray_snapshot {
            None => e.bool(false),
            Some((cycle, occ)) => {
                e.bool(true);
                e.u64(*cycle);
                e.usize(occ.len());
                for &o in occ {
                    e.usize(o);
                }
            }
        }
    }

    /// Inverse of [`SimStats::encode`].
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] on truncated input.
    pub fn decode(d: &mut Dec<'_>) -> Result<SimStats, WireError> {
        let mut s = SimStats {
            cycles: d.u64()?,
            instrs_issued: d.u64()?,
            active_lane_sum: d.u64()?,
            meta_decoded: d.u64()?,
            meta_encountered: d.u64()?,
            mem_txns: d.u64()?,
            mshr_merges: d.u64()?,
            no_reg_stalls: d.u64()?,
            bank_conflicts: d.u64()?,
            swap_outs: d.u64()?,
            barrier_waits: d.u64()?,
            ctas_completed: d.u64()?,
            throttle_restricted_cycles: d.u64()?,
            faults_injected: d.u64()?,
            sanitizer_detections: d.u64()?,
            quarantined_warps: d.u64()?,
            quarantined_ctas: d.u64()?,
            ..SimStats::default()
        };
        let n = d.usize()?;
        s.samples = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            s.samples.push(Sample {
                cycle: d.u64()?,
                live_regs: d.usize()?,
                resident_arch_regs: d.usize()?,
                subarrays_on: d.usize()?,
            });
        }
        s.regfile = RegFileStats {
            rf_reads: d.u64()?,
            rf_writes: d.u64()?,
            allocs: d.u64()?,
            releases: d.u64()?,
            static_allocs: d.u64()?,
            alloc_failures: d.u64()?,
            peak_live: d.usize()?,
            double_free_attempts: d.u64()?,
        };
        s.renaming = RenamingStats {
            lookups: d.u64()?,
            updates: d.u64()?,
        };
        s.flag_cache = FlagCacheStats {
            hits: d.u64()?,
            misses: d.u64()?,
        };
        s.subarray_on_cycles = d.u64()?;
        s.wakeups = d.u64()?;
        let n = d.usize()?;
        s.reg_trace = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            s.reg_trace.push(RegTraceEvent {
                cycle: d.u64()?,
                reg: d.u8()?,
                live: d.bool()?,
            });
        }
        if d.bool()? {
            let cycle = d.u64()?;
            let n = d.usize()?;
            let mut occ = Vec::with_capacity(n.min(1 << 20));
            for _ in 0..n {
                occ.push(d.usize()?);
            }
            s.subarray_snapshot = Some((cycle, occ));
        }
        Ok(s)
    }

    /// Total dynamic decode count: machine instructions plus decoded
    /// metadata (Figure 13 compares this against machine-only).
    pub fn total_decoded(&self) -> u64 {
        self.instrs_issued + self.meta_decoded
    }

    /// SIMD efficiency: mean fraction of the 32 lanes active per
    /// issued instruction (1.0 = never diverged).
    pub fn simd_efficiency(&self) -> f64 {
        if self.instrs_issued == 0 {
            0.0
        } else {
            self.active_lane_sum as f64 / (self.instrs_issued as f64 * 32.0)
        }
    }

    /// Instructions per cycle (warp-instruction granularity; the
    /// baseline dual-issue SM peaks at 2.0).
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instrs_issued as f64 / self.cycles as f64
        }
    }

    /// Dynamic code increase from metadata, percent.
    pub fn dynamic_increase_pct(&self) -> f64 {
        if self.instrs_issued == 0 {
            0.0
        } else {
            100.0 * self.meta_decoded as f64 / self.instrs_issued as f64
        }
    }

    /// Mean live physical registers across samples.
    pub fn mean_live_regs(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().map(|s| s.live_regs as f64).sum::<f64>() / self.samples.len() as f64
    }

    /// Mean fraction of resident architected registers that are live
    /// (Figure 1's Y axis).
    pub fn mean_live_fraction(&self) -> f64 {
        let pts: Vec<f64> = self
            .samples
            .iter()
            .filter(|s| s.resident_arch_regs > 0)
            .map(|s| s.live_regs as f64 / s.resident_arch_regs as f64)
            .collect();
        if pts.is_empty() {
            0.0
        } else {
            pts.iter().sum::<f64>() / pts.len() as f64
        }
    }

    /// Exports every counter and derived ratio into a
    /// [`MetricsRegistry`] (the `--stats-json` payload). Counter names
    /// are dotted (`sim.cycles`, `regfile.allocs`, ...); derived
    /// ratios become gauges; per-sample live-register occupancy is
    /// folded into a histogram.
    pub fn to_metrics(&self) -> MetricsRegistry {
        let mut m = MetricsRegistry::new();
        m.add("sim.cycles", self.cycles);
        m.add("sim.instrs_issued", self.instrs_issued);
        m.add("sim.active_lane_sum", self.active_lane_sum);
        m.add("sim.meta_decoded", self.meta_decoded);
        m.add("sim.meta_encountered", self.meta_encountered);
        m.add("sim.mem_txns", self.mem_txns);
        m.add("sim.mshr_merges", self.mshr_merges);
        m.add("sim.no_reg_stalls", self.no_reg_stalls);
        m.add("sim.bank_conflicts", self.bank_conflicts);
        m.add("sim.swap_outs", self.swap_outs);
        m.add("sim.barrier_waits", self.barrier_waits);
        m.add("sim.ctas_completed", self.ctas_completed);
        m.add(
            "sim.throttle_restricted_cycles",
            self.throttle_restricted_cycles,
        );
        m.add("sim.faults_injected", self.faults_injected);
        m.add("sim.sanitizer_detections", self.sanitizer_detections);
        m.add("sim.quarantined_warps", self.quarantined_warps);
        m.add("sim.quarantined_ctas", self.quarantined_ctas);
        m.add("regfile.rf_reads", self.regfile.rf_reads);
        m.add("regfile.rf_writes", self.regfile.rf_writes);
        m.add("regfile.allocs", self.regfile.allocs);
        m.add("regfile.releases", self.regfile.releases);
        m.add("regfile.static_allocs", self.regfile.static_allocs);
        m.add("regfile.alloc_failures", self.regfile.alloc_failures);
        m.add("regfile.peak_live", self.regfile.peak_live as u64);
        m.add(
            "regfile.double_free_attempts",
            self.regfile.double_free_attempts,
        );
        m.add("renaming.lookups", self.renaming.lookups);
        m.add("renaming.updates", self.renaming.updates);
        m.add("flag_cache.hits", self.flag_cache.hits);
        m.add("flag_cache.misses", self.flag_cache.misses);
        m.add("gating.subarray_on_cycles", self.subarray_on_cycles);
        m.add("gating.wakeups", self.wakeups);
        m.set_gauge("sim.ipc", self.ipc());
        m.set_gauge("sim.simd_efficiency", self.simd_efficiency());
        m.set_gauge("sim.dynamic_increase_pct", self.dynamic_increase_pct());
        m.set_gauge("sim.mean_live_regs", self.mean_live_regs());
        m.set_gauge("sim.mean_live_fraction", self.mean_live_fraction());
        m.set_gauge("flag_cache.hit_rate", self.flag_cache.hit_rate());
        for s in &self.samples {
            m.observe("samples.live_regs", s.live_regs as u64);
            m.observe("samples.subarrays_on", s.subarrays_on as u64);
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decode_accounting() {
        let s = SimStats {
            instrs_issued: 1000,
            meta_decoded: 110,
            ..SimStats::default()
        };
        assert_eq!(s.total_decoded(), 1110);
        assert!((s.dynamic_increase_pct() - 11.0).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = SimStats::default();
        assert_eq!(s.dynamic_increase_pct(), 0.0);
        assert_eq!(s.mean_live_regs(), 0.0);
        assert_eq!(s.mean_live_fraction(), 0.0);
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.simd_efficiency(), 0.0);
        assert_eq!(s.total_decoded(), 0);
        // every derived gauge of an empty run must be finite (no
        // NaN/inf leaking into --stats-json)
        let m = s.to_metrics();
        let json = m.to_json();
        let parsed = rfv_trace::json::parse(&json).expect("valid JSON");
        let gauges = parsed
            .get("gauges")
            .and_then(|g| g.as_obj())
            .expect("gauges object");
        for (name, v) in gauges {
            let n = v.as_num().expect("numeric gauge");
            assert!(n.is_finite(), "gauge {name} is not finite: {n}");
        }
    }

    #[test]
    fn metrics_export_round_trips() {
        let s = SimStats {
            cycles: 100,
            instrs_issued: 150,
            samples: vec![Sample {
                cycle: 0,
                live_regs: 12,
                resident_arch_regs: 48,
                subarrays_on: 3,
            }],
            ..SimStats::default()
        };
        let m = s.to_metrics();
        assert_eq!(m.counter("sim.cycles"), 100);
        assert_eq!(m.counter("sim.instrs_issued"), 150);
        assert!((m.gauge("sim.ipc").expect("ipc gauge") - 1.5).abs() < 1e-12);
        let parsed = rfv_trace::json::parse(&m.to_json()).expect("valid JSON");
        let counters = parsed.get("counters").and_then(|c| c.as_obj()).unwrap();
        assert_eq!(
            counters.get("sim.cycles").and_then(|v| v.as_num()),
            Some(100.0)
        );
    }

    #[test]
    fn stats_snapshot_round_trips() {
        let s = SimStats {
            cycles: 4321,
            instrs_issued: 999,
            swap_outs: 7,
            samples: vec![Sample {
                cycle: 16,
                live_regs: 40,
                resident_arch_regs: 96,
                subarrays_on: 5,
            }],
            regfile: RegFileStats {
                rf_reads: 10,
                rf_writes: 20,
                allocs: 5,
                releases: 4,
                static_allocs: 2,
                alloc_failures: 1,
                double_free_attempts: 0,
                peak_live: 77,
            },
            renaming: RenamingStats {
                lookups: 3,
                updates: 2,
            },
            flag_cache: FlagCacheStats { hits: 8, misses: 1 },
            reg_trace: vec![RegTraceEvent {
                cycle: 5,
                reg: 3,
                live: true,
            }],
            subarray_snapshot: Some((100, vec![1, 2, 3])),
            ..SimStats::default()
        };
        let mut e = Enc::new();
        s.encode(&mut e);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        let back = SimStats::decode(&mut d).expect("decode stats");
        assert!(d.is_done());
        assert_eq!(back, s);
        // truncation never panics
        for cut in [0, 8, bytes.len() - 1] {
            assert!(SimStats::decode(&mut Dec::new(&bytes[..cut])).is_err());
        }
    }

    #[test]
    fn simd_efficiency_math() {
        let s = SimStats {
            instrs_issued: 10,
            active_lane_sum: 160, // half the lanes on average
            ..SimStats::default()
        };
        assert!((s.simd_efficiency() - 0.5).abs() < 1e-12);
        assert_eq!(SimStats::default().simd_efficiency(), 0.0);
    }

    #[test]
    fn ipc_math() {
        let s = SimStats {
            cycles: 500,
            instrs_issued: 800,
            ..SimStats::default()
        };
        assert!((s.ipc() - 1.6).abs() < 1e-12);
    }

    #[test]
    fn sample_means() {
        let mk = |cycle, live, arch| Sample {
            cycle,
            live_regs: live,
            resident_arch_regs: arch,
            subarrays_on: 4,
        };
        let s = SimStats {
            samples: vec![mk(0, 10, 100), mk(16, 30, 100), mk(32, 20, 0)],
            ..SimStats::default()
        };
        assert!((s.mean_live_regs() - 20.0).abs() < 1e-12);
        // the zero-resident sample is excluded from the fraction
        assert!((s.mean_live_fraction() - 0.2).abs() < 1e-12);
    }
}
