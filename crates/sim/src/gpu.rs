//! Multi-SM GPU wrapper: distributes a grid's CTAs across SMs and
//! aggregates statistics.
//!
//! SMs in this model do not share state (the workloads are
//! embarrassingly parallel at CTA granularity and the paper's metrics
//! are per-SM ratios), so each SM runs to completion independently and
//! the GPU's execution time is the slowest SM's.
//!
//! # Parallel execution
//!
//! Because SMs are independent, multi-SM runs execute each SM on the
//! process-wide persistent worker pool ([`rfv_pool`]) and merge the
//! results afterwards — repeated runs (sweep rows, benchmark repeats,
//! `rfvd` job slices) reuse one set of threads instead of spawning a
//! scope per run. The merge is deterministic: per-SM statistics and
//! memories are collected in SM order regardless of thread completion
//! order, and trace events are combined by [`rfv_trace::merge_shards`]
//! on the total key `(cycle, sm, seq)` — so a parallel run is
//! bit-identical to a sequential one. [`SimConfig::sm_jobs`] (or the
//! `RFV_JOBS` environment variable, checked when the config leaves it
//! `None`) forces the worker count; `1` restores the sequential path.
//!
//! Each run also predecodes (and plan-lowers, see [`crate::sm::plan`])
//! the kernel exactly once, sharing the image across its SMs.

use std::sync::Arc;

use rfv_compiler::CompiledKernel;
use rfv_trace::TraceEvent;

use crate::checkpoint::{Checkpoint, CKPT_VERSION};
use crate::config::SimConfig;
use crate::memory::GlobalMemory;
use crate::predecode::PredecodedKernel;
use crate::sm::{SimError, Sm, SmResult};
use crate::stats::SimStats;

/// Result of a whole-GPU simulation.
#[derive(Clone, Debug)]
pub struct SimResult {
    /// GPU execution time: the slowest SM's cycle count.
    pub cycles: u64,
    /// Per-SM statistics.
    pub per_sm: Vec<SimStats>,
    /// Per-SM final global memories (SMs are independent; workload
    /// verification reads the SM that ran the CTA of interest).
    pub memories: Vec<GlobalMemory>,
}

impl SimResult {
    /// Statistics of SM 0 (the usual reporting SM).
    ///
    /// Always present: configurations with zero SMs are rejected with
    /// [`SimError::BadConfig`] before any simulation runs, so every
    /// constructed `SimResult` holds at least one SM.
    pub fn sm0(&self) -> &SimStats {
        &self.per_sm[0]
    }

    /// Sums a per-SM counter.
    pub fn total<F: Fn(&SimStats) -> u64>(&self, f: F) -> u64 {
        self.per_sm.iter().map(f).sum()
    }
}

/// A [`SimResult`] together with the structured trace it produced.
#[derive(Clone, Debug)]
pub struct TracedRun {
    /// The simulation outcome (identical to an untraced run).
    pub result: SimResult,
    /// All SMs' trace events, merged and sorted by cycle (per-SM
    /// relative order preserved).
    pub events: Vec<TraceEvent>,
}

/// Runs `kernel` on a GPU configured by `config`, with CTAs
/// distributed round-robin across SMs. `init` pre-loads global
/// memory on every SM (each SM has a private copy of the address
/// space).
///
/// # Errors
///
/// See [`SimError`].
pub fn simulate_with_init(
    kernel: &CompiledKernel,
    config: &SimConfig,
    init: &[(u64, u32)],
) -> Result<SimResult, SimError> {
    Ok(run_all(kernel, config, init, 0)?.result)
}

/// [`simulate`] with structured tracing: every SM records up to
/// `trace_capacity` events in a bounded ring (capacity `0` disables
/// tracing entirely, compiling the instrumentation down to untaken
/// branches).
///
/// # Errors
///
/// See [`SimError`].
pub fn simulate_traced(
    kernel: &CompiledKernel,
    config: &SimConfig,
    trace_capacity: usize,
) -> Result<TracedRun, SimError> {
    run_all(kernel, config, &[], trace_capacity)
}

/// [`simulate_with_init`] with structured tracing; see
/// [`simulate_traced`].
///
/// # Errors
///
/// See [`SimError`].
pub fn simulate_traced_with_init(
    kernel: &CompiledKernel,
    config: &SimConfig,
    init: &[(u64, u32)],
    trace_capacity: usize,
) -> Result<TracedRun, SimError> {
    run_all(kernel, config, init, trace_capacity)
}

/// Worker threads for SM execution: the config's `sm_jobs` if set,
/// else the `RFV_JOBS` environment variable, else the machine's
/// available parallelism — never more than the SM count.
fn sm_workers(config: &SimConfig) -> usize {
    config
        .sm_jobs
        .or_else(|| {
            std::env::var("RFV_JOBS")
                .ok()
                .and_then(|v| v.parse().ok())
                .filter(|&n| n > 0)
        })
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        })
        .min(config.num_sms)
        .max(1)
}

fn run_all(
    kernel: &CompiledKernel,
    config: &SimConfig,
    init: &[(u64, u32)],
    trace_capacity: usize,
) -> Result<TracedRun, SimError> {
    // reject zero-SM (and other degenerate) configs before the CTA
    // distribution below divides by num_sms or reporting indexes SM 0
    config.validate().map_err(SimError::BadConfig)?;
    // predecode + plan-lower once; every SM of the run shares the image
    let prog = Arc::new(PredecodedKernel::new(kernel));
    let run_one = |sm_id: usize, assigned: Vec<u32>| -> Result<crate::sm::SmResult, SimError> {
        let mut sm = Sm::with_predecoded(*config, kernel, assigned, Arc::clone(&prog))?;
        sm.set_tracing(sm_id as u16, trace_capacity);
        for &(addr, value) in init {
            sm.write_global(addr, value);
        }
        sm.run()
    };
    run_sms(config, cta_assignments(kernel, config), run_one)
}

/// Executes one closure per SM — sequentially, or on the persistent
/// worker pool — collecting results in SM order, and merges them. A
/// panicked worker surfaces as [`SimError::WorkerPanic`].
fn run_sms(
    config: &SimConfig,
    assignments: Vec<Vec<u32>>,
    run_one: impl Fn(usize, Vec<u32>) -> Result<SmResult, SimError> + Sync,
) -> Result<TracedRun, SimError> {
    let workers = sm_workers(config);
    let results: Vec<Result<SmResult, SimError>> = if workers == 1 {
        assignments
            .into_iter()
            .enumerate()
            .map(|(sm_id, assigned)| run_one(sm_id, assigned))
            .collect()
    } else {
        let jobs: Vec<(usize, Vec<u32>)> = assignments.into_iter().enumerate().collect();
        rfv_pool::par_map_catching_with(workers, &jobs, |(sm_id, assigned)| {
            run_one(*sm_id, assigned.clone())
        })
        .into_iter()
        .map(|r| r.unwrap_or(Err(SimError::WorkerPanic)))
        .collect()
    };
    merge_results(config, results)
}

/// Deterministic merge of per-SM results collected in SM order.
fn merge_results(
    config: &SimConfig,
    results: Vec<Result<SmResult, SimError>>,
) -> Result<TracedRun, SimError> {
    let mut per_sm = Vec::with_capacity(config.num_sms);
    let mut memories = Vec::with_capacity(config.num_sms);
    let mut shards: Vec<Vec<TraceEvent>> = Vec::with_capacity(config.num_sms);
    let mut cycles = 0;
    for result in results {
        let result = result?;
        cycles = cycles.max(result.stats.cycles);
        per_sm.push(result.stats);
        memories.push(result.global);
        shards.push(result.events);
    }
    Ok(TracedRun {
        result: SimResult {
            cycles,
            per_sm,
            memories,
        },
        events: rfv_trace::merge_shards(shards),
    })
}

/// Round-robin CTA distribution across SMs — the single source of
/// truth shared by fresh, checkpointed, and resumed runs, so a frame
/// snapshotted on SM *i* always restores onto the SM holding the same
/// CTA list.
fn cta_assignments(kernel: &CompiledKernel, config: &SimConfig) -> Vec<Vec<u32>> {
    let grid = kernel.kernel().launch().grid_ctas();
    let mut assignments: Vec<Vec<u32>> = vec![Vec::new(); config.num_sms];
    for cta in 0..grid {
        assignments[(cta as usize) % config.num_sms].push(cta);
    }
    assignments
}

/// [`simulate_traced_with_init`] that additionally snapshots the whole
/// machine every `every` cycles, handing each [`Checkpoint`] to
/// `on_checkpoint` (typically an atomic file writer). The run itself
/// is bit-identical to an uncheckpointed one: SMs advance in lockstep
/// boundary rounds and snapshots are taken with read-only access at
/// step boundaries. Checkpoints stop once every SM has completed (a
/// snapshot of a finished machine has nothing left to resume).
///
/// # Errors
///
/// See [`SimError`]; an `Err` from `on_checkpoint` aborts the run
/// as [`SimError::BadCheckpoint`] (checkpoints already handed over
/// remain valid).
pub fn simulate_traced_checkpointed(
    kernel: &CompiledKernel,
    config: &SimConfig,
    init: &[(u64, u32)],
    trace_capacity: usize,
    every: u64,
    on_checkpoint: &mut dyn FnMut(&Checkpoint) -> Result<(), String>,
) -> Result<TracedRun, SimError> {
    if every == 0 {
        return Err(SimError::BadConfig(
            "checkpoint interval must be positive".into(),
        ));
    }
    let mut sim = SlicedSim::new(kernel, config, init, trace_capacity)?;
    loop {
        if sim.advance(every)? {
            break;
        }
        let ck = sim.checkpoint();
        on_checkpoint(&ck).map_err(|e| {
            SimError::BadCheckpoint(format!("checkpoint at cycle {} not written: {e}", ck.cycle))
        })?;
    }
    sim.finish()
}

/// An incrementally-driven whole-GPU simulation: the machine state
/// stays live between [`SlicedSim::advance`] calls, so a long run can
/// be executed in bounded cycle slices, snapshotted at any boundary,
/// handed off as a [`Checkpoint`], and picked up again later by
/// [`SlicedSim::resume`] — the mechanism behind `rfvd`'s
/// checkpoint-backed job preemption.
///
/// Slicing is invisible in the results: SMs advance in lockstep
/// boundary rounds exactly as [`simulate_traced_checkpointed`] does,
/// so a run driven in any mix of slice sizes — including one that is
/// checkpointed, dropped, and resumed in a different process —
/// finishes with stats, memories, and trace bit-identical to an
/// uninterrupted [`simulate_traced`] run.
pub struct SlicedSim<'k> {
    config: SimConfig,
    config_hash: u64,
    kernel_hash: u64,
    sms: Vec<Sm<'k>>,
    done: Vec<bool>,
    /// The cycle boundary every live SM has been driven to.
    cycle: u64,
}

impl<'k> SlicedSim<'k> {
    /// Builds a fresh machine ready to run `kernel`, with `init`
    /// pre-loaded into every SM's global memory (see
    /// [`simulate_with_init`]) and per-SM tracing capacity
    /// `trace_capacity` (0 disables tracing).
    ///
    /// # Errors
    ///
    /// See [`SimError`].
    pub fn new(
        kernel: &'k CompiledKernel,
        config: &SimConfig,
        init: &[(u64, u32)],
        trace_capacity: usize,
    ) -> Result<SlicedSim<'k>, SimError> {
        let prog = Arc::new(PredecodedKernel::new(kernel));
        SlicedSim::with_predecoded(kernel, config, init, trace_capacity, prog)
    }

    /// [`SlicedSim::new`] reusing an already-predecoded program image
    /// (see [`Sm::with_predecoded`]) — the `rfvd` compile+predecode
    /// cache hands every run of a cached kernel the same `Arc`.
    ///
    /// # Errors
    ///
    /// See [`SimError`].
    pub fn with_predecoded(
        kernel: &'k CompiledKernel,
        config: &SimConfig,
        init: &[(u64, u32)],
        trace_capacity: usize,
        prog: Arc<PredecodedKernel>,
    ) -> Result<SlicedSim<'k>, SimError> {
        config.validate().map_err(SimError::BadConfig)?;
        let mut sms = Vec::with_capacity(config.num_sms);
        for (sm_id, assigned) in cta_assignments(kernel, config).into_iter().enumerate() {
            let mut sm = Sm::with_predecoded(*config, kernel, assigned, Arc::clone(&prog))?;
            sm.set_tracing(sm_id as u16, trace_capacity);
            for &(addr, value) in init {
                sm.write_global(addr, value);
            }
            sms.push(sm);
        }
        let done = vec![false; sms.len()];
        Ok(SlicedSim {
            config: *config,
            config_hash: config.stable_hash(),
            kernel_hash: prog.kernel_hash(),
            sms,
            done,
            cycle: 0,
        })
    }

    /// Restores a machine from `checkpoint` (identity-verified against
    /// `kernel` and `config`) so a preempted run can continue. Tracing
    /// state — ring capacity and contents — is restored from the
    /// frames themselves.
    ///
    /// # Errors
    ///
    /// [`SimError::BadCheckpoint`] when the checkpoint does not belong
    /// to (`kernel`, `config`) or a frame is malformed; otherwise see
    /// [`SimError`].
    pub fn resume(
        kernel: &'k CompiledKernel,
        config: &SimConfig,
        checkpoint: &Checkpoint,
    ) -> Result<SlicedSim<'k>, SimError> {
        let prog = Arc::new(PredecodedKernel::new(kernel));
        SlicedSim::resume_with_predecoded(kernel, config, checkpoint, prog)
    }

    /// [`SlicedSim::resume`] reusing an already-predecoded program
    /// image (see [`Sm::with_predecoded`]).
    ///
    /// # Errors
    ///
    /// See [`SlicedSim::resume`].
    pub fn resume_with_predecoded(
        kernel: &'k CompiledKernel,
        config: &SimConfig,
        checkpoint: &Checkpoint,
        prog: Arc<PredecodedKernel>,
    ) -> Result<SlicedSim<'k>, SimError> {
        config.validate().map_err(SimError::BadConfig)?;
        checkpoint.verify_identity_hashed(prog.kernel_hash(), config)?;
        let mut sms = Vec::with_capacity(config.num_sms);
        for (sm_id, assigned) in cta_assignments(kernel, config).into_iter().enumerate() {
            let mut sm = Sm::with_predecoded(*config, kernel, assigned, Arc::clone(&prog))?;
            sm.restore_frame(&checkpoint.sm_frames[sm_id])
                .map_err(|e| SimError::BadCheckpoint(format!("SM {sm_id} frame: {e}")))?;
            sms.push(sm);
        }
        // a restored SM may already have finished before the snapshot;
        // the first advance() round discovers that via run_until
        let done = vec![false; sms.len()];
        Ok(SlicedSim {
            config: *config,
            config_hash: checkpoint.config_hash,
            kernel_hash: checkpoint.kernel_hash,
            sms,
            done,
            cycle: checkpoint.cycle,
        })
    }

    /// Drives every unfinished SM forward by `budget` cycles (to the
    /// boundary `cycle() + budget`), returning whether the whole
    /// machine has now completed. A zero budget is rejected as
    /// [`SimError::BadConfig`].
    ///
    /// # Errors
    ///
    /// See [`SimError`].
    pub fn advance(&mut self, budget: u64) -> Result<bool, SimError> {
        if budget == 0 {
            return Err(SimError::BadConfig("slice budget must be positive".into()));
        }
        let boundary = self.cycle.saturating_add(budget);
        for (sm, done) in self.sms.iter_mut().zip(self.done.iter_mut()) {
            if !*done {
                *done = sm.run_until(boundary)?;
            }
        }
        self.cycle = boundary;
        Ok(self.is_done())
    }

    /// Whether every SM has run to completion.
    pub fn is_done(&self) -> bool {
        self.done.iter().all(|&d| d)
    }

    /// The cycle boundary the machine has been driven to.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Snapshots the whole machine as a [`Checkpoint`] at the current
    /// boundary. Meaningful while [`SlicedSim::is_done`] is false — a
    /// snapshot of a finished machine resumes to an immediate
    /// completion.
    pub fn checkpoint(&self) -> Checkpoint {
        Checkpoint {
            version: CKPT_VERSION,
            config_hash: self.config_hash,
            kernel_hash: self.kernel_hash,
            cycle: self.cycle,
            sm_frames: self.sms.iter().map(Sm::snapshot_frame).collect(),
        }
    }

    /// Runs the machine to completion (if it is not there already) and
    /// merges the per-SM results; see [`simulate_traced`] for the
    /// result shape.
    ///
    /// # Errors
    ///
    /// See [`SimError`].
    pub fn finish(mut self) -> Result<TracedRun, SimError> {
        for (sm, done) in self.sms.iter_mut().zip(self.done.iter_mut()) {
            if !*done {
                *done = sm.run_until(u64::MAX)?;
            }
        }
        let results = self.sms.into_iter().map(Sm::finish).collect();
        merge_results(&self.config, results)
    }
}

/// Resumes a run from `checkpoint` and drives it to completion. The
/// final statistics, memories, and merged trace are bit-identical to
/// the uninterrupted run that produced the checkpoint.
///
/// # Errors
///
/// [`SimError::BadCheckpoint`] when the checkpoint does not belong to
/// (`kernel`, `config`) or a frame is malformed; otherwise see
/// [`SimError`].
pub fn simulate_resumable(
    kernel: &CompiledKernel,
    config: &SimConfig,
    checkpoint: &Checkpoint,
) -> Result<SimResult, SimError> {
    Ok(simulate_resumable_traced(kernel, config, checkpoint)?.result)
}

/// [`simulate_resumable`] returning the merged trace as well (the
/// trace tail recorded after the checkpoint continues the ring state
/// captured in it).
///
/// # Errors
///
/// See [`simulate_resumable`].
pub fn simulate_resumable_traced(
    kernel: &CompiledKernel,
    config: &SimConfig,
    checkpoint: &Checkpoint,
) -> Result<TracedRun, SimError> {
    config.validate().map_err(SimError::BadConfig)?;
    checkpoint.verify_identity(kernel, config)?;
    let prog = Arc::new(PredecodedKernel::new(kernel));
    let run_one = |sm_id: usize, assigned: Vec<u32>| -> Result<SmResult, SimError> {
        let mut sm = Sm::with_predecoded(*config, kernel, assigned, Arc::clone(&prog))?;
        sm.restore_frame(&checkpoint.sm_frames[sm_id])
            .map_err(|e| SimError::BadCheckpoint(format!("SM {sm_id} frame: {e}")))?;
        sm.run_until(u64::MAX)?;
        sm.finish()
    };
    run_sms(config, cta_assignments(kernel, config), run_one)
}

/// [`simulate_with_init`] without memory pre-loads.
///
/// # Errors
///
/// See [`SimError`].
pub fn simulate(kernel: &CompiledKernel, config: &SimConfig) -> Result<SimResult, SimError> {
    simulate_with_init(kernel, config, &[])
}

/// [`simulate`] reusing an already-predecoded program image (see
/// [`Sm::with_predecoded`]): repeat runs of the same kernel — a
/// benchmark's timing loop, a sweep's policy column — skip the per-run
/// predecode + plan lowering with no observable difference.
///
/// # Errors
///
/// See [`SimError`].
pub fn simulate_predecoded(
    kernel: &CompiledKernel,
    config: &SimConfig,
    prog: &Arc<PredecodedKernel>,
) -> Result<SimResult, SimError> {
    config.validate().map_err(SimError::BadConfig)?;
    let run_one = |sm_id: usize, assigned: Vec<u32>| -> Result<SmResult, SimError> {
        let mut sm = Sm::with_predecoded(*config, kernel, assigned, Arc::clone(prog))?;
        sm.set_tracing(sm_id as u16, 0);
        sm.run()
    };
    Ok(run_sms(config, cta_assignments(kernel, config), run_one)?.result)
}
