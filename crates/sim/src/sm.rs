//! One streaming multiprocessor: fetch (with release-flag-cache
//! probing), two-level warp scheduling, SIMT execution, the
//! virtualized register file, and the GPU-shrink CTA throttle.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::fmt;
use std::sync::Arc;

use rfv_compiler::CompiledKernel;
use rfv_core::{
    CtaThrottle, RegisterFile, ReleaseFlagCache, SanitizeLevel, Sanitizer, ThrottleDecision,
    Violation, ViolationKind, VirtualizationPolicy, WriteOutcome,
};
use rfv_faults::{FaultInjector, FaultKind};
use rfv_isa::{
    ArchReg, BankId, Opcode, Operand, PhysReg, PredGuard, Special, MAX_REGS_PER_THREAD,
    MAX_SRC_OPERANDS, WARP_SIZE,
};
use rfv_trace::wire::{decode_event, encode_event};
use rfv_trace::{
    Dec, Enc, FaultLabel, MemPhase, RingSink, Sink, StallReason, TraceEvent, TraceKind, WireError,
};

use crate::config::SimConfig;
use crate::memory::{coalesce_count, GlobalMemory, LocalMemory, SharedMemory};
use crate::predecode::{PdItem, PredecodedInstr, PredecodedKernel};
use crate::stats::{RegTraceEvent, Sample, SimStats};
use crate::warp::{SimtStack, Warp, WarpHot, WarpStatus};

pub(crate) mod plan;

/// Value pattern left in freed registers, to surface use-after-release
/// bugs in differential tests.
const POISON: u32 = 0xdead_beef;

/// Simulation failure.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SimError {
    /// The initial CTA could not be launched (static register demand
    /// exceeds the physical file even with nothing resident).
    LaunchImpossible {
        /// Registers demanded by one CTA.
        demanded: usize,
        /// Physical registers available.
        capacity: usize,
    },
    /// The watchdog cycle limit was exceeded (a deadlock or runaway
    /// kernel). Carries the machine state at the moment the limit was
    /// hit so the stall can be diagnosed from the error alone.
    Watchdog {
        /// The limit that was hit.
        cycles: u64,
        /// Warp, register, and throttle state at capture.
        snapshot: Box<WatchdogSnapshot>,
    },
    /// The online sanitizer (`SanitizeLevel::Check`) detected an
    /// unsound register-file state.
    Unsound {
        /// What the sanitizer observed.
        violation: Violation,
        /// The SM it happened on.
        sm: u16,
    },
    /// Configuration rejected.
    BadConfig(String),
    /// A checkpoint file or frame was rejected (truncated, corrupted,
    /// version-mismatched, or taken under a different config/kernel).
    BadCheckpoint(String),
    /// An SM worker thread terminated abnormally (a defect in the
    /// simulator itself, not in the simulated machine).
    WorkerPanic,
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::LaunchImpossible { demanded, capacity } => write!(
                f,
                "one CTA statically demands {demanded} registers but only {capacity} exist"
            ),
            SimError::Watchdog { cycles, snapshot } => {
                write!(
                    f,
                    "simulation exceeded the {cycles}-cycle watchdog\n{snapshot}"
                )
            }
            SimError::Unsound { violation, sm } => {
                write!(f, "unsound register state on SM {sm}: {violation}")
            }
            SimError::BadConfig(e) => write!(f, "bad configuration: {e}"),
            SimError::BadCheckpoint(e) => write!(f, "bad checkpoint: {e}"),
            SimError::WorkerPanic => write!(f, "an SM worker thread terminated abnormally"),
        }
    }
}

impl std::error::Error for SimError {}

/// Machine state captured when the watchdog fires, carried by
/// [`SimError::Watchdog`].
#[derive(Clone, PartialEq, Eq, Default, Debug)]
pub struct WatchdogSnapshot {
    /// Cycle at capture.
    pub cycle: u64,
    /// Free physical registers per bank.
    pub free_per_bank: Vec<usize>,
    /// Live physical registers.
    pub live_regs: usize,
    /// Resident CTA slots with their `C − k_i` throttle balances.
    pub cta_balances: Vec<(usize, usize)>,
    /// Ready-queue contents (warp slots).
    pub ready: Vec<usize>,
    /// Every non-idle warp's state.
    pub warps: Vec<WarpDiag>,
}

/// One warp's state inside a [`WatchdogSnapshot`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct WarpDiag {
    /// Hardware warp slot.
    pub slot: usize,
    /// CTA slot the warp belongs to.
    pub cta_slot: usize,
    /// Scheduler status name.
    pub status: String,
    /// Program counter (`None` once every lane exited).
    pub pc: Option<usize>,
    /// Earliest cycle the warp may issue again.
    pub next_issue_at: u64,
    /// Scoreboard bitmask of registers with in-flight loads.
    pub outstanding: u64,
    /// Dynamically mapped registers held.
    pub mapped: usize,
}

impl fmt::Display for WatchdogSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "cycle {}: free regs per bank {:?}, live {}, ready {:?}",
            self.cycle, self.free_per_bank, self.live_regs, self.ready
        )?;
        writeln!(f, "resident CTAs (slot, balance): {:?}", self.cta_balances)?;
        for w in &self.warps {
            writeln!(
                f,
                "  warp {} cta {} status {} pc {:?} next_issue {} outstanding {:#x} mapped {}",
                w.slot, w.cta_slot, w.status, w.pc, w.next_issue_at, w.outstanding, w.mapped
            )?;
        }
        Ok(())
    }
}

/// Result of one SM's run.
#[derive(Clone, Debug)]
pub struct SmResult {
    /// Statistics for this SM.
    pub stats: SimStats,
    /// Final global memory (for output verification).
    pub global: GlobalMemory,
    /// Structured trace events (empty unless [`Sm::set_tracing`]
    /// installed a recording sink).
    pub events: Vec<TraceEvent>,
}

#[derive(Clone, Debug)]
struct CtaState {
    warp_slots: Vec<usize>,
    live_warps: usize,
    at_barrier: usize,
}

enum IssueOutcome {
    Issued,
    Blocked,
    NoReg,
}

/// Iterator over the set lane indices of a warp mask, ascending, by
/// bit-scanning — cost scales with active lanes instead of always
/// walking all [`WARP_SIZE`] bit positions.
#[derive(Clone, Copy)]
struct Lanes(u32);

impl Iterator for Lanes {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        if self.0 == 0 {
            return None;
        }
        let l = self.0.trailing_zeros() as usize;
        self.0 &= self.0 - 1;
        Some(l)
    }
}

/// Dense backing store for swapped-out register values, indexed by
/// `warp_slot × MAX_REGS_PER_THREAD + reg`. Replaces a
/// `HashMap<(usize, u8), [u32; WARP_SIZE]>`: lookups become one
/// multiply-add, and a quarantined warp's entries clear with a linear
/// sweep of its own rows instead of a whole-map `retain`. The table
/// is allocated lazily on the first spill, so configurations that
/// never spill (no GPU shrink) pay nothing.
#[derive(Clone, Debug)]
struct SpillStore {
    values: Vec<Option<[u32; WARP_SIZE]>>,
    warp_slots: usize,
}

impl SpillStore {
    fn new(warp_slots: usize) -> SpillStore {
        SpillStore {
            values: Vec::new(),
            warp_slots,
        }
    }

    #[inline]
    fn idx(slot: usize, reg: ArchReg) -> usize {
        slot * MAX_REGS_PER_THREAD + reg.index()
    }

    fn insert(&mut self, slot: usize, reg: ArchReg, val: [u32; WARP_SIZE]) {
        if self.values.is_empty() {
            self.values = vec![None; self.warp_slots * MAX_REGS_PER_THREAD];
        }
        self.values[Self::idx(slot, reg)] = Some(val);
    }

    fn get(&self, slot: usize, reg: ArchReg) -> Option<&[u32; WARP_SIZE]> {
        self.values.get(Self::idx(slot, reg))?.as_ref()
    }

    fn remove(&mut self, slot: usize, reg: ArchReg) {
        if let Some(v) = self.values.get_mut(Self::idx(slot, reg)) {
            *v = None;
        }
    }

    fn clear_warp(&mut self, slot: usize) {
        if self.values.is_empty() {
            return;
        }
        let base = slot * MAX_REGS_PER_THREAD;
        self.values[base..base + MAX_REGS_PER_THREAD].fill(None);
    }
}

/// One simulated SM executing an assigned list of CTAs of a compiled
/// kernel.
pub struct Sm<'k> {
    config: SimConfig,
    kernel: &'k CompiledKernel,
    /// Issue-ready program image (see [`crate::predecode`]), built
    /// once in [`Sm::new`].
    prog: Arc<PredecodedKernel>,
    policy: VirtualizationPolicy,
    regfile: RegisterFile,
    flag_cache: ReleaseFlagCache,
    throttle: CtaThrottle,
    /// Scheduler-cold per-warp state (SIMT stack, CTA identity, spill
    /// list). The scheduler-hot fields live in the parallel arrays
    /// below (struct-of-arrays) so the per-cycle scans walk dense
    /// cache lines; `WarpHot` is only materialized at checkpoint and
    /// launch boundaries.
    warps: Vec<Warp>,
    /// Hot per-warp field: scheduling status, parallel to `warps`.
    warp_status: Vec<WarpStatus>,
    /// Hot per-warp field: earliest cycle the warp may issue again.
    warp_next_issue: Vec<u64>,
    /// Hot per-warp field: bitmask of arch registers with in-flight
    /// loads (the scoreboard).
    warp_outstanding: Vec<u64>,
    /// Hot per-warp field: cycle a GPU-shrink spill/reload completes.
    warp_swap_ready: Vec<u64>,
    /// Functional values, indexed by *physical* register — so a buggy
    /// early release corrupts outputs instead of hiding.
    values: Vec<[u32; WARP_SIZE]>,
    /// Predicate lane-masks per warp slot.
    preds: Vec<[u32; 4]>,
    global: GlobalMemory,
    shared: Vec<SharedMemory>,
    local: LocalMemory,
    spill_values: SpillStore,
    ready: Vec<usize>,
    waiting_ready: VecDeque<usize>,
    /// Per-slot occurrence counts mirroring `ready` / `waiting_ready`
    /// membership, so the hot-path `contains` / `position` checks are
    /// O(1) array reads. Counts (not booleans) because the two-level
    /// scheduler can transiently hold a slot twice (enqueue into a
    /// non-full queue while the slot still sits in `waiting_ready`,
    /// later refilled into `ready` again).
    ready_count: Vec<u32>,
    waiting_count: Vec<u32>,
    rr_cursor: usize,
    assigned: Vec<u32>,
    next_assigned: usize,
    cta_slots: Vec<Option<CtaState>>,
    load_events: BinaryHeap<Reverse<(u64, usize, u8)>>,
    /// Incremental next-wake index over warps: `(cycle, slot)` pushed
    /// at every transition into `Ready` / `SwappedOut` and at every
    /// `next_issue_at` update, validated lazily at pop. Populated and
    /// consulted only under [`SimConfig::incremental_wake_index`] —
    /// the production path sweeps the SoA status arrays instead (see
    /// [`Sm::next_event_cycle_scan`]), which profiles faster because
    /// it costs nothing on the issue path.
    wake_events: BinaryHeap<Reverse<(u64, usize)>>,
    /// MSHR-style merge: global-memory 128 B segments currently in
    /// flight and when their data arrives. A load hitting an in-flight
    /// segment rides along instead of issuing a new transaction.
    /// Stored as a flat `(segment, ready_at)` list — the live set is a
    /// handful of segments, where a linear scan beats hashing.
    inflight_segments: Vec<(u64, u64)>,
    /// Number of warps currently in `SwappedOut`, so the per-step
    /// swap-in probe can skip its all-warps scan when nothing is out
    /// (the common case outside GPU-shrink).
    swapped_out: usize,
    /// Scratch for `step`'s issued-this-cycle list, reused across
    /// steps to keep the scheduler loop allocation-free.
    issued_scratch: Vec<usize>,
    stats: SimStats,
    now: u64,
    next_sample: u64,
    static_regs: Vec<ArchReg>,
    /// `kernel.num_regs()`, cached: the accessor recomputes a full
    /// program scan per call and sits on the sampling path.
    num_regs: usize,
    /// Launch geometry, cached off the kernel for the S2R and
    /// sampling hot paths.
    warps_per_cta: usize,
    threads_per_cta: u32,
    grid_ctas: u32,
    /// Structured-trace destination; [`Sink::Noop`] unless
    /// [`Sm::set_tracing`] was called.
    sink: Sink,
    /// This SM's id in trace events.
    sm_id: u16,
    /// Online shadow-model checker (`SimConfig::sanitize`).
    sanitizer: Sanitizer,
    /// Deterministic fault injector (`SimConfig::faults`).
    injector: FaultInjector,
    /// First unhandled violation detected in the current step; `run`
    /// turns it into [`SimError::Unsound`] (`Check`) or a quarantine
    /// (`Recover`).
    violation: Option<Violation>,
    /// Whether the initial CTA launch has happened. Set by the first
    /// [`Sm::run_until`] call and by [`Sm::restore_frame`] — a restored
    /// machine is mid-run and must not launch its CTAs again.
    launched: bool,
}

impl<'k> Sm<'k> {
    /// Creates an SM that will execute `assigned` (grid CTA ids) of
    /// `kernel`.
    ///
    /// # Errors
    ///
    /// Fails on invalid configuration.
    pub fn new(
        config: SimConfig,
        kernel: &'k CompiledKernel,
        assigned: Vec<u32>,
    ) -> Result<Sm<'k>, SimError> {
        let prog = Arc::new(PredecodedKernel::new(kernel));
        Sm::with_predecoded(config, kernel, assigned, prog)
    }

    /// [`Sm::new`] reusing an already-predecoded program image.
    /// Predecode is pure — the same `kernel` always predecodes to the
    /// same image — so sharing one `Arc` across the SMs of a run (or
    /// across repeat runs of a cached kernel, as `rfvd` does) changes
    /// nothing observable while skipping the per-SM rebuild.
    ///
    /// # Errors
    ///
    /// Fails on invalid configuration.
    pub fn with_predecoded(
        config: SimConfig,
        kernel: &'k CompiledKernel,
        assigned: Vec<u32>,
        prog: Arc<PredecodedKernel>,
    ) -> Result<Sm<'k>, SimError> {
        config.validate().map_err(SimError::BadConfig)?;
        let policy = config.regfile.policy;
        let regfile = RegisterFile::new(config.regfile, config.max_warps_per_sm)
            .map_err(SimError::BadConfig)?;
        let num_regs = kernel.num_regs();
        let launch = kernel.kernel().launch();
        let warps_per_cta = launch.warps_per_cta() as usize;
        let threads_per_cta = launch.threads_per_cta();
        let grid_ctas = launch.grid_ctas();
        let static_regs: Vec<ArchReg> = match policy {
            VirtualizationPolicy::None => (0..num_regs as u8).map(ArchReg::new).collect(),
            VirtualizationPolicy::Full => kernel.exempt().iter().collect(),
            VirtualizationPolicy::HardwareOnly => Vec::new(),
        };
        Ok(Sm {
            flag_cache: ReleaseFlagCache::new(config.regfile.flag_cache_entries),
            throttle: CtaThrottle::new(config.max_ctas_per_sm),
            warps: (0..config.max_warps_per_sm).map(Warp::idle).collect(),
            warp_status: vec![WarpStatus::Idle; config.max_warps_per_sm],
            warp_next_issue: vec![0; config.max_warps_per_sm],
            warp_outstanding: vec![0; config.max_warps_per_sm],
            warp_swap_ready: vec![0; config.max_warps_per_sm],
            values: vec![[POISON; WARP_SIZE]; config.regfile.phys_regs],
            preds: vec![[0; 4]; config.max_warps_per_sm],
            global: GlobalMemory::new(),
            shared: (0..config.max_ctas_per_sm)
                .map(|_| SharedMemory::new(48 * 1024))
                .collect(),
            local: LocalMemory::new(),
            spill_values: SpillStore::new(config.max_warps_per_sm),
            ready: Vec::new(),
            waiting_ready: VecDeque::new(),
            ready_count: vec![0; config.max_warps_per_sm],
            waiting_count: vec![0; config.max_warps_per_sm],
            rr_cursor: 0,
            assigned,
            next_assigned: 0,
            cta_slots: vec![None; config.max_ctas_per_sm],
            load_events: BinaryHeap::new(),
            wake_events: BinaryHeap::new(),
            inflight_segments: Vec::new(),
            swapped_out: 0,
            issued_scratch: Vec::new(),
            stats: SimStats::default(),
            now: 0,
            next_sample: 0,
            sanitizer: Sanitizer::new(
                config.sanitize,
                config.max_warps_per_sm,
                config.regfile.phys_regs,
            ),
            injector: FaultInjector::new(&config.faults),
            violation: None,
            launched: false,
            num_regs,
            warps_per_cta,
            threads_per_cta,
            grid_ctas,
            regfile,
            policy,
            prog,
            kernel,
            config,
            static_regs,
            sink: Sink::Noop,
            sm_id: 0,
        })
    }

    /// Pre-loads global memory before the run (workload inputs).
    pub fn write_global(&mut self, addr: u64, value: u32) {
        self.global.write_word(addr, value);
    }

    /// Installs a bounded recording sink (`capacity > 0`) or disables
    /// tracing (`capacity == 0`). `sm_id` stamps every event this SM
    /// emits. Call before [`Sm::run`].
    pub fn set_tracing(&mut self, sm_id: u16, capacity: usize) {
        self.sm_id = sm_id;
        self.sink = if capacity == 0 {
            Sink::Noop
        } else {
            Sink::ring(capacity)
        };
    }

    /// Runs all assigned CTAs to completion.
    ///
    /// # Errors
    ///
    /// See [`SimError`].
    pub fn run(mut self) -> Result<SmResult, SimError> {
        self.run_until(u64::MAX)?;
        self.finish()
    }

    /// Advances the machine until either all work completes (`true`)
    /// or the clock reaches `limit` (`false`) — always pausing on a
    /// step boundary, so a [`Sm::snapshot_frame`] taken here restores
    /// to the exact mid-run state. Resuming with a larger limit (or
    /// [`Sm::finish`]ing after completion) reproduces an uninterrupted
    /// run bit for bit.
    ///
    /// # Errors
    ///
    /// See [`SimError`].
    pub fn run_until(&mut self, limit: u64) -> Result<bool, SimError> {
        if !self.launched {
            self.fill_cta_slots()?;
            self.launched = true;
        }
        while self.work_remains() {
            if self.now >= limit {
                return Ok(false);
            }
            self.step();
            if let Some(v) = self.violation.take() {
                if self.sanitizer.level() == SanitizeLevel::Check {
                    return Err(SimError::Unsound {
                        violation: v,
                        sm: self.sm_id,
                    });
                }
                self.quarantine(v);
            }
            if self.now > self.config.max_cycles {
                return Err(SimError::Watchdog {
                    cycles: self.config.max_cycles,
                    snapshot: Box::new(self.watchdog_snapshot()),
                });
            }
        }
        Ok(true)
    }

    /// Final sweep after [`Sm::run_until`] returned `true`: the
    /// end-of-kernel leak check and statistics finalization.
    ///
    /// # Errors
    ///
    /// See [`SimError`].
    pub fn finish(mut self) -> Result<SmResult, SimError> {
        // end-of-kernel sweep: with every warp retired, no physical
        // register may remain assigned
        if let Some(v) = self
            .sanitizer
            .check_leak(self.regfile.live_count(), self.now)
        {
            if self.sanitizer.level() == SanitizeLevel::Check {
                return Err(SimError::Unsound {
                    violation: v,
                    sm: self.sm_id,
                });
            }
        }
        self.stats.sanitizer_detections = self.sanitizer.detections();
        self.stats.cycles = self.now;
        self.stats.regfile = self.regfile.stats();
        self.stats.renaming = self.regfile.renaming_stats();
        self.stats.flag_cache = self.flag_cache.stats();
        self.stats.subarray_on_cycles = if self.config.regfile.power_gating {
            self.regfile.subarray_on_integral(self.now)
        } else {
            self.config.regfile.num_subarrays() as u64 * self.now
        };
        self.stats.wakeups = self.regfile.wakeups();
        Ok(SmResult {
            stats: self.stats,
            global: self.global,
            events: self.sink.into_events(),
        })
    }

    /// Captures the diagnostic machine state attached to
    /// [`SimError::Watchdog`] (warp statuses, register pressure,
    /// throttle balances).
    fn watchdog_snapshot(&self) -> WatchdogSnapshot {
        WatchdogSnapshot {
            cycle: self.now,
            free_per_bank: (0..rfv_isa::NUM_REG_BANKS)
                .map(|b| self.regfile.free_in_bank(BankId::new(b)))
                .collect(),
            live_regs: self.regfile.live_count(),
            cta_balances: (0..self.cta_slots.len())
                .filter_map(|c| self.throttle.balance(c).map(|b| (c, b)))
                .collect(),
            ready: self.ready.clone(),
            warps: self
                .warps
                .iter()
                .filter(|w| self.warp_status[w.slot] != WarpStatus::Idle)
                .map(|w| WarpDiag {
                    slot: w.slot,
                    cta_slot: w.cta_slot,
                    status: format!("{:?}", self.warp_status[w.slot]),
                    pc: (!w.stack.is_done()).then(|| w.stack.pc()),
                    next_issue_at: self.warp_next_issue[w.slot],
                    outstanding: self.warp_outstanding[w.slot],
                    mapped: self.regfile.mapped_count_of(w.slot),
                })
                .collect(),
        }
    }

    fn work_remains(&self) -> bool {
        self.next_assigned < self.assigned.len() || self.cta_slots.iter().any(Option::is_some)
    }

    /// The machine's current cycle.
    pub fn cycle(&self) -> u64 {
        self.now
    }

    /// Gathers `slot`'s hot scheduling fields from the SoA arrays
    /// (checkpoint encoding and diagnostics only — never the hot path).
    fn warp_hot(&self, slot: usize) -> WarpHot {
        WarpHot {
            status: self.warp_status[slot],
            next_issue_at: self.warp_next_issue[slot],
            outstanding: self.warp_outstanding[slot],
            swap_ready_at: self.warp_swap_ready[slot],
        }
    }

    /// Scatters a decoded [`WarpHot`] back into the SoA arrays.
    fn set_warp_hot(&mut self, slot: usize, hot: WarpHot) {
        self.warp_status[slot] = hot.status;
        self.warp_next_issue[slot] = hot.next_issue_at;
        self.warp_outstanding[slot] = hot.outstanding;
        self.warp_swap_ready[slot] = hot.swap_ready_at;
    }

    // ------------------------------------------------- checkpoint frames

    /// Serializes the complete mutable machine state into one
    /// checkpoint frame. Derived state (the predecoded program, launch
    /// geometry, config) is not written — [`Sm::restore_frame`]
    /// rebuilds it from the same kernel and config, which the
    /// checkpoint container pins by hash. The wake-event index is also
    /// omitted: it only caches each warp's current wake time, so
    /// restore reconstructs an equivalent index from the warps
    /// themselves.
    pub fn snapshot_frame(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.u16(self.sm_id);
        e.u64(self.now);
        e.u64(self.next_sample);
        e.bool(self.launched);
        self.regfile.encode(&mut e);
        self.flag_cache.encode(&mut e);
        self.throttle.encode(&mut e);
        e.usize(self.warps.len());
        for w in &self.warps {
            w.encode(&self.warp_hot(w.slot), &mut e);
        }
        e.usize(self.values.len());
        for v in &self.values {
            for &x in v {
                e.u32(x);
            }
        }
        e.usize(self.preds.len());
        for p in &self.preds {
            for &x in p {
                e.u32(x);
            }
        }
        self.global.encode(&mut e);
        e.usize(self.shared.len());
        for s in &self.shared {
            s.encode(&mut e);
        }
        self.local.encode(&mut e);
        e.bool(!self.spill_values.values.is_empty());
        if !self.spill_values.values.is_empty() {
            e.usize(self.spill_values.values.len());
            for v in &self.spill_values.values {
                match v {
                    None => e.bool(false),
                    Some(vals) => {
                        e.bool(true);
                        for &x in vals {
                            e.u32(x);
                        }
                    }
                }
            }
        }
        e.usize(self.ready.len());
        for &s in &self.ready {
            e.usize(s);
        }
        e.usize(self.waiting_ready.len());
        for &s in &self.waiting_ready {
            e.usize(s);
        }
        e.usize(self.rr_cursor);
        e.usize(self.assigned.len());
        e.usize(self.next_assigned);
        e.usize(self.cta_slots.len());
        for cs in &self.cta_slots {
            match cs {
                None => e.bool(false),
                Some(cs) => {
                    e.bool(true);
                    e.usize(cs.warp_slots.len());
                    for &ws in &cs.warp_slots {
                        e.usize(ws);
                    }
                    e.usize(cs.live_warps);
                    e.usize(cs.at_barrier);
                }
            }
        }
        // heap entries dumped in ascending pop order; rebuilding by
        // pushing them back reproduces the identical pop sequence
        // because the ordering key (cycle, slot, reg) is total
        let mut loads: Vec<(u64, usize, u8)> = self.load_events.iter().map(|r| r.0).collect();
        loads.sort_unstable();
        e.usize(loads.len());
        for (t, slot, reg) in loads {
            e.u64(t);
            e.usize(slot);
            e.u8(reg);
        }
        e.usize(self.inflight_segments.len());
        for &(seg, ready) in &self.inflight_segments {
            e.u64(seg);
            e.u64(ready);
        }
        self.stats.encode(&mut e);
        let words = self.injector.state_words();
        e.usize(words.len());
        for w in words {
            e.u64(w);
        }
        self.sanitizer.encode(&mut e);
        match self.violation {
            None => e.bool(false),
            Some(v) => {
                e.bool(true);
                encode_violation(&mut e, v);
            }
        }
        match &self.sink {
            Sink::Noop => e.u8(0),
            Sink::Ring(r) => {
                e.u8(1);
                e.usize(r.capacity());
                e.u64(r.dropped());
                e.usize(r.events().len());
                for ev in r.events() {
                    encode_event(ev, &mut e);
                }
            }
        }
        e.into_bytes()
    }

    /// Overwrites this freshly-constructed machine with the state in
    /// `frame` (the inverse of [`Sm::snapshot_frame`]). The machine
    /// must have been built by [`Sm::new`] with the same config,
    /// kernel, and CTA assignment that produced the frame; the
    /// checkpoint container enforces this by hash before calling.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] on truncated or inconsistent input; the
    /// machine is left partially restored and must be discarded.
    pub fn restore_frame(&mut self, frame: &[u8]) -> Result<(), WireError> {
        let d = &mut Dec::new(frame);
        self.sm_id = d.u16()?;
        self.now = d.u64()?;
        self.next_sample = d.u64()?;
        self.launched = d.bool()?;
        let warp_slots = self.config.max_warps_per_sm;
        self.regfile = RegisterFile::decode(d, self.config.regfile, warp_slots)?;
        self.flag_cache = ReleaseFlagCache::decode(d, self.config.regfile.flag_cache_entries)?;
        self.throttle = CtaThrottle::decode(d, self.config.max_ctas_per_sm)?;
        if d.usize()? != warp_slots {
            return Err(WireError::Invalid("warp count"));
        }
        for slot in 0..warp_slots {
            let (w, hot) = Warp::decode(d)?;
            if w.slot != slot || w.cta_slot >= self.config.max_ctas_per_sm {
                return Err(WireError::Invalid("warp slot"));
            }
            self.warps[slot] = w;
            self.set_warp_hot(slot, hot);
        }
        if d.usize()? != self.values.len() {
            return Err(WireError::Invalid("register value count"));
        }
        for v in &mut self.values {
            for x in v.iter_mut() {
                *x = d.u32()?;
            }
        }
        if d.usize()? != self.preds.len() {
            return Err(WireError::Invalid("predicate file size"));
        }
        for p in &mut self.preds {
            for x in p.iter_mut() {
                *x = d.u32()?;
            }
        }
        self.global = GlobalMemory::decode(d)?;
        if d.usize()? != self.shared.len() {
            return Err(WireError::Invalid("shared memory count"));
        }
        for s in &mut self.shared {
            *s = SharedMemory::decode(d, 48 * 1024)?;
        }
        self.local = LocalMemory::decode(d)?;
        self.spill_values = SpillStore::new(warp_slots);
        if d.bool()? {
            let n = warp_slots * MAX_REGS_PER_THREAD;
            if d.usize()? != n {
                return Err(WireError::Invalid("spill store size"));
            }
            let mut values = vec![None; n];
            for v in &mut values {
                if d.bool()? {
                    let mut vals = [0u32; WARP_SIZE];
                    for x in &mut vals {
                        *x = d.u32()?;
                    }
                    *v = Some(vals);
                }
            }
            self.spill_values.values = values;
        }
        let decode_slot = |d: &mut Dec<'_>| -> Result<usize, WireError> {
            let s = d.usize()?;
            if s >= warp_slots {
                return Err(WireError::Invalid("warp slot index"));
            }
            Ok(s)
        };
        let n = d.usize()?;
        self.ready = Vec::with_capacity(n.min(warp_slots * 2));
        for _ in 0..n {
            self.ready.push(decode_slot(d)?);
        }
        let n = d.usize()?;
        self.waiting_ready = VecDeque::with_capacity(n.min(warp_slots * 2));
        for _ in 0..n {
            self.waiting_ready.push_back(decode_slot(d)?);
        }
        self.ready_count.fill(0);
        self.waiting_count.fill(0);
        for i in 0..self.ready.len() {
            self.ready_count[self.ready[i]] += 1;
        }
        for i in 0..self.waiting_ready.len() {
            self.waiting_count[self.waiting_ready[i]] += 1;
        }
        self.rr_cursor = d.usize()?;
        if d.usize()? != self.assigned.len() {
            return Err(WireError::Invalid("assigned CTA count"));
        }
        self.next_assigned = d.usize()?;
        if self.next_assigned > self.assigned.len() {
            return Err(WireError::Invalid("assigned CTA cursor"));
        }
        if d.usize()? != self.cta_slots.len() {
            return Err(WireError::Invalid("CTA slot count"));
        }
        for cs in &mut self.cta_slots {
            *cs = None;
        }
        for slot in 0..self.config.max_ctas_per_sm {
            if !d.bool()? {
                continue;
            }
            let n = d.usize()?;
            if n > warp_slots {
                return Err(WireError::Invalid("CTA warp count"));
            }
            let mut ws = Vec::with_capacity(n);
            for _ in 0..n {
                ws.push(decode_slot(d)?);
            }
            let live_warps = d.usize()?;
            let at_barrier = d.usize()?;
            if live_warps > n || at_barrier > n {
                return Err(WireError::Invalid("CTA warp accounting"));
            }
            self.cta_slots[slot] = Some(CtaState {
                warp_slots: ws,
                live_warps,
                at_barrier,
            });
        }
        self.load_events.clear();
        for _ in 0..d.usize()? {
            let t = d.u64()?;
            let slot = decode_slot(d)?;
            let reg = d.u8()?;
            if usize::from(reg) >= MAX_REGS_PER_THREAD {
                return Err(WireError::Invalid("load event register"));
            }
            self.load_events.push(Reverse((t, slot, reg)));
        }
        self.inflight_segments.clear();
        for _ in 0..d.usize()? {
            let seg = d.u64()?;
            let ready = d.u64()?;
            self.inflight_segments.push((seg, ready));
        }
        self.stats = SimStats::decode(d)?;
        let n = d.usize()?;
        let mut words = Vec::with_capacity(n.min(1 << 12));
        for _ in 0..n {
            words.push(d.u64()?);
        }
        self.injector = FaultInjector::from_state_words(&self.config.faults, &words)
            .ok_or(WireError::Invalid("fault injector state"))?;
        self.sanitizer = Sanitizer::decode(
            d,
            self.config.sanitize,
            warp_slots,
            self.config.regfile.phys_regs,
        )?;
        self.violation = if d.bool()? {
            Some(decode_violation(d)?)
        } else {
            None
        };
        self.sink = match d.u8()? {
            0 => Sink::Noop,
            1 => {
                let capacity = d.usize()?;
                let dropped = d.u64()?;
                let n = d.usize()?;
                if n > capacity {
                    return Err(WireError::Invalid("trace ring overflow"));
                }
                let mut buf = Vec::with_capacity(n);
                for _ in 0..n {
                    buf.push(decode_event(d)?);
                }
                Sink::Ring(RingSink::from_parts(buf, capacity, dropped))
            }
            _ => return Err(WireError::Invalid("sink tag")),
        };
        if !d.is_done() {
            return Err(WireError::Invalid("trailing bytes in SM frame"));
        }
        // rebuild the derived wake/swap bookkeeping from the warps
        self.swapped_out = self
            .warp_status
            .iter()
            .filter(|&&s| s == WarpStatus::SwappedOut)
            .count();
        self.wake_events.clear();
        for slot in 0..warp_slots {
            self.note_wake(slot);
        }
        Ok(())
    }

    // ---------------------------------------------------------- CTA launch

    fn fill_cta_slots(&mut self) -> Result<(), SimError> {
        let conc = self
            .kernel
            .kernel()
            .launch()
            .max_conc_ctas_per_sm()
            .min(self.config.max_ctas_per_sm as u32) as usize;
        let mut launched_any = self.cta_slots.iter().any(Option::is_some);
        for slot in 0..self.config.max_ctas_per_sm {
            if self.cta_slots[slot].is_some() || self.resident_ctas() >= conc {
                continue;
            }
            if self.next_assigned >= self.assigned.len() {
                break;
            }
            let cta_id = self.assigned[self.next_assigned];
            if self.try_launch_cta(slot, cta_id) {
                self.next_assigned += 1;
                launched_any = true;
            } else if !launched_any {
                let launch = self.kernel.kernel().launch();
                return Err(SimError::LaunchImpossible {
                    demanded: self.static_regs.len() * launch.warps_per_cta() as usize,
                    capacity: self.config.regfile.phys_regs,
                });
            } else {
                break; // retry when registers free up
            }
        }
        Ok(())
    }

    fn resident_ctas(&self) -> usize {
        self.cta_slots.iter().filter(|s| s.is_some()).count()
    }

    fn try_launch_cta(&mut self, cta_slot: usize, cta_id: u32) -> bool {
        let launch = self.kernel.kernel().launch();
        let warps_per_cta = launch.warps_per_cta() as usize;
        let free_slots: Vec<usize> = self
            .warp_status
            .iter()
            .enumerate()
            .filter(|&(_, &s)| s == WarpStatus::Idle)
            .map(|(slot, _)| slot)
            .take(warps_per_cta)
            .collect();
        if free_slots.len() < warps_per_cta {
            return false;
        }
        // static register allocation, with rollback on failure
        let mut launched: Vec<usize> = Vec::new();
        for &ws in &free_slots {
            if self
                .regfile
                .launch_warp_traced(
                    ws,
                    self.static_regs.iter().copied(),
                    self.now,
                    self.sm_id,
                    &mut self.sink,
                )
                .is_err()
            {
                for &undo in &launched {
                    self.regfile
                        .retire_warp_traced(undo, self.now, self.sm_id, &mut self.sink);
                }
                return false;
            }
            launched.push(ws);
        }
        // worst-case registers this CTA may hold at once: with early
        // release the compiler's max-held bound applies; without it
        // (conventional / hardware-only) registers accumulate until
        // CTA completion, so the full allocation is the bound
        let per_warp = if self.policy.uses_release_flags() {
            self.kernel.max_held_per_warp().min(self.num_regs)
        } else {
            self.num_regs
        };
        let budget = per_warp * warps_per_cta;
        self.throttle
            .launch_traced(cta_slot, budget, self.now, self.sm_id, &mut self.sink);
        if self.sink.enabled() {
            self.sink.emit(TraceEvent::sm_event(
                self.now,
                self.sm_id,
                TraceKind::CtaLaunch { cta: cta_id },
            ));
        }
        // the static bulk updates the balance once, not per register,
        // to keep launch traces compact
        for _ in 0..self.static_regs.len() * warps_per_cta {
            self.throttle.on_alloc(cta_slot);
        }
        if !self.static_regs.is_empty() {
            self.emit_balance(cta_slot);
        }
        // initialize static register values deterministically
        for &ws in &free_slots {
            for i in 0..self.static_regs.len() {
                let r = self.static_regs[i];
                if let Some(p) = self.regfile.peek(ws, r) {
                    self.values[p.index()] = [0; WARP_SIZE];
                    let v = self.sanitizer.note_map(ws, r, p, self.now);
                    self.flag_violation(v);
                }
            }
        }
        let threads = launch.threads_per_cta() as usize;
        for (wi, &ws) in free_slots.iter().enumerate() {
            let first = wi * WARP_SIZE;
            let lanes = threads.saturating_sub(first).min(WARP_SIZE);
            let mask = if lanes == WARP_SIZE {
                u32::MAX
            } else {
                (1u32 << lanes) - 1
            };
            let w = &mut self.warps[ws];
            w.cta_slot = cta_slot;
            w.warp_in_cta = wi;
            w.cta_id = cta_id;
            w.stack = SimtStack::new(mask);
            w.spilled_regs.clear();
            self.warp_status[ws] = WarpStatus::Ready;
            self.warp_next_issue[ws] = self.now;
            self.warp_outstanding[ws] = 0;
            self.preds[ws] = [0; 4];
            self.enqueue_ready(ws);
            self.note_wake(ws);
        }
        self.shared[cta_slot].reset();
        self.cta_slots[cta_slot] = Some(CtaState {
            warp_slots: free_slots,
            live_warps: warps_per_cta,
            at_barrier: 0,
        });
        true
    }

    // ------------------------------------------------------- ready queue

    fn ready_push(&mut self, slot: usize) {
        self.ready.push(slot);
        self.ready_count[slot] += 1;
    }

    fn waiting_push(&mut self, slot: usize) {
        self.waiting_ready.push_back(slot);
        self.waiting_count[slot] += 1;
    }

    fn enqueue_ready(&mut self, slot: usize) {
        if self.ready_count[slot] > 0 {
            return;
        }
        if self.ready.len() < self.config.ready_queue {
            self.ready_push(slot);
        } else if self.waiting_count[slot] == 0 {
            self.waiting_push(slot);
        }
    }

    fn remove_from_ready(&mut self, slot: usize) {
        if self.ready_count[slot] == 0 {
            return;
        }
        self.ready.retain(|&s| s != slot);
        self.ready_count[slot] = 0;
    }

    fn refill_ready(&mut self) {
        while self.ready.len() < self.config.ready_queue {
            let Some(slot) = self.waiting_ready.pop_front() else {
                break;
            };
            self.waiting_count[slot] -= 1;
            if self.warp_status[slot] == WarpStatus::Ready {
                self.ready_push(slot);
            }
        }
    }

    /// Records `slot`'s current wake time in the incremental
    /// next-event index. Must be called after every transition into
    /// `Ready` / `SwappedOut` and every `next_issue_at` update; stale
    /// entries are discarded lazily by [`Sm::next_event_cycle`].
    fn note_wake(&mut self, slot: usize) {
        if !self.config.incremental_wake_index {
            return;
        }
        let t = match self.warp_status[slot] {
            WarpStatus::Ready => self.warp_next_issue[slot],
            WarpStatus::SwappedOut => self.warp_swap_ready[slot],
            _ => return,
        };
        self.wake_events.push(Reverse((t, slot)));
    }

    // ------------------------------------------------------------- stepping

    fn step(&mut self) {
        self.drain_load_events();
        self.try_swap_ins();
        self.refill_ready();

        let mut decision = if self.policy.renames() {
            self.throttle.decide_traced(
                self.regfile.free_count(),
                self.now,
                self.sm_id,
                &mut self.sink,
            )
        } else {
            ThrottleDecision::Unrestricted
        };
        if let ThrottleDecision::OnlyCta(c) = decision {
            // a CTA with no runnable warp (all at a barrier, pending, or
            // swapped out) cannot use the restriction; enforcing it
            // would stall the whole SM behind warps that cannot issue
            let runnable = self
                .warps
                .iter()
                .any(|w| w.cta_slot == c && self.warp_status[w.slot] == WarpStatus::Ready);
            if runnable {
                self.stats.throttle_restricted_cycles += 1;
                self.ensure_cta_schedulable(c);
            } else {
                decision = ThrottleDecision::Unrestricted;
            }
        }

        // reusable scratch: a fresh Vec here would malloc every cycle
        let mut issued = std::mem::take(&mut self.issued_scratch);
        issued.clear();
        for _ in 0..self.config.schedulers {
            let Some(pick) = self.pick_warp(decision, &issued) else {
                continue;
            };
            // issue through the threaded-code plan by default; the
            // interpreter below stays as the executable specification
            // (`SimConfig::reference_interpreter`) the equivalence
            // suite diffs against
            let outcome = if self.config.reference_interpreter {
                self.try_issue(pick)
            } else {
                self.try_issue_plan(pick)
            };
            match outcome {
                IssueOutcome::Issued => issued.push(pick),
                IssueOutcome::Blocked => self.trace_stall(pick, StallReason::Scoreboard),
                IssueOutcome::NoReg => {
                    self.stats.no_reg_stalls += 1;
                    self.trace_stall(pick, StallReason::NoReg);
                    self.maybe_spill_for(pick);
                    // rotate the stalled warp out of the ready queue so
                    // it cannot clog the two-level scheduler while
                    // other warps could run (and release registers)
                    self.remove_from_ready(pick);
                    self.waiting_push(pick);
                    self.refill_ready();
                }
            }
        }

        self.sample_if_due();

        let idle = issued.is_empty();
        self.issued_scratch = issued;
        if idle {
            // nothing issued: jump to the next interesting cycle
            let next = if self.config.incremental_wake_index {
                self.next_event_cycle_indexed()
            } else {
                self.next_event_cycle_scan()
            };
            self.now = next.max(self.now + 1);
        } else {
            self.now += 1;
        }
    }

    /// Earliest upcoming wake time, from the incremental index: pop
    /// entries that no longer match their warp's state until the top
    /// is live, then min with the load-completion heap. Kept behind
    /// [`SimConfig::incremental_wake_index`] as the differential
    /// counterpart of the production scan.
    ///
    /// Equivalent to [`Sm::next_event_cycle_scan`]: every
    /// `(status, wake-time)` a warp currently holds was pushed when it
    /// was set, and validation discards exactly the entries whose warp
    /// has since moved on — never a live one — so the first live entry
    /// in heap order is the true minimum.
    fn next_event_cycle_indexed(&mut self) -> u64 {
        let mut next = u64::MAX;
        if let Some(&Reverse((t, _, _))) = self.load_events.peek() {
            next = next.min(t);
        }
        while let Some(&Reverse((t, slot))) = self.wake_events.peek() {
            let live = match self.warp_status[slot] {
                WarpStatus::Ready => self.warp_next_issue[slot] == t,
                WarpStatus::SwappedOut => self.warp_swap_ready[slot] == t,
                _ => false,
            };
            if live {
                next = next.min(t);
                break;
            }
            self.wake_events.pop();
        }
        if next == u64::MAX {
            self.now + 1
        } else {
            next.max(self.now + 1)
        }
    }

    /// Production idle-cycle skip: a straight min-sweep over the SoA
    /// status and wake-time arrays. Contiguous, branch-predictable,
    /// and — unlike the wake-event heap — free on the issue path (no
    /// bookkeeping per status transition). Only runs on cycles where
    /// nothing issued.
    fn next_event_cycle_scan(&self) -> u64 {
        let mut next = u64::MAX;
        if let Some(&Reverse((t, _, _))) = self.load_events.peek() {
            next = next.min(t);
        }
        for (slot, &s) in self.warp_status.iter().enumerate() {
            match s {
                WarpStatus::Ready => next = next.min(self.warp_next_issue[slot]),
                WarpStatus::SwappedOut => next = next.min(self.warp_swap_ready[slot]),
                _ => {}
            }
        }
        if next == u64::MAX {
            self.now + 1
        } else {
            next.max(self.now + 1)
        }
    }

    fn drain_load_events(&mut self) {
        while let Some(&Reverse((t, slot, reg))) = self.load_events.peek() {
            if t > self.now {
                break;
            }
            self.load_events.pop();
            self.warp_outstanding[slot] &= !(1u64 << ArchReg::new(reg).index());
            if self.warp_status[slot] == WarpStatus::PendingMem && self.warp_outstanding[slot] == 0
            {
                self.warp_status[slot] = WarpStatus::Ready;
                self.warp_next_issue[slot] = self.warp_next_issue[slot].max(t);
                self.enqueue_ready(slot);
                self.note_wake(slot);
            }
        }
    }

    /// When the throttle restricts issue to one CTA, its warps must be
    /// able to enter the ready queue even if throttle-blocked warps of
    /// other CTAs currently fill it — otherwise the two-level
    /// scheduler livelocks (blocked warps never vacate their slots).
    fn ensure_cta_schedulable(&mut self, cta: usize) {
        if self
            .ready
            .iter()
            .any(|&s| self.warps[s].cta_slot == cta && self.warp_status[s] == WarpStatus::Ready)
        {
            return;
        }
        // find a runnable warp of the restricted CTA outside the queue
        let candidate = self
            .warps
            .iter()
            .find(|w| {
                w.cta_slot == cta
                    && self.warp_status[w.slot] == WarpStatus::Ready
                    && self.ready_count[w.slot] == 0
            })
            .map(|w| w.slot);
        let Some(incoming) = candidate else { return };
        self.waiting_ready.retain(|&s| s != incoming);
        self.waiting_count[incoming] = 0;
        if self.ready.len() >= self.config.ready_queue {
            // evict one blocked warp of another CTA back to waiting
            if let Some(pos) = self
                .ready
                .iter()
                .position(|&s| self.warps[s].cta_slot != cta)
            {
                let evicted = self.ready.remove(pos);
                self.ready_count[evicted] -= 1;
                self.waiting_push(evicted);
            }
        }
        if self.ready.len() < self.config.ready_queue {
            self.ready_push(incoming);
        }
    }

    fn pick_warp(&mut self, decision: ThrottleDecision, already: &[usize]) -> Option<usize> {
        let n = self.ready.len();
        if n == 0 {
            return None;
        }
        // conditional wrap instead of `%` per probe: the scan order and
        // cursor updates are exactly the round-robin of `(cursor+k) % n`
        let mut idx = self.rr_cursor % n;
        for _ in 0..n {
            let cur = idx;
            idx = if idx + 1 == n { 0 } else { idx + 1 };
            let slot = self.ready[cur];
            if already.contains(&slot) {
                continue;
            }
            if self.warp_status[slot] != WarpStatus::Ready || self.warp_next_issue[slot] > self.now
            {
                continue;
            }
            if let ThrottleDecision::OnlyCta(c) = decision {
                if self.warps[slot].cta_slot != c {
                    continue;
                }
            }
            self.rr_cursor = idx;
            return Some(slot);
        }
        None
    }

    // ---------------------------------------------------------------- fetch

    fn try_issue(&mut self, slot: usize) -> IssueOutcome {
        loop {
            let pc = self.warps[slot].stack.pc();
            debug_assert!(pc < self.prog.len(), "pc {pc} out of program");
            // PdItem is Copy: lifting it off the program image ends
            // the borrow, so the arms below can mutate freely
            match *self.prog.item(pc) {
                PdItem::Pir { release_count } => {
                    self.stats.meta_encountered += 1;
                    if self.injector.should_fire(FaultKind::StaleFlagCacheHit) {
                        // fault: the probe aliases a stale entry and the
                        // decoder is served another pir's payload — the
                        // fetch is skipped like a genuine hit and a wrong
                        // register gets an early release
                        self.flag_cache.force_hit_traced(
                            pc,
                            self.now,
                            self.sm_id,
                            slot,
                            &mut self.sink,
                        );
                        self.inject_release(
                            slot,
                            FaultKind::StaleFlagCacheHit,
                            FaultLabel::StaleFlagHit,
                        );
                        self.warps[slot].stack.advance(pc + 1);
                        continue;
                    }
                    if self.flag_cache.probe_and_fill_traced(
                        pc,
                        self.now,
                        self.sm_id,
                        slot,
                        &mut self.sink,
                    ) {
                        // hit: the fetch stage skips the pir for free
                        self.warps[slot].stack.advance(pc + 1);
                        continue;
                    }
                    // miss: fetched from the I-cache and decoded
                    self.stats.meta_decoded += 1;
                    if self.sink.enabled() {
                        self.sink.emit(TraceEvent::warp_event(
                            self.now,
                            self.sm_id,
                            slot,
                            TraceKind::PirDecode {
                                pc: pc as u32,
                                flags: release_count,
                            },
                        ));
                    }
                    self.warps[slot].stack.advance(pc + 1);
                    self.issue_cost(slot, 1);
                    return IssueOutcome::Issued;
                }
                PdItem::Pbr { lo, hi } => {
                    self.stats.meta_encountered += 1;
                    self.stats.meta_decoded += 1;
                    if self.sink.enabled() {
                        self.sink.emit(TraceEvent::warp_event(
                            self.now,
                            self.sm_id,
                            slot,
                            TraceKind::PbrDecode {
                                pc: pc as u32,
                                released: (hi - lo) as u16,
                            },
                        ));
                    }
                    if self.policy.uses_release_flags() {
                        let cta = self.warps[slot].cta_slot;
                        for idx in lo..hi {
                            let r = self.prog.pbr_regs(idx, idx + 1)[0];
                            // the metadata's architectural intent stands
                            // even when the hardware action is faulted
                            self.sanitizer.note_release(slot, r);
                            let dropped = self.injector.should_fire(FaultKind::DroppedRelease);
                            let flipped = self.injector.should_fire(FaultKind::PbrFlagFlip);
                            if dropped || flipped {
                                // the release never reaches the register
                                // file: a swallowed signal, or a 1→0 flag
                                // bit flip in the pbr payload
                                let phys = self
                                    .regfile
                                    .peek(slot, r)
                                    .map_or(Violation::NO_PHYS, |ph| ph.index() as u32);
                                let label = if dropped {
                                    FaultLabel::DroppedRelease
                                } else {
                                    FaultLabel::PbrFlip
                                };
                                self.trace_fault(slot, label, u16::from(r.raw()), phys);
                                continue;
                            }
                            if self.release_checked(slot, r) {
                                self.throttle.on_release_traced(
                                    cta,
                                    self.now,
                                    self.sm_id,
                                    &mut self.sink,
                                );
                                self.trace_reg(slot, r, false);
                            }
                        }
                    }
                    self.warps[slot].stack.advance(pc + 1);
                    self.issue_cost(slot, 1);
                    return IssueOutcome::Issued;
                }
                PdItem::Instr(i) => {
                    return self.issue_instr(slot, pc, &i);
                }
            }
        }
    }

    fn trace_reg(&mut self, slot: usize, reg: ArchReg, live: bool) {
        if self.config.trace_warp0_regs && slot == 0 {
            self.stats.reg_trace.push(RegTraceEvent {
                cycle: self.now,
                reg: reg.raw(),
                live,
            });
        }
    }

    /// Emits the current `C − k_i` balance of a resident CTA (used
    /// after bulk counter updates where per-register events would
    /// flood the trace).
    fn emit_balance(&mut self, cta: usize) {
        if self.sink.enabled() {
            if let Some(bal) = self.throttle.balance(cta) {
                self.sink.emit(TraceEvent::sm_event(
                    self.now,
                    self.sm_id,
                    TraceKind::ThrottleBalance {
                        cta: cta as u32,
                        balance: bal as i64,
                    },
                ));
            }
        }
    }

    /// Emits a scheduler [`TraceKind::Issue`] event.
    fn trace_issue(&mut self, slot: usize, pc: usize, exec: u32) {
        if self.sink.enabled() {
            self.sink.emit(TraceEvent::warp_event(
                self.now,
                self.sm_id,
                slot,
                TraceKind::Issue {
                    pc: pc as u32,
                    active_lanes: exec.count_ones() as u8,
                },
            ));
        }
    }

    /// Emits a scheduler [`TraceKind::Stall`] event.
    fn trace_stall(&mut self, slot: usize, reason: StallReason) {
        if self.sink.enabled() {
            self.sink.emit(TraceEvent::warp_event(
                self.now,
                self.sm_id,
                slot,
                TraceKind::Stall { reason },
            ));
        }
    }

    // ------------------------------------------------ sanitizer & faults

    /// Latches the first violation of the current step; `run()` turns
    /// it into [`SimError::Unsound`] (Check) or a CTA quarantine
    /// (Recover) after the step completes.
    fn flag_violation(&mut self, v: Option<Violation>) {
        if let Some(v) = v {
            if self.violation.is_none() {
                self.violation = Some(v);
            }
        }
    }

    /// [`RegisterFile::release_traced`] with a double-free check: the
    /// availability vector counts attempts to free an already-free
    /// physical register, which is only reachable downstream of an
    /// injected fault (e.g. two table entries aliasing one physical
    /// register after corruption).
    fn release_checked(&mut self, slot: usize, r: ArchReg) -> bool {
        if !self.sanitizer.enabled() {
            return self
                .regfile
                .release_traced(slot, r, self.now, self.sm_id, &mut self.sink);
        }
        let before = self.regfile.stats().double_free_attempts;
        let freed = self
            .regfile
            .release_traced(slot, r, self.now, self.sm_id, &mut self.sink);
        if self.regfile.stats().double_free_attempts > before {
            let v = self.sanitizer.report(Violation {
                kind: ViolationKind::DoubleFree,
                cycle: self.now,
                warp: slot,
                reg: u16::from(r.raw()),
                phys: Violation::NO_PHYS,
            });
            self.flag_violation(v);
        }
        freed
    }

    /// Counts an injected fault and emits the
    /// [`TraceKind::FaultInjected`] event that ties it to the warp it
    /// perturbed.
    fn trace_fault(&mut self, slot: usize, fault: FaultLabel, reg: u16, phys: u32) {
        self.stats.faults_injected += 1;
        if self.sink.enabled() {
            self.sink.emit(TraceEvent::warp_event(
                self.now,
                self.sm_id,
                slot,
                TraceKind::FaultInjected { fault, reg, phys },
            ));
        }
    }

    /// Releases one deterministically-picked dynamically-mapped
    /// register of `slot` behind the sanitizer's back — the shared
    /// mechanics of the premature-release and stale-flag-cache faults.
    fn inject_release(&mut self, slot: usize, kind: FaultKind, label: FaultLabel) {
        let regs = self.regfile.mapped_regs(slot);
        if regs.is_empty() {
            return;
        }
        let r = regs[self.injector.pick(kind, regs.len())];
        let phys = self
            .regfile
            .peek(slot, r)
            .map_or(Violation::NO_PHYS, |p| p.index() as u32);
        let cta = self.warps[slot].cta_slot;
        if self.release_checked(slot, r) {
            self.throttle.on_release(cta);
            self.trace_reg(slot, r, false);
        }
        self.trace_fault(slot, label, u16::from(r.raw()), phys);
    }

    /// `SanitizeLevel::Recover`: retires the CTA owning the offending
    /// warp — its registers are reclaimed, its in-flight state is
    /// dropped, and its warps never issue again — so the rest of the
    /// kernel completes on sound state.
    fn quarantine(&mut self, v: Violation) {
        self.stats.sanitizer_detections = self.sanitizer.detections();
        if v.warp == Violation::NO_WARP || v.warp >= self.warps.len() {
            return;
        }
        if self.warp_status[v.warp] == WarpStatus::Idle {
            return; // the owning CTA already completed
        }
        let cta = self.warps[v.warp].cta_slot;
        let Some(cs) = self.cta_slots[cta].take() else {
            return;
        };
        let cta_id = cs
            .warp_slots
            .first()
            .map_or(cta as u32, |&ws| self.warps[ws].cta_id);
        for &ws in &cs.warp_slots {
            self.remove_from_ready(ws);
            self.waiting_ready.retain(|&s| s != ws);
            self.waiting_count[ws] = 0;
            self.spill_values.clear_warp(ws);
            self.regfile
                .retire_warp_traced(ws, self.now, self.sm_id, &mut self.sink);
            self.sanitizer.note_retire(ws);
            self.local.clear_warp(ws);
            if self.warp_status[ws] == WarpStatus::SwappedOut {
                self.swapped_out -= 1;
            }
            self.warp_status[ws] = WarpStatus::Idle;
            self.warp_outstanding[ws] = 0;
            self.warps[ws].spilled_regs.clear();
        }
        let heap = std::mem::take(&mut self.load_events);
        self.load_events = heap
            .into_iter()
            .filter(|&Reverse((_, s, _))| !cs.warp_slots.contains(&s))
            .collect();
        self.throttle.retire(cta);
        self.stats.quarantined_warps += cs.warp_slots.len() as u64;
        self.stats.quarantined_ctas += 1;
        if self.sink.enabled() {
            self.sink.emit(TraceEvent::sm_event(
                self.now,
                self.sm_id,
                TraceKind::Quarantine {
                    cta: cta_id,
                    warps: cs.warp_slots.len() as u16,
                },
            ));
        }
        let _ = self.fill_cta_slots();
    }

    // ---------------------------------------------------------------- issue

    fn guard_mask(&self, slot: usize, guard: Option<PredGuard>) -> u32 {
        match guard {
            None => u32::MAX,
            Some(g) => {
                let bits = self.preds[slot][g.pred.index()];
                if g.negated {
                    !bits
                } else {
                    bits
                }
            }
        }
    }

    fn issue_instr(&mut self, slot: usize, pc: usize, i: &PredecodedInstr) -> IssueOutcome {
        // scoreboard: block on in-flight loads touching srcs or dst —
        // one AND against the predecoded hazard mask
        if self.warp_outstanding[slot] & i.hazard_mask != 0 {
            return IssueOutcome::Blocked;
        }

        // fault injection: a spurious early release at instruction
        // issue — the exact hazard the release-flag analysis must
        // never cause, perturbing the hardware behind the shadow
        // model's back
        if self.injector.should_fire(FaultKind::PrematureRelease) {
            self.inject_release(
                slot,
                FaultKind::PrematureRelease,
                FaultLabel::PrematureRelease,
            );
        }

        let active = self.warps[slot].stack.mask();
        let exec = active & self.guard_mask(slot, i.guard);
        let cta = self.warps[slot].cta_slot;

        // control flow needs no register-file write path
        match i.opcode {
            Opcode::Bra => {
                self.issue_cost(slot, 1);
                self.stats.instrs_issued += 1;
                self.stats.active_lane_sum += u64::from(active.count_ones());
                self.trace_issue(slot, pc, active);
                let target = i.target as usize;
                let reconv = i.reconv;
                if exec == active {
                    self.warps[slot].stack.advance(target);
                } else if exec == 0 {
                    self.warps[slot].stack.advance(pc + 1);
                } else {
                    self.warps[slot].stack.diverge(exec, target, pc + 1, reconv);
                }
                self.after_control(slot);
                return IssueOutcome::Issued;
            }
            Opcode::Exit => {
                self.stats.instrs_issued += 1;
                self.stats.active_lane_sum += u64::from(active.count_ones());
                self.trace_issue(slot, pc, active);
                self.warps[slot].stack.exit_lanes(active);
                if self.warps[slot].stack.is_done() {
                    self.finish_warp(slot);
                } else {
                    self.issue_cost(slot, 1);
                }
                return IssueOutcome::Issued;
            }
            Opcode::Bar => {
                self.stats.instrs_issued += 1;
                self.stats.active_lane_sum += u64::from(active.count_ones());
                self.stats.barrier_waits += 1;
                self.trace_issue(slot, pc, active);
                self.trace_stall(slot, StallReason::Barrier);
                self.warps[slot].stack.advance(pc + 1);
                self.warp_status[slot] = WarpStatus::AtBarrier;
                self.remove_from_ready(slot);
                if let Some(cs) = self.cta_slots[cta].as_mut() {
                    cs.at_barrier += 1;
                }
                self.maybe_release_barrier(cta);
                return IssueOutcome::Issued;
            }
            Opcode::Nop => {
                self.stats.instrs_issued += 1;
                self.stats.active_lane_sum += u64::from(active.count_ones());
                self.trace_issue(slot, pc, active);
                self.warps[slot].stack.advance(pc + 1);
                self.issue_cost(slot, 1);
                return IssueOutcome::Issued;
            }
            _ => {}
        }

        // destination allocation first: a failed allocation must leave
        // the warp unchanged so it can retry
        let mut dst_phys = None;
        let mut ready_at = self.now;
        if let Some(d) = i.dst {
            match self
                .regfile
                .write_traced(slot, d, self.now, self.sm_id, &mut self.sink)
            {
                WriteOutcome::Mapped {
                    phys,
                    ready_at: r,
                    newly_allocated,
                } => {
                    if newly_allocated {
                        self.throttle
                            .on_alloc_traced(cta, self.now, self.sm_id, &mut self.sink);
                        // fresh physical register: poison so stale data
                        // from a previous owner cannot leak silently
                        self.values[phys.index()] = [POISON; WARP_SIZE];
                        self.trace_reg(slot, d, true);
                    }
                    if r > self.now {
                        self.trace_stall(slot, StallReason::GateWakeup);
                    }
                    let v = self.sanitizer.note_map(slot, d, phys, self.now);
                    self.flag_violation(v);
                    if self.injector.should_fire(FaultKind::RenameCorrupt) {
                        // bit flip in the renaming-table entry: the
                        // mapping now points at an arbitrary physical
                        // register while the value lands in the old one
                        let target = PhysReg::new(
                            self.injector
                                .pick(FaultKind::RenameCorrupt, self.config.regfile.phys_regs)
                                as u16,
                        );
                        if self.regfile.inject_remap(slot, d, target).is_some() {
                            self.trace_fault(
                                slot,
                                FaultLabel::RenameCorrupt,
                                u16::from(d.raw()),
                                target.index() as u32,
                            );
                        }
                    }
                    dst_phys = Some(phys);
                    ready_at = ready_at.max(r);
                }
                WriteOutcome::NoFreeRegister => return IssueOutcome::NoReg,
            }
        }

        // operand fetch + operand-collector bank-conflict accounting in
        // one pass (each register source resolves through the renaming
        // table exactly once): two register sources resident in the
        // same bank serialize on the bank port and cost an extra
        // collection cycle each (§7.1's motivation for bank-preserving
        // renaming)
        let mut src_banks = [false; rfv_isa::NUM_REG_BANKS];
        let mut conflicts = 0u64;
        // fixed-size operand buffer: no per-issue heap allocation
        let mut srcs = [[0u32; WARP_SIZE]; MAX_SRC_OPERANDS];
        let nsrcs = i.srcs().len();
        for (k, &op) in i.srcs().iter().enumerate() {
            match op {
                Operand::Imm(v) => srcs[k] = [v as u32; WARP_SIZE],
                Operand::Reg(r) => {
                    let table = self.regfile.read(slot, r);
                    if let Some(p) = table {
                        let b = self.regfile.bank_of_phys(p).index();
                        if src_banks[b] {
                            conflicts += 1;
                        }
                        src_banks[b] = true;
                    }
                    if self.sanitizer.enabled() {
                        let live = table.is_some_and(|p| self.regfile.is_phys_live(p));
                        let v = self.sanitizer.check_read(slot, r, table, live, self.now);
                        self.flag_violation(v);
                    }
                    srcs[k] = match table {
                        Some(p) => self.values[p.index()],
                        None => [POISON; WARP_SIZE],
                    };
                }
            }
        }
        self.stats.bank_conflicts += conflicts;
        let srcs = &srcs[..nsrcs];

        if self.violation.is_some() && self.sanitizer.level() == SanitizeLevel::Recover {
            // a violation is pending (possibly raised by this very
            // instruction's mapping or operand reads): squash the issue
            // before any release fires or a value commits, so the retry
            // next cycle replays it from an unchanged machine state —
            // the offending CTA is quarantined before the next step
            self.trace_issue(slot, pc, exec);
            return IssueOutcome::Issued;
        }

        // compiler release flags fire after the operands are read
        if self.policy.uses_release_flags() {
            let flags = i.flags;
            if flags.any() {
                for (op_slot, r) in i.src_regs() {
                    if !flags.releases(op_slot) {
                        continue;
                    }
                    self.sanitizer.note_release(slot, r);
                    if self.injector.should_fire(FaultKind::DroppedRelease) {
                        // the pir-commanded release is swallowed
                        let phys = self
                            .regfile
                            .peek(slot, r)
                            .map_or(Violation::NO_PHYS, |ph| ph.index() as u32);
                        self.trace_fault(
                            slot,
                            FaultLabel::DroppedRelease,
                            u16::from(r.raw()),
                            phys,
                        );
                        continue;
                    }
                    if self.release_checked(slot, r) {
                        self.throttle
                            .on_release_traced(cta, self.now, self.sm_id, &mut self.sink);
                        self.trace_reg(slot, r, false);
                    }
                }
            }
            if self.injector.should_fire(FaultKind::PirFlagFlip) {
                // a 0→1 bit flip in the pir payload: a release flag
                // appears on a source operand the compiler never marked
                let extra: Vec<ArchReg> = i
                    .src_regs()
                    .filter(|&(s, _)| !flags.releases(s))
                    .map(|(_, r)| r)
                    .collect();
                if !extra.is_empty() {
                    let r = extra[self.injector.pick(FaultKind::PirFlagFlip, extra.len())];
                    let phys = self
                        .regfile
                        .peek(slot, r)
                        .map_or(Violation::NO_PHYS, |ph| ph.index() as u32);
                    if self.release_checked(slot, r) {
                        self.throttle
                            .on_release_traced(cta, self.now, self.sm_id, &mut self.sink);
                        self.trace_reg(slot, r, false);
                        self.trace_fault(slot, FaultLabel::PirFlip, u16::from(r.raw()), phys);
                    }
                }
            }
        }

        self.trace_issue(slot, pc, exec);
        let outcome = self.execute(slot, pc, i, exec, srcs, dst_phys, ready_at, conflicts);
        self.stats.instrs_issued += 1;
        self.stats.active_lane_sum += u64::from(exec.count_ones());
        outcome
    }

    #[allow(clippy::too_many_arguments)]
    fn execute(
        &mut self,
        slot: usize,
        pc: usize,
        i: &PredecodedInstr,
        exec: u32,
        srcs: &[[u32; WARP_SIZE]],
        dst_phys: Option<rfv_isa::PhysReg>,
        ready_at: u64,
        bank_conflicts: u64,
    ) -> IssueOutcome {
        use Opcode::*;
        let rename_penalty = if self.config.rename_extra_cycle && self.policy.renames() {
            1
        } else {
            0
        };
        let lanes = Lanes;

        match i.opcode {
            Ldg | Ldl | Lds => {
                let mut addrs = [None::<u64>; WARP_SIZE];
                for (l, a) in addrs.iter_mut().enumerate() {
                    *a = (exec & (1 << l) != 0).then(|| {
                        let base = srcs[0][l] as u64;
                        base.wrapping_add(i.mem_offset as i64 as u64)
                    });
                }
                let mut out = dst_phys.map(|p| self.values[p.index()]).unwrap_or_default();
                let latency = match i.opcode {
                    Lds => {
                        let cta = self.warps[slot].cta_slot;
                        for l in lanes(exec) {
                            out[l] = self.shared[cta].read_word(addrs[l].unwrap());
                        }
                        self.config.shared_latency
                    }
                    Ldl => {
                        for l in lanes(exec) {
                            out[l] = self.local.read_word(slot, l, addrs[l].unwrap());
                        }
                        let txns = exec.count_ones() as u64 * 4 / 32 + 1;
                        self.stats.mem_txns += txns;
                        self.config.mem_base_latency + txns * self.config.mem_per_txn
                    }
                    _ => {
                        for l in lanes(exec) {
                            out[l] = self.global.read_word(addrs[l].unwrap());
                        }
                        self.global_load_latency(slot, &addrs)
                    }
                };
                if let Some(p) = dst_phys {
                    self.values[p.index()] = out;
                }
                let dst = i.dst.expect("loads have a destination");
                let done_at = ready_at.max(self.now) + bank_conflicts + latency;
                self.warp_outstanding[slot] |= 1u64 << dst.index();
                self.load_events.push(Reverse((done_at, slot, dst.raw())));
                self.warps[slot].stack.advance(pc + 1);
                if i.opcode == Lds {
                    // short-latency: stay in the ready queue
                    self.issue_cost(slot, 1 + rename_penalty);
                } else {
                    // long-latency: two-level scheduler pending queue
                    self.warp_status[slot] = WarpStatus::PendingMem;
                    self.remove_from_ready(slot);
                    self.trace_stall(slot, StallReason::Memory);
                    if i.opcode == Ldg && self.sink.enabled() {
                        let base = addrs.iter().flatten().next().copied().unwrap_or(0);
                        self.sink.emit(TraceEvent::warp_event(
                            done_at,
                            self.sm_id,
                            slot,
                            TraceKind::Mem {
                                phase: MemPhase::Complete,
                                addr: base,
                                segments: 0,
                            },
                        ));
                    }
                }
                IssueOutcome::Issued
            }
            Stg | Stl | Sts => {
                let mut addrs = [None::<u64>; WARP_SIZE];
                for (l, a) in addrs.iter_mut().enumerate() {
                    *a = (exec & (1 << l) != 0)
                        .then(|| (srcs[0][l] as u64).wrapping_add(i.mem_offset as i64 as u64));
                }
                match i.opcode {
                    Sts => {
                        let cta = self.warps[slot].cta_slot;
                        for l in lanes(exec) {
                            self.shared[cta].write_word(addrs[l].unwrap(), srcs[1][l]);
                        }
                    }
                    Stl => {
                        for l in lanes(exec) {
                            self.local
                                .write_word(slot, l, addrs[l].unwrap(), srcs[1][l]);
                        }
                        self.stats.mem_txns += exec.count_ones() as u64 * 4 / 32 + 1;
                    }
                    _ => {
                        for l in lanes(exec) {
                            self.global.write_word(addrs[l].unwrap(), srcs[1][l]);
                        }
                        self.stats.mem_txns += coalesce_count(&addrs) as u64;
                    }
                }
                self.warps[slot].stack.advance(pc + 1);
                self.issue_cost(slot, 1 + rename_penalty + bank_conflicts);
                IssueOutcome::Issued
            }
            Isetp(c) => {
                let pd = i.pdst.expect("validated setp");
                let mut bits = self.preds[slot][pd.index()];
                for l in lanes(exec) {
                    let t = c.eval_i32(srcs[0][l] as i32, srcs[1][l] as i32);
                    if t {
                        bits |= 1 << l;
                    } else {
                        bits &= !(1 << l);
                    }
                }
                self.preds[slot][pd.index()] = bits;
                self.warps[slot].stack.advance(pc + 1);
                self.issue_cost(
                    slot,
                    self.config.alu_latency + rename_penalty + bank_conflicts,
                );
                IssueOutcome::Issued
            }
            Fsetp(c) => {
                let pd = i.pdst.expect("validated setp");
                let mut bits = self.preds[slot][pd.index()];
                for l in lanes(exec) {
                    let t = c.eval_f32(f32::from_bits(srcs[0][l]), f32::from_bits(srcs[1][l]));
                    if t {
                        bits |= 1 << l;
                    } else {
                        bits &= !(1 << l);
                    }
                }
                self.preds[slot][pd.index()] = bits;
                self.warps[slot].stack.advance(pc + 1);
                self.issue_cost(
                    slot,
                    self.config.alu_latency + rename_penalty + bank_conflicts,
                );
                IssueOutcome::Issued
            }
            _ => {
                // ALU / SFU / S2R: pure lane-wise compute
                let w = &self.warps[slot];
                let (cta_id, warp_in_cta) = (w.cta_id, w.warp_in_cta);
                let psrc_bits = i.psrc.map(|p| self.preds[slot][p.index()]);
                let mut out = dst_phys.map(|p| self.values[p.index()]).unwrap_or_default();
                for l in lanes(exec) {
                    let a = srcs.first().map_or(0, |s| s[l]);
                    let b = srcs.get(1).map_or(0, |s| s[l]);
                    let c = srcs.get(2).map_or(0, |s| s[l]);
                    let (fa, fb, fc) = (f32::from_bits(a), f32::from_bits(b), f32::from_bits(c));
                    out[l] = match i.opcode {
                        Iadd => a.wrapping_add(b),
                        Isub => a.wrapping_sub(b),
                        Imul => a.wrapping_mul(b),
                        Imad => a.wrapping_mul(b).wrapping_add(c),
                        And => a & b,
                        Or => a | b,
                        Xor => a ^ b,
                        Shl => a.wrapping_shl(b & 31),
                        Shr => a.wrapping_shr(b & 31),
                        Mov => a,
                        Imin => (a as i32).min(b as i32) as u32,
                        Imax => (a as i32).max(b as i32) as u32,
                        Sel => {
                            if psrc_bits.expect("validated sel") & (1 << l) != 0 {
                                a
                            } else {
                                b
                            }
                        }
                        Fadd => crate::fp::fadd(fa, fb).to_bits(),
                        Fmul => crate::fp::fmul(fa, fb).to_bits(),
                        Ffma => crate::fp::ffma(fa, fb, fc).to_bits(),
                        Fmin => crate::fp::fmin(fa, fb).to_bits(),
                        Fmax => crate::fp::fmax(fa, fb).to_bits(),
                        Frcp => (1.0 / fa).to_bits(),
                        Fsqrt => fa.sqrt().to_bits(),
                        Fexp => fa.exp2().to_bits(),
                        Flog => fa.log2().to_bits(),
                        S2r(s) => match s {
                            Special::TidX => (warp_in_cta * WARP_SIZE + l) as u32,
                            Special::CtaIdX => cta_id,
                            Special::NTidX => self.threads_per_cta,
                            Special::NCtaIdX => self.grid_ctas,
                            Special::LaneId => l as u32,
                            Special::WarpId => warp_in_cta as u32,
                        },
                        other => unreachable!("handled elsewhere: {other:?}"),
                    };
                }
                if let Some(p) = dst_phys {
                    self.values[p.index()] = out;
                }
                let lat = match i.opcode.exec_class() {
                    rfv_isa::ExecClass::Sfu => self.config.sfu_latency,
                    _ => self.config.alu_latency,
                };
                self.warps[slot].stack.advance(pc + 1);
                let wait =
                    (ready_at.saturating_sub(self.now)).max(lat + rename_penalty) + bank_conflicts;
                self.issue_cost(slot, wait);
                IssueOutcome::Issued
            }
        }
    }

    fn issue_cost(&mut self, slot: usize, cycles: u64) {
        self.warp_next_issue[slot] = self.now + cycles.max(1);
        self.note_wake(slot);
    }

    fn after_control(&mut self, slot: usize) {
        if self.warps[slot].stack.is_done() {
            self.finish_warp(slot);
        }
    }

    // -------------------------------------------------------- warp endings

    fn finish_warp(&mut self, slot: usize) {
        let cta = self.warps[slot].cta_slot;
        self.warp_status[slot] = WarpStatus::Finished;
        self.remove_from_ready(slot);
        if self.config.trace_warp0_regs && slot == 0 {
            for r in self.regfile.mapped_regs(slot) {
                self.trace_reg(slot, r, false);
            }
        }
        if self.sanitizer.enabled() {
            // anything still mapped in hardware that the shadow already
            // released is a swallowed (dropped) release
            let pairs = self.regfile.mapped_pairs(slot);
            let v = self.sanitizer.check_retire(slot, &pairs, self.now);
            self.flag_violation(v);
        }
        let before_df = self.regfile.stats().double_free_attempts;
        let freed = self
            .regfile
            .retire_warp_traced(slot, self.now, self.sm_id, &mut self.sink);
        if self.sanitizer.enabled() && self.regfile.stats().double_free_attempts > before_df {
            let v = self.sanitizer.report(Violation {
                kind: ViolationKind::DoubleFree,
                cycle: self.now,
                warp: slot,
                reg: Violation::NO_REG,
                phys: Violation::NO_PHYS,
            });
            self.flag_violation(v);
        }
        self.sanitizer.note_retire(slot);
        for _ in 0..freed {
            self.throttle.on_release(cta);
        }
        if freed > 0 {
            self.emit_balance(cta);
        }
        self.local.clear_warp(slot);
        debug_assert!(self.cta_slots[cta].is_some(), "warp belongs to a CTA");
        let done = self.cta_slots[cta].as_mut().is_some_and(|cs| {
            cs.live_warps = cs.live_warps.saturating_sub(1);
            cs.live_warps == 0
        });
        if done {
            self.complete_cta(cta);
        } else {
            self.maybe_release_barrier(cta);
        }
    }

    fn complete_cta(&mut self, cta: usize) {
        debug_assert!(self.cta_slots[cta].is_some(), "completing a live CTA");
        let Some(cs) = self.cta_slots[cta].take() else {
            return;
        };
        if self.sink.enabled() {
            let cta_id = cs
                .warp_slots
                .first()
                .map_or(cta as u32, |&ws| self.warps[ws].cta_id);
            self.sink.emit(TraceEvent::sm_event(
                self.now,
                self.sm_id,
                TraceKind::CtaComplete { cta: cta_id },
            ));
        }
        for ws in cs.warp_slots {
            self.warp_status[ws] = WarpStatus::Idle;
        }
        self.throttle.retire(cta);
        self.stats.ctas_completed += 1;
        // launch more work if any remains
        let _ = self.fill_cta_slots();
    }

    fn maybe_release_barrier(&mut self, cta: usize) {
        let release = match self.cta_slots[cta].as_ref() {
            Some(cs) => cs.at_barrier > 0 && cs.at_barrier == cs.live_warps,
            None => false,
        };
        if !release {
            return;
        }
        let slots = self.cta_slots[cta]
            .as_ref()
            .expect("checked")
            .warp_slots
            .clone();
        if let Some(cs) = self.cta_slots[cta].as_mut() {
            cs.at_barrier = 0;
        }
        for ws in slots {
            if self.warp_status[ws] == WarpStatus::AtBarrier {
                self.warp_status[ws] = WarpStatus::Ready;
                self.warp_next_issue[ws] = self.now + 1;
                self.enqueue_ready(ws);
                self.note_wake(ws);
            }
        }
    }

    // ---------------------------------------------- GPU-shrink spill logic

    /// When the throttled CTA itself cannot allocate, fall back to the
    /// paper's scheduler-driven register spilling: swap out another
    /// warp's registers to memory and reload them when space frees up.
    fn maybe_spill_for(&mut self, stalled: usize) {
        let decision = self.throttle.decide(self.regfile.free_count());
        let ThrottleDecision::OnlyCta(c) = decision else {
            return;
        };
        if self.warps[stalled].cta_slot != c {
            return;
        }
        // victim: the warp (any CTA, not the stalled one) holding the
        // most dynamically-mapped registers — preferring CTAs with no
        // warp waiting at a barrier, since a swapped-out warp cannot
        // reach its barrier and would hold its whole CTA hostage
        let cta_at_barrier: Vec<bool> = (0..self.cta_slots.len())
            .map(|c| {
                self.warps
                    .iter()
                    .any(|w| w.cta_slot == c && self.warp_status[w.slot] == WarpStatus::AtBarrier)
            })
            .collect();
        let candidates = |avoid_barrier_ctas: bool| {
            self.warps
                .iter()
                .filter(|w| {
                    w.slot != stalled
                        && matches!(
                            self.warp_status[w.slot],
                            WarpStatus::Ready | WarpStatus::PendingMem
                        )
                        && self.warp_outstanding[w.slot] == 0
                        && (!avoid_barrier_ctas || !cta_at_barrier[w.cta_slot])
                })
                .map(|w| (self.regfile.mapped_count_of(w.slot), w.slot))
                .filter(|&(n, _)| n > 0)
                .max_by_key(|&(n, _)| n)
        };
        let victim = candidates(true).or_else(|| candidates(false));
        let Some((_, victim)) = victim else { return };
        let regs = self.regfile.mapped_regs(victim);
        let vc = self.warps[victim].cta_slot;
        if self.sink.enabled() {
            self.sink.emit(TraceEvent::warp_event(
                self.now,
                self.sm_id,
                victim,
                TraceKind::SwapOut {
                    warp_regs: regs.len() as u32,
                },
            ));
        }
        for &r in &regs {
            if let Some(p) = self.regfile.read(victim, r) {
                if self.injector.should_fire(FaultKind::SpillWriteLoss) {
                    // the spill store is lost: no backup is recorded, so
                    // swap-in will restore stale/poison data
                    self.trace_fault(
                        victim,
                        FaultLabel::SpillLoss,
                        u16::from(r.raw()),
                        p.index() as u32,
                    );
                } else {
                    self.spill_values.insert(victim, r, self.values[p.index()]);
                }
                if self.sink.enabled() {
                    self.sink.emit(TraceEvent::warp_event(
                        self.now,
                        self.sm_id,
                        victim,
                        TraceKind::Spill {
                            reg: r.index() as u16,
                            phys: p.index() as u32,
                        },
                    ));
                }
            }
            self.sanitizer.note_release(victim, r);
            if self.release_checked(victim, r) {
                self.throttle.on_release(vc);
            }
        }
        if !regs.is_empty() {
            self.emit_balance(vc);
        }
        let cost = self.config.mem_base_latency + regs.len() as u64 * self.config.mem_per_txn;
        self.stats.mem_txns += regs.len() as u64;
        let now = self.now;
        self.warps[victim].spilled_regs = regs;
        self.warp_status[victim] = WarpStatus::SwappedOut;
        self.warp_swap_ready[victim] = now + cost;
        self.swapped_out += 1;
        self.remove_from_ready(victim);
        self.note_wake(victim);
        self.stats.swap_outs += 1;
    }

    fn try_swap_ins(&mut self) {
        if self.swapped_out == 0 {
            return;
        }
        for slot in 0..self.warps.len() {
            if self.warp_status[slot] != WarpStatus::SwappedOut
                || self.warp_swap_ready[slot] > self.now
            {
                continue;
            }
            let regs = self.warps[slot].spilled_regs.clone();
            if self.regfile.free_count() < regs.len() {
                continue; // not enough space yet
            }
            let cta = self.warps[slot].cta_slot;
            let mut restored = Vec::new();
            let mut ok = true;
            for &r in &regs {
                match self
                    .regfile
                    .write_traced(slot, r, self.now, self.sm_id, &mut self.sink)
                {
                    WriteOutcome::Mapped { phys, .. } => {
                        match self.spill_values.get(slot, r) {
                            Some(val) => self.values[phys.index()] = *val,
                            None => {
                                // the spill backup never made it to memory
                                // (SpillWriteLoss): restoring leaves stale
                                // contents behind this mapping
                                let v = self.sanitizer.report(Violation {
                                    kind: ViolationKind::SpillLoss,
                                    cycle: self.now,
                                    warp: slot,
                                    reg: u16::from(r.raw()),
                                    phys: phys.index() as u32,
                                });
                                self.flag_violation(v);
                            }
                        }
                        let v = self.sanitizer.note_map(slot, r, phys, self.now);
                        self.flag_violation(v);
                        self.throttle.on_alloc(cta);
                        restored.push(r);
                    }
                    WriteOutcome::NoFreeRegister => {
                        ok = false;
                        break;
                    }
                }
            }
            if !ok {
                // roll back and retry later
                for r in restored {
                    if let Some(p) = self.regfile.read(slot, r) {
                        self.spill_values.insert(slot, r, self.values[p.index()]);
                    }
                    self.sanitizer.note_release(slot, r);
                    self.regfile
                        .release_traced(slot, r, self.now, self.sm_id, &mut self.sink);
                    self.throttle.on_release(cta);
                }
                continue;
            }
            if self.sink.enabled() {
                self.sink.emit(TraceEvent::warp_event(
                    self.now,
                    self.sm_id,
                    slot,
                    TraceKind::SwapIn {
                        warp_regs: regs.len() as u32,
                    },
                ));
            }
            self.emit_balance(cta);
            for &r in &regs {
                self.spill_values.remove(slot, r);
            }
            self.stats.mem_txns += regs.len() as u64;
            let next_issue = self.now + self.config.mem_base_latency;
            self.warps[slot].spilled_regs.clear();
            self.warp_status[slot] = WarpStatus::Ready;
            self.warp_next_issue[slot] = next_issue;
            self.swapped_out -= 1;
            self.enqueue_ready(slot);
            self.note_wake(slot);
        }
    }

    /// Timing for a global load: coalesce the lanes' addresses into
    /// 128 B segments, merge with in-flight segments (MSHR behaviour),
    /// and charge base latency plus one burst per *new* transaction.
    /// Returns the load-to-use latency.
    fn global_load_latency(&mut self, slot: usize, addrs: &[Option<u64>]) -> u64 {
        let segments = crate::memory::SegmentSet::from_addrs(addrs);
        let segments = segments.segments();
        // lazily expire completed segments
        let now = self.now;
        self.inflight_segments.retain(|&(_, ready)| ready > now);
        let mut new_txns = 0u64;
        let mut merged = 0u16;
        let base = segments
            .first()
            .map_or(0, |&s| s * crate::memory::SEGMENT_BYTES);
        let mut done_at = now;
        for &seg in segments {
            match self
                .inflight_segments
                .iter()
                .find_map(|&(s, ready)| (s == seg).then_some(ready))
            {
                Some(ready) => {
                    self.stats.mshr_merges += 1;
                    merged += 1;
                    done_at = done_at.max(ready);
                }
                None => {
                    new_txns += 1;
                    let ready =
                        now + self.config.mem_base_latency + new_txns * self.config.mem_per_txn;
                    self.inflight_segments.push((seg, ready));
                    done_at = done_at.max(ready);
                }
            }
        }
        self.stats.mem_txns += new_txns;
        if self.sink.enabled() {
            if new_txns > 0 {
                self.sink.emit(TraceEvent::warp_event(
                    now,
                    self.sm_id,
                    slot,
                    TraceKind::Mem {
                        phase: MemPhase::Issue,
                        addr: base,
                        segments: new_txns as u16,
                    },
                ));
            }
            if merged > 0 {
                self.sink.emit(TraceEvent::warp_event(
                    now,
                    self.sm_id,
                    slot,
                    TraceKind::Mem {
                        phase: MemPhase::MshrMerge,
                        addr: base,
                        segments: merged,
                    },
                ));
            }
        }
        done_at.saturating_sub(now).max(1)
    }

    // ------------------------------------------------------------ sampling

    fn sample_if_due(&mut self) {
        if let Some(at) = self.config.snapshot_at_cycle {
            if self.now >= at && self.stats.subarray_snapshot.is_none() {
                self.stats.subarray_snapshot =
                    Some((self.now, self.regfile.subarray_occupancy().to_vec()));
            }
        }
        if self.now < self.next_sample || self.stats.samples.len() >= 4_000_000 {
            return;
        }
        self.next_sample = self.now + self.config.sample_interval;
        let resident = self.resident_ctas() * self.warps_per_cta * self.num_regs;
        self.stats.samples.push(Sample {
            cycle: self.now,
            live_regs: self.regfile.live_count(),
            resident_arch_regs: resident,
            subarrays_on: self.regfile.subarrays_on(),
        });
    }
}

fn violation_kind_tag(k: ViolationKind) -> u8 {
    match k {
        ViolationKind::UseAfterRelease => 0,
        ViolationKind::MappingMismatch => 1,
        ViolationKind::AliasedPhys => 2,
        ViolationKind::AvailDisagree => 3,
        ViolationKind::DoubleFree => 4,
        ViolationKind::DroppedRelease => 5,
        ViolationKind::RegisterLeak => 6,
        ViolationKind::SpillLoss => 7,
    }
}

fn violation_kind_untag(t: u8) -> Result<ViolationKind, WireError> {
    Ok(match t {
        0 => ViolationKind::UseAfterRelease,
        1 => ViolationKind::MappingMismatch,
        2 => ViolationKind::AliasedPhys,
        3 => ViolationKind::AvailDisagree,
        4 => ViolationKind::DoubleFree,
        5 => ViolationKind::DroppedRelease,
        6 => ViolationKind::RegisterLeak,
        7 => ViolationKind::SpillLoss,
        _ => return Err(WireError::Invalid("violation kind tag")),
    })
}

fn encode_violation(e: &mut Enc, v: Violation) {
    e.u8(violation_kind_tag(v.kind));
    e.u64(v.cycle);
    e.usize(v.warp);
    e.u16(v.reg);
    e.u32(v.phys);
}

fn decode_violation(d: &mut Dec<'_>) -> Result<Violation, WireError> {
    Ok(Violation {
        kind: violation_kind_untag(d.u8()?)?,
        cycle: d.u64()?,
        warp: d.usize()?,
        reg: d.u16()?,
        phys: d.u32()?,
    })
}
