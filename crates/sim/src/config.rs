//! Simulator configuration (the paper's §9 baseline machine).

use rfv_core::{RegFileConfig, SanitizeLevel, VirtualizationPolicy};
use rfv_faults::{FaultKind, FaultPlan};
use rfv_trace::wire::fnv1a;
use rfv_trace::Enc;

/// Timing and capacity parameters for one simulated GPU.
///
/// Defaults model the paper's baseline: Fermi-style SMs with a 128 KB
/// four-bank register file, a two-level warp scheduler with a six-warp
/// ready queue, and two schedulers issuing one instruction each per
/// cycle.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct SimConfig {
    /// Streaming multiprocessors (the paper simulates 16; per-SM
    /// ratios are unaffected, so most experiments run fewer).
    pub num_sms: usize,
    /// Warp contexts per SM.
    pub max_warps_per_sm: usize,
    /// CTA slots per SM.
    pub max_ctas_per_sm: usize,
    /// Two-level scheduler ready-queue capacity.
    pub ready_queue: usize,
    /// Warp schedulers per SM (instructions issued per cycle).
    pub schedulers: usize,
    /// Issue-to-issue delay after an ALU instruction, cycles.
    pub alu_latency: u64,
    /// Issue-to-issue delay after an SFU instruction, cycles.
    pub sfu_latency: u64,
    /// Shared-memory load-to-use latency, cycles.
    pub shared_latency: u64,
    /// Global-memory base latency, cycles.
    pub mem_base_latency: u64,
    /// Additional latency per coalesced 128 B transaction, cycles.
    pub mem_per_txn: u64,
    /// Extra pipeline cycle for the renaming-table lookup (§7.1: the
    /// 0.22 ns table access is conservatively charged one cycle).
    pub rename_extra_cycle: bool,
    /// Register-file hardware configuration.
    pub regfile: RegFileConfig,
    /// Cycle interval for live-register sampling (Figure 1).
    pub sample_interval: u64,
    /// Record per-register allocate/release events of hardware warp
    /// slot 0 (drives the Figure 2 lifetime traces).
    pub trace_warp0_regs: bool,
    /// Capture a per-subarray occupancy snapshot at this cycle
    /// (drives the Figure 8 occupancy maps).
    pub snapshot_at_cycle: Option<u64>,
    /// Watchdog: abort runs exceeding this many cycles.
    pub max_cycles: u64,
    /// Worker threads for SM execution. `None` defers to the
    /// `RFV_JOBS` environment variable, falling back to the machine's
    /// available parallelism; `Some(1)` forces the sequential path.
    /// SMs share no state, so the result is bit-identical either way
    /// (see `gpu::run_all`).
    pub sm_jobs: Option<usize>,
    /// Online soundness checking of the virtualized register file
    /// (shadow-model sanitizer). At [`SanitizeLevel::Off`] — the
    /// default — the run is bit-identical to a sanitizer-free build.
    pub sanitize: SanitizeLevel,
    /// Deterministic fault-injection plan perturbing the release
    /// machinery (see `rfv_faults`). Empty by default.
    pub faults: FaultPlan,
    /// Differential-testing switch: compute idle-cycle skips with the
    /// lazily-validated wake-event heap instead of the SoA warp-status
    /// min-scan. The two are equivalent by construction; the
    /// engine-equivalence suite runs both and asserts bit-identical
    /// results. Off (scan) by default — with warp scheduling state in
    /// contiguous SoA arrays, the branchless O(warps) sweep on idle
    /// cycles is cheaper than pushing a heap entry on every warp
    /// status transition.
    pub incremental_wake_index: bool,
    /// Executable-spec switch: issue instructions through the original
    /// `match`-based interpreter instead of the precompiled
    /// threaded-code execution plan (see `sm::plan`). The plan is
    /// lowered from the same predecoded image and must be byte-exact
    /// with the interpreter — the engine-equivalence suite runs both
    /// and asserts bit-identical stats, memories, and traces. Off
    /// (plan engine) by default.
    pub reference_interpreter: bool,
}

impl SimConfig {
    /// The paper's baseline machine with the given register file.
    pub fn with_regfile(regfile: RegFileConfig) -> SimConfig {
        SimConfig {
            num_sms: 1,
            max_warps_per_sm: 48,
            max_ctas_per_sm: 8,
            ready_queue: 6,
            schedulers: 2,
            alu_latency: 1,
            sfu_latency: 8,
            shared_latency: 24,
            mem_base_latency: 200,
            mem_per_txn: 8,
            rename_extra_cycle: regfile.policy.renames(),
            regfile,
            sample_interval: 16,
            trace_warp0_regs: false,
            snapshot_at_cycle: None,
            max_cycles: 80_000_000,
            sm_jobs: None,
            sanitize: SanitizeLevel::Off,
            faults: FaultPlan::none(),
            incremental_wake_index: false,
            reference_interpreter: false,
        }
    }

    /// Baseline 128 KB file with full virtualization.
    pub fn baseline_full() -> SimConfig {
        SimConfig::with_regfile(RegFileConfig::baseline_full())
    }

    /// Conventional GPU (no renaming, no gating).
    pub fn conventional() -> SimConfig {
        SimConfig::with_regfile(RegFileConfig::conventional())
    }

    /// GPU-shrink at `percent`% size reduction.
    pub fn gpu_shrink(percent: usize) -> SimConfig {
        SimConfig::with_regfile(RegFileConfig::shrunk(percent))
    }

    /// A stable identity hash over every field that shapes simulation
    /// *results*. Checkpoints embed this hash; resuming under a config
    /// that hashes differently is rejected.
    ///
    /// Deliberately excluded: `sm_jobs` (worker-thread count — the
    /// parallel and sequential paths are bit-identical), `max_cycles`
    /// (the watchdog only decides when to give up, so a checkpoint
    /// from an aborted run may resume under a larger budget), and
    /// `incremental_wake_index` (the two wake engines are equivalent by
    /// construction and produce identical state), and
    /// `reference_interpreter` (the threaded-code plan and the
    /// interpreter are byte-exact by the same contract, so a
    /// checkpoint taken under one engine may resume under the other).
    pub fn stable_hash(&self) -> u64 {
        let mut e = Enc::new();
        e.usize(self.num_sms);
        e.usize(self.max_warps_per_sm);
        e.usize(self.max_ctas_per_sm);
        e.usize(self.ready_queue);
        e.usize(self.schedulers);
        e.u64(self.alu_latency);
        e.u64(self.sfu_latency);
        e.u64(self.shared_latency);
        e.u64(self.mem_base_latency);
        e.u64(self.mem_per_txn);
        e.bool(self.rename_extra_cycle);
        e.usize(self.regfile.phys_regs);
        e.u8(match self.regfile.policy {
            VirtualizationPolicy::None => 0,
            VirtualizationPolicy::HardwareOnly => 1,
            VirtualizationPolicy::Full => 2,
        });
        e.bool(self.regfile.power_gating);
        e.u64(self.regfile.wakeup_cycles);
        e.usize(self.regfile.flag_cache_entries);
        e.bool(self.regfile.bank_preserving);
        e.u64(self.sample_interval);
        e.bool(self.trace_warp0_regs);
        e.opt_u64(self.snapshot_at_cycle);
        e.u8(match self.sanitize {
            SanitizeLevel::Off => 0,
            SanitizeLevel::Check => 1,
            SanitizeLevel::Recover => 2,
        });
        e.u64(self.faults.seed);
        for k in FaultKind::ALL {
            e.u16(self.faults.count(k));
        }
        fnv1a(e.bytes())
    }

    /// Validates capacity parameters.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.num_sms == 0 || self.schedulers == 0 || self.ready_queue == 0 {
            return Err("SM, scheduler, and ready-queue counts must be positive".into());
        }
        if self.max_warps_per_sm == 0 || self.max_ctas_per_sm == 0 {
            return Err("warp and CTA capacities must be positive".into());
        }
        if self.sm_jobs == Some(0) {
            return Err("sm_jobs must be positive when set".into());
        }
        self.regfile.validate()
    }
}

impl Default for SimConfig {
    fn default() -> SimConfig {
        SimConfig::baseline_full()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfv_core::VirtualizationPolicy;

    #[test]
    fn baseline_matches_paper() {
        let c = SimConfig::baseline_full();
        assert_eq!(c.max_warps_per_sm, 48);
        assert_eq!(c.ready_queue, 6);
        assert_eq!(c.schedulers, 2);
        assert_eq!(c.max_ctas_per_sm, 8);
        assert!(c.rename_extra_cycle);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn conventional_skips_rename_cycle() {
        let c = SimConfig::conventional();
        assert_eq!(c.regfile.policy, VirtualizationPolicy::None);
        assert!(!c.rename_extra_cycle);
    }

    #[test]
    fn shrink_configs_validate() {
        for pct in [30, 40, 50] {
            assert!(SimConfig::gpu_shrink(pct).validate().is_ok());
        }
    }

    #[test]
    fn stable_hash_tracks_result_shaping_fields_only() {
        let a = SimConfig::baseline_full();
        let mut b = a;
        b.sm_jobs = Some(4);
        b.max_cycles = 123;
        b.incremental_wake_index = true;
        b.reference_interpreter = true;
        assert_eq!(a.stable_hash(), b.stable_hash());
        let mut c = a;
        c.mem_base_latency += 1;
        assert_ne!(a.stable_hash(), c.stable_hash());
        assert_ne!(a.stable_hash(), SimConfig::conventional().stable_hash());
        assert_ne!(a.stable_hash(), SimConfig::gpu_shrink(50).stable_hash());
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut c = SimConfig::baseline_full();
        c.schedulers = 0;
        assert!(c.validate().is_err());
        let mut c = SimConfig::baseline_full();
        c.regfile.phys_regs = 7;
        assert!(c.validate().is_err());
        let mut c = SimConfig::baseline_full();
        c.num_sms = 0;
        assert!(c.validate().is_err());
        let mut c = SimConfig::baseline_full();
        c.sm_jobs = Some(0);
        assert!(c.validate().is_err());
        c.sm_jobs = Some(4);
        assert!(c.validate().is_ok());
    }
}
