//! Deterministic lane float arithmetic shared by the interpreter and
//! the execution-plan engine.
//!
//! IEEE 754 leaves the *payload* of a NaN result unspecified, and
//! LLVM is free to commute `fadd`/`fmul` operands, so two separately
//! compiled copies of `a + b` can legally return different NaN bit
//! patterns for the same inputs (x86 `addss` propagates its first
//! operand's payload). The simulator's differential suites demand
//! bit-identity between the two engines, so every binary float op
//! pins the propagation order in source: the first NaN operand wins,
//! before the hardware op runs. Results that *become* NaN from
//! non-NaN operands (inf − inf, 0 × inf) use the hardware's "real
//! indefinite" constant, which is deterministic.

/// `a + b` with first-NaN-operand-wins payload propagation.
#[inline]
pub(crate) fn fadd(a: f32, b: f32) -> f32 {
    if a.is_nan() {
        a
    } else if b.is_nan() {
        b
    } else {
        a + b
    }
}

/// `a × b` with first-NaN-operand-wins payload propagation.
#[inline]
pub(crate) fn fmul(a: f32, b: f32) -> f32 {
    if a.is_nan() {
        a
    } else if b.is_nan() {
        b
    } else {
        a * b
    }
}

/// Fused `a × b + c` with first-NaN-operand-wins payload propagation.
#[inline]
pub(crate) fn ffma(a: f32, b: f32, c: f32) -> f32 {
    if a.is_nan() {
        a
    } else if b.is_nan() {
        b
    } else if c.is_nan() {
        c
    } else {
        a.mul_add(b, c)
    }
}

/// IEEE minNum with a pinned both-NaN case (first operand wins).
#[inline]
pub(crate) fn fmin(a: f32, b: f32) -> f32 {
    if a.is_nan() {
        if b.is_nan() {
            a
        } else {
            b
        }
    } else if b.is_nan() {
        a
    } else {
        a.min(b)
    }
}

/// IEEE maxNum with a pinned both-NaN case (first operand wins).
#[inline]
pub(crate) fn fmax(a: f32, b: f32) -> f32 {
    if a.is_nan() {
        if b.is_nan() {
            a
        } else {
            b
        }
    } else if b.is_nan() {
        a
    } else {
        a.max(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const NAN_A: u32 = 0xfff7_6208;
    const NAN_B: u32 = 0x7fd1_2e30;

    #[test]
    fn first_nan_operand_wins_bit_for_bit() {
        let (a, b) = (f32::from_bits(NAN_A), f32::from_bits(NAN_B));
        assert_eq!(fadd(a, b).to_bits(), NAN_A);
        assert_eq!(fadd(b, a).to_bits(), NAN_B);
        assert_eq!(fmul(a, b).to_bits(), NAN_A);
        assert_eq!(ffma(1.0, b, a).to_bits(), NAN_B);
        assert_eq!(fmin(a, b).to_bits(), NAN_A);
        assert_eq!(fmax(b, a).to_bits(), NAN_B);
    }

    #[test]
    fn min_max_prefer_the_number_over_nan() {
        let n = f32::from_bits(NAN_A);
        assert_eq!(fmin(n, 2.0), 2.0);
        assert_eq!(fmin(2.0, n), 2.0);
        assert_eq!(fmax(n, -2.0), -2.0);
    }

    #[test]
    fn finite_arithmetic_is_untouched() {
        assert_eq!(fadd(1.5, 2.25), 3.75);
        assert_eq!(fmul(-2.0, 4.0), -8.0);
        assert_eq!(ffma(2.0, 3.0, 1.0), 7.0);
        assert_eq!(fmin(1.0, 2.0), 1.0);
        assert_eq!(fmax(1.0, 2.0), 2.0);
    }
}
