//! # rfv-sim — a cycle-level SIMT GPU simulator
//!
//! The execution substrate for reproducing *GPU Register File
//! Virtualization* (MICRO-48, 2015). One [`sm::Sm`] models a
//! Fermi-class streaming multiprocessor:
//!
//! * **fetch** probes the release-flag cache so repeated `pir`
//!   metadata instructions cost nothing (§7.2);
//! * a **two-level warp scheduler** (six-warp ready queue, pending
//!   queue for memory waiters) creates the inter-warp scheduling skew
//!   that register sharing exploits (§5);
//! * a **SIMT reconvergence stack** executes divergent branches with
//!   compiler-provided reconvergence points;
//! * the **virtualized register file** from [`rfv_core`] handles
//!   renaming, early release, subarray power gating, and — under
//!   GPU-shrink — CTA-level register throttling with the spill
//!   fallback (§8.1);
//! * a **latency/coalescing memory model** provides the long-latency
//!   operations that drive scheduling behaviour.
//!
//! Functional register values are stored per *physical* register, so
//! an unsound early release corrupts program outputs instead of being
//! silently masked — the differential tests in `tests/` rely on this.
//!
//! ```
//! use rfv_isa::prelude::*;
//! use rfv_compiler::{compile, CompileOptions};
//! use rfv_sim::{simulate, SimConfig};
//!
//! let mut b = KernelBuilder::new("inc");
//! b.s2r(ArchReg::R0, Special::TidX);
//! b.shl(ArchReg::R1, ArchReg::R0, 2);
//! b.ldg(ArchReg::R2, ArchReg::R1, 0);
//! b.iadd(ArchReg::R2, ArchReg::R2, 1);
//! b.stg(ArchReg::R1, ArchReg::R2, 0x1000);
//! b.exit();
//! let kernel = b.build(LaunchConfig::new(2, 64, 2))?;
//! let compiled = compile(&kernel, &CompileOptions::default())?;
//!
//! let result = simulate(&compiled, &SimConfig::baseline_full())?;
//! assert!(result.cycles > 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod checkpoint;
pub mod config;
mod fp;
pub mod gpu;
pub mod memory;
pub mod predecode;
pub mod sm;
pub mod stats;
pub mod warp;

pub use checkpoint::{kernel_identity_hash, Checkpoint, CKPT_MAGIC, CKPT_VERSION};
pub use config::SimConfig;
pub use gpu::{
    simulate, simulate_predecoded, simulate_resumable, simulate_resumable_traced, simulate_traced,
    simulate_traced_checkpointed, simulate_traced_with_init, simulate_with_init, SimResult,
    SlicedSim, TracedRun,
};
pub use memory::GlobalMemory;
pub use predecode::PredecodedKernel;
pub use sm::{SimError, Sm, SmResult, WarpDiag, WatchdogSnapshot};
pub use stats::{RegTraceEvent, Sample, SimStats};

// re-exported so simulator users can configure sanitizing and fault
// injection without naming the leaf crates
pub use rfv_core::{SanitizeLevel, Violation, ViolationKind};
pub use rfv_faults::{FaultKind, FaultPlan};
