//! Kernel predecode: a dense, issue-ready program image built once
//! per SM at construction.
//!
//! The fetch/issue hot path used to re-interpret [`ProgItem`]s every
//! cycle — cloning each [`Instr`]'s heap-allocated operand `Vec`,
//! re-deriving the scoreboard's register set, and looking up release
//! flags and reconvergence PCs in side tables per issue. This module
//! does all of that exactly once at launch:
//!
//! * every instruction becomes a flat, `Copy`-able
//!   [`PredecodedInstr`] with its operands inlined into a fixed
//!   `[Operand; MAX_SRC_OPERANDS]` array,
//! * the scoreboard test collapses to one AND against a precomputed
//!   `hazard_mask` (source registers ∪ destination),
//! * the compiler's per-PC release flags and branch reconvergence
//!   PCs are prefetched into the item itself,
//! * `pbr` register lists live in one shared arena addressed by
//!   `(lo, hi)` ranges, so decoding a `pbr` touches no allocator.
//!
//! Predecode is purely representational: field for field it is the
//! same program the interpreter saw before, so issue order, timing,
//! and every statistic are bit-identical.

use rfv_compiler::CompiledKernel;
use rfv_isa::kernel::ProgItem;
use rfv_isa::{ArchReg, Opcode, Operand, Pred, PredGuard, ReleaseFlags, MAX_SRC_OPERANDS};

use crate::warp::NO_RECONV;

/// One instruction, flattened for issue (see module docs).
#[derive(Clone, Copy, Debug)]
pub struct PredecodedInstr {
    /// Operation to perform.
    pub opcode: Opcode,
    /// Destination register, when the opcode writes one.
    pub dst: Option<ArchReg>,
    /// Destination predicate (SETP family).
    pub pdst: Option<Pred>,
    /// Predicate source consumed by `SEL`.
    pub psrc: Option<Pred>,
    /// Optional execution guard.
    pub guard: Option<PredGuard>,
    /// Immediate byte offset for memory operations.
    pub mem_offset: i32,
    /// Branch target PC; meaningful only for `BRA` (validated at
    /// predecode, so no `Option` on the hot path).
    pub target: u32,
    /// Reconvergence PC for `BRA` ([`NO_RECONV`] when the analysis
    /// found none) — `reconv_at(pc)` prefetched.
    pub reconv: usize,
    /// Release flags at this PC — `flags_at(pc)` prefetched.
    pub flags: ReleaseFlags,
    /// Scoreboard mask: bit `r` set iff this instruction reads or
    /// writes architected register `r`. One AND against
    /// `Warp::outstanding` replaces the per-issue operand walk.
    pub hazard_mask: u64,
    nsrcs: u8,
    srcs: [Operand; MAX_SRC_OPERANDS],
}

impl PredecodedInstr {
    /// An inert instruction occupying `pir`/`pbr` PCs in the execution
    /// plan's dense instruction array (so handlers index it
    /// unconditionally). Never executed: those PCs dispatch to the
    /// metadata handlers, which read [`ExecPlan`]'s side table instead.
    ///
    /// [`ExecPlan`]: crate::sm::plan::ExecPlan
    pub(crate) fn placeholder() -> PredecodedInstr {
        PredecodedInstr {
            opcode: Opcode::Nop,
            dst: None,
            pdst: None,
            psrc: None,
            guard: None,
            mem_offset: 0,
            target: 0,
            reconv: NO_RECONV,
            flags: ReleaseFlags::NONE,
            hazard_mask: 0,
            nsrcs: 0,
            srcs: [Operand::Imm(0); MAX_SRC_OPERANDS],
        }
    }

    /// Source operands, in operand-slot order.
    pub fn srcs(&self) -> &[Operand] {
        &self.srcs[..self.nsrcs as usize]
    }

    /// Register source operands with their slot positions (slot
    /// numbering matters: release flags are per operand slot).
    pub fn src_regs(&self) -> impl Iterator<Item = (usize, ArchReg)> + '_ {
        self.srcs()
            .iter()
            .enumerate()
            .filter_map(|(slot, op)| op.reg().map(|r| (slot, r)))
    }
}

/// One predecoded program item.
#[derive(Clone, Copy, Debug)]
pub enum PdItem {
    /// A machine instruction.
    Instr(PredecodedInstr),
    /// Per-instruction release metadata (`pir`); only its flag count
    /// is observable at fetch.
    Pir {
        /// Number of release flags the payload carries.
        release_count: u16,
    },
    /// Bulk-release metadata (`pbr`); the register list is the
    /// `lo..hi` range of [`PredecodedKernel::pbr_regs`].
    Pbr {
        /// First index into the pbr-register arena.
        lo: u32,
        /// One past the last index into the pbr-register arena.
        hi: u32,
    },
}

/// A compiled kernel predecoded into dense issue-ready items.
#[derive(Clone, Debug)]
pub struct PredecodedKernel {
    items: Vec<PdItem>,
    pbr_regs: Vec<ArchReg>,
    kernel_hash: u64,
    /// Threaded-code lowering of `items` (see [`crate::sm::plan`]),
    /// built here so rfvd's compile cache and checkpoint resume share
    /// the plan for free alongside the image.
    plan: crate::sm::plan::ExecPlan,
}

impl PredecodedKernel {
    /// Predecodes `kernel` (see module docs). Cost is one pass over
    /// the program, paid per SM at construction.
    pub fn new(kernel: &CompiledKernel) -> PredecodedKernel {
        let program = kernel.kernel();
        let mut items = Vec::with_capacity(program.len());
        let mut pbr_regs = Vec::new();
        for (pc, item) in program.items().iter().enumerate() {
            items.push(match item {
                ProgItem::Pir(p) => PdItem::Pir {
                    release_count: p.release_count() as u16,
                },
                ProgItem::Pbr(p) => {
                    let lo = pbr_regs.len() as u32;
                    pbr_regs.extend_from_slice(p.regs());
                    PdItem::Pbr {
                        lo,
                        hi: pbr_regs.len() as u32,
                    }
                }
                ProgItem::Instr(i) => {
                    let mut srcs = [Operand::Imm(0); MAX_SRC_OPERANDS];
                    srcs[..i.srcs.len()].copy_from_slice(&i.srcs);
                    let mut hazard_mask = 0u64;
                    for r in i.reads() {
                        hazard_mask |= 1u64 << r.index();
                    }
                    if let Some(d) = i.dst {
                        hazard_mask |= 1u64 << d.index();
                    }
                    PdItem::Instr(PredecodedInstr {
                        opcode: i.opcode,
                        dst: i.dst,
                        pdst: i.pdst,
                        psrc: i.psrc,
                        guard: i.guard,
                        mem_offset: i.mem_offset,
                        target: i.target.unwrap_or(0) as u32,
                        reconv: kernel.reconv_at(pc).flatten().unwrap_or(NO_RECONV),
                        flags: kernel.flags_at(pc),
                        hazard_mask,
                        nsrcs: i.srcs.len() as u8,
                        srcs,
                    })
                }
            });
        }
        let plan = crate::sm::plan::ExecPlan::lower(&items);
        PredecodedKernel {
            items,
            pbr_regs,
            kernel_hash: crate::checkpoint::kernel_identity_hash(kernel),
            plan,
        }
    }

    /// The threaded-code execution plan lowered from this image.
    #[inline]
    pub(crate) fn plan(&self) -> &crate::sm::plan::ExecPlan {
        &self.plan
    }

    /// [`crate::checkpoint::kernel_identity_hash`] of the source
    /// kernel, memoized here because computing it walks (and formats)
    /// the whole program — sharing the predecoded image across runs
    /// also shares the hash, so checkpoint identity binding costs
    /// nothing per run.
    pub fn kernel_hash(&self) -> u64 {
        self.kernel_hash
    }

    /// The item at `pc`.
    #[inline]
    pub fn item(&self, pc: usize) -> &PdItem {
        &self.items[pc]
    }

    /// Number of program items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the program is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The register list of a `pbr` item, addressed by its arena
    /// range.
    #[inline]
    pub fn pbr_regs(&self, lo: u32, hi: u32) -> &[ArchReg] {
        &self.pbr_regs[lo as usize..hi as usize]
    }
}
