//! Functional + timing memory model: global, shared, and per-thread
//! local spaces, with 128 B coalescing for global accesses.

use std::collections::HashMap;
use std::hash::{BuildHasher, Hasher};

use rfv_isa::WARP_SIZE;
use rfv_trace::{Dec, Enc, WireError};

/// Size of one coalesced memory transaction, bytes.
pub const SEGMENT_BYTES: u64 = 128;

/// A multiply–xor hasher for the sparse memory maps. Word addresses
/// hash on every simulated load/store lane, and the default SipHash
/// showed up prominently in profiles; integer keys need no DoS
/// resistance here. Only the map's *internal* layout changes — lookup
/// results, equality, and every statistic are unaffected.
#[derive(Clone, Copy, Default, Debug)]
pub struct FastHashBuilder;

impl BuildHasher for FastHashBuilder {
    type Hasher = FastHasher;

    fn build_hasher(&self) -> FastHasher {
        FastHasher(0)
    }
}

/// See [`FastHashBuilder`].
#[derive(Clone, Copy, Default, Debug)]
pub struct FastHasher(u64);

impl FastHasher {
    #[inline]
    fn add(&mut self, v: u64) {
        self.0 = (self.0.rotate_left(5) ^ v).wrapping_mul(0x517c_c1b7_2722_0a95);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.add(u64::from(b));
        }
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

/// Global (device) memory: a sparse word store. Unwritten words read
/// as a deterministic address-derived pattern so that data-dependent
/// kernels (graph traversals, reductions over "input" arrays) behave
/// reproducibly without explicit initialization.
#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub struct GlobalMemory {
    words: HashMap<u64, u32, FastHashBuilder>,
    /// Word reads served.
    pub reads: u64,
    /// Word writes served.
    pub writes: u64,
}

impl GlobalMemory {
    /// An empty memory (all defaults).
    pub fn new() -> GlobalMemory {
        GlobalMemory::default()
    }

    /// The deterministic content of an unwritten word.
    pub fn default_word(addr: u64) -> u32 {
        ((addr >> 2) as u32).wrapping_mul(0x9e37_79b9) ^ 0x5bd1_e995
    }

    /// Reads the 32-bit word at byte address `addr` (word aligned;
    /// low bits ignored).
    pub fn read_word(&mut self, addr: u64) -> u32 {
        self.reads += 1;
        let a = addr & !3;
        self.words
            .get(&a)
            .copied()
            .unwrap_or_else(|| GlobalMemory::default_word(a))
    }

    /// Writes the 32-bit word at byte address `addr`.
    pub fn write_word(&mut self, addr: u64, value: u32) {
        self.writes += 1;
        self.words.insert(addr & !3, value);
    }

    /// Reads without counting (verification helpers).
    pub fn peek_word(&self, addr: u64) -> u32 {
        let a = addr & !3;
        self.words
            .get(&a)
            .copied()
            .unwrap_or_else(|| GlobalMemory::default_word(a))
    }

    /// Words explicitly written so far.
    pub fn footprint_words(&self) -> usize {
        self.words.len()
    }

    /// Serializes the word store for a checkpoint frame. Keys are
    /// written in sorted order so equal memories always encode to
    /// identical bytes ([`FastHashBuilder`] iteration order is not
    /// deterministic across maps with different insertion histories).
    pub fn encode(&self, e: &mut Enc) {
        let mut keys: Vec<u64> = self.words.keys().copied().collect();
        keys.sort_unstable();
        e.usize(keys.len());
        for k in keys {
            e.u64(k);
            e.u32(self.words[&k]);
        }
        e.u64(self.reads);
        e.u64(self.writes);
    }

    /// Rebuilds a memory written by [`GlobalMemory::encode`].
    ///
    /// # Errors
    ///
    /// Propagates truncation/corruption as a typed [`WireError`].
    pub fn decode(d: &mut Dec<'_>) -> Result<GlobalMemory, WireError> {
        let n = d.usize()?;
        let mut m = GlobalMemory::new();
        m.words.reserve(n);
        for _ in 0..n {
            let k = d.u64()?;
            let v = d.u32()?;
            m.words.insert(k, v);
        }
        m.reads = d.u64()?;
        m.writes = d.u64()?;
        Ok(m)
    }
}

/// A warp's per-lane addresses coalesced into sorted, deduplicated
/// 128 B segment ids, in a fixed-size buffer (one warp has at most
/// [`WARP_SIZE`] distinct segments, so the hot path never allocates).
#[derive(Clone, Copy, Debug)]
pub struct SegmentSet {
    segs: [u64; WARP_SIZE],
    len: usize,
}

impl SegmentSet {
    /// Coalesces `addrs` (lanes with `None` are inactive).
    pub fn from_addrs(addrs: &[Option<u64>]) -> SegmentSet {
        let mut segs = [0u64; WARP_SIZE];
        let mut n = 0;
        for a in addrs.iter().flatten() {
            segs[n] = a / SEGMENT_BYTES;
            n += 1;
        }
        segs[..n].sort_unstable();
        let mut len = 0;
        for i in 0..n {
            if len == 0 || segs[len - 1] != segs[i] {
                segs[len] = segs[i];
                len += 1;
            }
        }
        SegmentSet { segs, len }
    }

    /// The distinct segment ids, ascending.
    pub fn segments(&self) -> &[u64] {
        &self.segs[..self.len]
    }
}

/// Counts the coalesced 128 B transactions needed to serve a warp's
/// per-lane addresses (lanes with `None` are inactive).
pub fn coalesce_count(addrs: &[Option<u64>]) -> usize {
    SegmentSet::from_addrs(addrs).len
}

/// Per-CTA shared memory (a plain word array).
#[derive(Clone, Debug)]
pub struct SharedMemory {
    words: Vec<u32>,
}

impl SharedMemory {
    /// Creates a shared memory of `bytes` bytes (rounded down to
    /// whole words).
    pub fn new(bytes: usize) -> SharedMemory {
        SharedMemory {
            words: vec![0; bytes / 4],
        }
    }

    /// Reads the word at byte offset `addr` (wrapping within the
    /// array, mirroring hardware address truncation).
    pub fn read_word(&self, addr: u64) -> u32 {
        let idx = (addr / 4) as usize % self.words.len().max(1);
        self.words.get(idx).copied().unwrap_or(0)
    }

    /// Writes the word at byte offset `addr`.
    pub fn write_word(&mut self, addr: u64, value: u32) {
        if self.words.is_empty() {
            return;
        }
        let len = self.words.len();
        self.words[(addr / 4) as usize % len] = value;
    }

    /// Clears contents (CTA slot reuse).
    pub fn reset(&mut self) {
        self.words.fill(0);
    }

    /// Serializes the word array for a checkpoint frame.
    pub fn encode(&self, e: &mut Enc) {
        e.usize(self.words.len());
        for &w in &self.words {
            e.u32(w);
        }
    }

    /// Rebuilds a shared memory written by [`SharedMemory::encode`].
    ///
    /// # Errors
    ///
    /// Rejects streams whose size disagrees with `bytes`.
    pub fn decode(d: &mut Dec<'_>, bytes: usize) -> Result<SharedMemory, WireError> {
        let mut s = SharedMemory::new(bytes);
        if d.usize()? != s.words.len() {
            return Err(WireError::Invalid("shared memory size"));
        }
        for w in s.words.iter_mut() {
            *w = d.u32()?;
        }
        Ok(s)
    }
}

/// Per-thread local memory (spill space): sparse, zero-filled,
/// keyed by (hardware warp slot, lane, word address).
#[derive(Clone, Default, Debug)]
pub struct LocalMemory {
    words: HashMap<(usize, usize, u64), u32, FastHashBuilder>,
    /// Word accesses served (spill traffic statistic).
    pub accesses: u64,
}

impl LocalMemory {
    /// An empty local memory.
    pub fn new() -> LocalMemory {
        LocalMemory::default()
    }

    /// Reads a thread's local word.
    pub fn read_word(&mut self, warp_slot: usize, lane: usize, addr: u64) -> u32 {
        self.accesses += 1;
        self.words
            .get(&(warp_slot, lane, addr / 4))
            .copied()
            .unwrap_or(0)
    }

    /// Writes a thread's local word.
    pub fn write_word(&mut self, warp_slot: usize, lane: usize, addr: u64, value: u32) {
        self.accesses += 1;
        self.words.insert((warp_slot, lane, addr / 4), value);
    }

    /// Drops a warp slot's contents (warp retirement).
    pub fn clear_warp(&mut self, warp_slot: usize) {
        self.words.retain(|&(w, _, _), _| w != warp_slot);
    }

    /// Serializes the word store for a checkpoint frame (sorted keys,
    /// see [`GlobalMemory::encode`]).
    pub fn encode(&self, e: &mut Enc) {
        let mut keys: Vec<(usize, usize, u64)> = self.words.keys().copied().collect();
        keys.sort_unstable();
        e.usize(keys.len());
        for k in keys {
            e.usize(k.0);
            e.usize(k.1);
            e.u64(k.2);
            e.u32(self.words[&k]);
        }
        e.u64(self.accesses);
    }

    /// Rebuilds a local memory written by [`LocalMemory::encode`].
    ///
    /// # Errors
    ///
    /// Propagates truncation/corruption as a typed [`WireError`].
    pub fn decode(d: &mut Dec<'_>) -> Result<LocalMemory, WireError> {
        let n = d.usize()?;
        let mut m = LocalMemory::new();
        m.words.reserve(n);
        for _ in 0..n {
            let k = (d.usize()?, d.usize()?, d.u64()?);
            let v = d.u32()?;
            m.words.insert(k, v);
        }
        m.accesses = d.u64()?;
        Ok(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_read_your_writes() {
        let mut m = GlobalMemory::new();
        m.write_word(0x100, 42);
        assert_eq!(m.read_word(0x100), 42);
        assert_eq!(m.read_word(0x102), 42, "word aligned");
        assert_eq!(m.footprint_words(), 1);
    }

    #[test]
    fn global_default_pattern_is_deterministic() {
        let mut m = GlobalMemory::new();
        let v1 = m.read_word(0x2000);
        let v2 = m.read_word(0x2000);
        assert_eq!(v1, v2);
        assert_ne!(m.read_word(0x2000), m.read_word(0x2004));
        assert_eq!(m.reads, 4);
    }

    #[test]
    fn coalescing_counts_unique_segments() {
        // all 32 lanes in one 128 B segment -> 1 transaction
        let unit: Vec<Option<u64>> = (0..32).map(|i| Some(i * 4)).collect();
        assert_eq!(coalesce_count(&unit), 1);
        // stride-128 -> 32 transactions
        let strided: Vec<Option<u64>> = (0..32).map(|i| Some(i * 128)).collect();
        assert_eq!(coalesce_count(&strided), 32);
        // inactive lanes don't count
        let sparse: Vec<Option<u64>> = (0..32)
            .map(|i| if i < 2 { Some(i * 4) } else { None })
            .collect();
        assert_eq!(coalesce_count(&sparse), 1);
        assert_eq!(coalesce_count(&[None; 32]), 0);
    }

    #[test]
    fn shared_memory_roundtrip() {
        let mut s = SharedMemory::new(1024);
        s.write_word(16, 7);
        assert_eq!(s.read_word(16), 7);
        s.reset();
        assert_eq!(s.read_word(16), 0);
    }

    #[test]
    fn memory_snapshots_encode_canonically_and_round_trip() {
        // two globals with the same content but different insertion
        // histories must encode to identical bytes
        let mut a = GlobalMemory::new();
        let mut b = GlobalMemory::new();
        for addr in [0x100u64, 0x2000, 0x44] {
            a.write_word(addr, (addr as u32) ^ 7);
        }
        for addr in [0x2000u64, 0x44, 0x100] {
            b.write_word(addr, (addr as u32) ^ 7);
        }
        let enc = |m: &GlobalMemory| {
            let mut e = Enc::new();
            m.encode(&mut e);
            e.into_bytes()
        };
        assert_eq!(enc(&a), enc(&b), "sorted-key encoding is canonical");
        let bytes = enc(&a);
        let r = GlobalMemory::decode(&mut Dec::new(&bytes)).unwrap();
        assert_eq!(r, a);
        assert!(GlobalMemory::decode(&mut Dec::new(&bytes[..5])).is_err());

        let mut s = SharedMemory::new(64);
        s.write_word(8, 99);
        let mut e = Enc::new();
        s.encode(&mut e);
        let sb = e.into_bytes();
        let rs = SharedMemory::decode(&mut Dec::new(&sb), 64).unwrap();
        assert_eq!(rs.read_word(8), 99);
        assert!(SharedMemory::decode(&mut Dec::new(&sb), 128).is_err());

        let mut l = LocalMemory::new();
        l.write_word(2, 5, 16, 77);
        let mut e = Enc::new();
        l.encode(&mut e);
        let lb = e.into_bytes();
        let mut rl = LocalMemory::decode(&mut Dec::new(&lb)).unwrap();
        assert_eq!(rl.read_word(2, 5, 16), 77);
        assert_eq!(rl.accesses, l.accesses + 1);
    }

    #[test]
    fn local_memory_is_per_thread() {
        let mut l = LocalMemory::new();
        l.write_word(0, 3, 8, 11);
        l.write_word(1, 3, 8, 22);
        assert_eq!(l.read_word(0, 3, 8), 11);
        assert_eq!(l.read_word(1, 3, 8), 22);
        assert_eq!(l.read_word(0, 4, 8), 0, "unwritten lane reads zero");
        l.clear_warp(0);
        assert_eq!(l.read_word(0, 3, 8), 0);
        assert_eq!(l.read_word(1, 3, 8), 22);
    }
}
