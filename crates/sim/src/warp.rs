//! Warp state: the SIMT reconvergence stack and per-warp scheduling
//! status.

use std::fmt;

use rfv_trace::{Dec, Enc, WireError};

/// Sentinel "no reconvergence PC" (branches whose post-dominator is
/// the program exit never reconverge before the warp finishes).
pub const NO_RECONV: usize = usize::MAX;

/// One SIMT stack entry.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct StackEntry {
    /// Popping point: when `pc` reaches this, the entry is complete.
    pub reconv_pc: usize,
    /// Next PC this entry executes.
    pub pc: usize,
    /// Lanes this entry covers.
    pub mask: u32,
}

/// The per-warp SIMT reconvergence stack.
///
/// The top entry is the executing path. A divergent branch turns the
/// top into the reconvergence continuation and pushes the not-taken
/// and taken paths above it; paths pop when they reach their
/// reconvergence PC.
#[derive(Clone, PartialEq, Debug)]
pub struct SimtStack {
    entries: Vec<StackEntry>,
}

impl SimtStack {
    /// A fresh stack starting at PC 0 with the given active lanes.
    pub fn new(mask: u32) -> SimtStack {
        SimtStack {
            entries: vec![StackEntry {
                reconv_pc: NO_RECONV,
                pc: 0,
                mask,
            }],
        }
    }

    /// Whether every lane has exited.
    pub fn is_done(&self) -> bool {
        self.entries.is_empty()
    }

    /// The executing PC.
    ///
    /// # Panics
    ///
    /// Panics when the warp has finished.
    pub fn pc(&self) -> usize {
        self.entries.last().expect("warp finished").pc
    }

    /// The executing lane mask.
    ///
    /// # Panics
    ///
    /// Panics when the warp has finished.
    pub fn mask(&self) -> u32 {
        self.entries.last().expect("warp finished").mask
    }

    /// Stack depth (diagnostics).
    pub fn depth(&self) -> usize {
        self.entries.len()
    }

    fn normalize(&mut self) {
        while let Some(top) = self.entries.last() {
            if top.mask == 0 || top.pc == top.reconv_pc {
                self.entries.pop();
            } else {
                break;
            }
        }
    }

    /// Moves the executing path to `next_pc`, popping entries whose
    /// reconvergence point is reached.
    pub fn advance(&mut self, next_pc: usize) {
        if let Some(top) = self.entries.last_mut() {
            top.pc = next_pc;
        }
        self.normalize();
    }

    /// Records a divergent branch: `taken` lanes go to `target`, the
    /// rest to `fallthrough`, reconverging at `reconv_pc`.
    ///
    /// # Panics
    ///
    /// Panics when `taken` is empty or covers the whole mask — those
    /// cases are uniform and must use [`SimtStack::advance`].
    pub fn diverge(&mut self, taken: u32, target: usize, fallthrough: usize, reconv_pc: usize) {
        let top = *self.entries.last().expect("warp finished");
        assert!(
            taken != 0 && taken != top.mask,
            "diverge() requires a genuinely split mask"
        );
        assert_eq!(taken & !top.mask, 0, "taken lanes must be active");
        // the current entry becomes the reconvergence continuation
        self.entries.last_mut().expect("non-empty").pc = reconv_pc;
        self.entries.push(StackEntry {
            reconv_pc,
            pc: fallthrough,
            mask: top.mask & !taken,
        });
        self.entries.push(StackEntry {
            reconv_pc,
            pc: target,
            mask: taken,
        });
        self.normalize();
    }

    /// Deactivates `lanes` everywhere (EXIT under possibly-divergent
    /// control flow).
    pub fn exit_lanes(&mut self, lanes: u32) {
        for e in &mut self.entries {
            e.mask &= !lanes;
        }
        self.normalize();
    }

    /// The raw stack entries, bottom to top (checkpoint encoding).
    pub fn entries(&self) -> &[StackEntry] {
        &self.entries
    }

    /// Rebuilds a stack from checkpointed entries, verbatim (no
    /// normalization — the snapshot was taken from a live stack).
    pub fn from_entries(entries: Vec<StackEntry>) -> SimtStack {
        SimtStack { entries }
    }
}

impl fmt::Display for SimtStack {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "stack[")?;
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "pc={:#x} mask={:08x} r={:#x}", e.pc, e.mask, e.reconv_pc)?;
        }
        write!(f, "]")
    }
}

/// Scheduling status of a warp context.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WarpStatus {
    /// Slot not in use.
    Idle,
    /// Eligible for scheduling.
    Ready,
    /// Waiting for an outstanding memory access (two-level scheduler's
    /// pending queue).
    PendingMem,
    /// Waiting at a CTA barrier.
    AtBarrier,
    /// Registers spilled to memory by the GPU-shrink fallback; waiting
    /// to swap back in.
    SwappedOut,
    /// All lanes exited.
    Finished,
}

/// The scheduler-hot per-warp fields.
///
/// The SM keeps these in dense parallel arrays (struct-of-arrays, see
/// `Sm::warp_status` and friends) so the per-cycle scheduling scans —
/// `pick_warp`, `note_wake`, the idle-skip rescan — walk packed cache
/// lines instead of striding through full [`Warp`] structs. This
/// struct is the transport form used by checkpoint encode/decode and
/// CTA launch; it never lives in the hot loop itself.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct WarpHot {
    /// Scheduling status.
    pub status: WarpStatus,
    /// Earliest cycle the warp may issue again.
    pub next_issue_at: u64,
    /// Architected registers with outstanding (in-flight) loads,
    /// as a bitmask.
    pub outstanding: u64,
    /// Cycle the spill/reload traffic completes.
    pub swap_ready_at: u64,
}

impl WarpHot {
    /// The hot state of an unused warp slot.
    pub fn idle() -> WarpHot {
        WarpHot {
            status: WarpStatus::Idle,
            next_issue_at: 0,
            outstanding: 0,
            swap_ready_at: 0,
        }
    }
}

/// One hardware warp context (the scheduler-cold fields; the hot
/// scheduling fields live in [`WarpHot`] arrays on the SM).
#[derive(Clone, Debug)]
pub struct Warp {
    /// Hardware warp slot (index into the SM's warp table).
    pub slot: usize,
    /// Hardware CTA slot this warp belongs to.
    pub cta_slot: usize,
    /// Warp index within its CTA.
    pub warp_in_cta: usize,
    /// Grid-wide CTA index.
    pub cta_id: u32,
    /// SIMT stack.
    pub stack: SimtStack,
    /// Registers saved by a GPU-shrink spill (empty otherwise).
    pub spilled_regs: Vec<rfv_isa::ArchReg>,
}

impl Warp {
    /// An idle warp context for `slot`.
    pub fn idle(slot: usize) -> Warp {
        Warp {
            slot,
            cta_slot: 0,
            warp_in_cta: 0,
            cta_id: 0,
            stack: SimtStack::new(0),
            spilled_regs: Vec::new(),
        }
    }

    /// Serializes the full warp context (cold fields plus its hot
    /// scheduling state) for a checkpoint frame. The wire layout is
    /// byte-identical to the pre-SoA format, interleaving `hot` fields
    /// where the monolithic struct used to carry them.
    pub fn encode(&self, hot: &WarpHot, e: &mut Enc) {
        e.usize(self.slot);
        e.usize(self.cta_slot);
        e.usize(self.warp_in_cta);
        e.u32(self.cta_id);
        e.usize(self.stack.entries.len());
        for en in &self.stack.entries {
            e.usize(en.reconv_pc);
            e.usize(en.pc);
            e.u32(en.mask);
        }
        e.u8(status_tag(hot.status));
        e.u64(hot.next_issue_at);
        e.u64(hot.outstanding);
        e.usize(self.spilled_regs.len());
        for r in &self.spilled_regs {
            e.u8(r.raw());
        }
        e.u64(hot.swap_ready_at);
    }

    /// Rebuilds a warp written by [`Warp::encode`].
    ///
    /// # Errors
    ///
    /// Rejects unknown status tags and out-of-range register ids.
    pub fn decode(d: &mut Dec<'_>) -> Result<(Warp, WarpHot), WireError> {
        let slot = d.usize()?;
        let cta_slot = d.usize()?;
        let warp_in_cta = d.usize()?;
        let cta_id = d.u32()?;
        let depth = d.usize()?;
        let mut entries = Vec::with_capacity(depth.min(64));
        for _ in 0..depth {
            entries.push(StackEntry {
                reconv_pc: d.usize()?,
                pc: d.usize()?,
                mask: d.u32()?,
            });
        }
        let status = status_untag(d.u8()?)?;
        let next_issue_at = d.u64()?;
        let outstanding = d.u64()?;
        let nspill = d.usize()?;
        let mut spilled_regs = Vec::with_capacity(nspill.min(64));
        for _ in 0..nspill {
            spilled_regs.push(
                rfv_isa::ArchReg::try_new(d.u8()?)
                    .ok_or(WireError::Invalid("spilled arch reg id"))?,
            );
        }
        let swap_ready_at = d.u64()?;
        Ok((
            Warp {
                slot,
                cta_slot,
                warp_in_cta,
                cta_id,
                stack: SimtStack::from_entries(entries),
                spilled_regs,
            },
            WarpHot {
                status,
                next_issue_at,
                outstanding,
                swap_ready_at,
            },
        ))
    }
}

fn status_tag(s: WarpStatus) -> u8 {
    match s {
        WarpStatus::Idle => 0,
        WarpStatus::Ready => 1,
        WarpStatus::PendingMem => 2,
        WarpStatus::AtBarrier => 3,
        WarpStatus::SwappedOut => 4,
        WarpStatus::Finished => 5,
    }
}

fn status_untag(t: u8) -> Result<WarpStatus, WireError> {
    Ok(match t {
        0 => WarpStatus::Idle,
        1 => WarpStatus::Ready,
        2 => WarpStatus::PendingMem,
        3 => WarpStatus::AtBarrier,
        4 => WarpStatus::SwappedOut,
        5 => WarpStatus::Finished,
        _ => return Err(WireError::Invalid("warp status tag")),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const FULL: u32 = u32::MAX;

    #[test]
    fn straight_line_advance() {
        let mut s = SimtStack::new(FULL);
        assert_eq!(s.pc(), 0);
        s.advance(1);
        s.advance(2);
        assert_eq!(s.pc(), 2);
        assert_eq!(s.mask(), FULL);
        assert_eq!(s.depth(), 1);
    }

    #[test]
    fn diverge_then_reconverge() {
        let mut s = SimtStack::new(FULL);
        s.advance(3); // at the branch
        let taken = 0x0000_ffff;
        s.diverge(taken, 10, 4, 20);
        // taken path first
        assert_eq!(s.pc(), 10);
        assert_eq!(s.mask(), taken);
        assert_eq!(s.depth(), 3);
        // taken path reaches reconvergence
        s.advance(20);
        assert_eq!(s.pc(), 4, "switch to fall-through path");
        assert_eq!(s.mask(), !taken & FULL);
        s.advance(20);
        // both popped: continuation at reconv with full mask
        assert_eq!(s.pc(), 20);
        assert_eq!(s.mask(), FULL);
        assert_eq!(s.depth(), 1);
    }

    #[test]
    fn nested_divergence() {
        let mut s = SimtStack::new(FULL);
        s.diverge(0x00ff_00ff, 100, 1, 50);
        assert_eq!(s.pc(), 100);
        // inner divergence within the taken path
        s.diverge(0x0000_00ff, 200, 101, 150);
        assert_eq!(s.pc(), 200);
        assert_eq!(s.mask(), 0x0000_00ff);
        s.advance(150); // inner taken done
        assert_eq!(s.pc(), 101);
        assert_eq!(s.mask(), 0x00ff_0000);
        s.advance(150); // inner fall-through done
        assert_eq!(s.pc(), 150);
        assert_eq!(s.mask(), 0x00ff_00ff, "inner reconverged");
        s.advance(50); // outer taken done
        assert_eq!(s.mask(), 0xff00_ff00);
        s.advance(50);
        assert_eq!(s.pc(), 50);
        assert_eq!(s.mask(), FULL);
    }

    #[test]
    fn branch_directly_to_reconvergence_pops_immediately() {
        let mut s = SimtStack::new(FULL);
        // taken lanes jump straight to the reconvergence point
        s.diverge(0xffff_0000, 20, 1, 20);
        // the taken entry (pc == reconv) popped during normalization:
        // fall-through path executes first
        assert_eq!(s.pc(), 1);
        assert_eq!(s.mask(), 0x0000_ffff);
        s.advance(20);
        assert_eq!(s.pc(), 20);
        assert_eq!(s.mask(), FULL);
    }

    #[test]
    fn exit_under_divergence() {
        let mut s = SimtStack::new(FULL);
        s.diverge(0x0000_ffff, 10, 1, NO_RECONV);
        // the taken half exits
        s.exit_lanes(s.mask());
        // execution falls to the not-taken half
        assert_eq!(s.pc(), 1);
        assert_eq!(s.mask(), 0xffff_0000);
        s.exit_lanes(0xffff_0000);
        assert!(s.is_done());
    }

    #[test]
    fn partial_warp_mask() {
        let mut s = SimtStack::new(0x0000_00ff); // 8-thread tail warp
        s.diverge(0x0000_000f, 5, 1, 9);
        assert_eq!(s.mask(), 0x0000_000f);
        s.advance(9);
        assert_eq!(s.mask(), 0x0000_00f0);
        s.advance(9);
        assert_eq!(s.mask(), 0x0000_00ff);
    }

    #[test]
    #[should_panic(expected = "genuinely split")]
    fn uniform_branch_must_not_diverge() {
        let mut s = SimtStack::new(FULL);
        s.diverge(FULL, 10, 1, 20);
    }

    #[test]
    fn warp_snapshot_round_trips_stack_and_status() {
        let mut w = Warp::idle(7);
        w.cta_slot = 2;
        w.warp_in_cta = 3;
        w.cta_id = 19;
        w.stack = SimtStack::new(FULL);
        w.stack.diverge(0x0000_ffff, 10, 1, 20);
        w.spilled_regs = vec![rfv_isa::ArchReg::new(1), rfv_isa::ArchReg::new(9)];
        let hot = WarpHot {
            status: WarpStatus::PendingMem,
            next_issue_at: 1234,
            outstanding: 1u64 << rfv_isa::ArchReg::new(5).index(),
            swap_ready_at: 99,
        };
        let mut e = Enc::new();
        w.encode(&hot, &mut e);
        let bytes = e.into_bytes();
        let (r, rh) = Warp::decode(&mut Dec::new(&bytes)).unwrap();
        assert_eq!(r.slot, 7);
        assert_eq!(r.stack, w.stack);
        assert_eq!(rh, hot);
        assert_eq!(r.spilled_regs, w.spilled_regs);
        assert!(Warp::decode(&mut Dec::new(&bytes[..bytes.len() - 2])).is_err());
        // garbage input is a typed error, never a panic
        assert!(Warp::decode(&mut Dec::new(&[0xEE; 16])).is_err());
    }

    #[test]
    fn warp_hot_starts_idle() {
        let hot = WarpHot::idle();
        assert_eq!(hot.status, WarpStatus::Idle);
        assert_eq!(hot.outstanding, 0);
        assert_eq!(hot.next_issue_at, 0);
        assert_eq!(hot.swap_ready_at, 0);
    }
}
