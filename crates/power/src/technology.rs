//! Figure 9: GPU leakage-power fraction across technology nodes.
//!
//! The paper uses PTM device models inside GPUWattch to show that the
//! leakage fraction of total GPU power climbs with planar scaling,
//! that the 22 nm FinFET transition resets it to roughly the 40 nm
//! level, and that the climb then resumes from the new reset point —
//! the argument for why architecture-level leakage reduction stays
//! relevant. The factors below encode that published shape,
//! normalized to planar 40 nm.

use std::fmt;

/// A technology node from the paper's Figure 9 sweep.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum TechNode {
    /// 40 nm planar MOSFET (the evaluation baseline).
    Planar40,
    /// 32 nm planar MOSFET.
    Planar32,
    /// 22 nm planar MOSFET (hypothetical: never shipped for GPUs).
    Planar22,
    /// 22 nm FinFET.
    FinFet22,
    /// 16 nm FinFET.
    FinFet16,
    /// 10 nm FinFET.
    FinFet10,
}

impl TechNode {
    /// All nodes in the order Figure 9 plots them.
    pub fn all() -> [TechNode; 6] {
        [
            TechNode::Planar40,
            TechNode::Planar32,
            TechNode::Planar22,
            TechNode::FinFet22,
            TechNode::FinFet16,
            TechNode::FinFet10,
        ]
    }

    /// GPU leakage-power fraction, normalized to planar 40 nm.
    pub fn leakage_factor(self) -> f64 {
        match self {
            TechNode::Planar40 => 1.00,
            TechNode::Planar32 => 1.12,
            TechNode::Planar22 => 1.33,
            TechNode::FinFet22 => 1.02,
            TechNode::FinFet16 => 1.14,
            TechNode::FinFet10 => 1.28,
        }
    }

    /// Whether the node uses FinFET devices.
    pub fn is_finfet(self) -> bool {
        matches!(
            self,
            TechNode::FinFet22 | TechNode::FinFet16 | TechNode::FinFet10
        )
    }
}

impl fmt::Display for TechNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TechNode::Planar40 => "40nm(P)",
            TechNode::Planar32 => "32nm(P)",
            TechNode::Planar22 => "22nm(P)",
            TechNode::FinFet22 => "22nm(F)",
            TechNode::FinFet16 => "16nm(F)",
            TechNode::FinFet10 => "10nm(F)",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn planar_scaling_climbs() {
        assert!(TechNode::Planar32.leakage_factor() > TechNode::Planar40.leakage_factor());
        assert!(TechNode::Planar22.leakage_factor() > TechNode::Planar32.leakage_factor());
    }

    #[test]
    fn finfet_resets_then_climbs_again() {
        // the FinFET transition brings leakage back near the baseline
        assert!(TechNode::FinFet22.leakage_factor() < TechNode::Planar22.leakage_factor());
        assert!((TechNode::FinFet22.leakage_factor() - 1.0).abs() < 0.05);
        // and the climb resumes
        assert!(TechNode::FinFet16.leakage_factor() > TechNode::FinFet22.leakage_factor());
        assert!(TechNode::FinFet10.leakage_factor() > TechNode::FinFet16.leakage_factor());
    }

    #[test]
    fn classification_and_order() {
        assert!(!TechNode::Planar40.is_finfet());
        assert!(TechNode::FinFet10.is_finfet());
        assert_eq!(TechNode::all().len(), 6);
        assert_eq!(TechNode::FinFet16.to_string(), "16nm(F)");
    }
}
