//! The register-file energy model: converts simulator event counts
//! into the four-way energy breakdown of Figure 12 (dynamic, static,
//! renaming table, flag instructions).

use crate::params::{self, flag_instruction, register_bank, renaming_table, CYCLE_S};

/// Register-file activity of one simulation, as event counts.
#[derive(Clone, Copy, PartialEq, Default, Debug)]
pub struct RfActivity {
    /// Total simulated cycles.
    pub cycles: u64,
    /// Physical register file reads (warp-operand granularity).
    pub rf_reads: u64,
    /// Physical register file writes.
    pub rf_writes: u64,
    /// Renaming-table lookups.
    pub renaming_lookups: u64,
    /// Renaming-table updates (map/release).
    pub renaming_updates: u64,
    /// Metadata instructions fetched from the instruction cache and
    /// decoded (`pir` flag-cache misses plus all `pbr` fetches).
    pub flag_fetch_decodes: u64,
    /// Release-flag-cache probes.
    pub flag_cache_probes: u64,
    /// Integral of powered-on subarrays over time, in subarray-cycles
    /// (for an ungated file: `num_subarrays × cycles`).
    pub subarray_on_cycles: u64,
}

/// Register-file configuration facts the model needs.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct RfGeometry {
    /// Physical capacity as a fraction of the 128 KB baseline
    /// (1.0 = 128 KB, 0.5 = GPU-shrink 64 KB).
    pub size_fraction: f64,
    /// Whether renaming hardware exists (adds renaming-table leakage).
    pub has_renaming: bool,
    /// Whether the release-flag cache exists (adds its leakage).
    pub has_flag_cache: bool,
}

impl RfGeometry {
    /// The conventional 128 KB file without virtualization hardware.
    pub fn conventional() -> RfGeometry {
        RfGeometry {
            size_fraction: 1.0,
            has_renaming: false,
            has_flag_cache: false,
        }
    }

    /// A virtualized file at `size_fraction` of the baseline.
    pub fn virtualized(size_fraction: f64) -> RfGeometry {
        RfGeometry {
            size_fraction,
            has_renaming: true,
            has_flag_cache: true,
        }
    }
}

/// Energy totals in picojoules, by component (Figure 12's stack).
#[derive(Clone, Copy, PartialEq, Default, Debug)]
pub struct EnergyBreakdown {
    /// Register-file dynamic (access) energy.
    pub dynamic_pj: f64,
    /// Register-file leakage energy.
    pub static_pj: f64,
    /// Renaming-table access + leakage energy.
    pub renaming_pj: f64,
    /// Metadata-instruction fetch/decode + flag-cache energy.
    pub flag_pj: f64,
}

impl EnergyBreakdown {
    /// Total register-file-related energy.
    pub fn total_pj(&self) -> f64 {
        self.dynamic_pj + self.static_pj + self.renaming_pj + self.flag_pj
    }
}

/// Computes the energy breakdown for one run.
pub fn energy(activity: &RfActivity, geometry: &RfGeometry) -> EnergyBreakdown {
    let dyn_scale = params::dynamic_energy_scale(geometry.size_fraction);
    let dynamic_pj =
        (activity.rf_reads + activity.rf_writes) as f64 * register_bank::WARP_ACCESS_PJ * dyn_scale;

    // leakage: powered subarray-cycles × per-subarray leak power. The
    // subarray count is fixed (4 banks × 4), so a shrunk file has
    // proportionally smaller subarrays whose leakage scales with
    // capacity.
    let static_pj = activity.subarray_on_cycles as f64
        * register_bank::LEAK_PER_SUBARRAY_W
        * params::leakage_scale(geometry.size_fraction)
        * CYCLE_S
        * 1e12;

    let renaming_pj = if geometry.has_renaming {
        (activity.renaming_lookups + activity.renaming_updates) as f64 * renaming_table::ACCESS_PJ
            + renaming_table::LEAK_TOTAL_W * activity.cycles as f64 * CYCLE_S * 1e12
    } else {
        0.0
    };

    let flag_pj = if geometry.has_flag_cache {
        activity.flag_fetch_decodes as f64
            * (flag_instruction::FETCH_PJ + flag_instruction::DECODE_PJ)
            + activity.flag_cache_probes as f64 * flag_instruction::CACHE_ACCESS_PJ
            + flag_instruction::CACHE_LEAK_W * activity.cycles as f64 * CYCLE_S * 1e12
    } else {
        0.0
    };

    EnergyBreakdown {
        dynamic_pj,
        static_pj,
        renaming_pj,
        flag_pj,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_activity() -> RfActivity {
        RfActivity {
            cycles: 10_000,
            rf_reads: 30_000,
            rf_writes: 10_000,
            renaming_lookups: 40_000,
            renaming_updates: 5_000,
            flag_fetch_decodes: 100,
            flag_cache_probes: 2_000,
            subarray_on_cycles: 16 * 10_000,
        }
    }

    #[test]
    fn conventional_has_no_overhead_components() {
        let e = energy(&base_activity(), &RfGeometry::conventional());
        assert_eq!(e.renaming_pj, 0.0);
        assert_eq!(e.flag_pj, 0.0);
        assert!(e.dynamic_pj > 0.0 && e.static_pj > 0.0);
    }

    #[test]
    fn dynamic_energy_matches_hand_math() {
        let mut a = base_activity();
        a.rf_reads = 100;
        a.rf_writes = 0;
        let e = energy(&a, &RfGeometry::conventional());
        // 100 accesses x 8 subbanks x 4.68 pJ
        assert!((e.dynamic_pj - 100.0 * 37.44).abs() < 1e-9);
    }

    #[test]
    fn halving_the_file_cuts_both_components() {
        // same subarray count (16), but each subarray is half-sized
        let a = base_activity();
        let full = energy(&a, &RfGeometry::virtualized(1.0));
        let half = energy(&a, &RfGeometry::virtualized(0.5));
        assert!((half.dynamic_pj / full.dynamic_pj - 0.8).abs() < 1e-9);
        assert!((half.static_pj / full.static_pj - 0.5).abs() < 1e-9);
    }

    #[test]
    fn power_gating_reduces_static_energy() {
        let mut gated = base_activity();
        gated.subarray_on_cycles = 4 * 10_000; // only 4 of 16 on
        let on = energy(&base_activity(), &RfGeometry::virtualized(1.0));
        let off = energy(&gated, &RfGeometry::virtualized(1.0));
        assert!((off.static_pj / on.static_pj - 0.25).abs() < 1e-9);
    }

    #[test]
    fn overheads_are_small_next_to_rf_energy() {
        let e = energy(&base_activity(), &RfGeometry::virtualized(1.0));
        assert!(e.renaming_pj < 0.10 * e.total_pj());
        assert!(e.flag_pj < 0.02 * e.total_pj());
        assert!(e.total_pj() > 0.0);
    }

    #[test]
    fn breakdown_sums() {
        let e = energy(&base_activity(), &RfGeometry::virtualized(0.5));
        let sum = e.dynamic_pj + e.static_pj + e.renaming_pj + e.flag_pj;
        assert!((e.total_pj() - sum).abs() < 1e-9);
    }
}
