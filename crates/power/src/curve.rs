//! Figure 7: register-file power versus register-file size.
//!
//! The paper plots dynamic, leakage, and total register-file power
//! (normalized to the 128 KB file) as the file shrinks by up to 50%.
//! The curve composes the CACTI-style per-access scaling
//! ([`crate::params::dynamic_energy_scale`]) with capacity-
//! proportional leakage, using GPUWattch's ≈ ⅓ leakage share for the
//! 40 nm register file; the paper's anchors (50% size → 20% dynamic,
//! 30% total power reduction) fall out of this composition.

use crate::params;

/// Fraction of baseline register-file power that is leakage (GPUWattch
/// 40 nm register file; fits the paper's Figure 7 anchors).
pub const LEAKAGE_SHARE: f64 = 1.0 / 3.0;

/// One row of Figure 7.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct PowerPoint {
    /// Register file size reduction, percent (0–50).
    pub reduction_pct: f64,
    /// Dynamic power, percent of the 128 KB baseline.
    pub dynamic_pct: f64,
    /// Leakage power, percent of the baseline.
    pub leakage_pct: f64,
    /// Total register-file power, percent of the baseline.
    pub total_pct: f64,
}

/// Evaluates the Figure 7 curve at one size reduction (in percent).
///
/// # Panics
///
/// Panics when `reduction_pct` is outside `[0, 100)`.
pub fn power_at(reduction_pct: f64) -> PowerPoint {
    assert!(
        (0.0..100.0).contains(&reduction_pct),
        "size reduction {reduction_pct}% out of range"
    );
    let size_fraction = 1.0 - reduction_pct / 100.0;
    let dynamic = params::dynamic_energy_scale(size_fraction);
    let leakage = params::leakage_scale(size_fraction);
    let total = (1.0 - LEAKAGE_SHARE) * dynamic + LEAKAGE_SHARE * leakage;
    PowerPoint {
        reduction_pct,
        dynamic_pct: dynamic * 100.0,
        leakage_pct: leakage * 100.0,
        total_pct: total * 100.0,
    }
}

/// The sweep the paper plots: 0–50% in 5% steps.
pub fn figure7_sweep() -> Vec<PowerPoint> {
    (0..=10).map(|i| power_at(i as f64 * 5.0)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_anchors_hold() {
        let half = power_at(50.0);
        assert!((half.dynamic_pct - 80.0).abs() < 1e-9, "20% dynamic cut");
        assert!((half.leakage_pct - 50.0).abs() < 1e-9);
        assert!((half.total_pct - 70.0).abs() < 1e-9, "30% total power cut");
        let full = power_at(0.0);
        assert!((full.total_pct - 100.0).abs() < 1e-9);
    }

    #[test]
    fn curve_is_monotonic() {
        let sweep = figure7_sweep();
        assert_eq!(sweep.len(), 11);
        for w in sweep.windows(2) {
            assert!(w[1].total_pct < w[0].total_pct);
            assert!(w[1].dynamic_pct <= w[0].dynamic_pct);
            assert!(w[1].leakage_pct < w[0].leakage_pct);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_full_shrink() {
        power_at(100.0);
    }
}
