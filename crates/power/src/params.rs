//! Energy and power parameters (paper Table 2, CACTI v5.3 @ 40 nm,
//! plus structure geometry from §7 and GPUWattch-derived constants).

/// Supply voltage used for the 40 nm estimates.
pub const VDD_V: f64 = 0.96;

/// SM clock frequency (Fermi-class, used to convert leakage power to
/// per-cycle energy).
pub const CLOCK_HZ: f64 = 700.0e6;

/// Seconds per core cycle.
pub const CYCLE_S: f64 = 1.0 / CLOCK_HZ;

/// Renaming table parameters (Table 2, left column: 1 KB, 4 banks).
pub mod renaming_table {
    /// Energy per access, picojoules.
    pub const ACCESS_PJ: f64 = 1.14;
    /// Leakage power per bank, milliwatts.
    pub const LEAK_PER_BANK_MW: f64 = 0.27;
    /// Number of banks.
    pub const BANKS: usize = 4;
    /// Total leakage, watts.
    pub const LEAK_TOTAL_W: f64 = LEAK_PER_BANK_MW * BANKS as f64 * 1e-3;
    /// Structure size in bytes.
    pub const SIZE_BYTES: usize = 1024;
}

/// Register bank parameters (Table 2, right column: one 4 KB
/// sub-bank; the 128 KB file comprises 4 banks × 8 sub-banks).
pub mod register_bank {
    /// Energy per sub-bank access, picojoules.
    pub const ACCESS_PJ: f64 = 4.68;
    /// Leakage power per 4 KB sub-bank, milliwatts.
    pub const LEAK_PER_SUBBANK_MW: f64 = 2.8;
    /// Sub-banks accessed by one warp-wide operand (32 lanes across
    /// eight 4-lane SIMT clusters).
    pub const SUBBANKS_PER_WARP_ACCESS: usize = 8;
    /// Energy of one warp-register access (all lanes), picojoules.
    pub const WARP_ACCESS_PJ: f64 = ACCESS_PJ * SUBBANKS_PER_WARP_ACCESS as f64;
    /// Sub-banks in the full 128 KB file.
    pub const SUBBANKS_BASELINE: usize = 32;
    /// 4 KB sub-banks per power-gating subarray (a subarray is a
    /// quarter of a 32 KB bank = 8 KB).
    pub const SUBBANKS_PER_SUBARRAY: usize = 2;
    /// Leakage power per power-gating subarray, watts.
    pub const LEAK_PER_SUBARRAY_W: f64 = LEAK_PER_SUBBANK_MW * SUBBANKS_PER_SUBARRAY as f64 * 1e-3;
}

/// Metadata (release flag) instruction handling costs. The paper
/// measures fetch/decode energy with GPUWattch; these are
/// representative Fermi-class per-instruction front-end energies
/// (documented as estimates in DESIGN.md).
pub mod flag_instruction {
    /// Instruction-cache fetch energy per metadata instruction,
    /// picojoules.
    pub const FETCH_PJ: f64 = 18.0;
    /// Decode energy per metadata instruction, picojoules.
    pub const DECODE_PJ: f64 = 9.0;
    /// Release-flag-cache probe/access energy (a 68 B direct-mapped
    /// structure), picojoules.
    pub const CACHE_ACCESS_PJ: f64 = 0.08;
    /// Release-flag-cache leakage, watts (negligible but modeled).
    pub const CACHE_LEAK_W: f64 = 2.0e-6;
}

/// CACTI-style scaling of per-access dynamic energy with array size:
/// halving an SRAM array shortens word/bit lines, cutting per-access
/// energy ≈ 20% (this reproduces Figure 7's "RF Dyn Power" slope).
///
/// `size_fraction` is the remaining fraction of the baseline capacity
/// (1.0 = 128 KB, 0.5 = 64 KB).
pub fn dynamic_energy_scale(size_fraction: f64) -> f64 {
    assert!(
        (0.0..=1.0).contains(&size_fraction),
        "size fraction {size_fraction} out of range"
    );
    1.0 - 0.4 * (1.0 - size_fraction)
}

/// Fraction of total GPU power attributable to the register file
/// (paper §8.2: "responsible for a large fraction of total power in
/// GPUs (e.g., 15% from our estimation)").
pub const RF_SHARE_OF_GPU_POWER: f64 = 0.15;

/// Converts a register-file energy saving (fraction of RF energy)
/// into the whole-GPU power saving it implies.
pub fn gpu_level_saving(rf_saving_fraction: f64) -> f64 {
    rf_saving_fraction * RF_SHARE_OF_GPU_POWER
}

/// Leakage scales linearly with powered capacity.
pub fn leakage_scale(size_fraction: f64) -> f64 {
    assert!(
        (0.0..=1.0).contains(&size_fraction),
        "size fraction {size_fraction} out of range"
    );
    size_fraction
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_reproduced() {
        assert!((renaming_table::ACCESS_PJ - 1.14).abs() < 1e-12);
        assert!((register_bank::ACCESS_PJ - 4.68).abs() < 1e-12);
        assert!((renaming_table::LEAK_TOTAL_W - 1.08e-3).abs() < 1e-9);
        assert!((register_bank::LEAK_PER_SUBARRAY_W - 5.6e-3).abs() < 1e-9);
    }

    #[test]
    fn geometry_consistent_with_128kb() {
        // 32 sub-banks x 4 KB = 128 KB
        assert_eq!(register_bank::SUBBANKS_BASELINE * 4, 128);
        // 16 subarrays x 2 sub-banks = 32 sub-banks
        assert_eq!(16 * register_bank::SUBBANKS_PER_SUBARRAY, 32);
    }

    #[test]
    fn scaling_matches_figure7_anchors() {
        assert!((dynamic_energy_scale(1.0) - 1.0).abs() < 1e-12);
        assert!(
            (dynamic_energy_scale(0.5) - 0.8).abs() < 1e-12,
            "50% size -> 20% dyn cut"
        );
        assert!((leakage_scale(0.5) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn scaling_rejects_bad_fraction() {
        dynamic_energy_scale(1.5);
    }

    #[test]
    fn gpu_level_context() {
        // the paper's headline: 42% RF energy saving ≈ 6.3% GPU power
        assert!((gpu_level_saving(0.42) - 0.063).abs() < 1e-9);
    }
}
