//! # rfv-power — register-file energy modelling
//!
//! A GPUWattch/CACTI-style energy model for the register file of
//! *GPU Register File Virtualization* (MICRO-48, 2015):
//!
//! * [`params`] — the paper's Table 2 constants (40 nm, CACTI v5.3)
//!   and CACTI-style size scaling;
//! * [`model`] — event counts → the Figure 12 four-way energy
//!   breakdown (dynamic / static / renaming table / flag
//!   instructions);
//! * [`curve`] — the Figure 7 power-versus-size curve;
//! * [`technology`] — the Figure 9 leakage-versus-node factors
//!   (planar climb, FinFET reset).
//!
//! ```
//! use rfv_power::model::{energy, RfActivity, RfGeometry};
//!
//! let activity = RfActivity {
//!     cycles: 1_000,
//!     rf_reads: 3_000,
//!     rf_writes: 1_000,
//!     subarray_on_cycles: 16 * 1_000,
//!     ..RfActivity::default()
//! };
//! let breakdown = energy(&activity, &RfGeometry::conventional());
//! assert!(breakdown.dynamic_pj > 0.0);
//! ```

pub mod curve;
pub mod model;
pub mod params;
pub mod technology;

pub use curve::{figure7_sweep, power_at, PowerPoint};
pub use model::{energy, EnergyBreakdown, RfActivity, RfGeometry};
pub use technology::TechNode;
