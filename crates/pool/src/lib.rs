//! Zero-dependency persistent job pool.
//!
//! The figure/table sweeps are embarrassingly parallel: every
//! (workload, configuration) run is independent, and the paper's
//! evaluation replays hundreds of them. [`par_map`] fans such runs
//! out across worker threads while returning results **in input
//! order**, so table rows and CSV files are byte-identical to a
//! sequential run.
//!
//! Panics are contained per job: [`par_map_catching`] catches a
//! panicking job and returns it as a typed [`JobError`] row while
//! every other job still completes — one poisoned (workload, config)
//! cell cannot take a whole sweep down. [`par_map`] is built on top
//! and re-raises the first failure only after all jobs have finished.
//!
//! Worker threads are spawned **once per process** into a shared
//! [`Pool`] and reused by every subsequent `par_map` call — the
//! per-run scoped-thread spawn the original implementation paid (one
//! `clone`+spawn+join per worker per sweep cell batch) was the first
//! scalability cliff on the road to datacenter-scale sweeps. Daemons
//! that need dedicated capacity (e.g. `rfvd`'s job runners) create
//! their own [`Pool`] and either [`Pool::spawn`] owned tasks or
//! [`Pool::broadcast`] borrowed closures.
//!
//! The worker count comes from, in priority order: an explicit
//! [`set_jobs`] call (the binaries' `--jobs N` flag), the `RFV_JOBS`
//! environment variable, and finally the machine's available
//! parallelism. One worker short-circuits to a plain sequential map.

use std::cell::Cell;
use std::collections::VecDeque;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Global worker-count override; `0` means "not set".
static JOBS: AtomicUsize = AtomicUsize::new(0);

/// Fixes the pool's worker count for the rest of the process (the
/// `--jobs N` flag). Values below one are clamped to one.
pub fn set_jobs(n: usize) {
    JOBS.store(n.max(1), Ordering::Relaxed);
}

/// The worker count [`par_map`] will use: [`set_jobs`] if called,
/// else [`default_jobs`].
pub fn jobs() -> usize {
    match JOBS.load(Ordering::Relaxed) {
        0 => default_jobs(),
        n => n,
    }
}

/// The environment-derived default worker count: `RFV_JOBS` when set
/// to a positive integer, else the machine's available parallelism.
/// An unparsable `RFV_JOBS` earns one stderr warning naming the bad
/// value instead of being silently ignored.
pub fn default_jobs() -> usize {
    match std::env::var("RFV_JOBS") {
        Err(_) => machine_parallelism(),
        Ok(raw) => parse_jobs(&raw).unwrap_or_else(|| {
            eprintln!(
                "warning: RFV_JOBS={raw:?} is not a positive integer; \
                 using machine parallelism"
            );
            machine_parallelism()
        }),
    }
}

/// Parses an `RFV_JOBS`-style value: a positive integer (surrounding
/// whitespace tolerated), else `None`.
pub fn parse_jobs(raw: &str) -> Option<usize> {
    raw.trim().parse().ok().filter(|&n| n > 0)
}

fn machine_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// One job's failure inside [`par_map_catching`]: the job panicked and
/// the panic was contained to its own result slot.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct JobError {
    /// Input-slice index of the failed job.
    pub index: usize,
    /// The panic payload, rendered to text.
    pub message: String,
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job {} panicked: {}", self.index, self.message)
    }
}

impl std::error::Error for JobError {}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic of unknown type".to_string()
    }
}

// ------------------------------------------------ persistent workers

type Task = Box<dyn FnOnce() + Send + 'static>;

struct PoolShared {
    queue: Mutex<PoolQueue>,
    ready: Condvar,
}

struct PoolQueue {
    tasks: VecDeque<Task>,
    closed: bool,
}

thread_local! {
    /// Set while the current thread is a pool worker executing a task,
    /// so a nested `par_map` degrades to the sequential path instead
    /// of submitting work it would then deadlock waiting for.
    static IN_POOL_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// A fixed set of long-lived worker threads executing queued tasks.
///
/// Unlike a scoped-thread fan-out, the threads survive across calls:
/// a sweep that issues thousands of `par_map` batches reuses the same
/// OS threads throughout. Dropping the pool closes the queue, lets
/// queued tasks finish, and joins every worker.
pub struct Pool {
    shared: Arc<PoolShared>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl Pool {
    /// Spawns a pool of `workers` threads (clamped to at least one).
    pub fn new(workers: usize) -> Pool {
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(PoolQueue {
                tasks: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
        });
        let handles = (0..workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("rfv-pool-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn pool worker")
            })
            .collect();
        Pool { shared, handles }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Enqueues an owned task for execution on some worker. A task
    /// that panics is contained to itself (the worker survives).
    pub fn spawn(&self, task: impl FnOnce() + Send + 'static) {
        let mut q = self.shared.queue.lock().expect("pool queue poisoned");
        assert!(!q.closed, "spawn on a closed pool");
        q.tasks.push_back(Box::new(task));
        drop(q);
        self.shared.ready.notify_one();
    }

    /// Runs `copies` instances of `work` on the pool and returns once
    /// every instance has finished — the persistent-pool equivalent of
    /// spawning `copies` scoped threads. `work` may borrow from the
    /// caller's stack; the latch below guarantees those borrows end
    /// before this function returns.
    pub fn broadcast(&self, copies: usize, work: &(dyn Fn() + Sync)) {
        if copies == 0 {
            return;
        }
        let latch = Arc::new(Latch::new(copies));
        // SAFETY: lifetime erasure only. Every submitted task holds a
        // clone of `latch` and decrements it when it drops (even on
        // panic, via LatchGuard), and we block on `latch.wait()` until
        // all `copies` decrements have happened — so no worker can
        // touch `work` after this frame returns, which is exactly the
        // guarantee std::thread::scope provides.
        let work: &'static (dyn Fn() + Sync) = unsafe { std::mem::transmute(work) };
        {
            let mut q = self.shared.queue.lock().expect("pool queue poisoned");
            assert!(!q.closed, "broadcast on a closed pool");
            for _ in 0..copies {
                let latch = Arc::clone(&latch);
                q.tasks.push_back(Box::new(move || {
                    let _done = LatchGuard(&latch);
                    work();
                }));
            }
        }
        self.shared.ready.notify_all();
        latch.wait();
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        {
            let mut q = self.shared.queue.lock().expect("pool queue poisoned");
            q.closed = true;
        }
        self.shared.ready.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &PoolShared) {
    loop {
        let task = {
            let mut q = shared.queue.lock().expect("pool queue poisoned");
            loop {
                if let Some(t) = q.tasks.pop_front() {
                    break t;
                }
                if q.closed {
                    return;
                }
                q = shared.ready.wait(q).expect("pool queue poisoned");
            }
        };
        IN_POOL_WORKER.with(|f| f.set(true));
        // contain task panics to the task: par_map already catches per
        // item, so an unwind reaching here is a harness bug — but it
        // must not take the worker thread (and the pool) down with it
        let _ = catch_unwind(AssertUnwindSafe(task));
        IN_POOL_WORKER.with(|f| f.set(false));
    }
}

/// Countdown latch: `wait` blocks until `count_down` has been called
/// the configured number of times.
struct Latch {
    remaining: Mutex<usize>,
    done: Condvar,
}

impl Latch {
    fn new(n: usize) -> Latch {
        Latch {
            remaining: Mutex::new(n),
            done: Condvar::new(),
        }
    }

    fn count_down(&self) {
        let mut r = self.remaining.lock().expect("latch poisoned");
        *r -= 1;
        if *r == 0 {
            self.done.notify_all();
        }
    }

    fn wait(&self) {
        let mut r = self.remaining.lock().expect("latch poisoned");
        while *r > 0 {
            r = self.done.wait(r).expect("latch poisoned");
        }
    }
}

/// Decrements its latch on drop, so a panicking broadcast task still
/// releases the waiting caller.
struct LatchGuard<'a>(&'a Latch);

impl Drop for LatchGuard<'_> {
    fn drop(&mut self) {
        self.0.count_down();
    }
}

/// The process-wide pool `par_map` runs on, created on first use and
/// sized to the larger of the machine parallelism and the configured
/// job count (a `par_map` call asking for fewer workers simply
/// submits fewer runner tasks).
fn global() -> &'static Pool {
    static GLOBAL: OnceLock<Pool> = OnceLock::new();
    GLOBAL.get_or_init(|| Pool::new(machine_parallelism().max(jobs())))
}

/// Maps `f` over `items` on the pool's workers (see [`jobs`]),
/// preserving input order in the returned vector.
///
/// # Panics
///
/// Re-raises the first job panic — but only after every other job has
/// completed, so no work is lost to an unrelated failure.
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    par_map_with(jobs(), items, f)
}

/// [`par_map`] with an explicit worker count.
///
/// # Panics
///
/// See [`par_map`].
pub fn par_map_with<T, U, F>(workers: usize, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    par_map_catching_with(workers, items, f)
        .into_iter()
        .map(|r| r.unwrap_or_else(|e| panic!("{e}")))
        .collect()
}

/// [`par_map`] with per-job panic isolation: a panicking job yields
/// `Err(JobError)` in its slot while all other jobs run to completion.
pub fn par_map_catching<T, U, F>(items: &[T], f: F) -> Vec<Result<U, JobError>>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    par_map_catching_with(jobs(), items, f)
}

/// [`par_map_catching`] with an explicit worker count.
pub fn par_map_catching_with<T, U, F>(workers: usize, items: &[T], f: F) -> Vec<Result<U, JobError>>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let workers = workers.min(items.len()).max(1);
    let catching = |i: usize, item: &T| -> Result<U, JobError> {
        catch_unwind(AssertUnwindSafe(|| f(item))).map_err(|payload| JobError {
            index: i,
            message: panic_message(payload.as_ref()),
        })
    };
    // sequential fallback: trivial batches, and calls made from inside
    // a pool worker (whose runner tasks could otherwise wait on pool
    // capacity the caller itself is occupying)
    if workers == 1 || IN_POOL_WORKER.with(Cell::get) {
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| catching(i, item))
            .collect();
    }
    // work-stealing by atomic cursor: runner tasks on the persistent
    // pool pull the next index and write the result into its slot, so
    // output order is input order regardless of scheduling
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Result<U, JobError>>>> =
        items.iter().map(|_| Mutex::new(None)).collect();
    global().broadcast(workers, &|| loop {
        let i = next.fetch_add(1, Ordering::Relaxed);
        let Some(item) = items.get(i) else { break };
        let result = catching(i, item);
        *slots[i].lock().expect("result slot poisoned") = Some(result);
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("worker filled every slot")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..100).collect();
        for workers in [1, 2, 7, 64] {
            let out = par_map_with(workers, &items, |&i| i * 3);
            assert_eq!(out, items.iter().map(|i| i * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn handles_empty_and_single_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map_with(8, &empty, |x| *x).is_empty());
        assert_eq!(par_map_with(8, &[42u32], |x| *x + 1), vec![43]);
    }

    #[test]
    fn uneven_work_still_lands_in_order() {
        // later items finish first; order must still hold
        let items: Vec<u64> = (0..16).rev().collect();
        let out = par_map_with(4, &items, |&n| {
            std::thread::sleep(std::time::Duration::from_millis(n / 4));
            n
        });
        assert_eq!(out, items);
    }

    #[test]
    fn default_jobs_is_positive() {
        assert!(default_jobs() >= 1);
        assert!(jobs() >= 1);
    }

    #[test]
    fn jobs_env_values_parse_strictly() {
        assert_eq!(parse_jobs("4"), Some(4));
        assert_eq!(parse_jobs(" 16 "), Some(16));
        for garbage in ["abc", "", "0", "-2", "3.5", "4x", "1e3"] {
            assert_eq!(parse_jobs(garbage), None, "{garbage:?} must be rejected");
        }
    }

    #[test]
    fn one_panicking_job_does_not_poison_the_sweep() {
        let items: Vec<u32> = (0..24).collect();
        for workers in [1, 4] {
            let out = par_map_catching_with(workers, &items, |&i| {
                assert!(i != 13, "rigged failure on item 13");
                i * 2
            });
            assert_eq!(out.len(), items.len());
            for (i, r) in out.iter().enumerate() {
                if i == 13 {
                    let e = r.as_ref().expect_err("item 13 fails");
                    assert_eq!(e.index, 13);
                    assert!(e.message.contains("rigged failure"), "{}", e.message);
                } else {
                    assert_eq!(*r.as_ref().expect("other items succeed"), i as u32 * 2);
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "job 3 panicked")]
    fn par_map_reraises_after_all_jobs_finish() {
        let items: Vec<u32> = (0..8).collect();
        let _ = par_map_with(2, &items, |&i| {
            assert!(i != 3, "boom");
            i
        });
    }

    #[test]
    fn par_map_reuses_one_persistent_thread_set() {
        use std::collections::HashSet;
        use std::thread::ThreadId;
        // five batches through the global pool must never touch more
        // distinct threads than the pool owns; the old scoped-spawn
        // implementation would have created 5 * workers fresh threads
        let mut seen: HashSet<ThreadId> = HashSet::new();
        let items: Vec<usize> = (0..32).collect();
        for _ in 0..5 {
            let ids = par_map_with(4, &items, |_| {
                std::thread::sleep(std::time::Duration::from_micros(200));
                std::thread::current().id()
            });
            seen.extend(ids);
        }
        assert!(
            seen.len() <= global().workers(),
            "{} distinct threads for a {}-thread pool",
            seen.len(),
            global().workers()
        );
    }

    #[test]
    fn nested_par_map_degrades_to_sequential_without_deadlock() {
        let outer: Vec<u32> = (0..4).collect();
        let out = par_map_with(2, &outer, |&i| {
            let inner: Vec<u32> = (0..4).collect();
            par_map_with(4, &inner, |&j| i * 10 + j).iter().sum::<u32>()
        });
        assert_eq!(out, vec![6, 46, 86, 126]);
    }

    #[test]
    fn private_pool_spawn_runs_tasks_and_survives_panics() {
        let pool = Pool::new(2);
        let hits = Arc::new(AtomicUsize::new(0));
        pool.spawn(|| panic!("contained"));
        for _ in 0..8 {
            let hits = Arc::clone(&hits);
            pool.spawn(move || {
                hits.fetch_add(1, Ordering::Relaxed);
            });
        }
        // dropping joins: every queued task ran despite the panic
        drop(pool);
        assert_eq!(hits.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn broadcast_waits_for_all_copies_and_contains_panics() {
        let pool = Pool::new(3);
        let hits = AtomicUsize::new(0);
        pool.broadcast(6, &|| {
            let n = hits.fetch_add(1, Ordering::Relaxed);
            assert!(n != 2, "one copy panics");
        });
        // returning proves the latch released despite the panic
        assert_eq!(hits.load(Ordering::Relaxed), 6);
        pool.broadcast(0, &|| unreachable!("zero copies never run"));
    }
}
