//! Minimal JSON support: string escaping for the writers and a small
//! recursive-descent parser used by tests (and the CLI) to validate
//! emitted documents. No external dependencies.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Escapes `s` into `out` as the *contents* of a JSON string (no
/// surrounding quotes).
pub fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// A quoted, escaped JSON string literal.
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    escape_into(&mut out, s);
    out.push('"');
    out
}

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// The object map, if this is an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Member lookup on objects (`None` on non-objects/missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_obj().and_then(|m| m.get(key))
    }
}

/// Parses a complete JSON document.
pub fn parse(input: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            // surrogate pairs are not produced by our
                            // writers; map them to the replacement char
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {:?}", other.map(|c| c as char))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // consume one UTF-8 scalar
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8 in string")?;
                    let c = rest.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || c == b'.' || c == b'e' || c == b'E' || c == b'+' || c == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| "bad number")?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_round_trip() {
        let original = "a\"b\\c\nd\te\u{1}f";
        let quoted = quote(original);
        let parsed = parse(&quoted).unwrap();
        assert_eq!(parsed.as_str(), Some(original));
    }

    #[test]
    fn parses_nested_document() {
        let v = parse(r#"{"a": [1, 2.5, -3], "b": {"c": true, "d": null}, "e": "x"}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[1].as_num(), Some(2.5));
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Value::Bool(true)));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&Value::Null));
        assert_eq!(v.get("e").unwrap().as_str(), Some("x"));
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("{} x").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("\"unterminated").is_err());
    }
}
