//! Trace sinks: where events go.
//!
//! The simulator threads a [`Sink`] (enum dispatch — no virtual call,
//! no generic explosion through the `Sm`/`Gpu` structs) through its hot
//! loops. Emission sites follow the pattern
//!
//! ```
//! use rfv_trace::{Sink, TraceEvent, TraceKind};
//!
//! let mut sink = Sink::ring(64);
//! let (cycle, sm, slot) = (12, 0, 3);
//! if sink.enabled() {
//!     sink.emit(TraceEvent::warp_event(
//!         cycle,
//!         sm,
//!         slot,
//!         TraceKind::Issue {
//!             pc: 0x40,
//!             active_lanes: 32,
//!         },
//!     ));
//! }
//! assert_eq!(sink.events().len(), 1);
//! ```
//!
//! so that with [`Sink::Noop`] the entire site reduces to one
//! discriminant test and the event payload is never constructed. The
//! `trace_overhead` bench in `crates/bench` holds this to <2% on a
//! Table 1 workload.

use crate::event::TraceEvent;

/// A consumer of trace events.
///
/// `enabled` exists so callers can skip building the event payload
/// entirely when the sink discards everything; implementations must
/// tolerate `emit` being called regardless.
pub trait TraceSink {
    /// Whether events are being recorded. Callers should gate event
    /// construction on this.
    fn enabled(&self) -> bool {
        true
    }

    /// Record one event.
    fn emit(&mut self, ev: TraceEvent);
}

/// Discards everything; `enabled()` is `false` so instrumented code
/// compiles down to a branch around the emission site.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopSink;

impl TraceSink for NoopSink {
    fn enabled(&self) -> bool {
        false
    }

    #[inline(always)]
    fn emit(&mut self, _ev: TraceEvent) {}
}

/// A bounded in-memory capture. When full it keeps the *oldest*
/// `capacity` events and counts the rest in [`RingSink::dropped`] —
/// for the simulator the interesting structure (launch, first
/// allocations, gating warm-up) is at the front, and keeping a prefix
/// makes captures deterministic under capacity changes.
#[derive(Clone, Debug)]
pub struct RingSink {
    buf: Vec<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl RingSink {
    /// A sink holding at most `capacity` events (min 1).
    pub fn with_capacity(capacity: usize) -> RingSink {
        let capacity = capacity.max(1);
        RingSink {
            buf: Vec::with_capacity(capacity.min(4096)),
            capacity,
            dropped: 0,
        }
    }

    /// Rebuilds a sink from checkpointed parts: the captured prefix,
    /// the original capacity, and the drop count. Emission continues
    /// exactly where the snapshotted sink left off (the ring keeps the
    /// *oldest* `capacity` events, so a restored sink refuses new
    /// events iff the original would have).
    pub fn from_parts(buf: Vec<TraceEvent>, capacity: usize, dropped: u64) -> RingSink {
        RingSink {
            buf,
            capacity: capacity.max(1),
            dropped,
        }
    }

    /// Events recorded, in emission order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.buf
    }

    /// The sink's capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of events discarded because the sink was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Consumes the sink, returning the captured events.
    pub fn into_events(self) -> Vec<TraceEvent> {
        self.buf
    }
}

impl TraceSink for RingSink {
    #[inline]
    fn emit(&mut self, ev: TraceEvent) {
        if self.buf.len() < self.capacity {
            self.buf.push(ev);
        } else {
            self.dropped += 1;
        }
    }
}

/// Enum-dispatched sink the simulator owns. Avoids making every
/// simulator struct generic over a sink type while keeping the
/// disabled path branch-cheap.
#[derive(Clone, Debug, Default)]
pub enum Sink {
    /// Tracing off; all emission sites reduce to a discriminant test.
    #[default]
    Noop,
    /// Bounded capture for later Chrome-JSON export.
    Ring(RingSink),
}

impl Sink {
    /// A bounded capturing sink.
    pub fn ring(capacity: usize) -> Sink {
        Sink::Ring(RingSink::with_capacity(capacity))
    }

    /// Whether emission sites should construct events.
    #[inline(always)]
    pub fn enabled(&self) -> bool {
        !matches!(self, Sink::Noop)
    }

    /// Record one event.
    #[inline]
    pub fn emit(&mut self, ev: TraceEvent) {
        match self {
            Sink::Noop => {}
            Sink::Ring(r) => r.emit(ev),
        }
    }

    /// The captured events, if this sink captures any.
    pub fn events(&self) -> &[TraceEvent] {
        match self {
            Sink::Noop => &[],
            Sink::Ring(r) => r.events(),
        }
    }

    /// Consumes the sink, returning captured events (empty for noop).
    pub fn into_events(self) -> Vec<TraceEvent> {
        match self {
            Sink::Noop => Vec::new(),
            Sink::Ring(r) => r.into_events(),
        }
    }
}

impl TraceSink for Sink {
    fn enabled(&self) -> bool {
        Sink::enabled(self)
    }

    fn emit(&mut self, ev: TraceEvent) {
        Sink::emit(self, ev)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceKind;

    fn ev(cycle: u64) -> TraceEvent {
        TraceEvent::sm_event(cycle, 0, TraceKind::CtaLaunch { cta: cycle as u32 })
    }

    #[test]
    fn noop_reports_disabled_and_discards() {
        let mut s = NoopSink;
        assert!(!s.enabled());
        s.emit(ev(1));
        let mut e = Sink::Noop;
        assert!(!Sink::enabled(&e));
        e.emit(ev(2));
        assert!(e.events().is_empty());
    }

    #[test]
    fn ring_keeps_prefix_and_counts_drops() {
        let mut r = RingSink::with_capacity(3);
        for c in 0..5 {
            r.emit(ev(c));
        }
        assert_eq!(r.events().len(), 3);
        assert_eq!(r.dropped(), 2);
        assert_eq!(r.events()[0].cycle, 0);
        assert_eq!(r.events()[2].cycle, 2);
    }

    #[test]
    fn restored_ring_continues_where_snapshot_stopped() {
        // run a ring to saturation, snapshot its parts mid-stream,
        // rebuild, and check the rebuilt sink behaves identically
        let mut orig = RingSink::with_capacity(3);
        for c in 0..2 {
            orig.emit(ev(c));
        }
        let mut restored =
            RingSink::from_parts(orig.events().to_vec(), orig.capacity(), orig.dropped());
        for c in 2..6 {
            orig.emit(ev(c));
            restored.emit(ev(c));
        }
        assert_eq!(orig.events(), restored.events());
        assert_eq!(orig.dropped(), restored.dropped());
    }

    #[test]
    fn enum_sink_routes_to_ring() {
        let mut s = Sink::ring(8);
        assert!(s.enabled());
        s.emit(ev(7));
        assert_eq!(s.events().len(), 1);
        assert_eq!(s.into_events()[0].cycle, 7);
    }
}
