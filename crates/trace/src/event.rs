//! The typed trace-event vocabulary.
//!
//! Events are small `Copy` values: a header (cycle, SM, warp slot) plus
//! a [`TraceKind`] payload. Keeping them `Copy` and string-free means a
//! [`crate::RingSink`] capture is a flat memcpy-able buffer and the
//! disabled path never allocates.

/// Why a warp could not issue this cycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum StallReason {
    /// No instruction available (warp finished or fetch-limited).
    NoInstr,
    /// Waiting on an operand scoreboard dependency.
    Scoreboard,
    /// Waiting at a CTA barrier.
    Barrier,
    /// Waiting on an outstanding memory access.
    Memory,
    /// Register allocation failed: no free physical register.
    NoReg,
    /// Destination subarray is power-gated and still waking up.
    GateWakeup,
    /// The CTA throttle restricted issue to another CTA.
    Throttled,
}

impl StallReason {
    /// Stable lower-case label used in trace output and metric names.
    pub fn label(self) -> &'static str {
        match self {
            StallReason::NoInstr => "no_instr",
            StallReason::Scoreboard => "scoreboard",
            StallReason::Barrier => "barrier",
            StallReason::Memory => "memory",
            StallReason::NoReg => "no_reg",
            StallReason::GateWakeup => "gate_wakeup",
            StallReason::Throttled => "throttled",
        }
    }
}

/// Lifecycle phase of a memory transaction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MemPhase {
    /// Issued by a warp; segments counted after coalescing.
    Issue,
    /// Merged into an existing MSHR entry instead of going to DRAM.
    MshrMerge,
    /// Data returned and the warp was woken.
    Complete,
}

impl MemPhase {
    /// Stable lower-case label used in trace output.
    pub fn label(self) -> &'static str {
        match self {
            MemPhase::Issue => "issue",
            MemPhase::MshrMerge => "mshr_merge",
            MemPhase::Complete => "complete",
        }
    }
}

/// Which microarchitectural fault was injected (mirrors the
/// `rfv-faults` kind vocabulary; both crates are zero-dependency, so
/// the label set is duplicated here the same way [`StallReason`]
/// duplicates scheduler vocabulary).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultLabel {
    /// A live register was released early.
    PrematureRelease,
    /// A due release was swallowed.
    DroppedRelease,
    /// A pir flag bit was flipped at decode.
    PirFlip,
    /// A pbr release decision was flipped at decode.
    PbrFlip,
    /// A renaming-table entry was corrupted.
    RenameCorrupt,
    /// A stale flag-cache hit was served.
    StaleFlagHit,
    /// A spill write was dropped during swap-out.
    SpillLoss,
}

impl FaultLabel {
    /// Stable lower-case label used in trace output.
    pub fn label(self) -> &'static str {
        match self {
            FaultLabel::PrematureRelease => "premature_release",
            FaultLabel::DroppedRelease => "dropped_release",
            FaultLabel::PirFlip => "pir_flip",
            FaultLabel::PbrFlip => "pbr_flip",
            FaultLabel::RenameCorrupt => "rename_corrupt",
            FaultLabel::StaleFlagHit => "stale_flag_hit",
            FaultLabel::SpillLoss => "spill_loss",
        }
    }
}

/// What happened. Field conventions: `reg` is the architectural index,
/// `phys` the physical register id, `bank` the operand-collector bank.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TraceKind {
    /// A physical register was allocated for an architectural write.
    RegAlloc { reg: u16, phys: u32, bank: u8 },
    /// A physical register was returned to the free pool.
    RegRelease { reg: u16, phys: u32, bank: u8 },
    /// An architectural register was renamed to a new physical one
    /// (write to an already-mapped name).
    RegRename {
        reg: u16,
        old_phys: u32,
        new_phys: u32,
    },
    /// Release-flag-cache probe that hit.
    FlagCacheHit { pc: u32 },
    /// Release-flag-cache probe that missed (metadata fetch charged).
    FlagCacheMiss { pc: u32 },
    /// A `pir` (register-release metadata) instruction was decoded.
    PirDecode { pc: u32, flags: u16 },
    /// A `pbr` (branch + release metadata) instruction was decoded.
    PbrDecode { pc: u32, released: u16 },
    /// GPU-shrink throttle admitted a CTA launch.
    ThrottleAdmit { cta: u32, budget: u32 },
    /// GPU-shrink throttle restricted issue to a single CTA.
    ThrottleDeny { cta: u32, balance: i64 },
    /// A CTA balance counter (`C - k_i`) changed.
    ThrottleBalance { cta: u32, balance: i64 },
    /// Emergency spill of a physical register to memory.
    Spill { reg: u16, phys: u32 },
    /// Registers of a warp were swapped out to backing store.
    SwapOut { warp_regs: u32 },
    /// Registers of a warp were swapped back in.
    SwapIn { warp_regs: u32 },
    /// A register-file subarray was power-gated off.
    GateOff { subarray: u16 },
    /// A power-gated subarray was woken; `wakeup` is the stall charged.
    GateOn { subarray: u16, wakeup: u32 },
    /// A warp issued an instruction.
    Issue { pc: u32, active_lanes: u8 },
    /// A warp was considered but could not issue.
    Stall { reason: StallReason },
    /// A memory transaction changed lifecycle phase.
    Mem {
        phase: MemPhase,
        addr: u64,
        segments: u16,
    },
    /// A CTA began running on an SM.
    CtaLaunch { cta: u32 },
    /// A CTA finished and its resources were reclaimed.
    CtaComplete { cta: u32 },
    /// The fault plane perturbed simulator state. `reg`/`phys`
    /// identify the perturbed register where meaningful (`u16::MAX` /
    /// `u32::MAX` otherwise).
    FaultInjected {
        fault: FaultLabel,
        reg: u16,
        phys: u32,
    },
    /// The sanitizer quarantined a CTA after detecting unsound
    /// state; `warps` warps were retired early.
    Quarantine { cta: u32, warps: u16 },
}

impl TraceKind {
    /// Stable event name (Chrome trace `name` field, metric prefix).
    pub fn name(&self) -> &'static str {
        match self {
            TraceKind::RegAlloc { .. } => "reg_alloc",
            TraceKind::RegRelease { .. } => "reg_release",
            TraceKind::RegRename { .. } => "reg_rename",
            TraceKind::FlagCacheHit { .. } => "flag_cache_hit",
            TraceKind::FlagCacheMiss { .. } => "flag_cache_miss",
            TraceKind::PirDecode { .. } => "pir_decode",
            TraceKind::PbrDecode { .. } => "pbr_decode",
            TraceKind::ThrottleAdmit { .. } => "throttle_admit",
            TraceKind::ThrottleDeny { .. } => "throttle_deny",
            TraceKind::ThrottleBalance { .. } => "throttle_balance",
            TraceKind::Spill { .. } => "spill",
            TraceKind::SwapOut { .. } => "swap_out",
            TraceKind::SwapIn { .. } => "swap_in",
            TraceKind::GateOff { .. } => "gate_off",
            TraceKind::GateOn { .. } => "gate_on",
            TraceKind::Issue { .. } => "issue",
            TraceKind::Stall { .. } => "stall",
            TraceKind::Mem { .. } => "mem",
            TraceKind::CtaLaunch { .. } => "cta_launch",
            TraceKind::CtaComplete { .. } => "cta_complete",
            TraceKind::FaultInjected { .. } => "fault_injected",
            TraceKind::Quarantine { .. } => "quarantine",
        }
    }
}

/// One trace record: where/when plus the typed payload.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TraceEvent {
    /// Simulation cycle the event occurred on.
    pub cycle: u64,
    /// SM the event occurred on.
    pub sm: u16,
    /// Warp scheduler slot within the SM; [`TraceEvent::NO_WARP`] for
    /// SM-scoped events (gating, throttling, CTA lifecycle).
    pub warp: u16,
    /// The typed payload.
    pub kind: TraceKind,
}

impl TraceEvent {
    /// Sentinel warp id for events not attributable to a warp slot.
    pub const NO_WARP: u16 = u16::MAX;

    /// An event attributed to a warp slot.
    pub fn warp_event(cycle: u64, sm: u16, warp: usize, kind: TraceKind) -> TraceEvent {
        TraceEvent {
            cycle,
            sm,
            warp: warp as u16,
            kind,
        }
    }

    /// An SM-scoped event (no meaningful warp slot).
    pub fn sm_event(cycle: u64, sm: u16, kind: TraceKind) -> TraceEvent {
        TraceEvent {
            cycle,
            sm,
            warp: TraceEvent::NO_WARP,
            kind,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_are_small_and_copy() {
        // the hot path copies events by value into the ring; keep them
        // within a couple of words so that stays cheap
        assert!(std::mem::size_of::<TraceEvent>() <= 40);
        let e = TraceEvent::warp_event(
            1,
            0,
            3,
            TraceKind::Issue {
                pc: 7,
                active_lanes: 32,
            },
        );
        let f = e; // Copy
        assert_eq!(e, f);
    }

    #[test]
    fn names_are_unique() {
        let kinds = [
            TraceKind::RegAlloc {
                reg: 0,
                phys: 0,
                bank: 0,
            },
            TraceKind::RegRelease {
                reg: 0,
                phys: 0,
                bank: 0,
            },
            TraceKind::RegRename {
                reg: 0,
                old_phys: 0,
                new_phys: 0,
            },
            TraceKind::FlagCacheHit { pc: 0 },
            TraceKind::FlagCacheMiss { pc: 0 },
            TraceKind::PirDecode { pc: 0, flags: 0 },
            TraceKind::PbrDecode { pc: 0, released: 0 },
            TraceKind::ThrottleAdmit { cta: 0, budget: 0 },
            TraceKind::ThrottleDeny { cta: 0, balance: 0 },
            TraceKind::ThrottleBalance { cta: 0, balance: 0 },
            TraceKind::Spill { reg: 0, phys: 0 },
            TraceKind::SwapOut { warp_regs: 0 },
            TraceKind::SwapIn { warp_regs: 0 },
            TraceKind::GateOff { subarray: 0 },
            TraceKind::GateOn {
                subarray: 0,
                wakeup: 0,
            },
            TraceKind::Issue {
                pc: 0,
                active_lanes: 0,
            },
            TraceKind::Stall {
                reason: StallReason::NoReg,
            },
            TraceKind::Mem {
                phase: MemPhase::Issue,
                addr: 0,
                segments: 0,
            },
            TraceKind::CtaLaunch { cta: 0 },
            TraceKind::CtaComplete { cta: 0 },
            TraceKind::FaultInjected {
                fault: FaultLabel::PrematureRelease,
                reg: 0,
                phys: 0,
            },
            TraceKind::Quarantine { cta: 0, warps: 0 },
        ];
        let names: std::collections::BTreeSet<&str> = kinds.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), kinds.len());
    }
}
