//! # rfv-trace
//!
//! Structured event tracing and metrics for the register-file
//! virtualization simulator. The crate has four parts:
//!
//! * a typed [`TraceEvent`] vocabulary ([`event`]) covering every
//!   microarchitectural mechanism the simulator models: register
//!   allocate/release/rename, release-flag-cache probes, `pir`/`pbr`
//!   decode, CTA throttling, emergency spills, subarray power gating,
//!   warp-scheduler issue/stall, and memory transactions;
//! * sinks ([`sink`]): the [`TraceSink`] trait with a zero-cost
//!   [`NoopSink`], a bounded [`RingSink`], and the enum-dispatched
//!   [`Sink`] the simulator threads through its hot loops. When
//!   tracing is off the per-event cost is a single discriminant test
//!   — callers gate event *construction* on [`Sink::enabled`];
//! * deterministic stream merging ([`merge`]): per-SM event shards
//!   recorded on worker threads are combined by `(cycle, sm, seq)`
//!   into a trace bit-identical to a sequential run;
//! * output ([`chrome`], [`metrics`], [`json`]): a streaming Chrome
//!   trace-event JSON writer (loadable in Perfetto / `chrome://tracing`
//!   with per-SM process tracks and per-warp thread tracks) and a
//!   counter/histogram [`MetricsRegistry`] serializable to JSON;
//! * a checkpoint byte codec ([`wire`]): the fixed-width little-endian
//!   [`wire::Enc`]/[`wire::Dec`] pair (plus FNV-1a hashing and a
//!   [`TraceEvent`] codec) underpinning the simulator's `rfv-ckpt-v1`
//!   snapshot format. Decoding is total — corrupt input is a typed
//!   [`wire::WireError`], never a panic.
//!
//! Everything is dependency-free; JSON is written (and, for tests,
//! parsed) by the small hand-rolled [`json`] module.

pub mod chrome;
pub mod event;
pub mod json;
pub mod merge;
pub mod metrics;
pub mod sink;
pub mod wire;

pub use chrome::ChromeWriter;
pub use event::{FaultLabel, MemPhase, StallReason, TraceEvent, TraceKind};
pub use merge::merge_shards;
pub use metrics::{Histogram, MetricsRegistry};
pub use sink::{NoopSink, RingSink, Sink, TraceSink};
pub use wire::{Dec, Enc, WireError};
