//! A tiny zero-dependency binary codec for checkpoint frames.
//!
//! `rfv-sim` checkpoints (`rfv-ckpt-v1`) serialize every stateful
//! simulator component through this module: fixed-width little-endian
//! integers, length-prefixed byte strings, and nothing else. The
//! format is deliberately dumb — no varints, no compression — because
//! the contract that matters is *bit-exact round-tripping*: a value
//! encoded and decoded must compare equal, and two equal states must
//! encode to identical bytes (so checkpoint files can be diffed and
//! checksummed).
//!
//! Decoding is total: every read returns a [`WireError`] instead of
//! panicking on truncated or corrupt input, which is what lets the
//! checkpoint loader reject damaged files as a typed error.

use crate::event::{FaultLabel, MemPhase, StallReason, TraceEvent, TraceKind};

/// Decode failure: the byte stream did not contain what the reader
/// expected.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WireError {
    /// The stream ended mid-value.
    UnexpectedEof,
    /// A tag or length field held a value outside its domain.
    Invalid(&'static str),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::UnexpectedEof => write!(f, "unexpected end of input"),
            WireError::Invalid(what) => write!(f, "invalid field: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Byte-stream writer. All integers are little-endian fixed width.
#[derive(Clone, Debug, Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// An empty encoder.
    pub fn new() -> Enc {
        Enc::default()
    }

    /// The encoded bytes so far.
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Consumes the encoder, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u16`.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i64` (two's complement).
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as a `u64` (platform-independent width).
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Appends a `bool` as one byte (0 or 1).
    pub fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    /// Appends an `Option<u64>`: presence byte then the value.
    pub fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            Some(x) => {
                self.u8(1);
                self.u64(x);
            }
            None => self.u8(0),
        }
    }

    /// Appends raw bytes with a `u64` length prefix.
    pub fn frame(&mut self, bytes: &[u8]) {
        self.usize(bytes.len());
        self.buf.extend_from_slice(bytes);
    }

    /// Appends raw bytes with no framing (caller knows the length).
    pub fn raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }
}

/// Byte-stream reader over a borrowed buffer. Every accessor returns
/// [`WireError::UnexpectedEof`] instead of panicking when the stream
/// is exhausted.
#[derive(Clone, Copy, Debug)]
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// A reader positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Dec<'a> {
        Dec { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether the stream is fully consumed.
    pub fn is_done(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::UnexpectedEof);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64, WireError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a `u64` and converts it to `usize`, rejecting values that
    /// do not fit.
    pub fn usize(&mut self) -> Result<usize, WireError> {
        usize::try_from(self.u64()?).map_err(|_| WireError::Invalid("usize out of range"))
    }

    /// Reads a `bool` byte; anything but 0 or 1 is corrupt.
    pub fn bool(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::Invalid("bool byte")),
        }
    }

    /// Reads an `Option<u64>` written by [`Enc::opt_u64`].
    pub fn opt_u64(&mut self) -> Result<Option<u64>, WireError> {
        Ok(if self.bool()? {
            Some(self.u64()?)
        } else {
            None
        })
    }

    /// Reads a length-prefixed byte string written by [`Enc::frame`].
    pub fn frame(&mut self) -> Result<&'a [u8], WireError> {
        let n = self.usize()?;
        self.take(n)
    }

    /// Reads exactly `n` raw bytes.
    pub fn raw(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        self.take(n)
    }
}

/// FNV-1a over `bytes`: the checkpoint file's trailing checksum and
/// the config/kernel identity hashes. Deterministic, zero-dependency,
/// and stable across platforms.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ------------------------------------------------------- event codec

fn stall_tag(r: StallReason) -> u8 {
    match r {
        StallReason::NoInstr => 0,
        StallReason::Scoreboard => 1,
        StallReason::Barrier => 2,
        StallReason::Memory => 3,
        StallReason::NoReg => 4,
        StallReason::GateWakeup => 5,
        StallReason::Throttled => 6,
    }
}

fn stall_untag(t: u8) -> Result<StallReason, WireError> {
    Ok(match t {
        0 => StallReason::NoInstr,
        1 => StallReason::Scoreboard,
        2 => StallReason::Barrier,
        3 => StallReason::Memory,
        4 => StallReason::NoReg,
        5 => StallReason::GateWakeup,
        6 => StallReason::Throttled,
        _ => return Err(WireError::Invalid("stall reason tag")),
    })
}

fn phase_tag(p: MemPhase) -> u8 {
    match p {
        MemPhase::Issue => 0,
        MemPhase::MshrMerge => 1,
        MemPhase::Complete => 2,
    }
}

fn phase_untag(t: u8) -> Result<MemPhase, WireError> {
    Ok(match t {
        0 => MemPhase::Issue,
        1 => MemPhase::MshrMerge,
        2 => MemPhase::Complete,
        _ => return Err(WireError::Invalid("mem phase tag")),
    })
}

fn fault_tag(l: FaultLabel) -> u8 {
    match l {
        FaultLabel::PrematureRelease => 0,
        FaultLabel::DroppedRelease => 1,
        FaultLabel::PirFlip => 2,
        FaultLabel::PbrFlip => 3,
        FaultLabel::RenameCorrupt => 4,
        FaultLabel::StaleFlagHit => 5,
        FaultLabel::SpillLoss => 6,
    }
}

fn fault_untag(t: u8) -> Result<FaultLabel, WireError> {
    Ok(match t {
        0 => FaultLabel::PrematureRelease,
        1 => FaultLabel::DroppedRelease,
        2 => FaultLabel::PirFlip,
        3 => FaultLabel::PbrFlip,
        4 => FaultLabel::RenameCorrupt,
        5 => FaultLabel::StaleFlagHit,
        6 => FaultLabel::SpillLoss,
        _ => return Err(WireError::Invalid("fault label tag")),
    })
}

/// Serializes one [`TraceEvent`] (a checkpointed sink's ring
/// contents) into `e`.
pub fn encode_event(ev: &TraceEvent, e: &mut Enc) {
    e.u64(ev.cycle);
    e.u16(ev.sm);
    e.u16(ev.warp);
    match ev.kind {
        TraceKind::RegAlloc { reg, phys, bank } => {
            e.u8(0);
            e.u16(reg);
            e.u32(phys);
            e.u8(bank);
        }
        TraceKind::RegRelease { reg, phys, bank } => {
            e.u8(1);
            e.u16(reg);
            e.u32(phys);
            e.u8(bank);
        }
        TraceKind::RegRename {
            reg,
            old_phys,
            new_phys,
        } => {
            e.u8(2);
            e.u16(reg);
            e.u32(old_phys);
            e.u32(new_phys);
        }
        TraceKind::FlagCacheHit { pc } => {
            e.u8(3);
            e.u32(pc);
        }
        TraceKind::FlagCacheMiss { pc } => {
            e.u8(4);
            e.u32(pc);
        }
        TraceKind::PirDecode { pc, flags } => {
            e.u8(5);
            e.u32(pc);
            e.u16(flags);
        }
        TraceKind::PbrDecode { pc, released } => {
            e.u8(6);
            e.u32(pc);
            e.u16(released);
        }
        TraceKind::ThrottleAdmit { cta, budget } => {
            e.u8(7);
            e.u32(cta);
            e.u32(budget);
        }
        TraceKind::ThrottleDeny { cta, balance } => {
            e.u8(8);
            e.u32(cta);
            e.i64(balance);
        }
        TraceKind::ThrottleBalance { cta, balance } => {
            e.u8(9);
            e.u32(cta);
            e.i64(balance);
        }
        TraceKind::Spill { reg, phys } => {
            e.u8(10);
            e.u16(reg);
            e.u32(phys);
        }
        TraceKind::SwapOut { warp_regs } => {
            e.u8(11);
            e.u32(warp_regs);
        }
        TraceKind::SwapIn { warp_regs } => {
            e.u8(12);
            e.u32(warp_regs);
        }
        TraceKind::GateOff { subarray } => {
            e.u8(13);
            e.u16(subarray);
        }
        TraceKind::GateOn { subarray, wakeup } => {
            e.u8(14);
            e.u16(subarray);
            e.u32(wakeup);
        }
        TraceKind::Issue { pc, active_lanes } => {
            e.u8(15);
            e.u32(pc);
            e.u8(active_lanes);
        }
        TraceKind::Stall { reason } => {
            e.u8(16);
            e.u8(stall_tag(reason));
        }
        TraceKind::Mem {
            phase,
            addr,
            segments,
        } => {
            e.u8(17);
            e.u8(phase_tag(phase));
            e.u64(addr);
            e.u16(segments);
        }
        TraceKind::CtaLaunch { cta } => {
            e.u8(18);
            e.u32(cta);
        }
        TraceKind::CtaComplete { cta } => {
            e.u8(19);
            e.u32(cta);
        }
        TraceKind::FaultInjected { fault, reg, phys } => {
            e.u8(20);
            e.u8(fault_tag(fault));
            e.u16(reg);
            e.u32(phys);
        }
        TraceKind::Quarantine { cta, warps } => {
            e.u8(21);
            e.u32(cta);
            e.u16(warps);
        }
    }
}

/// Deserializes one [`TraceEvent`] written by [`encode_event`].
///
/// # Errors
///
/// [`WireError`] on truncation or an unknown tag.
pub fn decode_event(d: &mut Dec<'_>) -> Result<TraceEvent, WireError> {
    let cycle = d.u64()?;
    let sm = d.u16()?;
    let warp = d.u16()?;
    let kind = match d.u8()? {
        0 => TraceKind::RegAlloc {
            reg: d.u16()?,
            phys: d.u32()?,
            bank: d.u8()?,
        },
        1 => TraceKind::RegRelease {
            reg: d.u16()?,
            phys: d.u32()?,
            bank: d.u8()?,
        },
        2 => TraceKind::RegRename {
            reg: d.u16()?,
            old_phys: d.u32()?,
            new_phys: d.u32()?,
        },
        3 => TraceKind::FlagCacheHit { pc: d.u32()? },
        4 => TraceKind::FlagCacheMiss { pc: d.u32()? },
        5 => TraceKind::PirDecode {
            pc: d.u32()?,
            flags: d.u16()?,
        },
        6 => TraceKind::PbrDecode {
            pc: d.u32()?,
            released: d.u16()?,
        },
        7 => TraceKind::ThrottleAdmit {
            cta: d.u32()?,
            budget: d.u32()?,
        },
        8 => TraceKind::ThrottleDeny {
            cta: d.u32()?,
            balance: d.i64()?,
        },
        9 => TraceKind::ThrottleBalance {
            cta: d.u32()?,
            balance: d.i64()?,
        },
        10 => TraceKind::Spill {
            reg: d.u16()?,
            phys: d.u32()?,
        },
        11 => TraceKind::SwapOut {
            warp_regs: d.u32()?,
        },
        12 => TraceKind::SwapIn {
            warp_regs: d.u32()?,
        },
        13 => TraceKind::GateOff { subarray: d.u16()? },
        14 => TraceKind::GateOn {
            subarray: d.u16()?,
            wakeup: d.u32()?,
        },
        15 => TraceKind::Issue {
            pc: d.u32()?,
            active_lanes: d.u8()?,
        },
        16 => TraceKind::Stall {
            reason: stall_untag(d.u8()?)?,
        },
        17 => TraceKind::Mem {
            phase: phase_untag(d.u8()?)?,
            addr: d.u64()?,
            segments: d.u16()?,
        },
        18 => TraceKind::CtaLaunch { cta: d.u32()? },
        19 => TraceKind::CtaComplete { cta: d.u32()? },
        20 => TraceKind::FaultInjected {
            fault: fault_untag(d.u8()?)?,
            reg: d.u16()?,
            phys: d.u32()?,
        },
        21 => TraceKind::Quarantine {
            cta: d.u32()?,
            warps: d.u16()?,
        },
        _ => return Err(WireError::Invalid("event kind tag")),
    };
    Ok(TraceEvent {
        cycle,
        sm,
        warp,
        kind,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        let mut e = Enc::new();
        e.u8(7);
        e.u16(0xbeef);
        e.u32(0xdead_beef);
        e.u64(u64::MAX - 1);
        e.i64(-42);
        e.usize(123_456);
        e.bool(true);
        e.bool(false);
        e.opt_u64(Some(9));
        e.opt_u64(None);
        e.frame(b"hello");
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        assert_eq!(d.u8().unwrap(), 7);
        assert_eq!(d.u16().unwrap(), 0xbeef);
        assert_eq!(d.u32().unwrap(), 0xdead_beef);
        assert_eq!(d.u64().unwrap(), u64::MAX - 1);
        assert_eq!(d.i64().unwrap(), -42);
        assert_eq!(d.usize().unwrap(), 123_456);
        assert!(d.bool().unwrap());
        assert!(!d.bool().unwrap());
        assert_eq!(d.opt_u64().unwrap(), Some(9));
        assert_eq!(d.opt_u64().unwrap(), None);
        assert_eq!(d.frame().unwrap(), b"hello");
        assert!(d.is_done());
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut e = Enc::new();
        e.u64(12345);
        e.frame(b"abcdef");
        let bytes = e.into_bytes();
        for cut in 0..bytes.len() {
            let mut d = Dec::new(&bytes[..cut]);
            // reading the same schema from any prefix must fail
            // gracefully somewhere, never panic
            let r = d.u64().and_then(|_| d.frame().map(<[u8]>::to_vec));
            if cut < bytes.len() {
                assert!(r.is_err(), "cut at {cut} should not parse");
            }
        }
    }

    #[test]
    fn bad_bool_and_bad_tags_rejected() {
        let mut d = Dec::new(&[2]);
        assert_eq!(d.bool(), Err(WireError::Invalid("bool byte")));
        assert_eq!(
            stall_untag(200),
            Err(WireError::Invalid("stall reason tag"))
        );
        assert_eq!(phase_untag(3), Err(WireError::Invalid("mem phase tag")));
        assert_eq!(fault_untag(7), Err(WireError::Invalid("fault label tag")));
    }

    #[test]
    fn fnv1a_is_stable() {
        // reference vectors for the 64-bit FNV-1a parameters
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_ne!(fnv1a(b"ab"), fnv1a(b"ba"));
    }

    #[test]
    fn every_event_kind_round_trips() {
        let kinds = [
            TraceKind::RegAlloc {
                reg: 3,
                phys: 77,
                bank: 2,
            },
            TraceKind::RegRelease {
                reg: 4,
                phys: 78,
                bank: 1,
            },
            TraceKind::RegRename {
                reg: 5,
                old_phys: 1,
                new_phys: 2,
            },
            TraceKind::FlagCacheHit { pc: 10 },
            TraceKind::FlagCacheMiss { pc: 11 },
            TraceKind::PirDecode { pc: 12, flags: 3 },
            TraceKind::PbrDecode {
                pc: 13,
                released: 2,
            },
            TraceKind::ThrottleAdmit { cta: 1, budget: 96 },
            TraceKind::ThrottleDeny {
                cta: 2,
                balance: -5,
            },
            TraceKind::ThrottleBalance {
                cta: 3,
                balance: 40,
            },
            TraceKind::Spill { reg: 6, phys: 80 },
            TraceKind::SwapOut { warp_regs: 9 },
            TraceKind::SwapIn { warp_regs: 9 },
            TraceKind::GateOff { subarray: 7 },
            TraceKind::GateOn {
                subarray: 8,
                wakeup: 5,
            },
            TraceKind::Issue {
                pc: 14,
                active_lanes: 32,
            },
            TraceKind::Stall {
                reason: StallReason::GateWakeup,
            },
            TraceKind::Mem {
                phase: MemPhase::MshrMerge,
                addr: 0x1000,
                segments: 4,
            },
            TraceKind::CtaLaunch { cta: 4 },
            TraceKind::CtaComplete { cta: 4 },
            TraceKind::FaultInjected {
                fault: FaultLabel::SpillLoss,
                reg: 9,
                phys: 81,
            },
            TraceKind::Quarantine { cta: 5, warps: 4 },
        ];
        for (i, kind) in kinds.into_iter().enumerate() {
            let ev = TraceEvent {
                cycle: 1000 + i as u64,
                sm: 2,
                warp: i as u16,
                kind,
            };
            let mut e = Enc::new();
            encode_event(&ev, &mut e);
            let bytes = e.into_bytes();
            let mut d = Dec::new(&bytes);
            assert_eq!(decode_event(&mut d).unwrap(), ev);
            assert!(d.is_done(), "kind {i} leaves trailing bytes");
            // truncated event bytes must fail, not panic
            for cut in 0..bytes.len() {
                assert!(decode_event(&mut Dec::new(&bytes[..cut])).is_err());
            }
        }
    }
}
