//! Deterministic merging of per-SM event streams.
//!
//! When the simulator runs SMs on worker threads, each SM records its
//! events into a private [`crate::RingSink`]. Joining the threads
//! yields one event vector ("shard") per SM, in SM order. The merged
//! trace must not depend on thread scheduling, so events are ordered
//! by the total key `(cycle, sm, seq)` — `seq` being the event's
//! emission index within its shard. Because every shard is already
//! cycle-ordered and sinks preserve emission order, this produces a
//! stream bit-identical to a sequential SM-by-SM run of the same
//! simulation.

use crate::event::TraceEvent;

/// Merges per-shard event streams into one deterministic trace.
///
/// Shards are expected in SM order (shard `i` holding SM `i`'s
/// events, each shard in emission order). Events are sorted by
/// `(cycle, sm, seq)`; should two shards ever carry the same SM id,
/// ties fall back to shard order (the sort is stable).
pub fn merge_shards(shards: impl IntoIterator<Item = Vec<TraceEvent>>) -> Vec<TraceEvent> {
    let mut keyed: Vec<((u64, u16, usize), TraceEvent)> = Vec::new();
    for shard in shards {
        keyed.reserve(shard.len());
        for (seq, ev) in shard.into_iter().enumerate() {
            keyed.push(((ev.cycle, ev.sm, seq), ev));
        }
    }
    keyed.sort_by_key(|&(key, _)| key);
    keyed.into_iter().map(|(_, ev)| ev).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceKind;
    use crate::sink::Sink;

    fn ev(cycle: u64, sm: u16, cta: u32) -> TraceEvent {
        TraceEvent::sm_event(cycle, sm, TraceKind::CtaLaunch { cta })
    }

    /// The sink/merge path crosses thread boundaries in the parallel
    /// simulator; a non-`Send` payload must fail to compile here.
    #[test]
    fn sinks_and_events_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<TraceEvent>();
        assert_send::<Sink>();
        assert_send::<Vec<TraceEvent>>();
    }

    #[test]
    fn interleaves_shards_by_cycle_then_sm() {
        let sm0 = vec![ev(1, 0, 10), ev(3, 0, 11)];
        let sm1 = vec![ev(1, 1, 20), ev(2, 1, 21)];
        let merged = merge_shards([sm0, sm1]);
        let order: Vec<(u64, u16)> = merged.iter().map(|e| (e.cycle, e.sm)).collect();
        assert_eq!(order, vec![(1, 0), (1, 1), (2, 1), (3, 0)]);
    }

    #[test]
    fn same_cycle_same_sm_preserves_emission_order() {
        let shard = vec![ev(5, 0, 1), ev(5, 0, 2), ev(5, 0, 3)];
        let merged = merge_shards([shard.clone()]);
        assert_eq!(merged, shard);
    }

    #[test]
    fn merge_is_independent_of_shard_count() {
        // one shard per SM versus one big pre-concatenated shard per
        // SM chunk: both describe the same simulation, so the merge
        // must be identical
        let sm0 = vec![ev(1, 0, 1), ev(2, 0, 2)];
        let sm1 = vec![ev(1, 1, 3), ev(4, 1, 4)];
        let sm2 = vec![ev(0, 2, 5)];
        let a = merge_shards([sm0.clone(), sm1.clone(), sm2.clone()]);
        let b = merge_shards([sm0, sm1, sm2].concat().into_iter().fold(
            Vec::<Vec<TraceEvent>>::new(),
            |mut acc, e| {
                // re-shard by SM, preserving order
                let idx = e.sm as usize;
                while acc.len() <= idx {
                    acc.push(Vec::new());
                }
                acc[idx].push(e);
                acc
            },
        ));
        assert_eq!(a, b);
    }

    #[test]
    fn empty_input_merges_to_empty() {
        assert!(merge_shards(Vec::<Vec<TraceEvent>>::new()).is_empty());
        assert!(merge_shards([Vec::new(), Vec::new()]).is_empty());
    }
}
