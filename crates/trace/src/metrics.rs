//! Counter/histogram registry.
//!
//! A [`MetricsRegistry`] is a flat, name-keyed store of monotonic
//! counters and log2-bucketed histograms. The simulator's `SimStats`
//! exports into one (see `rfv-sim`), events from a capture can be
//! folded in with [`MetricsRegistry::record_event`], and the whole
//! registry serializes to a stable JSON document for `--stats-json`.
//!
//! Names are dotted paths (`regfile.allocs`, `sched.stall.no_reg`);
//! `BTreeMap` storage keeps the JSON output deterministically sorted.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::event::{TraceEvent, TraceKind};
use crate::json::quote;

/// A log2-bucketed histogram of `u64` observations.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Histogram {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    /// `buckets[i]` counts observations with `ceil(log2(v + 1)) == i`,
    /// i.e. bucket 0 holds zeros, bucket 1 holds `1`, bucket 2 holds
    /// `2..=3`, and so on.
    buckets: Vec<u64>,
}

impl Histogram {
    fn bucket_index(value: u64) -> usize {
        (u64::BITS - value.leading_zeros()) as usize
    }

    /// Records one observation.
    pub fn observe(&mut self, value: u64) {
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        let idx = Histogram::bucket_index(value);
        if self.buckets.len() <= idx {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += 1;
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observation (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest observation (0 when empty).
    pub fn max(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.max
        }
    }

    /// Arithmetic mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    fn write_json(&self, out: &mut String) {
        let _ = write!(
            out,
            "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{},\"buckets\":[",
            self.count,
            self.sum,
            self.min(),
            self.max(),
            fmt_f64(self.mean())
        );
        for (i, b) in self.buckets.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{b}");
        }
        out.push_str("]}");
    }
}

/// JSON-friendly float formatting: finite, and integral values keep a
/// trailing `.0` so the field parses as a number everywhere.
fn fmt_f64(v: f64) -> String {
    if !v.is_finite() {
        return "0".to_string();
    }
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.1}")
    } else {
        format!("{v}")
    }
}

/// Name-keyed counters and histograms.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Adds `delta` to counter `name` (creating it at zero).
    pub fn add(&mut self, name: &str, delta: u64) {
        if let Some(c) = self.counters.get_mut(name) {
            *c += delta;
        } else {
            self.counters.insert(name.to_string(), delta);
        }
    }

    /// Increments counter `name` by one.
    pub fn incr(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Sets gauge `name` (a point-in-time float such as an IPC or a
    /// ratio, as opposed to a monotonic counter).
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Records `value` into histogram `name` (creating it).
    pub fn observe(&mut self, name: &str, value: u64) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .observe(value);
    }

    /// Current value of counter `name` (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Current value of gauge `name`.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Histogram `name`, if any values were observed.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Iterates counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Merges another registry into this one (counters add, gauges
    /// overwrite, histograms are summed bucket-wise via re-observation
    /// of aggregate fields).
    pub fn absorb_counters(&mut self, other: &MetricsRegistry) {
        for (name, v) in &other.counters {
            self.add(name, *v);
        }
    }

    /// Folds one trace event into event-derived counters. Useful for
    /// sanity-checking a capture against the simulator's own stats.
    pub fn record_event(&mut self, ev: &TraceEvent) {
        match ev.kind {
            TraceKind::Stall { reason } => {
                self.incr(&format!("events.stall.{}", reason.label()));
            }
            TraceKind::Mem {
                phase, segments, ..
            } => {
                self.incr(&format!("events.mem.{}", phase.label()));
                if matches!(phase, crate::event::MemPhase::Issue) {
                    self.observe("events.mem.segments", u64::from(segments));
                }
            }
            ref kind => {
                self.incr(&format!("events.{}", kind.name()));
            }
        }
    }

    /// Serializes the registry as a JSON document:
    /// `{"counters": {...}, "gauges": {...}, "histograms": {...}}`.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{}", quote(name), v);
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{}", quote(name), fmt_f64(*v));
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:", quote(name));
            h.write_json(&mut out);
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::StallReason;
    use crate::json;

    #[test]
    fn histogram_buckets_and_moments() {
        let mut h = Histogram::default();
        for v in [0, 1, 2, 3, 4, 100] {
            h.observe(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 110);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 100);
        // bucket 0: {0}; bucket 1: {1}; bucket 2: {2,3}; bucket 3: {4}; bucket 7: {100}
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[1], 1);
        assert_eq!(h.buckets[2], 2);
        assert_eq!(h.buckets[3], 1);
        assert_eq!(h.buckets[7], 1);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::default();
        assert_eq!((h.count(), h.min(), h.max()), (0, 0, 0));
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn registry_json_round_trips() {
        let mut m = MetricsRegistry::new();
        m.incr("a.b");
        m.add("a.b", 4);
        m.set_gauge("ipc", 1.25);
        m.observe("lat", 7);
        m.observe("lat", 9);
        let doc = json::parse(&m.to_json()).unwrap();
        assert_eq!(
            doc.get("counters").unwrap().get("a.b").unwrap().as_num(),
            Some(5.0)
        );
        assert_eq!(
            doc.get("gauges").unwrap().get("ipc").unwrap().as_num(),
            Some(1.25)
        );
        let lat = doc.get("histograms").unwrap().get("lat").unwrap();
        assert_eq!(lat.get("count").unwrap().as_num(), Some(2.0));
        assert_eq!(lat.get("sum").unwrap().as_num(), Some(16.0));
    }

    #[test]
    fn record_event_counts_by_kind_and_reason() {
        let mut m = MetricsRegistry::new();
        m.record_event(&TraceEvent::warp_event(
            1,
            0,
            0,
            crate::event::TraceKind::Stall {
                reason: StallReason::Scoreboard,
            },
        ));
        m.record_event(&TraceEvent::warp_event(
            2,
            0,
            0,
            crate::event::TraceKind::RegAlloc {
                reg: 0,
                phys: 1,
                bank: 0,
            },
        ));
        assert_eq!(m.counter("events.stall.scoreboard"), 1);
        assert_eq!(m.counter("events.reg_alloc"), 1);
    }
}
