//! Streaming Chrome trace-event JSON writer.
//!
//! Output follows the Trace Event Format's "JSON object" flavor
//! (`{"traceEvents": [...]}`), loadable in Perfetto and
//! `chrome://tracing`. Tracks are laid out as:
//!
//! * **process** = SM (`pid` is the SM index, named `SM <n>` via a
//!   `process_name` metadata event);
//! * **thread** = warp scheduler slot (`tid` is the slot, named
//!   `warp <n>`); SM-scoped events (throttle, gating, CTA lifecycle)
//!   land on a dedicated `sm events` thread.
//!
//! One simulated cycle maps to one microsecond of trace time, so the
//! viewer's time axis reads directly in cycles.
//!
//! Most events are instants (`ph: "i"`); CTA balance-counter updates
//! are emitted as counter samples (`ph: "C"`) so Perfetto plots the
//! `C - k_i` trajectory from Section 8.1 of the paper as a graph.

use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::io::{self, Write};

use crate::event::{TraceEvent, TraceKind};
use crate::json::quote;

/// Incremental writer: construct, feed events in any order, `finish`.
pub struct ChromeWriter<W: Write> {
    out: W,
    first: bool,
    named_processes: BTreeSet<u16>,
    named_threads: BTreeSet<(u16, u16)>,
}

impl<W: Write> ChromeWriter<W> {
    /// Starts a trace document on `out`.
    pub fn new(mut out: W) -> io::Result<ChromeWriter<W>> {
        out.write_all(b"{\"traceEvents\":[")?;
        Ok(ChromeWriter {
            out,
            first: true,
            named_processes: BTreeSet::new(),
            named_threads: BTreeSet::new(),
        })
    }

    fn sep(&mut self) -> io::Result<()> {
        if self.first {
            self.first = false;
        } else {
            self.out.write_all(b",\n")?;
        }
        Ok(())
    }

    fn raw(&mut self, record: &str) -> io::Result<()> {
        self.sep()?;
        self.out.write_all(record.as_bytes())
    }

    fn ensure_tracks(&mut self, ev: &TraceEvent) -> io::Result<()> {
        if self.named_processes.insert(ev.sm) {
            let rec = format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{},\"args\":{{\"name\":{}}}}}",
                ev.sm,
                quote(&format!("SM {}", ev.sm))
            );
            self.raw(&rec)?;
        }
        if self.named_threads.insert((ev.sm, ev.warp)) {
            let label = if ev.warp == TraceEvent::NO_WARP {
                "sm events".to_string()
            } else {
                format!("warp {}", ev.warp)
            };
            let rec = format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{},\"tid\":{},\"args\":{{\"name\":{}}}}}",
                ev.sm,
                ev.warp,
                quote(&label)
            );
            self.raw(&rec)?;
        }
        Ok(())
    }

    /// Appends one event.
    pub fn write_event(&mut self, ev: &TraceEvent) -> io::Result<()> {
        self.ensure_tracks(ev)?;
        let mut rec = String::with_capacity(128);
        match ev.kind {
            // counter sample: Perfetto draws these as a graph per SM
            TraceKind::ThrottleBalance { cta, balance } => {
                let _ = write!(
                    rec,
                    "{{\"name\":\"balance\",\"ph\":\"C\",\"ts\":{},\"pid\":{},\"tid\":{},\"args\":{{{}:{}}}}}",
                    ev.cycle,
                    ev.sm,
                    ev.warp,
                    quote(&format!("cta{cta}")),
                    balance
                );
            }
            _ => {
                let _ = write!(
                    rec,
                    "{{\"name\":{},\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":{},\"tid\":{},\"args\":{{",
                    quote(ev.kind.name()),
                    ev.cycle,
                    ev.sm,
                    ev.warp
                );
                write_args(&mut rec, &ev.kind);
                rec.push_str("}}");
            }
        }
        self.raw(&rec)
    }

    /// Closes the document and returns the underlying writer.
    pub fn finish(mut self) -> io::Result<W> {
        self.out.write_all(
            b"],\"displayTimeUnit\":\"ns\",\"otherData\":{\"producer\":\"rfv-trace\"}}",
        )?;
        self.out.flush()?;
        Ok(self.out)
    }
}

fn write_args(rec: &mut String, kind: &TraceKind) {
    match *kind {
        TraceKind::RegAlloc { reg, phys, bank } | TraceKind::RegRelease { reg, phys, bank } => {
            let _ = write!(rec, "\"reg\":{reg},\"phys\":{phys},\"bank\":{bank}");
        }
        TraceKind::RegRename {
            reg,
            old_phys,
            new_phys,
        } => {
            let _ = write!(
                rec,
                "\"reg\":{reg},\"old_phys\":{old_phys},\"new_phys\":{new_phys}"
            );
        }
        TraceKind::FlagCacheHit { pc } | TraceKind::FlagCacheMiss { pc } => {
            let _ = write!(rec, "\"pc\":{pc}");
        }
        TraceKind::PirDecode { pc, flags } => {
            let _ = write!(rec, "\"pc\":{pc},\"flags\":{flags}");
        }
        TraceKind::PbrDecode { pc, released } => {
            let _ = write!(rec, "\"pc\":{pc},\"released\":{released}");
        }
        TraceKind::ThrottleAdmit { cta, budget } => {
            let _ = write!(rec, "\"cta\":{cta},\"budget\":{budget}");
        }
        TraceKind::ThrottleDeny { cta, balance } => {
            let _ = write!(rec, "\"cta\":{cta},\"balance\":{balance}");
        }
        TraceKind::ThrottleBalance { cta, balance } => {
            let _ = write!(rec, "\"cta\":{cta},\"balance\":{balance}");
        }
        TraceKind::Spill { reg, phys } => {
            let _ = write!(rec, "\"reg\":{reg},\"phys\":{phys}");
        }
        TraceKind::SwapOut { warp_regs } | TraceKind::SwapIn { warp_regs } => {
            let _ = write!(rec, "\"warp_regs\":{warp_regs}");
        }
        TraceKind::GateOff { subarray } => {
            let _ = write!(rec, "\"subarray\":{subarray}");
        }
        TraceKind::GateOn { subarray, wakeup } => {
            let _ = write!(rec, "\"subarray\":{subarray},\"wakeup\":{wakeup}");
        }
        TraceKind::Issue { pc, active_lanes } => {
            let _ = write!(rec, "\"pc\":{pc},\"active_lanes\":{active_lanes}");
        }
        TraceKind::Stall { reason } => {
            let _ = write!(rec, "\"reason\":{}", quote(reason.label()));
        }
        TraceKind::Mem {
            phase,
            addr,
            segments,
        } => {
            let _ = write!(
                rec,
                "\"phase\":{},\"addr\":{addr},\"segments\":{segments}",
                quote(phase.label())
            );
        }
        TraceKind::CtaLaunch { cta } | TraceKind::CtaComplete { cta } => {
            let _ = write!(rec, "\"cta\":{cta}");
        }
        TraceKind::FaultInjected { fault, reg, phys } => {
            let _ = write!(
                rec,
                "\"fault\":{},\"reg\":{reg},\"phys\":{phys}",
                quote(fault.label())
            );
        }
        TraceKind::Quarantine { cta, warps } => {
            let _ = write!(rec, "\"cta\":{cta},\"warps\":{warps}");
        }
    }
}

/// Writes a complete capture in one call.
pub fn write_trace<W: Write>(out: W, events: &[TraceEvent]) -> io::Result<W> {
    let mut w = ChromeWriter::new(out)?;
    for ev in events {
        w.write_event(ev)?;
    }
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{MemPhase, StallReason};
    use crate::json;

    #[test]
    fn output_is_valid_json_with_tracks() {
        let events = vec![
            TraceEvent::warp_event(
                5,
                0,
                2,
                TraceKind::RegAlloc {
                    reg: 3,
                    phys: 17,
                    bank: 1,
                },
            ),
            TraceEvent::sm_event(
                6,
                0,
                TraceKind::ThrottleBalance {
                    cta: 1,
                    balance: -2,
                },
            ),
            TraceEvent::warp_event(
                7,
                1,
                0,
                TraceKind::Stall {
                    reason: StallReason::NoReg,
                },
            ),
            TraceEvent::warp_event(
                8,
                1,
                0,
                TraceKind::Mem {
                    phase: MemPhase::Issue,
                    addr: 4096,
                    segments: 2,
                },
            ),
        ];
        let buf = write_trace(Vec::new(), &events).unwrap();
        let doc = json::parse(std::str::from_utf8(&buf).unwrap()).unwrap();
        let recs = doc.get("traceEvents").unwrap().as_arr().unwrap();
        // 4 events + 2 process_name + 3 thread_name metadata records
        assert_eq!(recs.len(), 9);
        let names: Vec<&str> = recs
            .iter()
            .map(|r| r.get("name").unwrap().as_str().unwrap())
            .collect();
        assert!(names.contains(&"process_name"));
        assert!(names.contains(&"thread_name"));
        assert!(names.contains(&"reg_alloc"));
        assert!(names.contains(&"balance"));
        let alloc = recs
            .iter()
            .find(|r| r.get("name").unwrap().as_str() == Some("reg_alloc"))
            .unwrap();
        assert_eq!(alloc.get("ts").unwrap().as_num(), Some(5.0));
        assert_eq!(
            alloc.get("args").unwrap().get("phys").unwrap().as_num(),
            Some(17.0)
        );
    }
}
