//! rfv-faults — a deterministic, seeded fault-injection plane.
//!
//! The simulator's correctness argument rests on early release never
//! freeing a live register. This crate provides the *attack side* of
//! that argument: a [`FaultPlan`] describes which microarchitectural
//! faults to inject (premature release, dropped release, metadata
//! bit-flips, renaming-table corruption, stale flag-cache hits, spill
//! write loss) and a [`FaultInjector`] decides — reproducibly, from a
//! seed — exactly which dynamic occurrences of each site get
//! perturbed.
//!
//! The crate is zero-dependency and knows nothing about the
//! simulator: the simulator asks [`FaultInjector::should_fire`] at
//! each candidate site and applies the perturbation itself.
//!
//! Determinism contract: the firing pattern is a pure function of
//! `(seed, kind, occurrence number)`. Two runs with the same plan and
//! the same sequence of `should_fire` calls observe the same faults,
//! regardless of wall clock, thread scheduling, or allocation order.

/// The kinds of fault the plane can inject.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FaultKind {
    /// Release a register that the architectural intent still holds
    /// live (the paper's cardinal sin: an unsound early release).
    PrematureRelease,
    /// Swallow a release that should have happened (leaks physical
    /// registers; starves the throttle).
    DroppedRelease,
    /// Flip a per-instruction release (pir) flag bit at decode.
    PirFlagFlip,
    /// Flip a pbr bulk-release decision at decode.
    PbrFlagFlip,
    /// Corrupt a renaming-table entry (point an arch reg at a
    /// different physical register).
    RenameCorrupt,
    /// Report a flag-cache hit for a line that was never filled
    /// (stale metadata served to the decoder).
    StaleFlagCacheHit,
    /// Drop a spill write on the floor during a register swap-out.
    SpillWriteLoss,
}

/// Number of distinct [`FaultKind`]s.
pub const NUM_FAULT_KINDS: usize = 7;

impl FaultKind {
    /// Every kind, in a fixed canonical order.
    pub const ALL: [FaultKind; NUM_FAULT_KINDS] = [
        FaultKind::PrematureRelease,
        FaultKind::DroppedRelease,
        FaultKind::PirFlagFlip,
        FaultKind::PbrFlagFlip,
        FaultKind::RenameCorrupt,
        FaultKind::StaleFlagCacheHit,
        FaultKind::SpillWriteLoss,
    ];

    /// Stable index into per-kind arrays.
    pub fn index(self) -> usize {
        match self {
            FaultKind::PrematureRelease => 0,
            FaultKind::DroppedRelease => 1,
            FaultKind::PirFlagFlip => 2,
            FaultKind::PbrFlagFlip => 3,
            FaultKind::RenameCorrupt => 4,
            FaultKind::StaleFlagCacheHit => 5,
            FaultKind::SpillWriteLoss => 6,
        }
    }

    /// The CLI / trace spelling of this kind.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::PrematureRelease => "premature-release",
            FaultKind::DroppedRelease => "dropped-release",
            FaultKind::PirFlagFlip => "pir-flip",
            FaultKind::PbrFlagFlip => "pbr-flip",
            FaultKind::RenameCorrupt => "rename-corrupt",
            FaultKind::StaleFlagCacheHit => "stale-flag-hit",
            FaultKind::SpillWriteLoss => "spill-loss",
        }
    }

    /// Parses the CLI spelling produced by [`FaultKind::name`].
    pub fn parse(s: &str) -> Option<FaultKind> {
        FaultKind::ALL.into_iter().find(|k| k.name() == s)
    }
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A declarative fault-injection plan: a seed plus, per kind, how
/// many faults to inject over the run. `Copy` so it can ride inside
/// `SimConfig` unchanged; all mutable injection state lives in
/// [`FaultInjector`].
#[derive(Clone, Copy, PartialEq, Eq, Default, Debug)]
pub struct FaultPlan {
    /// Seed for the per-kind firing streams.
    pub seed: u64,
    counts: [u16; NUM_FAULT_KINDS],
}

impl FaultPlan {
    /// The empty plan: inject nothing.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// A plan injecting `count` faults of a single kind.
    pub fn single(kind: FaultKind, count: u16, seed: u64) -> FaultPlan {
        FaultPlan::none().with(kind, count).seeded(seed)
    }

    /// Builder: sets the injection count for `kind`.
    pub fn with(mut self, kind: FaultKind, count: u16) -> FaultPlan {
        self.counts[kind.index()] = count;
        self
    }

    /// Builder: sets the seed.
    pub fn seeded(mut self, seed: u64) -> FaultPlan {
        self.seed = seed;
        self
    }

    /// Parses a CLI spec: a comma-separated list of `kind` or
    /// `kind:count` entries (count defaults to 1), where `kind` is a
    /// [`FaultKind::name`] or the wildcard `all`.
    ///
    /// ```
    /// use rfv_faults::{FaultKind, FaultPlan};
    /// let p = FaultPlan::parse("premature-release:3,rename-corrupt", 42).unwrap();
    /// assert_eq!(p.count(FaultKind::PrematureRelease), 3);
    /// assert_eq!(p.count(FaultKind::RenameCorrupt), 1);
    /// assert_eq!(p.seed, 42);
    /// ```
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for unknown kinds or
    /// malformed counts.
    pub fn parse(spec: &str, seed: u64) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::none().seeded(seed);
        for entry in spec.split(',').filter(|e| !e.is_empty()) {
            let (name, count) = match entry.split_once(':') {
                Some((name, n)) => {
                    let count: u16 = n
                        .parse()
                        .map_err(|_| format!("bad fault count in `{entry}`"))?;
                    (name, count)
                }
                None => (entry, 1),
            };
            if name == "all" {
                for k in FaultKind::ALL {
                    plan.counts[k.index()] = count;
                }
            } else {
                let kind = FaultKind::parse(name).ok_or_else(|| {
                    format!(
                        "unknown fault kind `{name}` (expected one of: all {})",
                        FaultKind::ALL.map(FaultKind::name).join(" ")
                    )
                })?;
                plan.counts[kind.index()] = count;
            }
        }
        Ok(plan)
    }

    /// Number of faults of `kind` this plan injects.
    pub fn count(&self, kind: FaultKind) -> u16 {
        self.counts[kind.index()]
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.counts.iter().all(|&c| c == 0)
    }

    /// The CLI spelling of this plan (`none` when empty), suitable
    /// for run headers and JSON artifacts.
    pub fn summary(&self) -> String {
        if self.is_empty() {
            return "none".to_string();
        }
        FaultKind::ALL
            .into_iter()
            .filter(|&k| self.count(k) > 0)
            .map(|k| format!("{}:{}", k.name(), self.count(k)))
            .collect::<Vec<_>>()
            .join(",")
    }
}

/// Sebastiano Vigna's splitmix64: a tiny, statistically solid step
/// function used here purely for reproducible fault placement.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One kind's firing stream: fires `remaining` times, at occurrence
/// numbers spaced by seeded pseudo-random gaps.
#[derive(Clone, Debug)]
struct Stream {
    rng: u64,
    seen: u64,
    next_at: u64,
    remaining: u16,
    fired: u64,
}

impl Stream {
    fn new(seed: u64, kind: FaultKind, count: u16) -> Stream {
        // decorrelate kinds sharing a seed: fold the kind index into
        // the stream state before the first draw
        let mut rng = seed ^ (kind.index() as u64 + 1).wrapping_mul(0xa076_1d64_78bd_642f);
        let first = 1 + splitmix64(&mut rng) % 8;
        Stream {
            rng,
            seen: 0,
            next_at: first,
            remaining: count,
            fired: 0,
        }
    }

    fn should_fire(&mut self) -> bool {
        if self.remaining == 0 {
            return false;
        }
        self.seen += 1;
        if self.seen < self.next_at {
            return false;
        }
        self.remaining -= 1;
        self.fired += 1;
        self.next_at = self.seen + 1 + splitmix64(&mut self.rng) % 32;
        true
    }
}

/// The runtime half of the plane: owns per-kind pseudo-random
/// streams and answers "does this dynamic occurrence get faulted?".
#[derive(Clone, Debug)]
pub struct FaultInjector {
    streams: Vec<Stream>,
}

impl FaultInjector {
    /// Builds an injector executing `plan`.
    pub fn new(plan: &FaultPlan) -> FaultInjector {
        FaultInjector {
            streams: FaultKind::ALL
                .into_iter()
                .map(|k| Stream::new(plan.seed, k, plan.count(k)))
                .collect(),
        }
    }

    /// Reports — and consumes — whether the current dynamic
    /// occurrence of a `kind` site should be faulted. Call exactly
    /// once per candidate site, in program order.
    pub fn should_fire(&mut self, kind: FaultKind) -> bool {
        self.streams[kind.index()].should_fire()
    }

    /// A deterministic choice in `0..n` for parameterizing a fault
    /// (e.g. which register to corrupt). Draws from the kind's
    /// stream so the choice is reproducible.
    pub fn pick(&mut self, kind: FaultKind, n: usize) -> usize {
        if n == 0 {
            return 0;
        }
        (splitmix64(&mut self.streams[kind.index()].rng) % n as u64) as usize
    }

    /// Faults of `kind` fired so far.
    pub fn fired(&self, kind: FaultKind) -> u64 {
        self.streams[kind.index()].fired
    }

    /// Total faults fired across all kinds.
    pub fn total_fired(&self) -> u64 {
        self.streams.iter().map(|s| s.fired).sum()
    }

    /// Number of `u64` state words per stream in
    /// [`FaultInjector::state_words`].
    pub const WORDS_PER_STREAM: usize = 5;

    /// Dumps the injector's mutable state as plain words (5 per kind,
    /// in [`FaultKind::ALL`] order) so a checkpointing host can
    /// serialize it without this crate growing an encoding dependency.
    pub fn state_words(&self) -> Vec<u64> {
        let mut words = Vec::with_capacity(self.streams.len() * Self::WORDS_PER_STREAM);
        for s in &self.streams {
            words.push(s.rng);
            words.push(s.seen);
            words.push(s.next_at);
            words.push(u64::from(s.remaining));
            words.push(s.fired);
        }
        words
    }

    /// Rebuilds an injector from [`FaultInjector::state_words`] output
    /// for the same `plan`. Returns `None` when the word count or a
    /// field range is wrong (corrupt input).
    pub fn from_state_words(plan: &FaultPlan, words: &[u64]) -> Option<FaultInjector> {
        if words.len() != NUM_FAULT_KINDS * Self::WORDS_PER_STREAM {
            return None;
        }
        let mut inj = FaultInjector::new(plan);
        for (s, w) in inj
            .streams
            .iter_mut()
            .zip(words.chunks(Self::WORDS_PER_STREAM))
        {
            s.rng = w[0];
            s.seen = w[1];
            s.next_at = w[2];
            s.remaining = u16::try_from(w[3]).ok()?;
            s.fired = w[4];
        }
        Some(inj)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips() {
        let p = FaultPlan::parse("premature-release:2,spill-loss", 7).unwrap();
        assert_eq!(p.count(FaultKind::PrematureRelease), 2);
        assert_eq!(p.count(FaultKind::SpillWriteLoss), 1);
        assert_eq!(p.count(FaultKind::DroppedRelease), 0);
        assert_eq!(p.seed, 7);
        assert_eq!(p.summary(), "premature-release:2,spill-loss:1");
        let again = FaultPlan::parse(&p.summary(), 7).unwrap();
        assert_eq!(again, p);
    }

    #[test]
    fn parse_all_wildcard() {
        let p = FaultPlan::parse("all:3", 0).unwrap();
        for k in FaultKind::ALL {
            assert_eq!(p.count(k), 3);
        }
        assert!(!p.is_empty());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(FaultPlan::parse("no-such-fault", 0).is_err());
        assert!(FaultPlan::parse("premature-release:lots", 0).is_err());
        assert_eq!(FaultPlan::parse("", 0).unwrap(), FaultPlan::none());
        assert_eq!(FaultPlan::none().summary(), "none");
    }

    #[test]
    fn firing_is_deterministic_and_bounded() {
        let plan = FaultPlan::single(FaultKind::PrematureRelease, 5, 1234);
        let fire = |mut inj: FaultInjector| -> Vec<u64> {
            let mut hits = Vec::new();
            for occurrence in 0..10_000u64 {
                if inj.should_fire(FaultKind::PrematureRelease) {
                    hits.push(occurrence);
                }
            }
            assert_eq!(inj.fired(FaultKind::PrematureRelease), hits.len() as u64);
            hits
        };
        let a = fire(FaultInjector::new(&plan));
        let b = fire(FaultInjector::new(&plan));
        assert_eq!(a, b, "same seed, same firing pattern");
        assert_eq!(a.len(), 5, "exactly the planned count fires");
    }

    #[test]
    fn seeds_move_the_firing_points() {
        let hits = |seed: u64| -> Vec<u64> {
            let plan = FaultPlan::single(FaultKind::DroppedRelease, 4, seed);
            let mut inj = FaultInjector::new(&plan);
            (0..1000u64)
                .filter(|_| inj.should_fire(FaultKind::DroppedRelease))
                .collect()
        };
        assert_ne!(hits(1), hits(2));
    }

    #[test]
    fn kinds_are_decorrelated() {
        let plan = FaultPlan::none()
            .with(FaultKind::PirFlagFlip, 3)
            .with(FaultKind::PbrFlagFlip, 3)
            .seeded(99);
        let mut inj = FaultInjector::new(&plan);
        let mut pir = Vec::new();
        let mut pbr = Vec::new();
        for occurrence in 0..1000u64 {
            if inj.should_fire(FaultKind::PirFlagFlip) {
                pir.push(occurrence);
            }
            if inj.should_fire(FaultKind::PbrFlagFlip) {
                pbr.push(occurrence);
            }
        }
        assert_ne!(pir, pbr, "same seed, different kinds, different points");
        assert_eq!(inj.total_fired(), 6);
    }

    #[test]
    fn empty_plan_never_fires() {
        let mut inj = FaultInjector::new(&FaultPlan::none());
        for _ in 0..100 {
            for k in FaultKind::ALL {
                assert!(!inj.should_fire(k));
            }
        }
        assert_eq!(inj.total_fired(), 0);
    }

    #[test]
    fn pick_is_in_range_and_deterministic() {
        let plan = FaultPlan::single(FaultKind::RenameCorrupt, 1, 5);
        let mut a = FaultInjector::new(&plan);
        let mut b = FaultInjector::new(&plan);
        for n in 1..50 {
            let x = a.pick(FaultKind::RenameCorrupt, n);
            assert!(x < n);
            assert_eq!(x, b.pick(FaultKind::RenameCorrupt, n));
        }
        assert_eq!(a.pick(FaultKind::RenameCorrupt, 0), 0, "degenerate range");
    }

    #[test]
    fn state_words_resume_the_firing_pattern_exactly() {
        let plan = FaultPlan::parse("all:3", 77).unwrap();
        let mut uninterrupted = FaultInjector::new(&plan);
        let mut first_half = FaultInjector::new(&plan);
        let mut a = Vec::new();
        for occ in 0..60u64 {
            for k in FaultKind::ALL {
                if uninterrupted.should_fire(k) {
                    a.push((occ, k));
                }
                first_half.should_fire(k);
            }
        }
        // snapshot at occurrence 60, restore, and run both to 300
        let words = first_half.state_words();
        let mut resumed = FaultInjector::from_state_words(&plan, &words).unwrap();
        let mut b: Vec<(u64, FaultKind)> = Vec::new();
        for occ in 60..300u64 {
            for k in FaultKind::ALL {
                if uninterrupted.should_fire(k) {
                    a.push((occ, k));
                }
                if resumed.should_fire(k) {
                    b.push((occ, k));
                }
            }
        }
        let tail: Vec<_> = a.iter().filter(|(occ, _)| *occ >= 60).copied().collect();
        assert_eq!(tail, b, "resumed stream continues the exact pattern");
        assert_eq!(resumed.total_fired(), uninterrupted.total_fired());
        // corrupt word counts are rejected, not panicked on
        assert!(FaultInjector::from_state_words(&plan, &words[..words.len() - 1]).is_none());
        let mut bad = words.clone();
        bad[3] = u64::MAX; // remaining must fit u16
        assert!(FaultInjector::from_state_words(&plan, &bad).is_none());
    }

    #[test]
    fn names_parse_back() {
        for k in FaultKind::ALL {
            assert_eq!(FaultKind::parse(k.name()), Some(k));
            assert_eq!(format!("{k}"), k.name());
        }
        assert_eq!(FaultKind::parse("bogus"), None);
    }
}
