//! Deterministic environment fault injection for rfvd.
//!
//! Where `rfv-faults` corrupts state *inside* the simulated machine, this
//! module attacks the daemon's *environment*: the spool directory and the
//! client sockets. Faults are drawn from seeded splitmix64 streams — one
//! independent stream per fault kind, mirroring `FaultPlan` — so a given
//! `(plan, seed)` pair produces the same adversarial schedule on every run.
//!
//! Injection happens behind two thin traits, [`SpoolIo`] and [`SockIo`],
//! which `persist.rs` and `mux.rs` funnel their syscalls through. The
//! production path uses [`RealSpoolIo`]/[`RealSockIo`], which are direct
//! passthroughs the optimizer erases; chaos builds swap in the `Chaos*`
//! wrappers around the same trait objects.

use std::fmt;
use std::fs;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

/// One environment fault kind. Naming follows `rfv-faults` CLI style.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ChaosKind {
    /// Spool write fails with a simulated `EIO`.
    DiskEio,
    /// Spool write fails with a simulated `ENOSPC`.
    DiskEnospc,
    /// `fsync` on a spool temp file fails.
    DiskFsync,
    /// Tmp+rename installs a *truncated* record: the temp file is cut to a
    /// random prefix before the rename, so the record lands torn on disk and
    /// is only caught later by the envelope checksum.
    DiskTorn,
    /// Spool write makes partial progress (short write); callers must loop.
    DiskShort,
    /// Socket read returns a 1..=8 byte sliver instead of filling the buffer.
    NetShortRead,
    /// Socket write accepts only a 1..=8 byte sliver; the frame splits
    /// across `POLLOUT` drains.
    NetShortWrite,
    /// Socket read/write fails with `ECONNRESET`.
    NetReset,
    /// `accept(2)` fails with `ECONNABORTED` (the pending connection stays
    /// in the backlog and is retried on the next poll round).
    NetAccept,
    /// Frame stall: the socket op reports `WouldBlock` even though the fd is
    /// ready, parking the frame until the next poll round.
    NetStall,
}

impl ChaosKind {
    pub const ALL: [ChaosKind; 10] = [
        ChaosKind::DiskEio,
        ChaosKind::DiskEnospc,
        ChaosKind::DiskFsync,
        ChaosKind::DiskTorn,
        ChaosKind::DiskShort,
        ChaosKind::NetShortRead,
        ChaosKind::NetShortWrite,
        ChaosKind::NetReset,
        ChaosKind::NetAccept,
        ChaosKind::NetStall,
    ];

    pub fn name(self) -> &'static str {
        match self {
            ChaosKind::DiskEio => "disk_eio",
            ChaosKind::DiskEnospc => "disk_enospc",
            ChaosKind::DiskFsync => "disk_fsync",
            ChaosKind::DiskTorn => "disk_torn",
            ChaosKind::DiskShort => "disk_short",
            ChaosKind::NetShortRead => "net_short_read",
            ChaosKind::NetShortWrite => "net_short_write",
            ChaosKind::NetReset => "net_reset",
            ChaosKind::NetAccept => "net_accept",
            ChaosKind::NetStall => "net_stall",
        }
    }

    pub fn parse(s: &str) -> Option<ChaosKind> {
        ChaosKind::ALL.iter().copied().find(|k| k.name() == s)
    }

    pub fn index(self) -> usize {
        ChaosKind::ALL.iter().position(|&k| k == self).unwrap()
    }
}

impl fmt::Display for ChaosKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

const PPM: u64 = 1_000_000;

/// A parsed chaos specification: a per-kind firing rate (stored in parts per
/// million so the plan stays `Copy + Eq`) plus the base seed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChaosPlan {
    rates_ppm: [u32; ChaosKind::ALL.len()],
    pub seed: u64,
}

impl ChaosPlan {
    /// The empty plan: nothing ever fires.
    pub fn none() -> ChaosPlan {
        ChaosPlan {
            rates_ppm: [0; ChaosKind::ALL.len()],
            seed: 0,
        }
    }

    /// Parse a spec like `disk_torn:0.05,net_reset:0.02`. Rates are
    /// probabilities in `[0, 1]`; `all:RATE` applies one rate to every kind.
    /// Mirrors `FaultPlan::parse` from rfv-faults.
    pub fn parse(spec: &str, seed: u64) -> Result<ChaosPlan, String> {
        let mut plan = ChaosPlan::none();
        plan.seed = seed;
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (name, rate) = match part.split_once(':') {
                Some((name, rate)) => {
                    let rate: f64 = rate
                        .parse()
                        .map_err(|_| format!("chaos: bad rate in {part:?}"))?;
                    if !(0.0..=1.0).contains(&rate) {
                        return Err(format!("chaos: rate out of [0,1] in {part:?}"));
                    }
                    (name, rate)
                }
                None => (part, 0.01),
            };
            let ppm = (rate * PPM as f64).round() as u32;
            if name == "all" {
                plan.rates_ppm = [ppm; ChaosKind::ALL.len()];
            } else {
                let kind = ChaosKind::parse(name)
                    .ok_or_else(|| format!("chaos: unknown fault kind {name:?}"))?;
                plan.rates_ppm[kind.index()] = ppm;
            }
        }
        Ok(plan)
    }

    pub fn rate_ppm(&self, kind: ChaosKind) -> u32 {
        self.rates_ppm[kind.index()]
    }

    pub fn is_empty(&self) -> bool {
        self.rates_ppm.iter().all(|&r| r == 0)
    }

    /// Human-readable one-liner, e.g. `disk_torn:0.05 net_reset:0.02 seed=7`.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        for kind in ChaosKind::ALL {
            let ppm = self.rate_ppm(kind);
            if ppm > 0 {
                if !out.is_empty() {
                    out.push(' ');
                }
                out.push_str(&format!("{}:{}", kind, ppm as f64 / PPM as f64));
            }
        }
        if out.is_empty() {
            out.push_str("(none)");
        }
        out.push_str(&format!(" seed={}", self.seed));
        out
    }
}

const GAMMA: u64 = 0x9e37_79b9_7f4a_7c15;

fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Shared, thread-safe injector. Each kind owns an independent splitmix64
/// stream stepped with an atomic `fetch_add`, so draws are deterministic per
/// stream regardless of interleaving with other kinds, and concurrent draws
/// on one stream never repeat a value.
pub struct ChaosInjector {
    plan: ChaosPlan,
    streams: [AtomicU64; ChaosKind::ALL.len()],
    fired: [AtomicU64; ChaosKind::ALL.len()],
    /// Runtime intensity knob in parts-per-thousand of the plan's rates.
    /// 1000 = nominal, 0 = chaos off. Lets tests storm then heal.
    scale_pm: AtomicU64,
}

impl ChaosInjector {
    pub fn new(plan: ChaosPlan) -> ChaosInjector {
        let streams = std::array::from_fn(|i| {
            // Decorrelate per-kind streams the same way rfv-faults does.
            AtomicU64::new(plan.seed ^ ((i as u64 + 1).wrapping_mul(0xa076_1d64_78bd_642f)))
        });
        ChaosInjector {
            plan,
            streams,
            fired: std::array::from_fn(|_| AtomicU64::new(0)),
            scale_pm: AtomicU64::new(1000),
        }
    }

    pub fn plan(&self) -> ChaosPlan {
        self.plan
    }

    fn next(&self, kind: ChaosKind) -> u64 {
        let old = self.streams[kind.index()].fetch_add(GAMMA, Ordering::Relaxed);
        mix(old.wrapping_add(GAMMA))
    }

    /// Scale all rates at runtime: 1.0 = nominal, 0.0 = chaos off.
    pub fn set_scale(&self, scale: f64) {
        let pm = (scale.clamp(0.0, 1.0) * 1000.0).round() as u64;
        self.scale_pm.store(pm, Ordering::Relaxed);
    }

    /// Draw from `kind`'s stream and decide whether this fault fires.
    pub fn should_fire(&self, kind: ChaosKind) -> bool {
        let rate = self.plan.rate_ppm(kind) as u64 * self.scale_pm.load(Ordering::Relaxed) / 1000;
        if rate == 0 {
            return false;
        }
        let hit = self.next(kind) % PPM < rate;
        if hit {
            self.fired[kind.index()].fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// Deterministic parameter draw in `0..n` from `kind`'s stream.
    pub fn roll(&self, kind: ChaosKind, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next(kind) % n
        }
    }

    pub fn fired(&self, kind: ChaosKind) -> u64 {
        self.fired[kind.index()].load(Ordering::Relaxed)
    }

    pub fn total_fired(&self) -> u64 {
        self.fired.iter().map(|f| f.load(Ordering::Relaxed)).sum()
    }
}

// ---------------------------------------------------------------------------
// Spool I/O boundary
// ---------------------------------------------------------------------------

/// The syscalls `persist.rs` needs for durable record installation. Kept
/// deliberately minimal: a short-write-capable `write`, `fsync`, and the
/// atomic-install `rename`.
pub trait SpoolIo: Send + Sync {
    fn write(&self, file: &mut fs::File, buf: &[u8]) -> io::Result<usize>;
    fn sync(&self, file: &fs::File) -> io::Result<()>;
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
}

/// Production passthrough.
pub struct RealSpoolIo;

impl SpoolIo for RealSpoolIo {
    fn write(&self, file: &mut fs::File, buf: &[u8]) -> io::Result<usize> {
        file.write(buf)
    }

    fn sync(&self, file: &fs::File) -> io::Result<()> {
        file.sync_all()
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        fs::rename(from, to)
    }
}

/// Chaos wrapper: consults the injector before delegating.
pub struct ChaosSpoolIo {
    chaos: std::sync::Arc<ChaosInjector>,
}

impl ChaosSpoolIo {
    pub fn new(chaos: std::sync::Arc<ChaosInjector>) -> ChaosSpoolIo {
        ChaosSpoolIo { chaos }
    }
}

impl SpoolIo for ChaosSpoolIo {
    fn write(&self, file: &mut fs::File, buf: &[u8]) -> io::Result<usize> {
        if self.chaos.should_fire(ChaosKind::DiskEio) {
            return Err(io::Error::other("chaos: simulated EIO"));
        }
        if self.chaos.should_fire(ChaosKind::DiskEnospc) {
            return Err(io::Error::other("chaos: simulated ENOSPC"));
        }
        if buf.len() > 1 && self.chaos.should_fire(ChaosKind::DiskShort) {
            let n = 1 + self.chaos.roll(ChaosKind::DiskShort, buf.len() as u64 - 1) as usize;
            return file.write(&buf[..n]);
        }
        file.write(buf)
    }

    fn sync(&self, file: &fs::File) -> io::Result<()> {
        if self.chaos.should_fire(ChaosKind::DiskFsync) {
            return Err(io::Error::other("chaos: simulated fsync failure"));
        }
        file.sync_all()
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        if self.chaos.should_fire(ChaosKind::DiskTorn) {
            // Install a torn record: cut the temp file to a strict prefix,
            // then let the rename succeed. The caller believes the record is
            // durable; only the envelope checksum catches it later.
            if let Ok(meta) = fs::metadata(from) {
                let len = meta.len();
                if len > 0 {
                    let keep = self.chaos.roll(ChaosKind::DiskTorn, len);
                    if let Ok(f) = fs::OpenOptions::new().write(true).open(from) {
                        let _ = f.set_len(keep);
                    }
                }
            }
        }
        fs::rename(from, to)
    }
}

// ---------------------------------------------------------------------------
// Socket I/O boundary
// ---------------------------------------------------------------------------

/// The syscalls `mux.rs` funnels every connection through.
pub trait SockIo: Send + Sync {
    fn read(&self, stream: &mut TcpStream, buf: &mut [u8]) -> io::Result<usize>;
    fn write(&self, stream: &mut TcpStream, buf: &[u8]) -> io::Result<usize>;
    fn accept(&self, listener: &TcpListener) -> io::Result<(TcpStream, std::net::SocketAddr)>;
}

/// Production passthrough.
pub struct RealSockIo;

impl SockIo for RealSockIo {
    fn read(&self, stream: &mut TcpStream, buf: &mut [u8]) -> io::Result<usize> {
        stream.read(buf)
    }

    fn write(&self, stream: &mut TcpStream, buf: &[u8]) -> io::Result<usize> {
        stream.write(buf)
    }

    fn accept(&self, listener: &TcpListener) -> io::Result<(TcpStream, std::net::SocketAddr)> {
        listener.accept()
    }
}

/// Chaos wrapper. `NetStall` is modelled as a spurious `WouldBlock`: the fd
/// was ready, but the op makes no progress, so the mux parks the frame until
/// the next poll round — a deterministic stall with no sleeping in the event
/// loop. (A stall rate of 1.0 would therefore livelock; storms use < 1.)
pub struct ChaosSockIo {
    chaos: std::sync::Arc<ChaosInjector>,
}

impl ChaosSockIo {
    pub fn new(chaos: std::sync::Arc<ChaosInjector>) -> ChaosSockIo {
        ChaosSockIo { chaos }
    }

    fn sliver(&self, kind: ChaosKind, len: usize) -> usize {
        ((1 + self.chaos.roll(kind, 8)) as usize).min(len)
    }
}

impl SockIo for ChaosSockIo {
    fn read(&self, stream: &mut TcpStream, buf: &mut [u8]) -> io::Result<usize> {
        if self.chaos.should_fire(ChaosKind::NetStall) {
            return Err(io::Error::new(io::ErrorKind::WouldBlock, "chaos: stall"));
        }
        if self.chaos.should_fire(ChaosKind::NetReset) {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionReset,
                "chaos: reset",
            ));
        }
        if buf.len() > 1 && self.chaos.should_fire(ChaosKind::NetShortRead) {
            let n = self.sliver(ChaosKind::NetShortRead, buf.len());
            return stream.read(&mut buf[..n]);
        }
        stream.read(buf)
    }

    fn write(&self, stream: &mut TcpStream, buf: &[u8]) -> io::Result<usize> {
        if self.chaos.should_fire(ChaosKind::NetStall) {
            return Err(io::Error::new(io::ErrorKind::WouldBlock, "chaos: stall"));
        }
        if self.chaos.should_fire(ChaosKind::NetReset) {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionReset,
                "chaos: reset",
            ));
        }
        if buf.len() > 1 && self.chaos.should_fire(ChaosKind::NetShortWrite) {
            let n = self.sliver(ChaosKind::NetShortWrite, buf.len());
            return stream.write(&buf[..n]);
        }
        stream.write(buf)
    }

    fn accept(&self, listener: &TcpListener) -> io::Result<(TcpStream, std::net::SocketAddr)> {
        if self.chaos.should_fire(ChaosKind::NetAccept) {
            // Fail without consuming: the pending connection stays queued in
            // the backlog and the next poll round retries it.
            return Err(io::Error::new(
                io::ErrorKind::ConnectionAborted,
                "chaos: accept",
            ));
        }
        listener.accept()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn kind_names_round_trip() {
        for kind in ChaosKind::ALL {
            assert_eq!(ChaosKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(ChaosKind::parse("nope"), None);
    }

    #[test]
    fn plan_parses_rates_and_wildcard() {
        let plan = ChaosPlan::parse("disk_torn:0.05,net_reset:0.5", 7).unwrap();
        assert_eq!(plan.rate_ppm(ChaosKind::DiskTorn), 50_000);
        assert_eq!(plan.rate_ppm(ChaosKind::NetReset), 500_000);
        assert_eq!(plan.rate_ppm(ChaosKind::DiskEio), 0);
        assert_eq!(plan.seed, 7);
        assert!(!plan.is_empty());

        let all = ChaosPlan::parse("all:0.01", 0).unwrap();
        for kind in ChaosKind::ALL {
            assert_eq!(all.rate_ppm(kind), 10_000);
        }

        // Bare kind defaults to 1%.
        let bare = ChaosPlan::parse("disk_eio", 0).unwrap();
        assert_eq!(bare.rate_ppm(ChaosKind::DiskEio), 10_000);

        assert!(ChaosPlan::parse("bogus:0.1", 0).is_err());
        assert!(ChaosPlan::parse("disk_eio:1.5", 0).is_err());
        assert!(ChaosPlan::parse("disk_eio:x", 0).is_err());
        assert!(ChaosPlan::parse("", 0).unwrap().is_empty());
    }

    #[test]
    fn injector_is_deterministic_per_seed() {
        let plan = ChaosPlan::parse("net_reset:0.3", 42).unwrap();
        let a = ChaosInjector::new(plan);
        let b = ChaosInjector::new(plan);
        let draws_a: Vec<bool> = (0..256)
            .map(|_| a.should_fire(ChaosKind::NetReset))
            .collect();
        let draws_b: Vec<bool> = (0..256)
            .map(|_| b.should_fire(ChaosKind::NetReset))
            .collect();
        assert_eq!(draws_a, draws_b);
        assert!(a.fired(ChaosKind::NetReset) > 0);
        // Roughly 30% of 256 draws; loose bounds, exact by determinism.
        let hits = draws_a.iter().filter(|&&h| h).count();
        assert!((40..=120).contains(&hits), "hits={hits}");

        let c = ChaosInjector::new(ChaosPlan::parse("net_reset:0.3", 43).unwrap());
        let draws_c: Vec<bool> = (0..256)
            .map(|_| c.should_fire(ChaosKind::NetReset))
            .collect();
        assert_ne!(draws_a, draws_c, "different seeds must differ");
    }

    #[test]
    fn streams_are_independent_across_kinds() {
        let plan = ChaosPlan::parse("all:0.5", 9).unwrap();
        let solo = ChaosInjector::new(plan);
        let reset_only: Vec<bool> = (0..64)
            .map(|_| solo.should_fire(ChaosKind::NetReset))
            .collect();

        // Interleave draws on another kind; NetReset's stream is unaffected.
        let mixed = ChaosInjector::new(plan);
        let mut reset_mixed = Vec::new();
        for _ in 0..64 {
            mixed.should_fire(ChaosKind::DiskEio);
            reset_mixed.push(mixed.should_fire(ChaosKind::NetReset));
            mixed.should_fire(ChaosKind::DiskTorn);
        }
        assert_eq!(reset_only, reset_mixed);
    }

    #[test]
    fn scale_zero_disables_and_restores() {
        let plan = ChaosPlan::parse("disk_eio:1.0", 1).unwrap();
        let inj = ChaosInjector::new(plan);
        assert!(inj.should_fire(ChaosKind::DiskEio));
        inj.set_scale(0.0);
        for _ in 0..32 {
            assert!(!inj.should_fire(ChaosKind::DiskEio));
        }
        inj.set_scale(1.0);
        assert!(inj.should_fire(ChaosKind::DiskEio));
    }

    #[test]
    fn roll_is_bounded() {
        let inj = ChaosInjector::new(ChaosPlan::parse("all:1.0", 3).unwrap());
        for _ in 0..128 {
            assert!(inj.roll(ChaosKind::DiskTorn, 10) < 10);
        }
        assert_eq!(inj.roll(ChaosKind::DiskTorn, 0), 0);
    }

    #[test]
    fn summary_lists_active_kinds() {
        let plan = ChaosPlan::parse("disk_torn:0.05,net_reset:0.02", 11).unwrap();
        let s = plan.summary();
        assert!(s.contains("disk_torn:0.05"), "{s}");
        assert!(s.contains("net_reset:0.02"), "{s}");
        assert!(s.contains("seed=11"), "{s}");
        assert!(ChaosPlan::none().summary().contains("(none)"));
    }

    #[test]
    fn chaos_spool_io_injects_write_failures() {
        let dir = std::env::temp_dir().join(format!("rfvd-chaos-unit-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let inj = Arc::new(ChaosInjector::new(
            ChaosPlan::parse("disk_eio:1.0", 5).unwrap(),
        ));
        let io = ChaosSpoolIo::new(inj.clone());
        let mut f = fs::File::create(dir.join("x")).unwrap();
        assert!(io.write(&mut f, b"hello").is_err());
        inj.set_scale(0.0);
        assert_eq!(io.write(&mut f, b"hello").unwrap(), 5);
        let _ = fs::remove_dir_all(&dir);
    }
}
