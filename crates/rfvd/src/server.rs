//! The `rfvd` server: the poll-multiplexed connection layer, the
//! durable job spool, and the worker runners that execute jobs on a
//! persistent [`rfv_bench::pool::Pool`].
//!
//! ## Execution model
//!
//! * A single **multiplexer** thread ([`crate::mux`]) owns the
//!   listener and every connection: nonblocking sockets driven by one
//!   `poll(2)` loop, so a thousand idle clients cost file descriptors,
//!   not thread stacks, and a closed connection is reaped the moment
//!   it closes. Validation is complete *before* enqueueing: spec
//!   parse, machine lookup, and [`rfv_sim::SimConfig::validate`] all
//!   happen in [`validate_submit`], so a malformed job is a typed
//!   error to its submitter and never reaches a worker.
//! * When a spool directory is configured, every accepted job is
//!   journaled ([`crate::persist`]) *before* its submitter hears
//!   `Accepted`; a restarted daemon replays unfinished records, so a
//!   crash loses no accepted work.
//! * `jobs` **worker runners** on a dedicated pool pop jobs and drive
//!   them through [`SlicedSim`] in bounded cycle slices. Between
//!   slices a normal-priority job checks for waiting high-priority
//!   work and, if any, snapshots itself into a [`rfv_sim::Checkpoint`]
//!   (also journaled to the spool) and goes back to the queue front —
//!   checkpoint-backed preemption. Slicing and preemption are
//!   invisible in results: the stats JSON of a preempted run is
//!   byte-identical to an uninterrupted one.
//!
//! ## Shutdown
//!
//! [`ServerHandle::begin_drain`] (wired to SIGTERM in the binary)
//! stops the acceptor, makes new submissions fail with
//! [`ErrorCode::ShuttingDown`], lets queued and running jobs finish,
//! and then [`ServerHandle::join`] reaps the workers and the
//! multiplexer — which exits only after every accepted job's reply
//! has been written.

use std::collections::{HashMap, VecDeque};
use std::io;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::mpsc::channel;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use rfv_bench::harness::machine_config;
use rfv_bench::pool::Pool;
use rfv_sim::{Checkpoint, SimConfig, SlicedSim};

use crate::cache::{CachedKernel, CompileCache};
use crate::chaos::{
    ChaosInjector, ChaosPlan, ChaosSockIo, ChaosSpoolIo, RealSockIo, RealSpoolIo, SockIo, SpoolIo,
};
use crate::mux::{wake_pair, Mux, Waker};
use crate::persist::Spool;
use crate::proto::{
    CacheOutcome, ErrorCode, JobRequest, JobResult, Priority, ProtoError, Response, ServerStats,
};
use crate::queue::{Job, JobQueue, ReplyFn};
use crate::result_stats_json;
use crate::spec::JobSpec;

/// How a server is stood up.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address (`127.0.0.1:0` picks a free port).
    pub addr: String,
    /// Concurrent job runners.
    pub jobs: usize,
    /// Queue capacity beyond the running jobs.
    pub queue_depth: usize,
    /// Cycles per execution slice; preemption is only possible at
    /// slice boundaries. `0` disables slicing (jobs run to completion
    /// in one slice and are never preempted).
    pub max_cycles_per_slice: u64,
    /// Compile-cache capacity in entries; `0` means unbounded. When
    /// full, the least-recently-used kernel is evicted.
    pub cache_entries: usize,
    /// Directory for the durable job spool; `None` disables
    /// persistence (accepted jobs die with the process).
    pub spool_dir: Option<PathBuf>,
    /// Completed/quarantined spool records to retain as dedupe
    /// memory before compaction prunes the oldest; `0` = unbounded.
    pub spool_max_records: usize,
    /// Environment fault-injection plan (empty in production).
    pub chaos: ChaosPlan,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            jobs: 2,
            queue_depth: 64,
            max_cycles_per_slice: 50_000,
            cache_entries: 0,
            spool_dir: None,
            spool_max_records: 4096,
            chaos: ChaosPlan::none(),
        }
    }
}

/// What a nonce is currently known to be.
pub(crate) enum NonceEntry {
    /// The job is queued or running; attached waiters get a copy of
    /// the outcome when it finishes.
    Inflight(Vec<ReplyFn>),
    /// The job finished; the recorded reply is replayed verbatim.
    Done(Response),
}

/// In-memory idempotency index, FIFO-bounded on completed entries.
/// Mirrors the spool's retained `.done` records (which re-seed it
/// after a restart) but also covers spool-less daemons.
pub(crate) struct NonceTable {
    entries: HashMap<u64, NonceEntry>,
    done_order: VecDeque<u64>,
    cap: usize,
}

impl NonceTable {
    fn new(cap: usize) -> NonceTable {
        NonceTable {
            entries: HashMap::new(),
            done_order: VecDeque::new(),
            cap: cap.max(1),
        }
    }
}

/// The dedupe decision for one submission.
pub(crate) enum NonceGate {
    /// Never seen: run the job (the waiter is handed back to become
    /// its reply).
    New(ReplyFn),
    /// Seen and finished: replay this recorded reply, run nothing.
    Replayed(Response),
    /// Seen and still in flight: the waiter was attached to the
    /// running job; it will be answered when the job finishes.
    Attached,
}

/// Consecutive spool-write failures that trip the disk brownout.
const DISK_FAIL_THRESHOLD: u32 = 3;

pub(crate) struct ServerState {
    pub(crate) queue: JobQueue,
    pub(crate) cache: CompileCache,
    pub(crate) spool: Option<Spool>,
    pub(crate) slice_cycles: u64,
    pub(crate) draining: AtomicBool,
    pub(crate) submitted: AtomicU64,
    pub(crate) completed: AtomicU64,
    pub(crate) rejected: AtomicU64,
    pub(crate) failed: AtomicU64,
    pub(crate) preemptions: AtomicU64,
    pub(crate) active: AtomicU64,
    pub(crate) conns_open: AtomicU64,
    pub(crate) conns_total: AtomicU64,
    pub(crate) replayed: AtomicU64,
    pub(crate) deduped: AtomicU64,
    pub(crate) shed: AtomicU64,
    pub(crate) brownouts: AtomicU64,
    pub(crate) nonces: Mutex<NonceTable>,
    pub(crate) disk_fail_streak: AtomicU32,
    pub(crate) disk_brownout: AtomicBool,
    pub(crate) queue_brownout: AtomicBool,
}

impl ServerState {
    pub(crate) fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    pub(crate) fn stats(&self) -> ServerStats {
        ServerStats {
            submitted: self.submitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            cache_hits: self.cache.hits(),
            cache_misses: self.cache.misses(),
            preemptions: self.preemptions.load(Ordering::Relaxed),
            queued: self.queue.len() as u64,
            active: self.active.load(Ordering::Relaxed),
            cache_evictions: self.cache.evictions(),
            cache_entries: self.cache.len() as u64,
            conns_open: self.conns_open.load(Ordering::Relaxed),
            conns_total: self.conns_total.load(Ordering::Relaxed),
            replayed: self.replayed.load(Ordering::Relaxed),
            deduped: self.deduped.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            brownouts: self.brownouts.load(Ordering::Relaxed),
            brownout: u64::from(self.in_brownout()),
            spool_records: self.spool.as_ref().map_or(0, Spool::records),
            spool_compactions: self.spool.as_ref().map_or(0, Spool::compactions),
        }
    }

    /// Journals an accepted submission when persistence is on, and
    /// feeds the disk-brownout failure streak either way.
    pub(crate) fn journal_accept(&self, req: &JobRequest) -> io::Result<Option<u64>> {
        match &self.spool {
            Some(spool) => {
                let result = spool.journal(req);
                self.note_spool_write(result.is_ok());
                result.map(Some)
            }
            None => Ok(None),
        }
    }

    /// Erases the spool record of a submission the queue bounced.
    pub(crate) fn forget_spooled(&self, id: Option<u64>) {
        if let (Some(spool), Some(id)) = (&self.spool, id) {
            spool.forget(id);
        }
    }

    // ------------------------------------------------ nonce dedupe

    /// Routes a submission through the idempotency index. Only the
    /// multiplexer thread calls this, so lookup and registration
    /// cannot interleave with another submission of the same nonce.
    pub(crate) fn nonce_gate(&self, nonce: u64, waiter: ReplyFn) -> NonceGate {
        if nonce == 0 {
            return NonceGate::New(waiter);
        }
        let mut table = self.nonces.lock().expect("nonce lock");
        match table.entries.get_mut(&nonce) {
            None => NonceGate::New(waiter),
            Some(NonceEntry::Done(response)) => {
                self.deduped.fetch_add(1, Ordering::Relaxed);
                NonceGate::Replayed(response.clone())
            }
            Some(NonceEntry::Inflight(waiters)) => {
                self.deduped.fetch_add(1, Ordering::Relaxed);
                waiters.push(waiter);
                NonceGate::Attached
            }
        }
    }

    /// Marks a nonce in flight. Must happen *before* the job is
    /// queued: a worker may finish it the instant it is submitted,
    /// and `nonce_finish` needs the entry to transition.
    pub(crate) fn nonce_register(&self, nonce: u64) {
        if nonce == 0 {
            return;
        }
        let mut table = self.nonces.lock().expect("nonce lock");
        table
            .entries
            .insert(nonce, NonceEntry::Inflight(Vec::new()));
    }

    /// Rolls back a registration whose submission the queue bounced.
    /// Returns any waiters that attached in the meantime so the
    /// caller can answer them with the same rejection.
    pub(crate) fn nonce_unregister(&self, nonce: u64) -> Vec<ReplyFn> {
        if nonce == 0 {
            return Vec::new();
        }
        let mut table = self.nonces.lock().expect("nonce lock");
        match table.entries.remove(&nonce) {
            Some(NonceEntry::Inflight(waiters)) => waiters,
            Some(done @ NonceEntry::Done(_)) => {
                // the job somehow finished; keep the record
                table.entries.insert(nonce, done);
                Vec::new()
            }
            None => Vec::new(),
        }
    }

    /// Records a nonce's final reply and returns the waiters to
    /// answer. FIFO-evicts the oldest completed entries past the cap.
    pub(crate) fn nonce_finish(&self, nonce: u64, response: &Response) -> Vec<ReplyFn> {
        if nonce == 0 {
            return Vec::new();
        }
        let mut table = self.nonces.lock().expect("nonce lock");
        let waiters = match table
            .entries
            .insert(nonce, NonceEntry::Done(response.clone()))
        {
            Some(NonceEntry::Inflight(waiters)) => waiters,
            _ => Vec::new(),
        };
        table.done_order.push_back(nonce);
        while table.done_order.len() > table.cap {
            let oldest = table.done_order.pop_front().expect("non-empty");
            // an evicted nonce may have been re-registered in flight;
            // only completed entries are evictable
            if matches!(table.entries.get(&oldest), Some(NonceEntry::Done(_))) {
                table.entries.remove(&oldest);
            }
        }
        waiters
    }

    // --------------------------------------------------- brownout

    /// Feeds the disk health tracker: [`DISK_FAIL_THRESHOLD`]
    /// consecutive spool-write failures enter the disk brownout; the
    /// first success (real write or probe) exits it.
    pub(crate) fn note_spool_write(&self, ok: bool) {
        if ok {
            self.disk_fail_streak.store(0, Ordering::Relaxed);
            self.disk_brownout.store(false, Ordering::SeqCst);
        } else {
            let streak = self.disk_fail_streak.fetch_add(1, Ordering::Relaxed) + 1;
            if streak >= DISK_FAIL_THRESHOLD && !self.disk_brownout.swap(true, Ordering::SeqCst) {
                self.brownouts.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Probes the spool while in disk brownout; a successful probe
    /// heals it. Driven from the multiplexer's idle ticks.
    pub(crate) fn spool_probe(&self) {
        if let Some(spool) = &self.spool {
            if self.disk_brownout.load(Ordering::SeqCst) {
                self.note_spool_write(spool.probe().is_ok());
            }
        }
    }

    /// Enters the queue brownout (called on a full-queue rejection).
    pub(crate) fn enter_queue_brownout(&self) {
        if !self.queue_brownout.swap(true, Ordering::SeqCst) {
            self.brownouts.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Exits the queue brownout once the backlog has drained to half
    /// capacity (hysteresis, so the daemon does not flap at the
    /// boundary).
    pub(crate) fn update_queue_brownout(&self) {
        if self.queue_brownout.load(Ordering::SeqCst)
            && self.queue.len() <= self.queue.capacity() / 2
        {
            self.queue_brownout.store(false, Ordering::SeqCst);
        }
    }

    pub(crate) fn in_disk_brownout(&self) -> bool {
        self.disk_brownout.load(Ordering::SeqCst)
    }

    pub(crate) fn in_queue_brownout(&self) -> bool {
        self.queue_brownout.load(Ordering::SeqCst)
    }

    pub(crate) fn in_brownout(&self) -> bool {
        self.in_disk_brownout() || self.in_queue_brownout()
    }
}

/// Everything [`validate_submit`] proves about a submission before it
/// may become a [`Job`].
pub(crate) struct ValidSubmit {
    pub(crate) spec: JobSpec,
    pub(crate) config: SimConfig,
    pub(crate) release_flags: bool,
}

/// Validates a submission end to end: spec parse, machine lookup,
/// overrides, config validation. All rejection paths are typed.
pub(crate) fn validate_submit(req: &JobRequest) -> Result<ValidSubmit, ProtoError> {
    let spec = match JobSpec::parse(&req.spec) {
        Ok(s) => s,
        Err(e) => return Err(ProtoError::new(ErrorCode::UnknownWorkload, e)),
    };
    let Some(mut config) = machine_config(&req.machine) else {
        return Err(ProtoError::new(
            ErrorCode::UnknownMachine,
            format!("unknown machine {:?}", req.machine),
        ));
    };
    if req.num_sms > 0 {
        config.num_sms = req.num_sms as usize;
    }
    if let Some(max_cycles) = req.max_cycles {
        config.max_cycles = max_cycles;
    }
    if let Err(e) = config.validate() {
        return Err(ProtoError::new(ErrorCode::BadConfig, e));
    }
    let release_flags = config.regfile.policy.uses_release_flags();
    Ok(ValidSubmit {
        spec,
        config,
        release_flags,
    })
}

/// A running server. Dropping the handle without [`ServerHandle::join`]
/// detaches the threads (fine for a process about to exit; tests
/// should join).
pub struct ServerHandle {
    local_addr: SocketAddr,
    state: Arc<ServerState>,
    chaos: Arc<ChaosInjector>,
    mux: Option<JoinHandle<()>>,
    pool: Option<Pool>,
    waker: Waker,
}

/// Binds `config.addr`, replays any unfinished spool records, and
/// starts `config.jobs` worker runners plus the multiplexer thread.
///
/// # Errors
///
/// The bind or spool-open error, verbatim.
pub fn serve(config: ServerConfig) -> io::Result<ServerHandle> {
    let listener = crate::mux::bind_reusable(&config.addr)?;
    let local_addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let chaos = Arc::new(ChaosInjector::new(config.chaos));
    let chaos_armed = !config.chaos.is_empty();
    let spool = match &config.spool_dir {
        Some(dir) => {
            let io: Box<dyn SpoolIo> = if chaos_armed {
                Box::new(ChaosSpoolIo::new(Arc::clone(&chaos)))
            } else {
                Box::new(RealSpoolIo)
            };
            Some(Spool::open_with(dir, io, config.spool_max_records)?)
        }
        None => None,
    };
    let nonce_cap = if config.spool_max_records > 0 {
        config.spool_max_records
    } else {
        65_536
    };
    let state = Arc::new(ServerState {
        queue: JobQueue::new(config.queue_depth),
        cache: CompileCache::with_capacity(config.cache_entries),
        spool,
        slice_cycles: config.max_cycles_per_slice,
        draining: AtomicBool::new(false),
        submitted: AtomicU64::new(0),
        completed: AtomicU64::new(0),
        rejected: AtomicU64::new(0),
        failed: AtomicU64::new(0),
        preemptions: AtomicU64::new(0),
        active: AtomicU64::new(0),
        conns_open: AtomicU64::new(0),
        conns_total: AtomicU64::new(0),
        replayed: AtomicU64::new(0),
        deduped: AtomicU64::new(0),
        shed: AtomicU64::new(0),
        brownouts: AtomicU64::new(0),
        nonces: Mutex::new(NonceTable::new(nonce_cap)),
        disk_fail_streak: AtomicU32::new(0),
        disk_brownout: AtomicBool::new(false),
        queue_brownout: AtomicBool::new(false),
    });

    replay_spool(&state)?;

    let pool = Pool::new(config.jobs.max(1));
    for _ in 0..config.jobs.max(1) {
        let state = Arc::clone(&state);
        pool.spawn(move || worker_loop(&state));
    }

    let (waker, wake_rx) = wake_pair()?;
    let (completions_tx, completions) = channel();
    let sock_io: Box<dyn SockIo> = if chaos_armed {
        Box::new(ChaosSockIo::new(Arc::clone(&chaos)))
    } else {
        Box::new(RealSockIo)
    };
    let mux = {
        let mux = Mux::new(
            listener,
            Arc::clone(&state),
            completions,
            completions_tx,
            waker.clone(),
            wake_rx,
            sock_io,
        );
        std::thread::Builder::new()
            .name("rfvd-mux".into())
            .spawn(move || mux.run())
            .expect("spawn multiplexer")
    };

    Ok(ServerHandle {
        local_addr,
        state,
        chaos,
        mux: Some(mux),
        pool: Some(pool),
        waker,
    })
}

/// Re-enqueues every accepted-but-unfinished job found in the spool.
/// Replayed jobs have no submitter to answer; their reply is a no-op
/// and their durable outcome is the `.done` record the worker writes.
fn replay_spool(state: &Arc<ServerState>) -> io::Result<()> {
    let Some(spool) = &state.spool else {
        return Ok(());
    };
    // Seed the nonce table from retained completed records first:
    // a client retrying across the restart gets the recorded reply,
    // not a second run. (`completed()` also quarantines torn `.done`
    // records, reviving their jobs for the replay pass below.)
    for done in spool.completed()? {
        if done.request.nonce != 0 {
            let _ = state.nonce_finish(done.request.nonce, &done.response);
        }
    }
    for spooled in spool.replay()? {
        let valid = match validate_submit(&spooled.request) {
            Ok(v) => v,
            Err(e) => {
                // accepted by a previous life but no longer runnable
                // (e.g. a machine table change): record the failure so
                // the job is done, not lost in a replay loop
                let _ = spool.record_done(spooled.id, &Response::Error(e));
                state.failed.fetch_add(1, Ordering::Relaxed);
                continue;
            }
        };
        // the checkpoint is advisory: a decode failure just means the
        // job reruns from cycle 0 (same final stats either way)
        let preemptions = spooled.checkpoint.as_ref().map_or(0, |(count, _)| *count);
        let resume = spooled
            .checkpoint
            .as_ref()
            .and_then(|(_, bytes)| Checkpoint::from_bytes(bytes).ok());
        let job = Job {
            request: spooled.request,
            spec: valid.spec,
            config: valid.config,
            release_flags: valid.release_flags,
            reply: Box::new(|_| {}),
            resume,
            preemptions,
            compiled: None,
            cache: None,
            spool_id: Some(spooled.id),
            spool_restored: true,
        };
        state.nonce_register(job.request.nonce);
        state.queue.restore(job);
        state.submitted.fetch_add(1, Ordering::Relaxed);
        state.replayed.fetch_add(1, Ordering::Relaxed);
    }
    Ok(())
}

impl ServerHandle {
    /// The bound address (with the real port when `:0` was requested).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Starts a graceful drain: stop accepting, reject new submits
    /// with [`ErrorCode::ShuttingDown`], finish queued and running
    /// jobs. Idempotent.
    pub fn begin_drain(&self) {
        self.state.draining.store(true, Ordering::SeqCst);
        self.state.queue.drain();
        self.waker.wake();
    }

    /// A local counter snapshot (same numbers [`crate::proto::Request::Stats`]
    /// serves remotely).
    pub fn stats(&self) -> ServerStats {
        self.state.stats()
    }

    /// The server's chaos injector: tests scale the storm up and down
    /// at runtime ([`ChaosInjector::set_scale`]) and read per-kind
    /// fire counts.
    pub fn chaos(&self) -> Arc<ChaosInjector> {
        Arc::clone(&self.chaos)
    }

    /// Drains (if not already draining) and reaps every thread: the
    /// worker runners — which finish all queued jobs first — and then
    /// the multiplexer, which exits once every accepted job's reply
    /// is written. Returns the final counter snapshot.
    pub fn join(mut self) -> ServerStats {
        self.begin_drain();
        // dropping the pool joins the workers, which drain the queue
        // first — every outcome reaches the multiplexer before this
        // returns
        drop(self.pool.take());
        self.waker.wake();
        if let Some(mux) = self.mux.take() {
            let _ = mux.join();
        }
        self.state.stats()
    }
}

impl Drop for ServerHandle {
    /// A handle dropped without [`ServerHandle::join`] (early return,
    /// panic unwind) still begins a drain: the pool's own `Drop` joins
    /// the worker runners, which only exit once the queue reports
    /// drained — without the flag, that join would block forever. The
    /// multiplexer sees the flag and winds itself down.
    fn drop(&mut self) {
        self.begin_drain();
    }
}

fn worker_loop(state: &Arc<ServerState>) {
    while let Some(job) = state.queue.pop() {
        state.active.fetch_add(1, Ordering::SeqCst);
        let preempted = run_job(state, job);
        state.active.fetch_sub(1, Ordering::SeqCst);
        if let Some(job) = preempted {
            state.queue.requeue_preempted(job);
        }
    }
}

fn sim_failed(e: impl std::fmt::Display) -> ProtoError {
    ProtoError::new(ErrorCode::SimFailed, e.to_string())
}

/// Delivers a job's final outcome: the spool's `.done` record first
/// (the durable reply — for a restored job, the only one), then the
/// nonce table's waiters, then the reply callback.
fn finish_job(state: &ServerState, job: Job, outcome: Result<JobResult, ProtoError>) {
    let response = match &outcome {
        Ok(result) => Response::Result(result.clone()),
        Err(e) => Response::Error(e.clone()),
    };
    if let (Some(spool), Some(id)) = (&state.spool, job.spool_id) {
        state.note_spool_write(spool.record_done(id, &response).is_ok());
    }
    for waiter in state.nonce_finish(job.request.nonce, &response) {
        waiter(outcome.clone());
    }
    (job.reply)(outcome);
}

/// Runs one job for (at most) one scheduling quantum. `Some(job)`
/// means it was preempted at a slice boundary and must be requeued;
/// `None` means a reply (result or error) was delivered.
fn run_job(state: &Arc<ServerState>, mut job: Job) -> Option<Job> {
    // compile, consulting the cache unless the job opted out; resumed
    // jobs carry their binary and skip this entirely. A cache hit
    // never even builds the source kernel: the lookup key is derived
    // from the spec itself.
    if job.compiled.is_none() {
        let build = || CachedKernel::build(&job.spec.build_kernel(), job.release_flags);
        let (compiled, outcome) = if job.request.use_cache {
            let key = job.spec.cache_key(job.release_flags);
            match state.cache.get_or_build(key, build) {
                Ok((c, true)) => (c, CacheOutcome::Hit),
                Ok((c, false)) => (c, CacheOutcome::Miss),
                Err(e) => {
                    state.failed.fetch_add(1, Ordering::Relaxed);
                    finish_job(state, job, Err(sim_failed(e)));
                    return None;
                }
            }
        } else {
            match build() {
                Ok(c) => (Arc::new(c), CacheOutcome::Bypass),
                Err(e) => {
                    state.failed.fetch_add(1, Ordering::Relaxed);
                    finish_job(state, job, Err(sim_failed(e)));
                    return None;
                }
            }
        };
        job.compiled = Some(compiled);
        job.cache = Some(outcome);
    }
    let cached = Arc::clone(job.compiled.as_ref().expect("compiled above"));
    let prog = Arc::clone(&cached.predecoded);

    let sim = match job.resume.take() {
        Some(checkpoint) => {
            match SlicedSim::resume_with_predecoded(
                &cached.compiled,
                &job.config,
                &checkpoint,
                Arc::clone(&prog),
            ) {
                Ok(s) => Ok(s),
                // a spool-restored checkpoint is advisory: rerun from
                // scratch rather than fail the job (slicing is
                // invisible in stats, so the result is identical)
                Err(_) if job.spool_restored => {
                    SlicedSim::with_predecoded(&cached.compiled, &job.config, &[], 0, prog)
                }
                Err(e) => Err(e),
            }
        }
        None => SlicedSim::with_predecoded(&cached.compiled, &job.config, &[], 0, prog),
    };
    let mut sim = match sim {
        Ok(s) => s,
        Err(e) => {
            state.failed.fetch_add(1, Ordering::Relaxed);
            finish_job(state, job, Err(sim_failed(e)));
            return None;
        }
    };
    let slice = if state.slice_cycles == 0 {
        u64::MAX
    } else {
        state.slice_cycles
    };
    loop {
        match sim.advance(slice) {
            Err(e) => {
                state.failed.fetch_add(1, Ordering::Relaxed);
                finish_job(state, job, Err(sim_failed(e)));
                return None;
            }
            Ok(true) => break,
            Ok(false) => {
                if job.request.priority == Priority::Normal && state.queue.has_high_waiting() {
                    let checkpoint = sim.checkpoint();
                    job.preemptions += 1;
                    // journal the snapshot so a crash mid-run resumes
                    // from this slice boundary instead of cycle 0
                    if let (Some(spool), Some(id)) = (&state.spool, job.spool_id) {
                        let _ =
                            spool.record_checkpoint(id, job.preemptions, &checkpoint.to_bytes());
                    }
                    job.resume = Some(checkpoint);
                    state.preemptions.fetch_add(1, Ordering::Relaxed);
                    return Some(job);
                }
            }
        }
    }
    match sim.finish() {
        Ok(run) => {
            let stats_json = result_stats_json(&run.result, job.config.num_sms);
            let result = JobResult {
                cycles: run.result.cycles,
                instrs: run.result.total(|s| s.instrs_issued),
                cache: job.cache.unwrap_or(CacheOutcome::Bypass),
                preemptions: job.preemptions,
                stats_json,
            };
            state.completed.fetch_add(1, Ordering::Relaxed);
            finish_job(state, job, Ok(result));
        }
        Err(e) => {
            state.failed.fetch_add(1, Ordering::Relaxed);
            finish_job(state, job, Err(sim_failed(e)));
        }
    }
    None
}
