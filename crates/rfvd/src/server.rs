//! The `rfvd` server: accept loop, per-connection protocol handling,
//! and the worker runners that execute jobs on a persistent
//! [`rfv_bench::pool::Pool`].
//!
//! ## Execution model
//!
//! * An **acceptor** thread takes connections and hands each to its
//!   own connection thread (clients are few and long-lived — the
//!   load generator model — so thread-per-connection is the simple
//!   correct choice).
//! * A connection thread parses `rfv-job-v1` frames. Validation is
//!   complete *before* enqueueing: spec parse, machine lookup, and
//!   [`rfv_sim::SimConfig::validate`] all happen on the connection
//!   thread, so a malformed job is a typed error to its submitter and
//!   never reaches a worker.
//! * `jobs` **worker runners** on a dedicated pool pop jobs and drive
//!   them through [`SlicedSim`] in bounded cycle slices. Between
//!   slices a normal-priority job checks for waiting high-priority
//!   work and, if any, snapshots itself into a [`rfv_sim::Checkpoint`]
//!   and goes back to the queue front — checkpoint-backed preemption.
//!   Slicing and preemption are invisible in results: the stats JSON
//!   of a preempted run is byte-identical to an uninterrupted one.
//!
//! ## Shutdown
//!
//! [`ServerHandle::begin_drain`] (wired to SIGTERM in the binary)
//! stops the acceptor, makes new submissions fail with
//! [`ErrorCode::ShuttingDown`], lets queued and running jobs finish,
//! and then [`ServerHandle::join`] reaps every thread.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::channel;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use rfv_bench::harness::machine_config;
use rfv_bench::pool::Pool;
use rfv_sim::SlicedSim;

use crate::cache::{CachedKernel, CompileCache};
use crate::proto::{
    write_frame, CacheOutcome, ErrorCode, FrameReader, JobRequest, JobResult, Priority, ProtoError,
    Recv, Request, Response, ServerStats,
};
use crate::queue::{Job, JobQueue, Submit, SubmitError};
use crate::result_stats_json;
use crate::spec::JobSpec;

/// How a server is stood up.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address (`127.0.0.1:0` picks a free port).
    pub addr: String,
    /// Concurrent job runners.
    pub jobs: usize,
    /// Queue capacity beyond the running jobs.
    pub queue_depth: usize,
    /// Cycles per execution slice; preemption is only possible at
    /// slice boundaries. `0` disables slicing (jobs run to completion
    /// in one slice and are never preempted).
    pub max_cycles_per_slice: u64,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            jobs: 2,
            queue_depth: 64,
            max_cycles_per_slice: 50_000,
        }
    }
}

struct ServerState {
    queue: JobQueue,
    cache: CompileCache,
    slice_cycles: u64,
    draining: AtomicBool,
    submitted: AtomicU64,
    completed: AtomicU64,
    rejected: AtomicU64,
    failed: AtomicU64,
    preemptions: AtomicU64,
    active: AtomicU64,
}

impl ServerState {
    fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    fn stats(&self) -> ServerStats {
        ServerStats {
            submitted: self.submitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            cache_hits: self.cache.hits(),
            cache_misses: self.cache.misses(),
            preemptions: self.preemptions.load(Ordering::Relaxed),
            queued: self.queue.len() as u64,
            active: self.active.load(Ordering::Relaxed),
        }
    }
}

/// A running server. Dropping the handle without [`ServerHandle::join`]
/// detaches the threads (fine for a process about to exit; tests
/// should join).
pub struct ServerHandle {
    local_addr: SocketAddr,
    state: Arc<ServerState>,
    acceptor: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
    pool: Option<Pool>,
}

/// Binds `config.addr` and starts the acceptor and `config.jobs`
/// worker runners.
///
/// # Errors
///
/// The bind error, verbatim.
pub fn serve(config: ServerConfig) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let local_addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let state = Arc::new(ServerState {
        queue: JobQueue::new(config.queue_depth),
        cache: CompileCache::new(),
        slice_cycles: config.max_cycles_per_slice,
        draining: AtomicBool::new(false),
        submitted: AtomicU64::new(0),
        completed: AtomicU64::new(0),
        rejected: AtomicU64::new(0),
        failed: AtomicU64::new(0),
        preemptions: AtomicU64::new(0),
        active: AtomicU64::new(0),
    });

    let pool = Pool::new(config.jobs.max(1));
    for _ in 0..config.jobs.max(1) {
        let state = Arc::clone(&state);
        pool.spawn(move || worker_loop(&state));
    }

    let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
    let acceptor = {
        let state = Arc::clone(&state);
        let conns = Arc::clone(&conns);
        std::thread::Builder::new()
            .name("rfvd-accept".into())
            .spawn(move || accept_loop(&listener, &state, &conns))
            .expect("spawn acceptor")
    };

    Ok(ServerHandle {
        local_addr,
        state,
        acceptor: Some(acceptor),
        conns,
        pool: Some(pool),
    })
}

impl ServerHandle {
    /// The bound address (with the real port when `:0` was requested).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Starts a graceful drain: stop accepting, reject new submits
    /// with [`ErrorCode::ShuttingDown`], finish queued and running
    /// jobs. Idempotent.
    pub fn begin_drain(&self) {
        self.state.draining.store(true, Ordering::SeqCst);
        self.state.queue.drain();
    }

    /// A local counter snapshot (same numbers [`Request::Stats`]
    /// serves remotely).
    pub fn stats(&self) -> ServerStats {
        self.state.stats()
    }

    /// Drains (if not already draining) and reaps every thread: the
    /// acceptor, the worker runners — which finish all queued jobs
    /// first — and the connection threads, which exit once their
    /// replies are written. Returns the final counter snapshot.
    pub fn join(mut self) -> ServerStats {
        self.begin_drain();
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        // dropping the pool joins the workers, which drain the queue
        // first — every pending reply is sent before this returns
        drop(self.pool.take());
        let handles = std::mem::take(&mut *self.conns.lock().expect("conn registry"));
        for h in handles {
            let _ = h.join();
        }
        self.state.stats()
    }
}

impl Drop for ServerHandle {
    /// A handle dropped without [`ServerHandle::join`] (early return,
    /// panic unwind) still begins a drain: the pool's own `Drop` joins
    /// the worker runners, which only exit once the queue reports
    /// drained — without the flag, that join would block forever.
    fn drop(&mut self) {
        self.begin_drain();
    }
}

fn accept_loop(
    listener: &TcpListener,
    state: &Arc<ServerState>,
    conns: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    loop {
        if state.draining() {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                let state = Arc::clone(state);
                let handle = std::thread::Builder::new()
                    .name("rfvd-conn".into())
                    .spawn(move || serve_connection(&state, stream))
                    .expect("spawn connection thread");
                conns.lock().expect("conn registry").push(handle);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

fn send(stream: &mut TcpStream, response: &Response) -> bool {
    write_frame(stream, &response.encode()).is_ok()
}

fn serve_connection(state: &Arc<ServerState>, mut stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    let mut reader = FrameReader::new();
    loop {
        match reader.poll(&mut stream) {
            Ok(Recv::Idle) => {
                if state.draining() {
                    return;
                }
            }
            Ok(Recv::Closed | Recv::Truncated) => return,
            Ok(Recv::Oversized(len)) => {
                // the stream is unsynchronized: reply, then hang up
                let e = ProtoError::new(
                    ErrorCode::Oversized,
                    format!("frame of {len} bytes exceeds the 1 MiB payload limit"),
                );
                send(&mut stream, &Response::Error(e));
                return;
            }
            Ok(Recv::Payload(payload)) => match Request::decode(&payload) {
                Ok(Request::Stats) => {
                    if !send(&mut stream, &Response::Stats(state.stats())) {
                        return;
                    }
                }
                Ok(Request::Submit(req)) => {
                    let response = handle_submit(state, req);
                    if !send(&mut stream, &response) {
                        return;
                    }
                }
                Err(e) => {
                    let fatal = e.code.poisons_stream();
                    send(&mut stream, &Response::Error(e));
                    if fatal {
                        return;
                    }
                }
            },
            Err(_) => return,
        }
    }
}

/// Validates a submission end to end and, if sound, enqueues it and
/// blocks until its outcome. All rejection paths are typed.
fn handle_submit(state: &Arc<ServerState>, req: JobRequest) -> Response {
    if state.draining() {
        return Response::Error(ProtoError::new(
            ErrorCode::ShuttingDown,
            "daemon is draining",
        ));
    }
    let spec = match JobSpec::parse(&req.spec) {
        Ok(s) => s,
        Err(e) => return Response::Error(ProtoError::new(ErrorCode::UnknownWorkload, e)),
    };
    let Some(mut config) = machine_config(&req.machine) else {
        return Response::Error(ProtoError::new(
            ErrorCode::UnknownMachine,
            format!("unknown machine {:?}", req.machine),
        ));
    };
    if req.num_sms > 0 {
        config.num_sms = req.num_sms as usize;
    }
    if let Some(max_cycles) = req.max_cycles {
        config.max_cycles = max_cycles;
    }
    if let Err(e) = config.validate() {
        return Response::Error(ProtoError::new(ErrorCode::BadConfig, e));
    }
    let release_flags = config.regfile.policy.uses_release_flags();
    let (reply, outcome) = channel();
    let job = Job {
        request: req,
        spec,
        config,
        release_flags,
        reply,
        resume: None,
        preemptions: 0,
        compiled: None,
        cache: None,
    };
    match state.queue.submit(job) {
        Submit::Rejected(_job, SubmitError::Full) => {
            state.rejected.fetch_add(1, Ordering::Relaxed);
            Response::Error(ProtoError::new(
                ErrorCode::QueueFull,
                format!("queue at capacity ({} waiting)", state.queue.len()),
            ))
        }
        Submit::Rejected(_job, SubmitError::Draining) => Response::Error(ProtoError::new(
            ErrorCode::ShuttingDown,
            "daemon is draining",
        )),
        Submit::Accepted => {
            state.submitted.fetch_add(1, Ordering::Relaxed);
            match outcome.recv() {
                Ok(Ok(result)) => Response::Result(result),
                Ok(Err(e)) => Response::Error(e),
                Err(_) => Response::Error(ProtoError::new(
                    ErrorCode::SimFailed,
                    "worker dropped the job",
                )),
            }
        }
    }
}

fn worker_loop(state: &Arc<ServerState>) {
    while let Some(job) = state.queue.pop() {
        state.active.fetch_add(1, Ordering::SeqCst);
        let preempted = run_job(state, job);
        state.active.fetch_sub(1, Ordering::SeqCst);
        if let Some(job) = preempted {
            state.queue.requeue_preempted(job);
        }
    }
}

fn sim_failed(e: impl std::fmt::Display) -> ProtoError {
    ProtoError::new(ErrorCode::SimFailed, e.to_string())
}

/// Runs one job for (at most) one scheduling quantum. `Some(job)`
/// means it was preempted at a slice boundary and must be requeued;
/// `None` means a reply (result or error) was sent.
fn run_job(state: &Arc<ServerState>, mut job: Job) -> Option<Job> {
    // compile, consulting the cache unless the job opted out; resumed
    // jobs carry their binary and skip this entirely. A cache hit
    // never even builds the source kernel: the lookup key is derived
    // from the spec itself.
    if job.compiled.is_none() {
        let build = || CachedKernel::build(&job.spec.build_kernel(), job.release_flags);
        let (compiled, outcome) = if job.request.use_cache {
            let key = job.spec.cache_key(job.release_flags);
            match state.cache.get_or_build(key, build) {
                Ok((c, true)) => (c, CacheOutcome::Hit),
                Ok((c, false)) => (c, CacheOutcome::Miss),
                Err(e) => {
                    state.failed.fetch_add(1, Ordering::Relaxed);
                    let _ = job.reply.send(Err(sim_failed(e)));
                    return None;
                }
            }
        } else {
            match build() {
                Ok(c) => (Arc::new(c), CacheOutcome::Bypass),
                Err(e) => {
                    state.failed.fetch_add(1, Ordering::Relaxed);
                    let _ = job.reply.send(Err(sim_failed(e)));
                    return None;
                }
            }
        };
        job.compiled = Some(compiled);
        job.cache = Some(outcome);
    }
    let cached = Arc::clone(job.compiled.as_ref().expect("compiled above"));
    let prog = Arc::clone(&cached.predecoded);

    let sim = match job.resume.take() {
        Some(checkpoint) => {
            SlicedSim::resume_with_predecoded(&cached.compiled, &job.config, &checkpoint, prog)
        }
        None => SlicedSim::with_predecoded(&cached.compiled, &job.config, &[], 0, prog),
    };
    let mut sim = match sim {
        Ok(s) => s,
        Err(e) => {
            state.failed.fetch_add(1, Ordering::Relaxed);
            let _ = job.reply.send(Err(sim_failed(e)));
            return None;
        }
    };
    let slice = if state.slice_cycles == 0 {
        u64::MAX
    } else {
        state.slice_cycles
    };
    loop {
        match sim.advance(slice) {
            Err(e) => {
                state.failed.fetch_add(1, Ordering::Relaxed);
                let _ = job.reply.send(Err(sim_failed(e)));
                return None;
            }
            Ok(true) => break,
            Ok(false) => {
                if job.request.priority == Priority::Normal && state.queue.has_high_waiting() {
                    job.resume = Some(sim.checkpoint());
                    job.preemptions += 1;
                    state.preemptions.fetch_add(1, Ordering::Relaxed);
                    return Some(job);
                }
            }
        }
    }
    match sim.finish() {
        Ok(run) => {
            let stats_json = result_stats_json(&run.result, job.config.num_sms);
            let result = JobResult {
                cycles: run.result.cycles,
                instrs: run.result.total(|s| s.instrs_issued),
                cache: job.cache.unwrap_or(CacheOutcome::Bypass),
                preemptions: job.preemptions,
                stats_json,
            };
            state.completed.fetch_add(1, Ordering::Relaxed);
            let _ = job.reply.send(Ok(result));
        }
        Err(e) => {
            state.failed.fetch_add(1, Ordering::Relaxed);
            let _ = job.reply.send(Err(sim_failed(e)));
        }
    }
    None
}
