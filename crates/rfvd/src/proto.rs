//! The `rfv-job-v1` wire protocol.
//!
//! Every message travels as one *frame*: a little-endian `u32` length
//! followed by that many payload bytes. The payload is a checksummed
//! envelope in the style of the `rfv-ckpt-v1` checkpoint container:
//!
//! ```text
//! +----------+---------+------+------   -+----------+
//! | magic 8B | ver u32 | kind | body ... | fnv1a u64 |
//! +----------+---------+------+------   -+----------+
//! ```
//!
//! The trailing FNV-1a checksum covers everything before it, so a
//! flipped bit anywhere in the envelope is detected before any field
//! is interpreted. Bodies use the same fixed-width little-endian
//! codec ([`rfv_trace::wire`]) as checkpoints — no varints, no
//! compression, bit-exact round-tripping.
//!
//! Decoding is total: malformed input yields a typed [`ProtoError`],
//! never a panic, and the error taxonomy ([`ErrorCode`]) is itself
//! part of the wire format so clients can react programmatically
//! (retry on [`ErrorCode::QueueFull`], give up on
//! [`ErrorCode::BadConfig`], ...).

use std::io::{self, Read, Write};

use rfv_trace::wire::{fnv1a, Dec, Enc};

/// Envelope magic: 8 bytes, mirrors `rfv-ckpt`.
pub const JOB_MAGIC: [u8; 8] = *b"rfv-job1";

/// Protocol version. Bump on any incompatible envelope/body change.
/// Version 2 enriched the stats body with cache-eviction, cache-size,
/// connection, and spool-replay counters. Version 3 added the
/// idempotency nonce to submissions, the `RetryAfter` error code with
/// a backoff hint on every error body, and brownout/spool counters to
/// the stats body.
pub const JOB_VERSION: u32 = 3;

/// Hard ceiling on a frame's payload size (1 MiB). A length prefix
/// above this is rejected *before* any allocation, so a hostile or
/// corrupt length cannot balloon server memory.
pub const MAX_PAYLOAD: usize = 1 << 20;

/// Envelope overhead: magic + version + kind + checksum.
const ENVELOPE_BYTES: usize = 8 + 4 + 1 + 8;

// ------------------------------------------------------ error codes

/// Typed failure taxonomy carried by [`Response::Error`] frames.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ErrorCode {
    /// The envelope or body did not parse (truncated, trailing bytes,
    /// unknown kind, bad UTF-8, ...).
    Malformed,
    /// The payload does not start with [`JOB_MAGIC`].
    BadMagic,
    /// The envelope's version field is not [`JOB_VERSION`].
    BadVersion,
    /// The trailing FNV-1a checksum does not match the payload.
    BadChecksum,
    /// The frame's length prefix exceeds [`MAX_PAYLOAD`].
    Oversized,
    /// The submitted workload spec names no known suite workload and
    /// is not a valid `synth:` expression.
    UnknownWorkload,
    /// The submitted machine name is not one of
    /// [`rfv_bench::harness::MACHINE_NAMES`].
    UnknownMachine,
    /// The resolved [`rfv_sim::SimConfig`] failed validation.
    BadConfig,
    /// The job queue is at capacity; resubmit later.
    QueueFull,
    /// The simulation itself failed (watchdog, unsoundness, ...).
    SimFailed,
    /// The daemon is draining and accepts no new work.
    ShuttingDown,
    /// The daemon is in brownout (persistent spool failure or queue
    /// saturation) and is shedding normal-priority work; resubmit
    /// after the attached backoff hint.
    RetryAfter,
}

impl ErrorCode {
    fn tag(self) -> u8 {
        match self {
            ErrorCode::Malformed => 1,
            ErrorCode::BadMagic => 2,
            ErrorCode::BadVersion => 3,
            ErrorCode::BadChecksum => 4,
            ErrorCode::Oversized => 5,
            ErrorCode::UnknownWorkload => 6,
            ErrorCode::UnknownMachine => 7,
            ErrorCode::BadConfig => 8,
            ErrorCode::QueueFull => 9,
            ErrorCode::SimFailed => 10,
            ErrorCode::ShuttingDown => 11,
            ErrorCode::RetryAfter => 12,
        }
    }

    fn from_tag(t: u8) -> Option<ErrorCode> {
        Some(match t {
            1 => ErrorCode::Malformed,
            2 => ErrorCode::BadMagic,
            3 => ErrorCode::BadVersion,
            4 => ErrorCode::BadChecksum,
            5 => ErrorCode::Oversized,
            6 => ErrorCode::UnknownWorkload,
            7 => ErrorCode::UnknownMachine,
            8 => ErrorCode::BadConfig,
            9 => ErrorCode::QueueFull,
            10 => ErrorCode::SimFailed,
            11 => ErrorCode::ShuttingDown,
            12 => ErrorCode::RetryAfter,
            _ => return None,
        })
    }

    /// Whether the connection's byte stream can still be trusted after
    /// this error. Framing-level failures (bad magic, bad checksum,
    /// oversized) mean the reader may be out of sync, so the server
    /// closes the connection after replying; semantic failures keep it
    /// open.
    pub fn poisons_stream(self) -> bool {
        matches!(
            self,
            ErrorCode::BadMagic | ErrorCode::BadChecksum | ErrorCode::Oversized
        )
    }

    /// Whether a client may retry the *same* request and reasonably
    /// expect a different outcome. These are the load/lifecycle
    /// rejections; everything else is deterministic and retrying it
    /// verbatim would fail the same way.
    pub fn retryable(self) -> bool {
        matches!(
            self,
            ErrorCode::QueueFull | ErrorCode::ShuttingDown | ErrorCode::RetryAfter
        )
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ErrorCode::Malformed => "malformed",
            ErrorCode::BadMagic => "bad-magic",
            ErrorCode::BadVersion => "bad-version",
            ErrorCode::BadChecksum => "bad-checksum",
            ErrorCode::Oversized => "oversized",
            ErrorCode::UnknownWorkload => "unknown-workload",
            ErrorCode::UnknownMachine => "unknown-machine",
            ErrorCode::BadConfig => "bad-config",
            ErrorCode::QueueFull => "queue-full",
            ErrorCode::SimFailed => "sim-failed",
            ErrorCode::ShuttingDown => "shutting-down",
            ErrorCode::RetryAfter => "retry-after",
        };
        f.write_str(s)
    }
}

/// A typed protocol failure: the wire form of every rejection.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ProtoError {
    /// Machine-readable category.
    pub code: ErrorCode,
    /// Human-readable detail (never needed to dispatch on).
    pub message: String,
    /// Server guidance: wait at least this long before retrying.
    /// Populated on load/lifecycle rejections ([`ErrorCode::QueueFull`],
    /// [`ErrorCode::ShuttingDown`], [`ErrorCode::RetryAfter`]); `None`
    /// on deterministic failures, where retrying is pointless.
    pub retry_after_ms: Option<u64>,
}

impl ProtoError {
    /// Convenience constructor.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> ProtoError {
        ProtoError {
            code,
            message: message.into(),
            retry_after_ms: None,
        }
    }

    /// Attaches a backoff hint.
    pub fn with_retry_after(mut self, ms: u64) -> ProtoError {
        self.retry_after_ms = Some(ms);
        self
    }
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.code, self.message)?;
        if let Some(ms) = self.retry_after_ms {
            write!(f, " (retry after {ms}ms)")?;
        }
        Ok(())
    }
}

impl std::error::Error for ProtoError {}

fn malformed(what: &str) -> ProtoError {
    ProtoError::new(ErrorCode::Malformed, what)
}

// --------------------------------------------------------- requests

/// Job priority. High-priority jobs jump the queue and preempt a
/// running normal-priority job at its next slice boundary.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Priority {
    /// Default: runs in FIFO order, may be preempted.
    Normal,
    /// Jumps the queue; never preempted.
    High,
}

/// One simulation job submission.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct JobRequest {
    /// Workload spec: a Table 1 suite name (`"VectorAdd"`) or a
    /// `synth:` expression (see [`crate::spec`]).
    pub spec: String,
    /// Machine configuration name (see
    /// [`rfv_bench::harness::machine_config`]).
    pub machine: String,
    /// SM count override (0 keeps the machine default).
    pub num_sms: u32,
    /// Watchdog override in cycles.
    pub max_cycles: Option<u64>,
    /// Queue priority.
    pub priority: Priority,
    /// Whether the per-kernel compile cache may serve this job.
    pub use_cache: bool,
    /// Client-generated idempotency nonce; `0` means "no dedupe". A
    /// resubmission carrying a nonce the daemon has already accepted
    /// is *not* re-run: if the job finished, the recorded reply is
    /// replayed; if it is still in flight, the new connection is
    /// attached as an additional waiter. This is what makes blind
    /// retry after a connection reset safe — the job runs exactly
    /// once no matter how many times the submission is repeated.
    pub nonce: u64,
}

impl Default for JobRequest {
    fn default() -> JobRequest {
        JobRequest {
            spec: String::new(),
            machine: "full".into(),
            num_sms: 0,
            max_cycles: None,
            priority: Priority::Normal,
            use_cache: true,
            nonce: 0,
        }
    }
}

/// A client-to-server message.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Request {
    /// Run one simulation job.
    Submit(JobRequest),
    /// Snapshot the server's counters.
    Stats,
}

const REQ_SUBMIT: u8 = 1;
const REQ_STATS: u8 = 2;

impl Request {
    /// Encodes the request as a framed payload (envelope included,
    /// length prefix excluded — that is [`write_frame`]'s job).
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Request::Submit(job) => {
                let mut b = Enc::new();
                b.frame(job.spec.as_bytes());
                b.frame(job.machine.as_bytes());
                b.u32(job.num_sms);
                b.opt_u64(job.max_cycles);
                b.u8(match job.priority {
                    Priority::Normal => 0,
                    Priority::High => 1,
                });
                b.bool(job.use_cache);
                b.u64(job.nonce);
                envelope(REQ_SUBMIT, b.bytes())
            }
            Request::Stats => envelope(REQ_STATS, &[]),
        }
    }

    /// Decodes a request payload (the bytes a frame carried).
    ///
    /// # Errors
    ///
    /// A typed [`ProtoError`] describing the first defect found.
    pub fn decode(payload: &[u8]) -> Result<Request, ProtoError> {
        let (kind, body) = open_envelope(payload)?;
        let mut d = Dec::new(body);
        let req = match kind {
            REQ_SUBMIT => {
                let spec = read_string(&mut d, "spec")?;
                let machine = read_string(&mut d, "machine")?;
                let num_sms = d.u32().map_err(|_| malformed("submit body truncated"))?;
                let max_cycles = d
                    .opt_u64()
                    .map_err(|_| malformed("submit body truncated"))?;
                let priority = match d.u8().map_err(|_| malformed("submit body truncated"))? {
                    0 => Priority::Normal,
                    1 => Priority::High,
                    _ => return Err(malformed("priority byte")),
                };
                let use_cache = d.bool().map_err(|_| malformed("use_cache byte"))?;
                let nonce = d.u64().map_err(|_| malformed("submit body truncated"))?;
                Request::Submit(JobRequest {
                    spec,
                    machine,
                    num_sms,
                    max_cycles,
                    priority,
                    use_cache,
                    nonce,
                })
            }
            REQ_STATS => Request::Stats,
            _ => return Err(malformed("unknown request kind")),
        };
        if !d.is_done() {
            return Err(malformed("trailing bytes after request body"));
        }
        Ok(req)
    }
}

// -------------------------------------------------------- responses

/// How the compile cache was involved in serving a job.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CacheOutcome {
    /// Kernel was compiled and inserted.
    Miss,
    /// A previously compiled kernel was reused.
    Hit,
    /// The job opted out of the cache.
    Bypass,
}

impl CacheOutcome {
    fn tag(self) -> u8 {
        match self {
            CacheOutcome::Miss => 0,
            CacheOutcome::Hit => 1,
            CacheOutcome::Bypass => 2,
        }
    }

    fn from_tag(t: u8) -> Option<CacheOutcome> {
        Some(match t {
            0 => CacheOutcome::Miss,
            1 => CacheOutcome::Hit,
            2 => CacheOutcome::Bypass,
            _ => return None,
        })
    }
}

impl std::fmt::Display for CacheOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            CacheOutcome::Miss => "miss",
            CacheOutcome::Hit => "hit",
            CacheOutcome::Bypass => "bypass",
        })
    }
}

/// A completed job's results.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct JobResult {
    /// GPU execution time (slowest SM).
    pub cycles: u64,
    /// Machine instructions issued, summed over SMs.
    pub instrs: u64,
    /// Compile-cache involvement.
    pub cache: CacheOutcome,
    /// How many times the job was preempted and resumed.
    pub preemptions: u32,
    /// The run's statistics in the stats-json schema the `rfvsim`
    /// CLI emits — purely simulation-derived, so a preempted and an
    /// uninterrupted run of the same job are byte-identical here.
    pub stats_json: String,
}

/// Server counter snapshot.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ServerStats {
    /// Jobs accepted into the queue.
    pub submitted: u64,
    /// Jobs completed successfully.
    pub completed: u64,
    /// Jobs rejected with [`ErrorCode::QueueFull`].
    pub rejected: u64,
    /// Jobs that failed in the simulator.
    pub failed: u64,
    /// Compile-cache hits.
    pub cache_hits: u64,
    /// Compile-cache misses (compilations).
    pub cache_misses: u64,
    /// Preemption events (checkpoint + requeue).
    pub preemptions: u64,
    /// Jobs currently waiting in the queue.
    pub queued: u64,
    /// Jobs currently executing.
    pub active: u64,
    /// Compile-cache evictions (entries dropped to stay under the
    /// configured bound).
    pub cache_evictions: u64,
    /// Kernels currently resident in the compile cache.
    pub cache_entries: u64,
    /// Connections currently open.
    pub conns_open: u64,
    /// Connections accepted over the daemon's lifetime.
    pub conns_total: u64,
    /// Jobs replayed from the spool after a restart.
    pub replayed: u64,
    /// Submissions answered from the nonce table (stored reply
    /// replayed or waiter attached) instead of re-running the job.
    pub deduped: u64,
    /// Normal-priority submissions shed with [`ErrorCode::RetryAfter`]
    /// while in brownout.
    pub shed: u64,
    /// Times the daemon entered brownout over its lifetime.
    pub brownouts: u64,
    /// 1 while a brownout (disk or queue) is active, else 0.
    pub brownout: u64,
    /// Records currently resident in the spool directory (live,
    /// completed, and quarantined).
    pub spool_records: u64,
    /// Spool compaction passes that pruned at least one record.
    pub spool_compactions: u64,
}

/// A server-to-client message.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Response {
    /// The submitted job ran to completion.
    Result(JobResult),
    /// Counter snapshot for a [`Request::Stats`].
    Stats(ServerStats),
    /// The request was rejected.
    Error(ProtoError),
}

const RSP_RESULT: u8 = 1;
const RSP_STATS: u8 = 2;
const RSP_ERROR: u8 = 3;

impl Response {
    /// Encodes the response as a framed payload.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Response::Result(r) => {
                let mut b = Enc::new();
                b.u64(r.cycles);
                b.u64(r.instrs);
                b.u8(r.cache.tag());
                b.u32(r.preemptions);
                b.frame(r.stats_json.as_bytes());
                envelope(RSP_RESULT, b.bytes())
            }
            Response::Stats(s) => {
                let mut b = Enc::new();
                for v in [
                    s.submitted,
                    s.completed,
                    s.rejected,
                    s.failed,
                    s.cache_hits,
                    s.cache_misses,
                    s.preemptions,
                    s.queued,
                    s.active,
                    s.cache_evictions,
                    s.cache_entries,
                    s.conns_open,
                    s.conns_total,
                    s.replayed,
                    s.deduped,
                    s.shed,
                    s.brownouts,
                    s.brownout,
                    s.spool_records,
                    s.spool_compactions,
                ] {
                    b.u64(v);
                }
                envelope(RSP_STATS, b.bytes())
            }
            Response::Error(e) => {
                let mut b = Enc::new();
                b.u8(e.code.tag());
                b.frame(e.message.as_bytes());
                b.opt_u64(e.retry_after_ms);
                envelope(RSP_ERROR, b.bytes())
            }
        }
    }

    /// Decodes a response payload.
    ///
    /// # Errors
    ///
    /// A typed [`ProtoError`] describing the first defect found.
    pub fn decode(payload: &[u8]) -> Result<Response, ProtoError> {
        let (kind, body) = open_envelope(payload)?;
        let mut d = Dec::new(body);
        let rsp = match kind {
            RSP_RESULT => {
                let cycles = d.u64().map_err(|_| malformed("result body truncated"))?;
                let instrs = d.u64().map_err(|_| malformed("result body truncated"))?;
                let cache = d
                    .u8()
                    .ok()
                    .and_then(CacheOutcome::from_tag)
                    .ok_or_else(|| malformed("cache outcome tag"))?;
                let preemptions = d.u32().map_err(|_| malformed("result body truncated"))?;
                let stats_json = read_string(&mut d, "stats_json")?;
                Response::Result(JobResult {
                    cycles,
                    instrs,
                    cache,
                    preemptions,
                    stats_json,
                })
            }
            RSP_STATS => {
                let mut take =
                    || -> Result<u64, ProtoError> { d.u64().map_err(|_| malformed("stats body")) };
                Response::Stats(ServerStats {
                    submitted: take()?,
                    completed: take()?,
                    rejected: take()?,
                    failed: take()?,
                    cache_hits: take()?,
                    cache_misses: take()?,
                    preemptions: take()?,
                    queued: take()?,
                    active: take()?,
                    cache_evictions: take()?,
                    cache_entries: take()?,
                    conns_open: take()?,
                    conns_total: take()?,
                    replayed: take()?,
                    deduped: take()?,
                    shed: take()?,
                    brownouts: take()?,
                    brownout: take()?,
                    spool_records: take()?,
                    spool_compactions: take()?,
                })
            }
            RSP_ERROR => {
                let code = d
                    .u8()
                    .ok()
                    .and_then(ErrorCode::from_tag)
                    .ok_or_else(|| malformed("error code tag"))?;
                let message = read_string(&mut d, "error message")?;
                let retry_after_ms = d.opt_u64().map_err(|_| malformed("error body truncated"))?;
                Response::Error(ProtoError {
                    code,
                    message,
                    retry_after_ms,
                })
            }
            _ => return Err(malformed("unknown response kind")),
        };
        if !d.is_done() {
            return Err(malformed("trailing bytes after response body"));
        }
        Ok(rsp)
    }
}

// ------------------------------------------------- envelope framing

fn envelope(kind: u8, body: &[u8]) -> Vec<u8> {
    let mut e = Enc::new();
    e.raw(&JOB_MAGIC);
    e.u32(JOB_VERSION);
    e.u8(kind);
    e.raw(body);
    let sum = fnv1a(e.bytes());
    e.u64(sum);
    e.into_bytes()
}

/// Verifies a payload's envelope — length, magic, checksum, version,
/// in that order — and returns its `(kind, body)`.
///
/// # Errors
///
/// [`ErrorCode::Malformed`] / [`ErrorCode::BadMagic`] /
/// [`ErrorCode::BadChecksum`] / [`ErrorCode::BadVersion`].
pub fn open_envelope(payload: &[u8]) -> Result<(u8, &[u8]), ProtoError> {
    if payload.len() < ENVELOPE_BYTES {
        return Err(malformed("payload shorter than envelope"));
    }
    if payload[..8] != JOB_MAGIC {
        return Err(ProtoError::new(
            ErrorCode::BadMagic,
            "payload does not start with rfv-job1",
        ));
    }
    let (head, tail) = payload.split_at(payload.len() - 8);
    let want = u64::from_le_bytes(tail.try_into().expect("8-byte checksum"));
    let got = fnv1a(head);
    if want != got {
        return Err(ProtoError::new(
            ErrorCode::BadChecksum,
            format!("checksum mismatch: stored {want:#018x}, computed {got:#018x}"),
        ));
    }
    let version = u32::from_le_bytes(payload[8..12].try_into().expect("4-byte version"));
    if version != JOB_VERSION {
        return Err(ProtoError::new(
            ErrorCode::BadVersion,
            format!("version {version}, this daemon speaks {JOB_VERSION}"),
        ));
    }
    Ok((payload[12], &head[13..]))
}

fn read_string(d: &mut Dec<'_>, what: &str) -> Result<String, ProtoError> {
    let bytes = d
        .frame()
        .map_err(|_| malformed(&format!("{what} frame truncated")))?;
    String::from_utf8(bytes.to_vec()).map_err(|_| malformed(&format!("{what} is not UTF-8")))
}

/// Writes one frame: `u32` little-endian payload length, then the
/// payload.
///
/// # Errors
///
/// Propagates I/O errors; rejects payloads above [`MAX_PAYLOAD`].
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_PAYLOAD {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "payload exceeds MAX_PAYLOAD",
        ));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame with blocking reads (client side). `Ok(None)`
/// means the peer closed cleanly at a frame boundary.
///
/// # Errors
///
/// `UnexpectedEof` on a mid-frame disconnect, `InvalidData` on an
/// oversized length prefix, otherwise the underlying I/O error.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len_bytes = [0u8; 4];
    match r.read_exact(&mut len_bytes) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > MAX_PAYLOAD {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds MAX_PAYLOAD"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

// -------------------------------------- incremental server-side read

/// What one [`FrameReader::poll`] produced.
#[derive(Debug)]
pub enum Recv {
    /// A complete frame payload.
    Payload(Vec<u8>),
    /// No complete frame yet (read timed out); retry later. Partial
    /// bytes stay buffered, so slow writers are handled correctly.
    Idle,
    /// Peer closed at a frame boundary.
    Closed,
    /// Peer disconnected mid-frame.
    Truncated,
    /// The length prefix exceeds [`MAX_PAYLOAD`]; the stream is
    /// unsynchronized and must be closed after an error reply.
    Oversized(u64),
}

/// Incremental frame reader for sockets with read timeouts: bytes
/// accumulate across [`FrameReader::poll`] calls so a frame that
/// straddles a timeout (or arrives one byte at a time) is still
/// reassembled exactly.
#[derive(Default)]
pub struct FrameReader {
    buf: Vec<u8>,
}

impl FrameReader {
    /// An empty reader.
    pub fn new() -> FrameReader {
        FrameReader::default()
    }

    /// Reads until a complete frame, a timeout, or a disconnect.
    ///
    /// # Errors
    ///
    /// Hard I/O errors only; timeouts surface as [`Recv::Idle`].
    pub fn poll(&mut self, stream: &mut impl Read) -> io::Result<Recv> {
        loop {
            if self.buf.len() >= 4 {
                let len = u32::from_le_bytes(self.buf[..4].try_into().expect("4 bytes")) as usize;
                if len > MAX_PAYLOAD {
                    return Ok(Recv::Oversized(len as u64));
                }
                if self.buf.len() >= 4 + len {
                    let payload = self.buf[4..4 + len].to_vec();
                    self.buf.drain(..4 + len);
                    return Ok(Recv::Payload(payload));
                }
            }
            let mut chunk = [0u8; 4096];
            match stream.read(&mut chunk) {
                Ok(0) => {
                    return Ok(if self.buf.is_empty() {
                        Recv::Closed
                    } else {
                        Recv::Truncated
                    });
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    return Ok(Recv::Idle);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_submit() -> Request {
        Request::Submit(JobRequest {
            spec: "synth:regs=24,rep=16".into(),
            machine: "shrink50".into(),
            num_sms: 4,
            max_cycles: Some(1_000_000),
            priority: Priority::High,
            use_cache: false,
            nonce: 0xdead_beef_cafe_f00d,
        })
    }

    #[test]
    fn requests_round_trip() {
        for req in [sample_submit(), Request::Stats] {
            let payload = req.encode();
            assert_eq!(Request::decode(&payload).unwrap(), req);
        }
    }

    #[test]
    fn responses_round_trip() {
        let cases = [
            Response::Result(JobResult {
                cycles: 123_456,
                instrs: 789,
                cache: CacheOutcome::Hit,
                preemptions: 3,
                stats_json: "{\"gpu.cycles\": 123456}".into(),
            }),
            Response::Stats(ServerStats {
                submitted: 10,
                completed: 7,
                rejected: 2,
                failed: 1,
                cache_hits: 5,
                cache_misses: 2,
                preemptions: 4,
                queued: 1,
                active: 2,
                cache_evictions: 3,
                cache_entries: 2,
                conns_open: 6,
                conns_total: 40,
                replayed: 1,
                deduped: 9,
                shed: 12,
                brownouts: 2,
                brownout: 1,
                spool_records: 33,
                spool_compactions: 4,
            }),
            Response::Error(ProtoError::new(ErrorCode::QueueFull, "queue at 8/8")),
            Response::Error(
                ProtoError::new(ErrorCode::RetryAfter, "brownout").with_retry_after(250),
            ),
        ];
        for rsp in cases {
            let payload = rsp.encode();
            assert_eq!(Response::decode(&payload).unwrap(), rsp);
        }
    }

    #[test]
    fn every_error_code_round_trips() {
        for code in [
            ErrorCode::Malformed,
            ErrorCode::BadMagic,
            ErrorCode::BadVersion,
            ErrorCode::BadChecksum,
            ErrorCode::Oversized,
            ErrorCode::UnknownWorkload,
            ErrorCode::UnknownMachine,
            ErrorCode::BadConfig,
            ErrorCode::QueueFull,
            ErrorCode::SimFailed,
            ErrorCode::ShuttingDown,
            ErrorCode::RetryAfter,
        ] {
            assert_eq!(ErrorCode::from_tag(code.tag()), Some(code));
            let rsp = Response::Error(ProtoError::new(code, "x"));
            assert_eq!(Response::decode(&rsp.encode()).unwrap(), rsp);
            let hinted = Response::Error(ProtoError::new(code, "x").with_retry_after(77));
            assert_eq!(Response::decode(&hinted.encode()).unwrap(), hinted);
        }
        assert_eq!(ErrorCode::from_tag(0), None);
        assert_eq!(ErrorCode::from_tag(200), None);
    }

    #[test]
    fn retryable_codes_are_the_load_rejections() {
        for code in [
            ErrorCode::QueueFull,
            ErrorCode::ShuttingDown,
            ErrorCode::RetryAfter,
        ] {
            assert!(code.retryable(), "{code}");
            assert!(!code.poisons_stream(), "{code}");
        }
        for code in [
            ErrorCode::Malformed,
            ErrorCode::BadConfig,
            ErrorCode::UnknownWorkload,
            ErrorCode::SimFailed,
        ] {
            assert!(!code.retryable(), "{code}");
        }
    }

    #[test]
    fn corruption_yields_the_right_code() {
        let mut payload = sample_submit().encode();
        // flip one body byte: checksum catches it
        let mid = payload.len() / 2;
        payload[mid] ^= 0x40;
        assert_eq!(
            Request::decode(&payload).unwrap_err().code,
            ErrorCode::BadChecksum
        );
    }

    #[test]
    fn bad_magic_detected_before_checksum() {
        let mut payload = sample_submit().encode();
        payload[0] = b'X';
        assert_eq!(
            Request::decode(&payload).unwrap_err().code,
            ErrorCode::BadMagic
        );
    }

    #[test]
    fn wrong_version_rejected_with_valid_checksum() {
        // rebuild the envelope by hand with a wrong version and a *correct*
        // checksum, so the failure is attributable to the version alone
        let mut e = Enc::new();
        e.raw(&JOB_MAGIC);
        e.u32(JOB_VERSION + 1);
        e.u8(2); // stats
        let sum = fnv1a(e.bytes());
        e.u64(sum);
        assert_eq!(
            Request::decode(e.bytes()).unwrap_err().code,
            ErrorCode::BadVersion
        );
    }

    #[test]
    fn truncation_never_panics() {
        let payload = sample_submit().encode();
        for cut in 0..payload.len() {
            assert!(Request::decode(&payload[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        // append a byte and re-checksum: body parse must notice
        let payload = Request::Stats.encode();
        let mut head = payload[..payload.len() - 8].to_vec();
        head.push(0xaa);
        let sum = fnv1a(&head);
        head.extend_from_slice(&sum.to_le_bytes());
        assert_eq!(
            Request::decode(&head).unwrap_err().code,
            ErrorCode::Malformed
        );
    }

    #[test]
    fn frame_reader_reassembles_byte_by_byte() {
        let payload = sample_submit().encode();
        let mut framed = Vec::new();
        write_frame(&mut framed, &payload).unwrap();
        // feed one byte at a time through a reader that times out
        // after each byte
        struct Trickle<'a> {
            data: &'a [u8],
            pos: usize,
        }
        impl Read for Trickle<'_> {
            fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
                if self.pos >= self.data.len() {
                    return Err(io::Error::new(io::ErrorKind::WouldBlock, "drained"));
                }
                buf[0] = self.data[self.pos];
                self.pos += 1;
                Ok(1)
            }
        }
        let mut reader = FrameReader::new();
        let mut src = Trickle {
            data: &framed,
            pos: 0,
        };
        match reader.poll(&mut src).unwrap() {
            Recv::Payload(p) => assert_eq!(p, payload),
            Recv::Idle => panic!("drained before a full frame"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn oversized_length_prefix_flagged_without_allocation() {
        let huge = ((MAX_PAYLOAD + 1) as u32).to_le_bytes();
        let mut reader = FrameReader::new();
        let mut src = io::Cursor::new(huge.to_vec());
        match reader.poll(&mut src).unwrap() {
            Recv::Oversized(n) => assert_eq!(n, (MAX_PAYLOAD + 1) as u64),
            other => panic!("unexpected {other:?}"),
        }
        // blocking variant reports it as InvalidData
        let mut src = io::Cursor::new(huge.to_vec());
        let err = read_frame(&mut src).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn mid_frame_disconnect_is_truncated() {
        let payload = Request::Stats.encode();
        let mut framed = Vec::new();
        write_frame(&mut framed, &payload).unwrap();
        framed.truncate(framed.len() - 3);
        let mut reader = FrameReader::new();
        let mut src = io::Cursor::new(framed);
        assert!(matches!(reader.poll(&mut src).unwrap(), Recv::Truncated));
    }
}
