//! The durable job spool: crash-safe persistence for accepted jobs.
//!
//! PR 6's daemon held accepted jobs only in memory — a crash between
//! `Accepted` and the reply silently lost them. This module journals
//! every accepted job to a spool directory so a restarted daemon can
//! replay it:
//!
//! * `job-<id>.job` — the accepted submission, encoded with the same
//!   `rfv-job-v1` envelope the wire uses (magic, version, checksum —
//!   a torn write is detected exactly like a corrupt frame). Written
//!   *before* the submitter hears `Accepted`, so "accepted" and
//!   "durable" are the same event.
//! * `job-<id>.ckpt` — optional: the job's latest preemption
//!   checkpoint (a `u32` preemption count followed by the §6f
//!   `rfv-ckpt-v1` container). Refreshed at every preemption, so a
//!   crash mid-run resumes from the last slice boundary instead of
//!   recomputing from scratch. Advisory only: if it fails to decode
//!   or resume, the job reruns from the start — results are
//!   byte-identical either way, because slicing is invisible in
//!   stats.
//! * `job-<id>.done` — the job's final [`Response`] (result *or*
//!   error, so a failing job is recorded as failed rather than
//!   replayed forever). A completed `.job`/`.done` pair is *retained*:
//!   it is the daemon's dedupe memory, letting a restarted daemon
//!   replay the recorded reply for a nonce it has already served
//!   instead of re-running the job. Retention is bounded — past
//!   `max_records` completed/quarantined records, a compaction pass
//!   prunes the oldest at runtime, not only at the next open.
//!
//! Every write is atomic (`tmp` + `rename` in the same directory), so
//! a file either exists with valid contents or not at all; there is
//! no torn state to repair, only complete files to read. A `.job`
//! that fails its checksum anyway (e.g. external truncation) is
//! renamed to `.corrupt` and skipped, never silently deleted; a torn
//! `.done` is quarantined as `.done.corrupt`, which *revives* its
//! `.job` for replay — the reply record is gone, so the job must run
//! again, and nonce dedupe keeps that invisible to clients.
//!
//! All physical I/O funnels through a [`SpoolIo`] trait object so the
//! chaos layer can inject `EIO`/`ENOSPC`, short writes, fsync
//! failures, and torn renames; production uses the
//! [`RealSpoolIo`] passthrough.

use std::fs;
use std::io::{self};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::chaos::{RealSpoolIo, SpoolIo};
use crate::proto::{JobRequest, Request, Response};

/// A job recovered from the spool at startup.
pub struct SpooledJob {
    /// The record id (kept so the worker can mark it done).
    pub id: u64,
    /// The original submission, exactly as accepted.
    pub request: JobRequest,
    /// Last preemption snapshot, if any: (preemption count so far,
    /// raw `rfv-ckpt-v1` bytes). Decoding is the caller's business —
    /// and allowed to fail.
    pub checkpoint: Option<(u32, Vec<u8>)>,
}

/// A completed record read back at startup: the accepted submission
/// plus the reply that was recorded for it. Seeds the nonce table so
/// a post-restart retry replays the recorded reply.
pub struct CompletedJob {
    /// The record id.
    pub id: u64,
    /// The original submission (carries the nonce).
    pub request: JobRequest,
    /// The recorded final reply.
    pub response: Response,
}

/// A spool directory. All methods are callable from any thread; ids
/// are handed out from an atomic counter seeded past every id found
/// on disk.
pub struct Spool {
    dir: PathBuf,
    next_id: AtomicU64,
    io: Box<dyn SpoolIo>,
    /// Completed + quarantined records to retain; 0 = unbounded.
    max_records: usize,
    live: AtomicU64,
    complete: AtomicU64,
    corrupt: AtomicU64,
    compactions: AtomicU64,
}

impl Spool {
    /// Opens (creating if needed) the spool at `dir` with passthrough
    /// I/O and unbounded retention.
    pub fn open(dir: &Path) -> io::Result<Spool> {
        Spool::open_with(dir, Box::new(RealSpoolIo), 0)
    }

    /// Opens the spool with an explicit I/O implementation and a
    /// retention bound: once more than `max_records` completed or
    /// quarantined records accumulate, the oldest are pruned (0
    /// disables pruning). Stale tmp files are cleared; orphan `.done`
    /// files (no `.job` to recover a nonce from) are removed.
    pub fn open_with(dir: &Path, io: Box<dyn SpoolIo>, max_records: usize) -> io::Result<Spool> {
        fs::create_dir_all(dir)?;
        let mut max_id = 0u64;
        let mut live = 0u64;
        let mut complete = 0u64;
        let mut corrupt = 0u64;
        for entry in fs::read_dir(dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            // stale tmp files are debris from a crash mid-write
            if name.starts_with("tmp-") {
                let _ = fs::remove_file(entry.path());
                continue;
            }
            let Some(id) = parse_record_id(name) else {
                continue;
            };
            max_id = max_id.max(id);
            if name.ends_with(".corrupt") {
                corrupt += 1;
            } else if name.ends_with(".job") {
                let paths = SpoolPaths::new(dir, id);
                if paths.done.exists() {
                    complete += 1;
                } else {
                    live += 1;
                }
            } else if name.ends_with(".done") {
                let paths = SpoolPaths::new(dir, id);
                if !paths.job.exists() {
                    // orphan reply: without the .job there is no nonce
                    // to key it under, so it can never be replayed
                    let _ = fs::remove_file(entry.path());
                }
            }
        }
        let spool = Spool {
            dir: dir.to_path_buf(),
            next_id: AtomicU64::new(max_id + 1),
            io,
            max_records,
            live: AtomicU64::new(live),
            complete: AtomicU64::new(complete),
            corrupt: AtomicU64::new(corrupt),
            compactions: AtomicU64::new(0),
        };
        spool.maybe_compact();
        Ok(spool)
    }

    /// Journals an accepted submission; returns its record id. On
    /// `Err` nothing was accepted and nothing is on disk.
    pub fn journal(&self, request: &JobRequest) -> io::Result<u64> {
        let id = self.next_id.fetch_add(1, Ordering::SeqCst);
        let bytes = Request::Submit(request.clone()).encode();
        self.write_atomic(&SpoolPaths::new(&self.dir, id).job, &bytes)?;
        self.live.fetch_add(1, Ordering::Relaxed);
        Ok(id)
    }

    /// Records the job's latest preemption checkpoint (replacing any
    /// earlier one).
    pub fn record_checkpoint(&self, id: u64, preemptions: u32, ckpt: &[u8]) -> io::Result<()> {
        let mut bytes = Vec::with_capacity(4 + ckpt.len());
        bytes.extend_from_slice(&preemptions.to_le_bytes());
        bytes.extend_from_slice(ckpt);
        self.write_atomic(&SpoolPaths::new(&self.dir, id).ckpt, &bytes)
    }

    /// Records the job's final outcome. The checkpoint (now obsolete)
    /// is removed; the `.job`/`.done` pair is retained as dedupe
    /// memory, subject to the retention bound.
    pub fn record_done(&self, id: u64, response: &Response) -> io::Result<()> {
        let paths = SpoolPaths::new(&self.dir, id);
        self.write_atomic(&paths.done, &response.encode())?;
        let _ = fs::remove_file(&paths.ckpt);
        self.live.fetch_sub(1, Ordering::Relaxed);
        self.complete.fetch_add(1, Ordering::Relaxed);
        self.maybe_compact();
        Ok(())
    }

    /// Erases a record that never became a job (the queue rejected it
    /// after journaling).
    pub fn forget(&self, id: u64) {
        let paths = SpoolPaths::new(&self.dir, id);
        let _ = fs::remove_file(&paths.job);
        let _ = fs::remove_file(&paths.ckpt);
        let _ = fs::remove_file(&paths.done);
        self.live.fetch_sub(1, Ordering::Relaxed);
    }

    /// Records currently resident: live, completed, and quarantined.
    pub fn records(&self) -> u64 {
        self.live.load(Ordering::Relaxed)
            + self.complete.load(Ordering::Relaxed)
            + self.corrupt.load(Ordering::Relaxed)
    }

    /// Compaction passes that pruned at least one record.
    pub fn compactions(&self) -> u64 {
        self.compactions.load(Ordering::Relaxed)
    }

    /// Probes spool-directory writability end to end (write + fsync +
    /// rename + unlink of a scratch file). Used to detect disk healing
    /// while in brownout.
    pub fn probe(&self) -> io::Result<()> {
        let path = self.dir.join("probe");
        self.write_atomic(&path, b"rfvd-probe")?;
        fs::remove_file(&path)
    }

    /// Reads back every completed record whose submission and reply
    /// both still decode, in id order. A `.done` that fails to decode
    /// (torn install) is quarantined as `.done.corrupt`, reviving its
    /// `.job` for [`Spool::replay`].
    pub fn completed(&self) -> io::Result<Vec<CompletedJob>> {
        let mut out = Vec::new();
        for id in self.ids_with(".done")? {
            let paths = SpoolPaths::new(&self.dir, id);
            let Ok(done_bytes) = fs::read(&paths.done) else {
                continue;
            };
            let response = match Response::decode(&done_bytes) {
                Ok(r) => r,
                Err(_) => {
                    // torn reply record: the job must run again
                    let quarantine = self.dir.join(format!("job-{id:016x}.done.corrupt"));
                    let _ = fs::rename(&paths.done, &quarantine);
                    self.complete.fetch_sub(1, Ordering::Relaxed);
                    self.corrupt.fetch_add(1, Ordering::Relaxed);
                    self.live.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
            };
            let request = match fs::read(&paths.job).map(|b| Request::decode(&b)) {
                Ok(Ok(Request::Submit(req))) => req,
                // job record unreadable: the reply is unkeyable, but
                // the work is done — leave the pair for compaction
                _ => continue,
            };
            out.push(CompletedJob {
                id,
                request,
                response,
            });
        }
        Ok(out)
    }

    /// Reads back every accepted-but-unfinished job, in id order
    /// (arrival order of the previous life). Corrupt records are
    /// quarantined, not returned and not deleted.
    pub fn replay(&self) -> io::Result<Vec<SpooledJob>> {
        let mut jobs = Vec::new();
        for id in self.ids_with(".job")? {
            let paths = SpoolPaths::new(&self.dir, id);
            if paths.done.exists() {
                continue; // finished; retained as dedupe memory
            }
            let bytes = match fs::read(&paths.job) {
                Ok(b) => b,
                Err(_) => continue,
            };
            let request = match Request::decode(&bytes) {
                Ok(Request::Submit(req)) => req,
                // checksum failure, truncation, or a frame that is
                // not a submission: quarantine for inspection
                Ok(_) | Err(_) => {
                    let _ = fs::rename(&paths.job, paths.job.with_extension("corrupt"));
                    self.live.fetch_sub(1, Ordering::Relaxed);
                    self.corrupt.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
            };
            let checkpoint = fs::read(&paths.ckpt).ok().and_then(|b| {
                let count = u32::from_le_bytes(b.get(..4)?.try_into().ok()?);
                Some((count, b[4..].to_vec()))
            });
            jobs.push(SpooledJob {
                id,
                request,
                checkpoint,
            });
        }
        Ok(jobs)
    }

    /// Sorted record ids of files with the given extension.
    fn ids_with(&self, ext: &str) -> io::Result<Vec<u64>> {
        let mut ids = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if !name.ends_with(ext) {
                continue;
            }
            if let Some(id) = parse_record_id(name) {
                ids.push(id);
            }
        }
        ids.sort_unstable();
        Ok(ids)
    }

    /// Prunes the oldest completed/quarantined records if the
    /// retention bound is exceeded, down to 3/4 of the bound
    /// (hysteresis, so a daemon hovering at the bound does not
    /// compact on every completion). Live records are never pruned.
    fn maybe_compact(&self) {
        if self.max_records == 0 {
            return;
        }
        let resident = self.complete.load(Ordering::Relaxed) + self.corrupt.load(Ordering::Relaxed);
        if resident as usize <= self.max_records {
            return;
        }
        // collect prunable records, oldest first
        enum Prunable {
            Pair(u64),
            File(PathBuf),
        }
        let mut items: Vec<(u64, Prunable)> = Vec::new();
        let Ok(entries) = fs::read_dir(&self.dir) else {
            return;
        };
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(id) = parse_record_id(name) else {
                continue;
            };
            if name.ends_with(".corrupt") {
                items.push((id, Prunable::File(entry.path())));
            } else if name.ends_with(".done") && SpoolPaths::new(&self.dir, id).job.exists() {
                items.push((id, Prunable::Pair(id)));
            }
        }
        items.sort_unstable_by_key(|(id, _)| *id);
        let target = self.max_records * 3 / 4;
        let mut remaining = items.len();
        let mut pruned = 0u64;
        for (_, item) in items {
            if remaining <= target {
                break;
            }
            match item {
                Prunable::Pair(id) => {
                    let paths = SpoolPaths::new(&self.dir, id);
                    let _ = fs::remove_file(&paths.done);
                    let _ = fs::remove_file(&paths.job);
                    let _ = fs::remove_file(&paths.ckpt);
                    self.complete.fetch_sub(1, Ordering::Relaxed);
                }
                Prunable::File(path) => {
                    let _ = fs::remove_file(&path);
                    self.corrupt.fetch_sub(1, Ordering::Relaxed);
                }
            }
            remaining -= 1;
            pruned += 1;
        }
        if pruned > 0 {
            self.compactions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Writes `bytes` to `path` so that `path` is never observed in a
    /// half-written state: write + fsync a sibling tmp file, then
    /// rename over the target. Short writes from the [`SpoolIo`]
    /// layer are completed by looping; on any failure the tmp file is
    /// removed, so an error leaves no debris.
    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("record");
        let tmp = self.dir.join(format!("tmp-{name}"));
        let result = (|| {
            let mut f = fs::File::create(&tmp)?;
            let mut written = 0usize;
            while written < bytes.len() {
                match self.io.write(&mut f, &bytes[written..]) {
                    Ok(0) => {
                        return Err(io::Error::new(
                            io::ErrorKind::WriteZero,
                            "spool write made no progress",
                        ));
                    }
                    Ok(n) => written += n,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(e) => return Err(e),
                }
            }
            self.io.sync(&f)?;
            drop(f);
            self.io.rename(&tmp, path)
        })();
        if result.is_err() {
            let _ = fs::remove_file(&tmp);
        }
        result
    }
}

struct SpoolPaths {
    job: PathBuf,
    ckpt: PathBuf,
    done: PathBuf,
}

impl SpoolPaths {
    fn new(dir: &Path, id: u64) -> SpoolPaths {
        let stem = format!("job-{id:016x}");
        SpoolPaths {
            job: dir.join(format!("{stem}.job")),
            ckpt: dir.join(format!("{stem}.ckpt")),
            done: dir.join(format!("{stem}.done")),
        }
    }
}

/// Extracts the id from a `job-<16 hex digits>.<ext>` file name.
fn parse_record_id(name: &str) -> Option<u64> {
    let rest = name.strip_prefix("job-")?;
    let hex = rest.get(..16)?;
    if !rest[16..].starts_with('.') {
        return None;
    }
    u64::from_str_radix(hex, 16).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::{ErrorCode, ProtoError};

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rfvd-spool-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn request(spec: &str) -> JobRequest {
        JobRequest {
            spec: spec.into(),
            ..JobRequest::default()
        }
    }

    fn failed_reply(msg: &str) -> Response {
        Response::Error(ProtoError::new(ErrorCode::SimFailed, msg))
    }

    #[test]
    fn journal_then_replay_round_trips_in_order() {
        let dir = tmp_dir("order");
        let spool = Spool::open(&dir).unwrap();
        let a = spool.journal(&request("synth:")).unwrap();
        let b = spool.journal(&request("VectorAdd")).unwrap();
        assert!(b > a, "ids are monotone");
        let jobs = spool.replay().unwrap();
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs[0].request.spec, "synth:");
        assert_eq!(jobs[1].request.spec, "VectorAdd");
        assert!(jobs.iter().all(|j| j.checkpoint.is_none()));
        assert_eq!(spool.records(), 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn done_records_are_retained_as_dedupe_memory() {
        let dir = tmp_dir("retain");
        let spool = Spool::open(&dir).unwrap();
        let done = spool.journal(&request("synth:")).unwrap();
        let live = spool.journal(&request("VectorAdd")).unwrap();
        spool
            .record_done(done, &failed_reply("recorded failure"))
            .unwrap();
        let jobs = spool.replay().unwrap();
        assert_eq!(jobs.len(), 1, "a done job (even a failed one) stays done");
        assert_eq!(jobs[0].id, live);

        // a fresh open *retains* the finished record: it is the nonce
        // table's durable memory, and completed() reads it back
        let reopened = Spool::open(&dir).unwrap();
        assert!(SpoolPaths::new(&dir, done).job.exists());
        assert!(SpoolPaths::new(&dir, done).done.exists());
        let completed = reopened.completed().unwrap();
        assert_eq!(completed.len(), 1);
        assert_eq!(completed[0].id, done);
        assert_eq!(completed[0].request.spec, "synth:");
        assert_eq!(completed[0].response, failed_reply("recorded failure"));
        let next = reopened.journal(&request("synth:")).unwrap();
        assert!(next > live, "reopened spool never reuses a live id");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_prunes_oldest_completed_past_bound() {
        let dir = tmp_dir("compact");
        let spool = Spool::open_with(&dir, Box::new(RealSpoolIo), 4).unwrap();
        let mut ids = Vec::new();
        for i in 0..6 {
            let id = spool.journal(&request(&format!("job{i}"))).unwrap();
            spool.record_done(id, &failed_reply("x")).unwrap();
            ids.push(id);
        }
        // bound 4, hysteresis target 3: the 5th completion trips a
        // compaction down to 3, the 6th lands back at 4
        assert!(spool.compactions() >= 1);
        assert_eq!(spool.records(), 4);
        assert!(
            !SpoolPaths::new(&dir, ids[0]).done.exists(),
            "oldest record pruned"
        );
        assert!(
            SpoolPaths::new(&dir, ids[5]).done.exists(),
            "newest record retained"
        );
        // live records are never prunable
        let live = spool.journal(&request("live")).unwrap();
        for _ in 0..4 {
            let id = spool.journal(&request("filler")).unwrap();
            spool.record_done(id, &failed_reply("x")).unwrap();
        }
        assert!(SpoolPaths::new(&dir, live).job.exists());
        assert_eq!(spool.replay().unwrap().len(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_compacts_an_oversized_spool() {
        let dir = tmp_dir("open-compact");
        {
            let spool = Spool::open(&dir).unwrap();
            for i in 0..8 {
                let id = spool.journal(&request(&format!("job{i}"))).unwrap();
                spool.record_done(id, &failed_reply("x")).unwrap();
            }
            assert_eq!(spool.records(), 8, "unbounded spool retains all");
        }
        let spool = Spool::open_with(&dir, Box::new(RealSpoolIo), 4).unwrap();
        assert_eq!(spool.records(), 3, "compacted to 3/4 of the bound");
        assert_eq!(spool.compactions(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_done_record_is_quarantined_and_job_revived() {
        let dir = tmp_dir("torn-done");
        let spool = Spool::open(&dir).unwrap();
        let id = spool.journal(&request("synth:")).unwrap();
        spool.record_done(id, &failed_reply("x")).unwrap();
        // tear the reply record: checksum no longer verifies
        let paths = SpoolPaths::new(&dir, id);
        let bytes = fs::read(&paths.done).unwrap();
        fs::write(&paths.done, &bytes[..bytes.len() - 3]).unwrap();

        let reopened = Spool::open(&dir).unwrap();
        assert!(reopened.completed().unwrap().is_empty());
        assert!(dir.join(format!("job-{id:016x}.done.corrupt")).exists());
        let jobs = reopened.replay().unwrap();
        assert_eq!(jobs.len(), 1, "job revived: the reply is gone");
        assert_eq!(jobs[0].id, id);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoints_ride_along_and_die_with_completion() {
        let dir = tmp_dir("ckpt");
        let spool = Spool::open(&dir).unwrap();
        let id = spool.journal(&request("synth:")).unwrap();
        spool.record_checkpoint(id, 2, b"snapshot-bytes").unwrap();
        let jobs = spool.replay().unwrap();
        assert_eq!(
            jobs[0].checkpoint,
            Some((2, b"snapshot-bytes".to_vec())),
            "count and payload round-trip"
        );
        spool.record_done(id, &failed_reply("x")).unwrap();
        assert!(
            !SpoolPaths::new(&dir, id).ckpt.exists(),
            "completion retires the checkpoint"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_job_files_are_quarantined_not_lost() {
        let dir = tmp_dir("corrupt");
        let spool = Spool::open(&dir).unwrap();
        let id = spool.journal(&request("synth:")).unwrap();
        let paths = SpoolPaths::new(&dir, id);
        // truncate the record: the envelope checksum no longer verifies
        let bytes = fs::read(&paths.job).unwrap();
        fs::write(&paths.job, &bytes[..bytes.len() - 3]).unwrap();
        let jobs = spool.replay().unwrap();
        assert!(jobs.is_empty());
        assert!(paths.job.with_extension("corrupt").exists());
        assert_eq!(spool.records(), 1, "quarantined, not erased");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn forget_erases_the_whole_record() {
        let dir = tmp_dir("forget");
        let spool = Spool::open(&dir).unwrap();
        let id = spool.journal(&request("synth:")).unwrap();
        spool.record_checkpoint(id, 1, b"x").unwrap();
        spool.forget(id);
        assert!(spool.replay().unwrap().is_empty());
        assert!(fs::read_dir(&dir).unwrap().next().is_none(), "no debris");
        assert_eq!(spool.records(), 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn probe_leaves_no_debris() {
        let dir = tmp_dir("probe");
        let spool = Spool::open(&dir).unwrap();
        spool.probe().unwrap();
        assert!(fs::read_dir(&dir).unwrap().next().is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn short_writes_are_completed_by_the_loop() {
        use std::io::Write;

        /// Writes at most one byte per call — every record write goes
        /// through the short-write path.
        struct OneByteIo;
        impl SpoolIo for OneByteIo {
            fn write(&self, file: &mut fs::File, buf: &[u8]) -> io::Result<usize> {
                file.write(&buf[..1.min(buf.len())])
            }
            fn sync(&self, file: &fs::File) -> io::Result<()> {
                file.sync_all()
            }
            fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
                fs::rename(from, to)
            }
        }

        let dir = tmp_dir("short");
        let spool = Spool::open_with(&dir, Box::new(OneByteIo), 0).unwrap();
        let id = spool.journal(&request("synth:regs=8")).unwrap();
        let jobs = spool.replay().unwrap();
        assert_eq!(jobs.len(), 1, "record intact despite 1-byte writes");
        assert_eq!(jobs[0].id, id);
        assert_eq!(jobs[0].request.spec, "synth:regs=8");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_write_leaves_no_tmp_debris() {
        struct FailIo;
        impl SpoolIo for FailIo {
            fn write(&self, _file: &mut fs::File, _buf: &[u8]) -> io::Result<usize> {
                Err(io::Error::other("simulated EIO"))
            }
            fn sync(&self, file: &fs::File) -> io::Result<()> {
                file.sync_all()
            }
            fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
                fs::rename(from, to)
            }
        }

        let dir = tmp_dir("fail");
        let spool = Spool::open_with(&dir, Box::new(FailIo), 0).unwrap();
        assert!(spool.journal(&request("synth:")).is_err());
        assert!(spool.probe().is_err());
        assert!(
            fs::read_dir(&dir).unwrap().next().is_none(),
            "failed writes clean up their tmp files"
        );
        let _ = fs::remove_dir_all(&dir);
    }
}
