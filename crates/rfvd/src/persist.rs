//! The durable job spool: crash-safe persistence for accepted jobs.
//!
//! PR 6's daemon held accepted jobs only in memory — a crash between
//! `Accepted` and the reply silently lost them. This module journals
//! every accepted job to a spool directory so a restarted daemon can
//! replay it:
//!
//! * `job-<id>.job` — the accepted submission, encoded with the same
//!   `rfv-job-v1` envelope the wire uses (magic, version, checksum —
//!   a torn write is detected exactly like a corrupt frame). Written
//!   *before* the submitter hears `Accepted`, so "accepted" and
//!   "durable" are the same event.
//! * `job-<id>.ckpt` — optional: the job's latest preemption
//!   checkpoint (a `u32` preemption count followed by the §6f
//!   `rfv-ckpt-v1` container). Refreshed at every preemption, so a
//!   crash mid-run resumes from the last slice boundary instead of
//!   recomputing from scratch. Advisory only: if it fails to decode
//!   or resume, the job reruns from the start — results are
//!   byte-identical either way, because slicing is invisible in
//!   stats.
//! * `job-<id>.done` — the job's final [`Response`] (result *or*
//!   error, so a failing job is recorded as failed rather than
//!   replayed forever). Once present, the job is complete; the next
//!   [`Spool::open`] prunes the whole record.
//!
//! Every write is atomic (`tmp` + `rename` in the same directory), so
//! a file either exists with valid contents or not at all; there is
//! no torn state to repair, only complete files to read. A `.job`
//! that fails its checksum anyway (e.g. external truncation) is
//! renamed to `.corrupt` and skipped, never silently deleted.

use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::proto::{JobRequest, Request, Response};

/// A job recovered from the spool at startup.
pub struct SpooledJob {
    /// The record id (kept so the worker can mark it done).
    pub id: u64,
    /// The original submission, exactly as accepted.
    pub request: JobRequest,
    /// Last preemption snapshot, if any: (preemption count so far,
    /// raw `rfv-ckpt-v1` bytes). Decoding is the caller's business —
    /// and allowed to fail.
    pub checkpoint: Option<(u32, Vec<u8>)>,
}

/// A spool directory. All methods are callable from any thread; ids
/// are handed out from an atomic counter seeded past every id found
/// on disk.
pub struct Spool {
    dir: PathBuf,
    next_id: AtomicU64,
}

impl Spool {
    /// Opens (creating if needed) the spool at `dir`, prunes records
    /// whose `.done` is already written, and quarantines corrupt
    /// `.job` files as `.corrupt`.
    pub fn open(dir: &Path) -> io::Result<Spool> {
        fs::create_dir_all(dir)?;
        let mut max_id = 0u64;
        for entry in fs::read_dir(dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            // stale tmp files are debris from a crash mid-write
            if name.starts_with("tmp-") {
                let _ = fs::remove_file(entry.path());
                continue;
            }
            let Some(id) = parse_record_id(name) else {
                continue;
            };
            max_id = max_id.max(id);
            if name.ends_with(".job") {
                let spool = SpoolPaths::new(dir, id);
                if spool.done.exists() {
                    // completed in a previous life: the record served
                    // its purpose
                    let _ = fs::remove_file(&spool.job);
                    let _ = fs::remove_file(&spool.ckpt);
                    let _ = fs::remove_file(&spool.done);
                }
            }
        }
        Ok(Spool {
            dir: dir.to_path_buf(),
            next_id: AtomicU64::new(max_id + 1),
        })
    }

    /// Journals an accepted submission; returns its record id. On
    /// `Err` nothing was accepted and nothing is on disk.
    pub fn journal(&self, request: &JobRequest) -> io::Result<u64> {
        let id = self.next_id.fetch_add(1, Ordering::SeqCst);
        let bytes = Request::Submit(request.clone()).encode();
        self.write_atomic(&SpoolPaths::new(&self.dir, id).job, &bytes)?;
        Ok(id)
    }

    /// Records the job's latest preemption checkpoint (replacing any
    /// earlier one).
    pub fn record_checkpoint(&self, id: u64, preemptions: u32, ckpt: &[u8]) -> io::Result<()> {
        let mut bytes = Vec::with_capacity(4 + ckpt.len());
        bytes.extend_from_slice(&preemptions.to_le_bytes());
        bytes.extend_from_slice(ckpt);
        self.write_atomic(&SpoolPaths::new(&self.dir, id).ckpt, &bytes)
    }

    /// Records the job's final outcome. The checkpoint (now obsolete)
    /// is removed; the `.job`/`.done` pair is pruned at the next
    /// [`Spool::open`].
    pub fn record_done(&self, id: u64, response: &Response) -> io::Result<()> {
        let paths = SpoolPaths::new(&self.dir, id);
        self.write_atomic(&paths.done, &response.encode())?;
        let _ = fs::remove_file(&paths.ckpt);
        Ok(())
    }

    /// Erases a record that never became a job (the queue rejected it
    /// after journaling).
    pub fn forget(&self, id: u64) {
        let paths = SpoolPaths::new(&self.dir, id);
        let _ = fs::remove_file(&paths.job);
        let _ = fs::remove_file(&paths.ckpt);
        let _ = fs::remove_file(&paths.done);
    }

    /// Reads back every accepted-but-unfinished job, in id order
    /// (arrival order of the previous life). Corrupt records are
    /// quarantined, not returned and not deleted.
    pub fn replay(&self) -> io::Result<Vec<SpooledJob>> {
        let mut ids: Vec<u64> = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if !name.ends_with(".job") {
                continue;
            }
            if let Some(id) = parse_record_id(name) {
                ids.push(id);
            }
        }
        ids.sort_unstable();
        let mut jobs = Vec::new();
        for id in ids {
            let paths = SpoolPaths::new(&self.dir, id);
            if paths.done.exists() {
                continue; // finished; open() will prune it next time
            }
            let bytes = match fs::read(&paths.job) {
                Ok(b) => b,
                Err(_) => continue,
            };
            let request = match Request::decode(&bytes) {
                Ok(Request::Submit(req)) => req,
                // checksum failure, truncation, or a frame that is
                // not a submission: quarantine for inspection
                Ok(_) | Err(_) => {
                    let _ = fs::rename(&paths.job, paths.job.with_extension("corrupt"));
                    continue;
                }
            };
            let checkpoint = fs::read(&paths.ckpt).ok().and_then(|b| {
                let count = u32::from_le_bytes(b.get(..4)?.try_into().ok()?);
                Some((count, b[4..].to_vec()))
            });
            jobs.push(SpooledJob {
                id,
                request,
                checkpoint,
            });
        }
        Ok(jobs)
    }

    /// Writes `bytes` to `path` so that `path` is never observed in a
    /// half-written state: write + fsync a sibling tmp file, then
    /// rename over the target.
    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("record");
        let tmp = self.dir.join(format!("tmp-{name}"));
        let mut f = fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        drop(f);
        fs::rename(&tmp, path)
    }
}

struct SpoolPaths {
    job: PathBuf,
    ckpt: PathBuf,
    done: PathBuf,
}

impl SpoolPaths {
    fn new(dir: &Path, id: u64) -> SpoolPaths {
        let stem = format!("job-{id:016x}");
        SpoolPaths {
            job: dir.join(format!("{stem}.job")),
            ckpt: dir.join(format!("{stem}.ckpt")),
            done: dir.join(format!("{stem}.done")),
        }
    }
}

/// Extracts the id from a `job-<16 hex digits>.<ext>` file name.
fn parse_record_id(name: &str) -> Option<u64> {
    let rest = name.strip_prefix("job-")?;
    let hex = rest.get(..16)?;
    if !rest[16..].starts_with('.') {
        return None;
    }
    u64::from_str_radix(hex, 16).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::{ErrorCode, ProtoError};

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rfvd-spool-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn request(spec: &str) -> JobRequest {
        JobRequest {
            spec: spec.into(),
            ..JobRequest::default()
        }
    }

    #[test]
    fn journal_then_replay_round_trips_in_order() {
        let dir = tmp_dir("order");
        let spool = Spool::open(&dir).unwrap();
        let a = spool.journal(&request("synth:")).unwrap();
        let b = spool.journal(&request("VectorAdd")).unwrap();
        assert!(b > a, "ids are monotone");
        let jobs = spool.replay().unwrap();
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs[0].request.spec, "synth:");
        assert_eq!(jobs[1].request.spec, "VectorAdd");
        assert!(jobs.iter().all(|j| j.checkpoint.is_none()));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn done_records_are_not_replayed_and_open_prunes_them() {
        let dir = tmp_dir("prune");
        let spool = Spool::open(&dir).unwrap();
        let done = spool.journal(&request("synth:")).unwrap();
        let live = spool.journal(&request("VectorAdd")).unwrap();
        spool
            .record_done(
                done,
                &Response::Error(ProtoError::new(ErrorCode::SimFailed, "recorded failure")),
            )
            .unwrap();
        let jobs = spool.replay().unwrap();
        assert_eq!(jobs.len(), 1, "a done job (even a failed one) stays done");
        assert_eq!(jobs[0].id, live);

        // a fresh open prunes the finished record and seeds ids past
        // every survivor
        let reopened = Spool::open(&dir).unwrap();
        assert!(!SpoolPaths::new(&dir, done).job.exists());
        assert!(!SpoolPaths::new(&dir, done).done.exists());
        let next = reopened.journal(&request("synth:")).unwrap();
        assert!(next > live, "reopened spool never reuses a live id");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoints_ride_along_and_die_with_completion() {
        let dir = tmp_dir("ckpt");
        let spool = Spool::open(&dir).unwrap();
        let id = spool.journal(&request("synth:")).unwrap();
        spool.record_checkpoint(id, 2, b"snapshot-bytes").unwrap();
        let jobs = spool.replay().unwrap();
        assert_eq!(
            jobs[0].checkpoint,
            Some((2, b"snapshot-bytes".to_vec())),
            "count and payload round-trip"
        );
        spool
            .record_done(
                id,
                &Response::Error(ProtoError::new(ErrorCode::SimFailed, "x")),
            )
            .unwrap();
        assert!(
            !SpoolPaths::new(&dir, id).ckpt.exists(),
            "completion retires the checkpoint"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_job_files_are_quarantined_not_lost() {
        let dir = tmp_dir("corrupt");
        let spool = Spool::open(&dir).unwrap();
        let id = spool.journal(&request("synth:")).unwrap();
        let paths = SpoolPaths::new(&dir, id);
        // truncate the record: the envelope checksum no longer verifies
        let bytes = fs::read(&paths.job).unwrap();
        fs::write(&paths.job, &bytes[..bytes.len() - 3]).unwrap();
        let jobs = spool.replay().unwrap();
        assert!(jobs.is_empty());
        assert!(paths.job.with_extension("corrupt").exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn forget_erases_the_whole_record() {
        let dir = tmp_dir("forget");
        let spool = Spool::open(&dir).unwrap();
        let id = spool.journal(&request("synth:")).unwrap();
        spool.record_checkpoint(id, 1, b"x").unwrap();
        spool.forget(id);
        assert!(spool.replay().unwrap().is_empty());
        assert!(fs::read_dir(&dir).unwrap().next().is_none(), "no debris");
        let _ = fs::remove_dir_all(&dir);
    }
}
