//! Workload specs: the deterministic, server-side mapping from a
//! submitted spec string to a [`rfv_isa::prelude::Kernel`].
//!
//! Two forms are accepted:
//!
//! * a Table 1 suite name (`"VectorAdd"`, `"Gaussian"`, ...), resolved
//!   through [`rfv_workloads::suite::by_name`];
//! * a synthetic-kernel expression `synth:key=val,key=val,...`
//!   mapping onto [`rfv_workloads::SynthParams`] plus the
//!   `chain_repeats` knob of [`rfv_workloads::synth_repeated`]:
//!
//! | key       | meaning                              | range        |
//! |-----------|--------------------------------------|--------------|
//! | `regs`    | registers per thread                 | 6..=63       |
//! | `trips`   | loop trip count (0 = straight line)  | 0..=100000   |
//! | `div`     | divergent loop trip count            | 0/1          |
//! | `diamond` | if/else diamond in the body          | 0/1          |
//! | `mem`     | global loads per iteration           | 0..=3        |
//! | `ctas`    | grid CTAs                            | 1..=65536    |
//! | `tpc`     | threads per CTA                      | 1..=1024     |
//! | `conc`    | concurrent CTAs per SM               | 1..=64       |
//! | `rep`     | straight-line chain repeats          | 1..=4096     |
//!
//! Validation is exhaustive *before* any kernel is built, so a parsed
//! [`JobSpec`] can be turned into a kernel infallibly — the generator
//! asserts can never fire on daemon input. That is what keeps
//! satellite guarantee "malformed jobs yield typed errors, never a
//! worker panic" airtight at the workload layer.

use rfv_isa::prelude::Kernel;
use rfv_workloads::{suite, synth_repeated, SynthParams};

/// A validated workload spec. Building the kernel cannot fail.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum JobSpec {
    /// One of the sixteen Table 1 suite workloads, by name.
    Suite(String),
    /// A synthetic kernel.
    Synth {
        /// Generator shape (validated to the generator's domain).
        params: SynthParams,
        /// Straight-line chain repetitions (validated positive).
        chain_repeats: u32,
    },
}

impl JobSpec {
    /// Parses and validates a spec string.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first problem found.
    pub fn parse(spec: &str) -> Result<JobSpec, String> {
        let spec = spec.trim();
        if spec.is_empty() {
            return Err("empty workload spec".into());
        }
        if let Some(body) = spec.strip_prefix("synth:") {
            return parse_synth(body);
        }
        if suite::by_name(spec).is_some() {
            return Ok(JobSpec::Suite(spec.to_string()));
        }
        Err(format!(
            "unknown workload {spec:?} (expected a Table 1 name or `synth:key=val,...`)"
        ))
    }

    /// A stable cache identity for the kernel this spec builds:
    /// FNV-1a over the spec's canonical form plus the compile flavor.
    /// Sound because the spec → kernel mapping is deterministic — two
    /// equal specs always generate identical kernels — and it costs
    /// nanoseconds, so a cache hit never pays to build (or walk) the
    /// kernel at all.
    pub fn cache_key(&self, release_flags: bool) -> u64 {
        let canon = match self {
            JobSpec::Suite(name) => format!("suite:{name}|flags{}", u8::from(release_flags)),
            JobSpec::Synth {
                params: p,
                chain_repeats,
            } => format!(
                "synth:regs={},trips={},div={},diamond={},mem={},ctas={},tpc={},conc={},rep={}|flags{}",
                p.regs,
                p.loop_trips,
                u8::from(p.divergent_loop),
                u8::from(p.diamond),
                p.mem_ops,
                p.ctas,
                p.threads_per_cta,
                p.conc_ctas,
                chain_repeats,
                u8::from(release_flags),
            ),
        };
        rfv_trace::wire::fnv1a(canon.as_bytes())
    }

    /// Builds the kernel this spec describes. Infallible by
    /// construction: [`JobSpec::parse`] validated every parameter.
    pub fn build_kernel(&self) -> Kernel {
        match self {
            JobSpec::Suite(name) => suite::by_name(name).expect("validated suite name").kernel,
            JobSpec::Synth {
                params,
                chain_repeats,
            } => synth_repeated(*params, *chain_repeats),
        }
    }
}

fn parse_synth(body: &str) -> Result<JobSpec, String> {
    let mut p = SynthParams::default();
    let mut rep: u32 = 1;
    for kv in body.split(',').filter(|s| !s.trim().is_empty()) {
        let (key, val) = kv
            .split_once('=')
            .ok_or_else(|| format!("synth field {kv:?} is not key=val"))?;
        let key = key.trim();
        let val = val.trim();
        let num = |hi: u64| -> Result<u64, String> {
            let n: u64 = val
                .parse()
                .map_err(|_| format!("synth {key}={val:?} is not a number"))?;
            if n > hi {
                return Err(format!("synth {key}={n} exceeds {hi}"));
            }
            Ok(n)
        };
        match key {
            "regs" => {
                let n = num(63)?;
                if n < 6 {
                    return Err(format!("synth regs={n} below the generator minimum of 6"));
                }
                p.regs = n as u8;
            }
            "trips" => p.loop_trips = num(100_000)? as u32,
            "div" => p.divergent_loop = parse_flag(key, val)?,
            "diamond" => p.diamond = parse_flag(key, val)?,
            "mem" => p.mem_ops = num(3)? as u8,
            "ctas" => p.ctas = positive(key, num(65_536)?)? as u32,
            "tpc" => p.threads_per_cta = positive(key, num(1024)?)? as u32,
            "conc" => p.conc_ctas = positive(key, num(64)?)? as u32,
            "rep" => rep = positive(key, num(4096)?)? as u32,
            _ => return Err(format!("unknown synth key {key:?}")),
        }
    }
    Ok(JobSpec::Synth {
        params: p,
        chain_repeats: rep,
    })
}

fn parse_flag(key: &str, val: &str) -> Result<bool, String> {
    match val {
        "0" | "false" => Ok(false),
        "1" | "true" => Ok(true),
        _ => Err(format!("synth {key}={val:?} is not 0/1")),
    }
}

fn positive(key: &str, n: u64) -> Result<u64, String> {
    if n == 0 {
        return Err(format!("synth {key} must be positive"));
    }
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_names_resolve() {
        for name in ["VectorAdd", "Gaussian", "LUD", "BlackScholes"] {
            let spec = JobSpec::parse(name).unwrap();
            assert_eq!(spec, JobSpec::Suite(name.into()));
            let k = spec.build_kernel();
            assert!(k.num_machine_instrs() > 0);
        }
    }

    #[test]
    fn synth_defaults_and_overrides() {
        let spec = JobSpec::parse("synth:regs=24,trips=5,rep=16,diamond=1").unwrap();
        match &spec {
            JobSpec::Synth {
                params,
                chain_repeats,
            } => {
                assert_eq!(params.regs, 24);
                assert_eq!(params.loop_trips, 5);
                assert!(params.diamond);
                assert_eq!(*chain_repeats, 16);
            }
            other => panic!("unexpected {other:?}"),
        }
        let k = spec.build_kernel();
        assert_eq!(k.num_regs(), 24);
    }

    #[test]
    fn bare_synth_is_the_default_shape() {
        let spec = JobSpec::parse("synth:").unwrap();
        assert_eq!(
            spec,
            JobSpec::Synth {
                params: SynthParams::default(),
                chain_repeats: 1
            }
        );
    }

    #[test]
    fn generator_domain_enforced_before_building() {
        for bad in [
            "synth:regs=5",
            "synth:regs=64",
            "synth:mem=4",
            "synth:rep=0",
            "synth:tpc=0",
            "synth:tpc=2048",
            "synth:ctas=0",
            "synth:conc=0",
            "synth:regs=abc",
            "synth:nope=1",
            "synth:regs",
            "NotAWorkload",
            "",
            "   ",
        ] {
            assert!(JobSpec::parse(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn every_accepted_spec_builds_without_panicking() {
        for spec in [
            "synth:regs=6",
            "synth:regs=63,trips=0,rep=64",
            "synth:tpc=1,ctas=1,conc=1",
            "synth:tpc=1024,conc=64,mem=3,div=1,diamond=1",
        ] {
            let s = JobSpec::parse(spec).unwrap();
            let k = s.build_kernel();
            assert!(k.num_machine_instrs() > 0, "{spec}");
        }
    }
}
