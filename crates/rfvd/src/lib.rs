//! # rfvd — simulation as a service
//!
//! A persistent daemon in front of the `rfv` register-file
//! virtualization simulator. Instead of paying process startup,
//! compilation, and predecode for every run (the `rfvsim` CLI model),
//! a long-lived server keeps compiled kernels hot and schedules jobs
//! across a bounded queue and a persistent worker pool:
//!
//! * **`rfv-job-v1` protocol** ([`proto`]): length-prefixed frames
//!   carrying checksummed, versioned envelopes — same container
//!   discipline as the `rfv-ckpt-v1` checkpoint format. Every
//!   rejection is a typed [`proto::ErrorCode`].
//! * **Bounded queueing** ([`queue`]): two priority lanes with hard
//!   capacity and typed `QueueFull` backpressure.
//! * **Compile caching** ([`cache`]): kernels are compiled once per
//!   identity hash and shared as `Arc`s; repeat submissions skip the
//!   compiler entirely. The cache is bounded (LRU eviction) and
//!   single-flight: concurrent misses on one key coalesce into one
//!   build.
//! * **Poll-multiplexed connections**: one event-loop thread drives
//!   every connection through nonblocking sockets, so idle clients
//!   cost file descriptors, not thread stacks.
//! * **Durable job spool** ([`persist`]): with `--spool-dir`, every
//!   accepted job is journaled before its submitter hears `Accepted`;
//!   a restarted daemon replays unfinished records, so a crash loses
//!   no accepted work.
//! * **Environment chaos layer** ([`chaos`]): seeded, deterministic
//!   fault injection at the daemon's I/O boundaries — torn spool
//!   renames, short and failed writes, connection resets, accept
//!   failures, frame stalls — behind zero-cost `SpoolIo`/`SockIo`
//!   passthrough traits. Paired with nonce-keyed idempotent retry in
//!   [`client`] and automatic brownout degradation in [`server`].
//! * **Checkpoint-backed preemption** ([`server`]): jobs execute in
//!   bounded cycle slices on [`rfv_sim::SlicedSim`]; when
//!   high-priority work arrives, a normal job snapshots into an
//!   `rfv-ckpt-v1` checkpoint at the slice boundary and resumes later
//!   — with final statistics byte-identical to an uninterrupted run.
//!
//! Binaries: `rfvd` (the server, with graceful SIGTERM drain) and
//! `rfvload` (a load generator measuring jobs/sec, latency
//! percentiles, and rejection rate).

pub mod cache;
pub mod chaos;
pub mod client;
mod mux;
pub mod persist;
pub mod proto;
pub mod queue;
pub mod server;
pub mod spec;

use rfv_sim::SimResult;

/// Renders a run's statistics in the exact stats-json schema the
/// `rfvsim --stats-json` CLI emits: SM 0's metrics registry plus the
/// whole-GPU `gpu.cycles` / `gpu.sms` counters.
///
/// Everything here is simulation-derived — no wall-clock, no
/// scheduling metadata — which is what makes a preempted-and-resumed
/// job's stats byte-identical to an uninterrupted run's.
pub fn result_stats_json(result: &SimResult, num_sms: usize) -> String {
    let mut m = result.sm0().to_metrics();
    m.add("gpu.cycles", result.cycles);
    m.add("gpu.sms", num_sms as u64);
    m.to_json()
}
