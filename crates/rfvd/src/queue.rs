//! The daemon's bounded job queue.
//!
//! Two priority lanes (high jobs are popped first), a hard capacity
//! with typed [`rejection`](crate::proto::ErrorCode::QueueFull)
//! instead of unbounded buffering, and a drain mode for graceful
//! shutdown: draining rejects new submissions but lets everything
//! already queued run to completion.
//!
//! Preempted jobs re-enter through [`JobQueue::requeue_preempted`],
//! which bypasses the capacity check (the job already held a slot;
//! bouncing it on re-entry would turn preemption into job loss) and
//! goes to the *front* of the normal lane so a preempted job resumes
//! ahead of later arrivals.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

use std::sync::Arc;

use crate::cache::CachedKernel;
use rfv_sim::{Checkpoint, SimConfig};

use crate::proto::{CacheOutcome, JobRequest, JobResult, Priority, ProtoError};
use crate::spec::JobSpec;

/// How a finished job's outcome leaves the worker: a one-shot
/// callback. The multiplexer hands jobs a closure that routes the
/// outcome back to the owning connection (and wakes the event loop);
/// spool-replayed jobs, whose submitter is long gone, use a no-op —
/// their durable record is the spool's `.done` file, written by the
/// worker itself.
pub type ReplyFn = Box<dyn FnOnce(Result<JobResult, ProtoError>) + Send + 'static>;

/// A fully validated unit of work: by the time a job is constructed,
/// its spec parsed and its config validated, so workers only ever see
/// runnable jobs.
pub struct Job {
    /// The original submission.
    pub request: JobRequest,
    /// Parsed workload spec (kernel construction is infallible).
    pub spec: JobSpec,
    /// The resolved, validated simulator configuration.
    pub config: SimConfig,
    /// Whether the kernel compiles with release-flag metadata.
    pub release_flags: bool,
    /// Routes the outcome back to whoever is waiting (see [`ReplyFn`]).
    pub reply: ReplyFn,
    /// Set when the job was preempted: the snapshot to resume from.
    pub resume: Option<Checkpoint>,
    /// Preemption count so far.
    pub preemptions: u32,
    /// The compiled+predecoded kernel, carried across preemptions so a resumed
    /// job never pays the compile again.
    pub compiled: Option<Arc<CachedKernel>>,
    /// How the compile cache served this job (set with `compiled`).
    pub cache: Option<CacheOutcome>,
    /// The job's spool record id when persistence is on.
    pub spool_id: Option<u64>,
    /// True for jobs rebuilt from the spool after a restart: their
    /// checkpoint (if any) is advisory — a resume failure falls back
    /// to running from scratch instead of failing the job.
    pub spool_restored: bool,
}

/// Why a submission was not accepted.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SubmitError {
    /// The queue is at capacity.
    Full,
    /// The daemon is draining.
    Draining,
}

/// Outcome of [`JobQueue::submit`]. Rejections hand the job back so
/// the caller can still reply on its channel.
// a Submit lives only for the duration of one match at the submit
// site; indirection would buy nothing
#[allow(clippy::large_enum_variant)]
#[must_use]
pub enum Submit {
    /// The job is queued.
    Accepted,
    /// The job was not queued; here it is, with the reason.
    Rejected(Job, SubmitError),
}

struct Lanes {
    high: VecDeque<Job>,
    normal: VecDeque<Job>,
    draining: bool,
}

impl Lanes {
    fn len(&self) -> usize {
        self.high.len() + self.normal.len()
    }
}

/// A bounded two-lane blocking queue. See the module docs.
pub struct JobQueue {
    lanes: Mutex<Lanes>,
    ready: Condvar,
    capacity: usize,
}

impl JobQueue {
    /// A queue admitting at most `capacity` waiting jobs (minimum 1).
    pub fn new(capacity: usize) -> JobQueue {
        JobQueue {
            lanes: Mutex::new(Lanes {
                high: VecDeque::new(),
                normal: VecDeque::new(),
                draining: false,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Enqueues `job`; see [`Submit`] for the rejection contract.
    pub fn submit(&self, job: Job) -> Submit {
        let mut lanes = self.lanes.lock().expect("queue lock");
        if lanes.draining {
            return Submit::Rejected(job, SubmitError::Draining);
        }
        if lanes.len() >= self.capacity {
            return Submit::Rejected(job, SubmitError::Full);
        }
        match job.request.priority {
            Priority::High => lanes.high.push_back(job),
            Priority::Normal => lanes.normal.push_back(job),
        }
        self.ready.notify_one();
        Submit::Accepted
    }

    /// Re-enqueues a preempted job at the front of the normal lane,
    /// ignoring capacity (the job is being *moved*, not admitted).
    pub fn requeue_preempted(&self, job: Job) {
        let mut lanes = self.lanes.lock().expect("queue lock");
        lanes.normal.push_front(job);
        self.ready.notify_one();
    }

    /// Enqueues a spool-replayed job at the back of its priority
    /// lane, ignoring capacity: the job was admitted by a previous
    /// daemon life, and bouncing it on restart would turn a crash
    /// into job loss.
    pub fn restore(&self, job: Job) {
        let mut lanes = self.lanes.lock().expect("queue lock");
        match job.request.priority {
            Priority::High => lanes.high.push_back(job),
            Priority::Normal => lanes.normal.push_back(job),
        }
        self.ready.notify_one();
    }

    /// Blocks until a job is available (high lane first) or the queue
    /// is draining *and* empty — then `None`: the worker should exit.
    pub fn pop(&self) -> Option<Job> {
        let mut lanes = self.lanes.lock().expect("queue lock");
        loop {
            if let Some(job) = lanes.high.pop_front() {
                return Some(job);
            }
            if let Some(job) = lanes.normal.pop_front() {
                return Some(job);
            }
            if lanes.draining {
                return None;
            }
            lanes = self.ready.wait(lanes).expect("queue lock");
        }
    }

    /// Whether a high-priority job is waiting — the signal a worker
    /// polls between slices to decide whether to preempt its
    /// normal-priority job.
    pub fn has_high_waiting(&self) -> bool {
        !self.lanes.lock().expect("queue lock").high.is_empty()
    }

    /// The configured admission bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Jobs currently waiting.
    pub fn len(&self) -> usize {
        self.lanes.lock().expect("queue lock").len()
    }

    /// Whether nothing is waiting.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enters drain mode: new submissions are rejected, queued jobs
    /// still run, blocked workers wake so they can observe the drain.
    pub fn drain(&self) {
        self.lanes.lock().expect("queue lock").draining = true;
        self.ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn test_job(priority: Priority) -> Job {
        Job {
            request: JobRequest {
                spec: "synth:".into(),
                priority,
                ..JobRequest::default()
            },
            spec: JobSpec::parse("synth:").unwrap(),
            config: SimConfig::baseline_full(),
            release_flags: true,
            reply: Box::new(|_| {}),
            resume: None,
            preemptions: 0,
            compiled: None,
            cache: None,
            spool_id: None,
            spool_restored: false,
        }
    }

    fn accepted(outcome: Submit) {
        assert!(matches!(outcome, Submit::Accepted));
    }

    fn rejected(outcome: Submit) -> (Job, SubmitError) {
        match outcome {
            Submit::Accepted => panic!("expected a rejection"),
            Submit::Rejected(job, err) => (job, err),
        }
    }

    #[test]
    fn capacity_is_enforced_with_job_returned() {
        let q = JobQueue::new(2);
        accepted(q.submit(test_job(Priority::Normal)));
        accepted(q.submit(test_job(Priority::Normal)));
        let (job, err) = rejected(q.submit(test_job(Priority::Normal)));
        assert_eq!(err, SubmitError::Full);
        assert_eq!(job.request.spec, "synth:");
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn high_lane_pops_first_and_preempted_jobs_lead_normal() {
        let q = JobQueue::new(8);
        accepted(q.submit(test_job(Priority::Normal)));
        accepted(q.submit(test_job(Priority::High)));
        assert!(q.has_high_waiting());
        let mut preempted = test_job(Priority::Normal);
        preempted.preemptions = 1;
        q.requeue_preempted(preempted);
        assert_eq!(q.pop().unwrap().request.priority, Priority::High);
        assert!(!q.has_high_waiting());
        assert_eq!(q.pop().unwrap().preemptions, 1, "preempted job leads");
        assert_eq!(q.pop().unwrap().preemptions, 0);
    }

    #[test]
    fn drain_rejects_new_but_serves_queued_then_releases_workers() {
        let q = Arc::new(JobQueue::new(8));
        accepted(q.submit(test_job(Priority::Normal)));
        q.drain();
        let (_, err) = rejected(q.submit(test_job(Priority::Normal)));
        assert_eq!(err, SubmitError::Draining);
        assert!(q.pop().is_some(), "queued job survives the drain");
        assert!(q.pop().is_none(), "drained + empty wakes workers with None");
        // a blocked worker also wakes
        let q2 = Arc::new(JobQueue::new(8));
        let qc = Arc::clone(&q2);
        let h = std::thread::spawn(move || qc.pop().is_none());
        std::thread::sleep(std::time::Duration::from_millis(20));
        q2.drain();
        assert!(h.join().unwrap());
    }

    #[test]
    fn requeue_bypasses_capacity() {
        let q = JobQueue::new(1);
        accepted(q.submit(test_job(Priority::Normal)));
        q.requeue_preempted(test_job(Priority::Normal));
        assert_eq!(q.len(), 2, "a moved job never bounces");
    }

    #[test]
    fn restore_bypasses_capacity_and_keeps_lanes() {
        let q = JobQueue::new(1);
        accepted(q.submit(test_job(Priority::Normal)));
        q.restore(test_job(Priority::High));
        q.restore(test_job(Priority::Normal));
        assert_eq!(q.len(), 3, "replayed jobs never bounce on capacity");
        assert_eq!(
            q.pop().unwrap().request.priority,
            Priority::High,
            "a restored high-priority job still leads"
        );
    }
}
