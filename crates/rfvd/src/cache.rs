//! Per-kernel compile + predecode cache.
//!
//! Compilation (CFG, liveness, lifetime intervals, metadata packing)
//! and predecode are pure: the same source kernel under the same
//! compile flavor always produces the same [`CompiledKernel`] and
//! [`PredecodedKernel`]. The daemon therefore memoizes both once per
//! *kernel identity* — [`crate::spec::JobSpec::cache_key`], an FNV-1a
//! hash over the job spec's canonical form plus the compile flavor —
//! and every later job with the same identity reuses the `Arc`'d
//! pair, paying zero generate, compile, and predecode cost. Keying by
//! spec (not by built kernel) matters: a warm job never even
//! constructs the source kernel.
//!
//! Building happens *outside* the map lock so a slow compile never
//! blocks unrelated lookups; a racing duplicate build is benign
//! (both produce identical results; the first insert wins).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use rfv_compiler::{compile, CompileOptions, CompiledKernel};
use rfv_isa::prelude::Kernel;
use rfv_sim::PredecodedKernel;

/// A cached kernel: the compiled binary plus its issue-ready
/// predecoded image. Both are pure functions of the source kernel
/// and flavor, so every job with the same identity shares them.
pub struct CachedKernel {
    /// The compiled binary.
    pub compiled: Arc<CompiledKernel>,
    /// The predecoded program image every SM of every run reuses.
    pub predecoded: Arc<PredecodedKernel>,
}

impl CachedKernel {
    /// Compiles and predecodes `kernel` under `release_flags`.
    ///
    /// # Errors
    ///
    /// The compiler's error, stringified.
    pub fn build(kernel: &Kernel, release_flags: bool) -> Result<CachedKernel, String> {
        let compiled = Arc::new(compile_flavored(kernel, release_flags)?);
        let predecoded = Arc::new(PredecodedKernel::new(&compiled));
        Ok(CachedKernel {
            compiled,
            predecoded,
        })
    }
}

/// A concurrent compile cache keyed by
/// [`crate::spec::JobSpec::cache_key`].
#[derive(Default)]
pub struct CompileCache {
    map: Mutex<HashMap<u64, Arc<CachedKernel>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl CompileCache {
    /// An empty cache.
    pub fn new() -> CompileCache {
        CompileCache::default()
    }

    /// Returns the cached kernel under `key`, running `build` (and
    /// caching its result) on first sight. The `bool` is true on a
    /// cache hit.
    ///
    /// # Errors
    ///
    /// Whatever `build` fails with (daemon input is validated, so in
    /// practice this is unreachable for accepted specs).
    pub fn get_or_build(
        &self,
        key: u64,
        build: impl FnOnce() -> Result<CachedKernel, String>,
    ) -> Result<(Arc<CachedKernel>, bool), String> {
        if let Some(hit) = self.map.lock().expect("cache lock").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok((Arc::clone(hit), true));
        }
        let built = Arc::new(build()?);
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut map = self.map.lock().expect("cache lock");
        let entry = map.entry(key).or_insert_with(|| Arc::clone(&built));
        Ok((Arc::clone(entry), false))
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses (builds) so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of distinct kernels cached.
    pub fn len(&self) -> usize {
        self.map.lock().expect("cache lock").len()
    }

    /// Whether nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Compiles `kernel` under the daemon's two flavors: with the default
/// renaming-table budget (virtualizing machines) or with a zero
/// budget (conventional / hardware-only machines) — mirrors
/// `rfv_bench::harness::{compile_full, compile_plain}` but returns
/// the error instead of panicking.
pub fn compile_flavored(kernel: &Kernel, release_flags: bool) -> Result<CompiledKernel, String> {
    let opts = if release_flags {
        CompileOptions::default()
    } else {
        CompileOptions {
            table_budget_bytes: 0,
        }
    };
    compile(kernel, &opts).map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::JobSpec;

    fn spec(s: &str) -> JobSpec {
        JobSpec::parse(s).unwrap()
    }

    fn build_for(spec: &JobSpec, release_flags: bool) -> Result<CachedKernel, String> {
        CachedKernel::build(&spec.build_kernel(), release_flags)
    }

    #[test]
    fn second_lookup_hits() {
        let cache = CompileCache::new();
        let s = spec("synth:");
        let key = s.cache_key(true);
        let (a, hit_a) = cache.get_or_build(key, || build_for(&s, true)).unwrap();
        let (b, hit_b) = cache.get_or_build(key, || build_for(&s, true)).unwrap();
        assert!(!hit_a);
        assert!(hit_b);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn flavors_do_not_collide() {
        let cache = CompileCache::new();
        let s = spec("synth:");
        let (_, hit_full) = cache
            .get_or_build(s.cache_key(true), || build_for(&s, true))
            .unwrap();
        let (_, hit_plain) = cache
            .get_or_build(s.cache_key(false), || build_for(&s, false))
            .unwrap();
        assert!(!hit_full);
        assert!(!hit_plain, "plain flavor must not reuse the full compile");
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn distinct_specs_get_distinct_keys() {
        let a = spec("synth:rep=1").cache_key(true);
        let b = spec("synth:rep=2").cache_key(true);
        let c = spec("synth:regs=20").cache_key(true);
        let d = spec("VectorAdd").cache_key(true);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
        // and the key is deterministic
        assert_eq!(a, spec("synth:rep=1").cache_key(true));
    }

    #[test]
    fn build_error_is_not_cached() {
        let cache = CompileCache::new();
        let err = cache.get_or_build(7, || Err("boom".into()));
        assert!(matches!(err, Err(ref e) if e == "boom"));
        assert!(cache.is_empty());
        let ok = cache.get_or_build(7, || build_for(&spec("synth:"), true));
        assert!(ok.is_ok(), "a failed build must not poison the key");
    }
}
