//! Per-kernel compile + predecode cache, bounded and build-coalescing.
//!
//! Compilation (CFG, liveness, lifetime intervals, metadata packing)
//! and predecode are pure: the same source kernel under the same
//! compile flavor always produces the same [`CompiledKernel`] and
//! [`PredecodedKernel`]. The daemon therefore memoizes both once per
//! *kernel identity* — [`crate::spec::JobSpec::cache_key`], an FNV-1a
//! hash over the job spec's canonical form plus the compile flavor —
//! and every later job with the same identity reuses the `Arc`'d
//! pair, paying zero generate, compile, and predecode cost. Keying by
//! spec (not by built kernel) matters: a warm job never even
//! constructs the source kernel.
//!
//! Two resource guarantees (PR 7):
//!
//! * **Bounded residency.** The cache holds at most `capacity`
//!   kernels (0 = unbounded). Inserting past the bound evicts the
//!   least-recently-used ready entry; eviction is counted and
//!   surfaced through the daemon's `Stats` response. An evicted
//!   kernel simply rebuilds on next sight — compilation is pure, so
//!   the rebuilt entry is byte-identical.
//! * **Single-flight builds.** A miss installs an in-flight marker
//!   *before* building, so a second racing miss on the same key
//!   blocks on the first build instead of duplicating the full
//!   compile+predecode. Building still happens outside the map lock,
//!   so a slow compile never stalls unrelated lookups. A failed
//!   build is handed to every waiter but never cached.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use rfv_compiler::{compile, CompileOptions, CompiledKernel};
use rfv_isa::prelude::Kernel;
use rfv_sim::PredecodedKernel;

/// A cached kernel: the compiled binary plus its issue-ready
/// predecoded image. Both are pure functions of the source kernel
/// and flavor, so every job with the same identity shares them.
pub struct CachedKernel {
    /// The compiled binary.
    pub compiled: Arc<CompiledKernel>,
    /// The predecoded program image every SM of every run reuses.
    pub predecoded: Arc<PredecodedKernel>,
}

impl CachedKernel {
    /// Compiles and predecodes `kernel` under `release_flags`.
    ///
    /// # Errors
    ///
    /// The compiler's error, stringified.
    pub fn build(kernel: &Kernel, release_flags: bool) -> Result<CachedKernel, String> {
        let compiled = Arc::new(compile_flavored(kernel, release_flags)?);
        let predecoded = Arc::new(PredecodedKernel::new(&compiled));
        Ok(CachedKernel {
            compiled,
            predecoded,
        })
    }
}

/// The in-flight rendezvous one building thread shares with its
/// waiters: `result` is `None` until the build finishes.
struct Flight {
    result: Mutex<Option<Result<Arc<CachedKernel>, String>>>,
    done: Condvar,
}

/// A resident entry plus the recency tick LRU eviction orders by.
struct Ready {
    kernel: Arc<CachedKernel>,
    last_used: u64,
}

enum Slot {
    /// Built and resident.
    Ready(Ready),
    /// A build is in flight; waiters block on the [`Flight`].
    Building(Arc<Flight>),
}

struct Inner {
    map: HashMap<u64, Slot>,
    /// Monotonic recency clock; bumped on every hit and insert.
    tick: u64,
}

impl Inner {
    fn touch(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    fn ready_count(&self) -> usize {
        self.map
            .values()
            .filter(|s| matches!(s, Slot::Ready(_)))
            .count()
    }

    /// Evicts the least-recently-used ready entry. In-flight builds
    /// are never evicted (there is nothing resident to drop yet).
    fn evict_lru(&mut self) -> bool {
        let victim = self
            .map
            .iter()
            .filter_map(|(k, s)| match s {
                Slot::Ready(r) => Some((*k, r.last_used)),
                Slot::Building(_) => None,
            })
            .min_by_key(|&(_, used)| used)
            .map(|(k, _)| k);
        match victim {
            Some(k) => {
                self.map.remove(&k);
                true
            }
            None => false,
        }
    }
}

/// A concurrent, bounded compile cache keyed by
/// [`crate::spec::JobSpec::cache_key`]. See the module docs for the
/// eviction and build-coalescing contracts.
pub struct CompileCache {
    inner: Mutex<Inner>,
    /// Maximum resident kernels; 0 means unbounded.
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl Default for CompileCache {
    fn default() -> CompileCache {
        CompileCache::unbounded()
    }
}

impl CompileCache {
    /// A cache evicting LRU entries beyond `capacity` resident
    /// kernels; `0` disables the bound.
    pub fn with_capacity(capacity: usize) -> CompileCache {
        CompileCache {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                tick: 0,
            }),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// An unbounded cache (embedders that manage their own lifetime).
    pub fn unbounded() -> CompileCache {
        CompileCache::with_capacity(0)
    }

    /// An empty unbounded cache.
    pub fn new() -> CompileCache {
        CompileCache::default()
    }

    /// Returns the cached kernel under `key`, running `build` (and
    /// caching its result) on first sight. The `bool` is true on a
    /// cache hit — including a wait on another thread's in-flight
    /// build, which serves this caller without compiling anything.
    ///
    /// # Errors
    ///
    /// Whatever `build` fails with (daemon input is validated, so in
    /// practice this is unreachable for accepted specs). Waiters on a
    /// failed in-flight build receive the same error; nothing is
    /// cached either way.
    pub fn get_or_build(
        &self,
        key: u64,
        build: impl FnOnce() -> Result<CachedKernel, String>,
    ) -> Result<(Arc<CachedKernel>, bool), String> {
        let my_flight: Arc<Flight>;
        {
            let mut inner = self.inner.lock().expect("cache lock");
            match inner.map.get(&key) {
                Some(Slot::Ready(_)) => {
                    let tick = inner.touch();
                    if let Some(Slot::Ready(r)) = inner.map.get_mut(&key) {
                        r.last_used = tick;
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        return Ok((Arc::clone(&r.kernel), true));
                    }
                    unreachable!("entry vanished under the lock");
                }
                Some(Slot::Building(f)) => {
                    // someone else is building this key: wait for
                    // their result instead of duplicating the build
                    let flight = Arc::clone(f);
                    drop(inner);
                    let mut result = flight.result.lock().expect("flight lock");
                    while result.is_none() {
                        result = flight.done.wait(result).expect("flight lock");
                    }
                    return match result.as_ref().expect("loop exits on Some") {
                        Ok(kernel) => {
                            self.hits.fetch_add(1, Ordering::Relaxed);
                            Ok((Arc::clone(kernel), true))
                        }
                        Err(e) => Err(e.clone()),
                    };
                }
                None => {
                    // claim the key before building so racing misses
                    // coalesce onto this build
                    my_flight = Arc::new(Flight {
                        result: Mutex::new(None),
                        done: Condvar::new(),
                    });
                    inner
                        .map
                        .insert(key, Slot::Building(Arc::clone(&my_flight)));
                }
            }
        }

        // we own the build; run it outside the map lock
        let built = build().map(Arc::new);
        self.misses.fetch_add(1, Ordering::Relaxed);
        {
            let mut inner = self.inner.lock().expect("cache lock");
            match &built {
                Ok(kernel) => {
                    let tick = inner.touch();
                    inner.map.insert(
                        key,
                        Slot::Ready(Ready {
                            kernel: Arc::clone(kernel),
                            last_used: tick,
                        }),
                    );
                    if self.capacity > 0 {
                        while inner.ready_count() > self.capacity {
                            if !inner.evict_lru() {
                                break;
                            }
                            self.evictions.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                // a failed build must not poison the key
                Err(_) => {
                    inner.map.remove(&key);
                }
            }
        }
        // release the waiters, success or failure alike
        *my_flight.result.lock().expect("flight lock") = Some(built.clone());
        my_flight.done.notify_all();
        built.map(|k| (k, false))
    }

    /// Cache hits so far (including coalesced waits on in-flight
    /// builds).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses (builds) so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Evictions so far.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Number of distinct kernels resident right now.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("cache lock").ready_count()
    }

    /// Whether nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Compiles `kernel` under the daemon's two flavors: with the default
/// renaming-table budget (virtualizing machines) or with a zero
/// budget (conventional / hardware-only machines) — mirrors
/// `rfv_bench::harness::{compile_full, compile_plain}` but returns
/// the error instead of panicking.
pub fn compile_flavored(kernel: &Kernel, release_flags: bool) -> Result<CompiledKernel, String> {
    let opts = if release_flags {
        CompileOptions::default()
    } else {
        CompileOptions {
            table_budget_bytes: 0,
        }
    };
    compile(kernel, &opts).map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::JobSpec;
    use std::sync::atomic::AtomicUsize;

    fn spec(s: &str) -> JobSpec {
        JobSpec::parse(s).unwrap()
    }

    fn build_for(spec: &JobSpec, release_flags: bool) -> Result<CachedKernel, String> {
        CachedKernel::build(&spec.build_kernel(), release_flags)
    }

    #[test]
    fn second_lookup_hits() {
        let cache = CompileCache::new();
        let s = spec("synth:");
        let key = s.cache_key(true);
        let (a, hit_a) = cache.get_or_build(key, || build_for(&s, true)).unwrap();
        let (b, hit_b) = cache.get_or_build(key, || build_for(&s, true)).unwrap();
        assert!(!hit_a);
        assert!(hit_b);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn flavors_do_not_collide() {
        let cache = CompileCache::new();
        let s = spec("synth:");
        let (_, hit_full) = cache
            .get_or_build(s.cache_key(true), || build_for(&s, true))
            .unwrap();
        let (_, hit_plain) = cache
            .get_or_build(s.cache_key(false), || build_for(&s, false))
            .unwrap();
        assert!(!hit_full);
        assert!(!hit_plain, "plain flavor must not reuse the full compile");
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn distinct_specs_get_distinct_keys() {
        let a = spec("synth:rep=1").cache_key(true);
        let b = spec("synth:rep=2").cache_key(true);
        let c = spec("synth:regs=20").cache_key(true);
        let d = spec("VectorAdd").cache_key(true);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
        // and the key is deterministic
        assert_eq!(a, spec("synth:rep=1").cache_key(true));
    }

    #[test]
    fn build_error_is_not_cached() {
        let cache = CompileCache::new();
        let err = cache.get_or_build(7, || Err("boom".into()));
        assert!(matches!(err, Err(ref e) if e == "boom"));
        assert!(cache.is_empty());
        let ok = cache.get_or_build(7, || build_for(&spec("synth:"), true));
        assert!(ok.is_ok(), "a failed build must not poison the key");
    }

    #[test]
    fn capacity_bound_evicts_lru_and_counts_it() {
        let cache = CompileCache::with_capacity(2);
        let specs = ["synth:rep=1", "synth:rep=2", "synth:rep=3"];
        let keys: Vec<u64> = specs.iter().map(|s| spec(s).cache_key(true)).collect();
        for (s, &key) in specs.iter().zip(&keys) {
            cache
                .get_or_build(key, || build_for(&spec(s), true))
                .unwrap();
        }
        // rep=1 was least recently used: it was the eviction victim
        assert_eq!(cache.len(), 2, "the bound is a hard ceiling");
        assert_eq!(cache.evictions(), 1);
        let (_, hit) = cache
            .get_or_build(keys[1], || build_for(&spec(specs[1]), true))
            .unwrap();
        assert!(hit, "rep=2 must have survived");
        let (_, hit) = cache
            .get_or_build(keys[0], || build_for(&spec(specs[0]), true))
            .unwrap();
        assert!(!hit, "the evicted key rebuilds as a miss");
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions(), 2, "the rebuild evicted in turn");
    }

    #[test]
    fn a_hit_refreshes_recency() {
        let cache = CompileCache::with_capacity(2);
        let ids = ["synth:rep=1", "synth:rep=2", "synth:rep=3"];
        let keys: Vec<u64> = ids.iter().map(|s| spec(s).cache_key(true)).collect();
        cache
            .get_or_build(keys[0], || build_for(&spec(ids[0]), true))
            .unwrap();
        cache
            .get_or_build(keys[1], || build_for(&spec(ids[1]), true))
            .unwrap();
        // touch rep=1 so rep=2 becomes the LRU
        cache
            .get_or_build(keys[0], || build_for(&spec(ids[0]), true))
            .unwrap();
        cache
            .get_or_build(keys[2], || build_for(&spec(ids[2]), true))
            .unwrap();
        let (_, hit) = cache
            .get_or_build(keys[0], || build_for(&spec(ids[0]), true))
            .unwrap();
        assert!(hit, "recently touched rep=1 must survive the eviction");
        let (_, hit) = cache
            .get_or_build(keys[1], || build_for(&spec(ids[1]), true))
            .unwrap();
        assert!(!hit, "rep=2 was the LRU victim");
    }

    #[test]
    fn racing_misses_coalesce_into_one_build() {
        let cache = Arc::new(CompileCache::new());
        let builds = Arc::new(AtomicUsize::new(0));
        let s = Arc::new(spec("synth:regs=24,rep=8"));
        let key = s.cache_key(true);
        let mut handles = Vec::new();
        for _ in 0..4 {
            let cache = Arc::clone(&cache);
            let builds = Arc::clone(&builds);
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                cache
                    .get_or_build(key, || {
                        builds.fetch_add(1, Ordering::SeqCst);
                        // widen the race window: the other threads must
                        // wait on this build, not start their own
                        std::thread::sleep(std::time::Duration::from_millis(50));
                        build_for(&s, true)
                    })
                    .unwrap()
                    .0
            }));
        }
        let kernels: Vec<Arc<CachedKernel>> =
            handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(
            builds.load(Ordering::SeqCst),
            1,
            "concurrent misses on one key must run exactly one build"
        );
        for k in &kernels[1..] {
            assert!(Arc::ptr_eq(&kernels[0], k));
        }
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 3, "waiters count as served-from-cache");
    }

    #[test]
    fn waiters_on_a_failed_build_get_the_error_and_can_retry() {
        let cache = Arc::new(CompileCache::new());
        let gate = Arc::new(std::sync::Barrier::new(2));
        let c2 = Arc::clone(&cache);
        let g2 = Arc::clone(&gate);
        let waiter = std::thread::spawn(move || {
            g2.wait(); // the builder owns the key before we look
            std::thread::sleep(std::time::Duration::from_millis(20));
            c2.get_or_build(42, || build_for(&spec("synth:"), true))
        });
        let err = cache.get_or_build(42, || {
            gate.wait();
            std::thread::sleep(std::time::Duration::from_millis(60));
            Err("boom".into())
        });
        assert!(matches!(err, Err(ref e) if e == "boom"));
        // the waiter either observed the in-flight failure or retried
        // fresh; both are sound, and the key is never poisoned
        match waiter.join().unwrap() {
            Ok((_, _)) => assert_eq!(cache.len(), 1),
            Err(e) => {
                assert_eq!(e, "boom");
                assert!(cache.is_empty());
            }
        }
    }
}
