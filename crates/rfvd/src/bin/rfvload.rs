//! `rfvload` — load generator for an `rfvd` server.
//!
//! ```text
//! rfvload ADDR [--connections N] [--requests N] [--spec S1,S2,...]
//!         [--machine M] [--sms N] [--high-every K] [--no-cache]
//!         [--timeout-ms N] [--retries N] [--retry-base-ms N] [--seed N]
//!         [--compare-cache] [--out FILE.json]
//! ```
//!
//! Opens `--connections` concurrent connections; each replays the
//! workload mix round-robin for `--requests` submissions. Reports
//! jobs/sec, latency percentiles (p50/p90/p99), rejection rate, and
//! cache outcomes, optionally as machine-readable `rfv-load-v1` JSON.
//!
//! `--compare-cache` runs the same mix twice — cold (cache bypassed)
//! then warm (cache primed) — and prints the warm/cold speedup, the
//! daemon's headline number for repeat-kernel submissions.
//!
//! `--timeout-ms` bounds each submission: a stalled daemon costs one
//! counted timeout and a reconnect, never a wedged load generator.
//!
//! Every submission rides a `ResilientClient` with an idempotency
//! nonce, so `--retries N` survives connection resets, timeouts, and
//! brownout `retry-after` rejections without ever running a job
//! twice; the report counts `retries` and `resets` so a chaos run's
//! turbulence is visible next to its throughput.

use std::io::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use rfvd::client::{Client, ClientError, ResilientClient, RetryPolicy};
use rfvd::proto::{CacheOutcome, JobRequest, Priority, Response};

fn usage() -> ! {
    eprintln!(
        "usage: rfvload ADDR [--connections N] [--requests N] [--spec S1,S2,...]\n\
         \x20              [--machine M] [--sms N] [--high-every K] [--no-cache]\n\
         \x20              [--timeout-ms N] [--retries N] [--retry-base-ms N]\n\
         \x20              [--seed N] [--compare-cache] [--out FILE.json]\n\
         \n\
         \x20 ADDR              server address, e.g. 127.0.0.1:4650\n\
         \x20 --connections N   concurrent client connections (default 4)\n\
         \x20 --requests N      submissions per connection (default 16)\n\
         \x20 --spec LIST       comma-free workload mix, ';'-separated\n\
         \x20                   (default 'synth:regs=24,trips=2,rep=32')\n\
         \x20 --machine M       machine config for every job (default full)\n\
         \x20 --sms N           SM count override (default 1)\n\
         \x20 --high-every K    every Kth job is high priority (0 = never)\n\
         \x20 --no-cache        bypass the server's compile cache\n\
         \x20 --timeout-ms N    per-request response deadline; an expiry counts\n\
         \x20                   a timeout and reconnects (default 0 = wait forever)\n\
         \x20 --retries N       resubmit each job up to N extra times after a\n\
         \x20                   reset, timeout, or retry-after rejection, under\n\
         \x20                   one idempotency nonce (default 0 = never)\n\
         \x20 --retry-base-ms N backoff floor between retries (default 25)\n\
         \x20 --seed N          nonce/jitter determinism seed (default: entropy)\n\
         \x20 --compare-cache   measure cold (bypass) vs warm (primed) throughput\n\
         \x20 --out FILE        write an rfv-load-v1 JSON report"
    );
    std::process::exit(2)
}

#[derive(Clone)]
struct LoadSpec {
    addr: String,
    connections: usize,
    requests: usize,
    specs: Vec<String>,
    machine: String,
    sms: u32,
    high_every: usize,
    use_cache: bool,
    /// Per-request response deadline in ms; 0 waits forever.
    timeout_ms: u64,
    /// Extra attempts per job after a retryable failure; 0 = one shot.
    retries: u32,
    /// Backoff floor between retries, in ms.
    retry_base_ms: u64,
    /// Nonce/jitter seed; None draws entropy per connection.
    seed: Option<u64>,
}

impl LoadSpec {
    fn timeout(&self) -> Option<Duration> {
        (self.timeout_ms > 0).then(|| Duration::from_millis(self.timeout_ms))
    }

    fn policy(&self) -> RetryPolicy {
        RetryPolicy {
            max_attempts: self.retries + 1,
            base: Duration::from_millis(self.retry_base_ms.max(1)),
            ..RetryPolicy::default()
        }
    }
}

#[derive(Default)]
struct Tally {
    ok: u64,
    rejected: u64,
    failed: u64,
    timeouts: u64,
    retries: u64,
    resets: u64,
    hits: u64,
    misses: u64,
    bypass: u64,
    preemptions: u64,
    latencies_us: Vec<u64>,
}

impl Tally {
    fn absorb(&mut self, other: Tally) {
        self.ok += other.ok;
        self.rejected += other.rejected;
        self.failed += other.failed;
        self.timeouts += other.timeouts;
        self.retries += other.retries;
        self.resets += other.resets;
        self.hits += other.hits;
        self.misses += other.misses;
        self.bypass += other.bypass;
        self.preemptions += other.preemptions;
        self.latencies_us.extend(other.latencies_us);
    }
}

struct Report {
    wall_secs: f64,
    jobs_per_sec: f64,
    p50_us: u64,
    p90_us: u64,
    p99_us: u64,
    rejection_rate: f64,
    tally: Tally,
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn run_pass(load: &LoadSpec) -> Report {
    let barrier = Arc::new(Barrier::new(load.connections));
    let job_counter = Arc::new(AtomicU64::new(0));
    let started = Instant::now();
    let mut tally = Tally::default();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for conn_idx in 0..load.connections {
            let barrier = Arc::clone(&barrier);
            let job_counter = Arc::clone(&job_counter);
            handles.push(scope.spawn(move || {
                let mut client = match load.seed {
                    Some(seed) => ResilientClient::seeded(
                        load.addr.clone(),
                        load.timeout(),
                        load.policy(),
                        // decorrelate per-connection nonce streams
                        seed ^ (conn_idx as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15),
                    ),
                    None => ResilientClient::new(load.addr.clone(), load.timeout(), load.policy()),
                };
                let mut t = Tally::default();
                barrier.wait();
                for _ in 0..load.requests {
                    let seq = job_counter.fetch_add(1, Ordering::Relaxed) as usize;
                    let spec = load.specs[seq % load.specs.len()].clone();
                    let priority = if load.high_every > 0 && seq.is_multiple_of(load.high_every) {
                        Priority::High
                    } else {
                        Priority::Normal
                    };
                    let job = JobRequest {
                        spec,
                        machine: load.machine.clone(),
                        num_sms: load.sms,
                        max_cycles: None,
                        priority,
                        use_cache: load.use_cache,
                        nonce: 0, // the client mints one per submission
                    };
                    let sent = Instant::now();
                    match client.submit_idempotent(&job) {
                        Ok(Response::Result(r)) => {
                            t.ok += 1;
                            t.latencies_us.push(sent.elapsed().as_micros() as u64);
                            t.preemptions += u64::from(r.preemptions);
                            match r.cache {
                                CacheOutcome::Hit => t.hits += 1,
                                CacheOutcome::Miss => t.misses += 1,
                                CacheOutcome::Bypass => t.bypass += 1,
                            }
                        }
                        Ok(Response::Error(e)) if e.code.retryable() => {
                            // queue-full / retry-after / shutting-down:
                            // back pressure the daemon chose to apply,
                            // not a failure
                            t.rejected += 1;
                        }
                        Ok(Response::Error(e)) => {
                            eprintln!("rfvload: job failed: {e}");
                            t.failed += 1;
                        }
                        Ok(Response::Stats(_)) => {
                            eprintln!("rfvload: stats reply to a submit");
                            t.failed += 1;
                        }
                        Err(ClientError::TimedOut) => {
                            // the client already dropped the stalled
                            // connection; the next submit re-dials
                            t.timeouts += 1;
                        }
                        Err(e) => {
                            eprintln!("rfvload: transport error: {e}");
                            t.failed += 1;
                            break;
                        }
                    }
                }
                t.retries = client.retries();
                t.resets = client.resets();
                t
            }));
        }
        for h in handles {
            tally.absorb(h.join().expect("load thread panicked"));
        }
    });
    let wall_secs = started.elapsed().as_secs_f64();
    let mut sorted = tally.latencies_us.clone();
    sorted.sort_unstable();
    let attempts = tally.ok + tally.rejected + tally.failed + tally.timeouts;
    Report {
        wall_secs,
        jobs_per_sec: tally.ok as f64 / wall_secs.max(1e-9),
        p50_us: percentile(&sorted, 0.50),
        p90_us: percentile(&sorted, 0.90),
        p99_us: percentile(&sorted, 0.99),
        rejection_rate: if attempts == 0 {
            0.0
        } else {
            tally.rejected as f64 / attempts as f64
        },
        tally,
    }
}

fn print_report(label: &str, r: &Report) {
    println!(
        "{label}: {ok} ok, {rej} rejected, {fail} failed, {to} timed out in {wall:.3}s -> {jps:.1} jobs/s ({retries} retries, {resets} resets)",
        ok = r.tally.ok,
        rej = r.tally.rejected,
        fail = r.tally.failed,
        to = r.tally.timeouts,
        wall = r.wall_secs,
        jps = r.jobs_per_sec,
        retries = r.tally.retries,
        resets = r.tally.resets,
    );
    println!(
        "{label}: latency p50 {p50}us p90 {p90}us p99 {p99}us | cache {h} hit / {m} miss / {b} bypass | {pre} preemptions",
        p50 = r.p50_us,
        p90 = r.p90_us,
        p99 = r.p99_us,
        h = r.tally.hits,
        m = r.tally.misses,
        b = r.tally.bypass,
        pre = r.tally.preemptions,
    );
}

fn report_json(r: &Report) -> String {
    format!(
        "{{\n    \"jobs_per_sec\": {jps:.3},\n    \"wall_secs\": {wall:.6},\n    \
         \"ok\": {ok},\n    \"rejected\": {rej},\n    \"failed\": {fail},\n    \"timeouts\": {to},\n    \
         \"retries\": {retries},\n    \"resets\": {resets},\n    \
         \"rejection_rate\": {rr:.6},\n    \"latency_us\": {{\"p50\": {p50}, \"p90\": {p90}, \"p99\": {p99}}},\n    \
         \"cache\": {{\"hit\": {h}, \"miss\": {m}, \"bypass\": {b}}},\n    \
         \"preemptions\": {pre}\n  }}",
        jps = r.jobs_per_sec,
        wall = r.wall_secs,
        ok = r.tally.ok,
        rej = r.tally.rejected,
        fail = r.tally.failed,
        to = r.tally.timeouts,
        retries = r.tally.retries,
        resets = r.tally.resets,
        rr = r.rejection_rate,
        p50 = r.p50_us,
        p90 = r.p90_us,
        p99 = r.p99_us,
        h = r.tally.hits,
        m = r.tally.misses,
        b = r.tally.bypass,
        pre = r.tally.preemptions,
    )
}

fn main() {
    let mut args = std::env::args().skip(1);
    let Some(addr) = args.next() else { usage() };
    if addr.starts_with('-') {
        usage()
    }
    let mut load = LoadSpec {
        addr,
        connections: 4,
        requests: 16,
        specs: vec!["synth:regs=24,trips=2,rep=32".into()],
        machine: "full".into(),
        sms: 1,
        high_every: 0,
        use_cache: true,
        timeout_ms: 0,
        retries: 0,
        retry_base_ms: 25,
        seed: None,
    };
    let mut compare_cache = false;
    let mut out: Option<String> = None;
    let parse = |flag: &str, v: Option<String>| -> usize {
        v.and_then(|v| v.parse().ok()).unwrap_or_else(|| {
            eprintln!("rfvload: {flag} needs a numeric argument");
            usage()
        })
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--connections" => load.connections = parse("--connections", args.next()).max(1),
            "--requests" => load.requests = parse("--requests", args.next()),
            "--spec" => {
                let list = args.next().unwrap_or_else(|| usage());
                load.specs = list
                    .split(';')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(String::from)
                    .collect();
                if load.specs.is_empty() {
                    usage()
                }
            }
            "--machine" => load.machine = args.next().unwrap_or_else(|| usage()),
            "--sms" => load.sms = parse("--sms", args.next()) as u32,
            "--high-every" => load.high_every = parse("--high-every", args.next()),
            "--no-cache" => load.use_cache = false,
            "--timeout-ms" => load.timeout_ms = parse("--timeout-ms", args.next()) as u64,
            "--retries" => load.retries = parse("--retries", args.next()) as u32,
            "--retry-base-ms" => {
                load.retry_base_ms = parse("--retry-base-ms", args.next()) as u64;
            }
            "--seed" => load.seed = Some(parse("--seed", args.next()) as u64),
            "--compare-cache" => compare_cache = true,
            "--out" => out = Some(args.next().unwrap_or_else(|| usage())),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("rfvload: unknown flag {other:?}");
                usage()
            }
        }
    }

    if compare_cache {
        // cold: every job compiles for itself
        let cold_load = LoadSpec {
            use_cache: false,
            ..load.clone()
        };
        let cold = run_pass(&cold_load);
        print_report("cold", &cold);
        // prime the cache once per distinct spec, then measure warm
        let mut primer = Client::connect(&load.addr).unwrap_or_else(|e| {
            eprintln!("rfvload: cannot connect: {e}");
            std::process::exit(1);
        });
        let _ = primer.set_timeout(load.timeout());
        for spec in &load.specs {
            let job = JobRequest {
                spec: spec.clone(),
                machine: load.machine.clone(),
                num_sms: load.sms,
                use_cache: true,
                ..JobRequest::default()
            };
            if let Ok(Response::Error(e)) = primer.submit(&job) {
                eprintln!("rfvload: priming {spec:?} failed: {e}");
            }
        }
        let warm_load = LoadSpec {
            use_cache: true,
            ..load.clone()
        };
        let warm = run_pass(&warm_load);
        print_report("warm", &warm);
        let speedup = warm.jobs_per_sec / cold.jobs_per_sec.max(1e-9);
        println!("warm/cold speedup: {speedup:.2}x");
        if let Some(path) = out {
            let json = format!(
                "{{\n  \"schema\": \"rfv-load-v1\",\n  \"mode\": \"compare-cache\",\n  \
                 \"connections\": {conns},\n  \"requests_per_connection\": {reqs},\n  \
                 \"cold\": {cold},\n  \"warm\": {warm},\n  \"speedup\": {speedup:.3}\n}}\n",
                conns = load.connections,
                reqs = load.requests,
                cold = report_json(&cold),
                warm = report_json(&warm),
            );
            write_out(&path, &json);
        }
    } else {
        let report = run_pass(&load);
        print_report("load", &report);
        if let Some(path) = out {
            let json = format!(
                "{{\n  \"schema\": \"rfv-load-v1\",\n  \"mode\": \"load\",\n  \
                 \"connections\": {conns},\n  \"requests_per_connection\": {reqs},\n  \
                 \"result\": {body}\n}}\n",
                conns = load.connections,
                reqs = load.requests,
                body = report_json(&report),
            );
            write_out(&path, &json);
        }
    }
}

fn write_out(path: &str, json: &str) {
    let mut f = std::fs::File::create(path).unwrap_or_else(|e| {
        eprintln!("rfvload: cannot write {path}: {e}");
        std::process::exit(1);
    });
    f.write_all(json.as_bytes()).expect("write report");
    eprintln!("rfvload: wrote {path}");
}
