//! `rfvd` — the simulation-as-a-service daemon.
//!
//! ```text
//! rfvd [--port N] [--bind ADDR] [--jobs N] [--queue-depth N]
//!      [--max-cycles-per-slice N] [--cache-entries N] [--spool-dir DIR]
//!      [--spool-max-records N] [--chaos SPEC] [--chaos-seed N]
//! ```
//!
//! Listens for `rfv-job-v1` connections and serves simulation jobs
//! until SIGTERM/SIGINT, then drains gracefully: in-flight and queued
//! jobs finish, new submissions are rejected with a typed
//! `shutting-down` error, and the process exits 0.
//!
//! With `--spool-dir`, accepted jobs are journaled to disk and a
//! restarted daemon (same directory) replays any that never finished
//! — a crash loses no accepted work.
//!
//! `--chaos` arms deterministic environment fault injection (see
//! `rfvd::chaos`): the daemon's own disk and socket I/O misbehaves at
//! the configured rates, seeded by `--chaos-seed`. Strictly a test
//! and CI feature — never set it in production.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use rfvd::chaos::ChaosPlan;
use rfvd::server::{serve, ServerConfig};

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod sig {
    use super::SHUTDOWN;

    // minimal signal(2) binding — libc is already linked through std,
    // so this adds no dependency
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" fn on_signal(_signum: i32) {
        // async-signal-safe: one atomic store
        SHUTDOWN.store(true, std::sync::atomic::Ordering::SeqCst);
    }

    pub fn install() {
        unsafe {
            signal(SIGTERM, on_signal as extern "C" fn(i32) as usize);
            signal(SIGINT, on_signal as extern "C" fn(i32) as usize);
        }
    }
}

#[cfg(not(unix))]
mod sig {
    pub fn install() {}
}

fn usage() -> ! {
    eprintln!(
        "usage: rfvd [--port N] [--bind ADDR] [--jobs N] [--queue-depth N] \
         [--max-cycles-per-slice N] [--cache-entries N] [--spool-dir DIR] \
         [--spool-max-records N] [--chaos SPEC] [--chaos-seed N]\n\
         \n\
         \x20 --port N                  listen port (default 4650, 0 = ephemeral)\n\
         \x20 --bind ADDR               bind address (default 127.0.0.1)\n\
         \x20 --jobs N                  concurrent job runners (default: cores, max 8)\n\
         \x20 --queue-depth N           waiting-job capacity (default 64)\n\
         \x20 --max-cycles-per-slice N  preemption granularity in cycles\n\
         \x20                           (default 50000; 0 disables preemption)\n\
         \x20 --cache-entries N         compile-cache capacity, LRU-evicted\n\
         \x20                           (default 0 = unbounded)\n\
         \x20 --spool-dir DIR           journal accepted jobs to DIR and replay\n\
         \x20                           unfinished ones on restart (default: off)\n\
         \x20 --spool-max-records N     compact the spool once it holds more than\n\
         \x20                           N records (default 4096, 0 = unbounded)\n\
         \x20 --chaos SPEC              arm fault injection, e.g.\n\
         \x20                           'disk_torn:0.05,net_reset:0.05' (test only)\n\
         \x20 --chaos-seed N            chaos determinism seed (default 1)"
    );
    std::process::exit(2)
}

fn parse<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
    value.and_then(|v| v.parse().ok()).unwrap_or_else(|| {
        eprintln!("rfvd: {flag} needs a numeric argument");
        usage()
    })
}

fn main() {
    let mut port: u16 = 4650;
    let mut bind = "127.0.0.1".to_string();
    let mut config = ServerConfig {
        jobs: std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(2)
            .min(8),
        ..ServerConfig::default()
    };
    let mut chaos_spec: Option<String> = None;
    let mut chaos_seed: u64 = 1;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--port" => port = parse("--port", args.next()),
            "--bind" => bind = args.next().unwrap_or_else(|| usage()),
            "--jobs" => config.jobs = parse("--jobs", args.next()),
            "--queue-depth" => config.queue_depth = parse("--queue-depth", args.next()),
            "--max-cycles-per-slice" => {
                config.max_cycles_per_slice = parse("--max-cycles-per-slice", args.next());
            }
            "--cache-entries" => config.cache_entries = parse("--cache-entries", args.next()),
            "--spool-dir" => {
                config.spool_dir = Some(args.next().unwrap_or_else(|| usage()).into());
            }
            "--spool-max-records" => {
                config.spool_max_records = parse("--spool-max-records", args.next());
            }
            "--chaos" => chaos_spec = Some(args.next().unwrap_or_else(|| usage())),
            "--chaos-seed" => chaos_seed = parse("--chaos-seed", args.next()),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("rfvd: unknown flag {other:?}");
                usage()
            }
        }
    }
    if config.jobs == 0 || config.queue_depth == 0 {
        eprintln!("rfvd: --jobs and --queue-depth must be positive");
        usage()
    }
    if let Some(spec) = chaos_spec {
        config.chaos = ChaosPlan::parse(&spec, chaos_seed).unwrap_or_else(|e| {
            eprintln!("rfvd: bad --chaos spec: {e}");
            usage()
        });
    }
    config.addr = format!("{bind}:{port}");

    sig::install();
    let handle = match serve(config.clone()) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("rfvd: cannot start on {}: {e}", config.addr);
            std::process::exit(1);
        }
    };
    // machine-parseable readiness line (the CI smoke job waits for it)
    println!("rfvd listening on {}", handle.local_addr());
    eprintln!(
        "rfvd: {} job runners, queue depth {}, slice {} cycles, cache {}",
        config.jobs,
        config.queue_depth,
        config.max_cycles_per_slice,
        if config.cache_entries == 0 {
            "unbounded".to_string()
        } else {
            format!("{} entries", config.cache_entries)
        }
    );
    if let Some(dir) = &config.spool_dir {
        let replayed = handle.stats().replayed;
        eprintln!(
            "rfvd: spooling to {} ({replayed} jobs replayed)",
            dir.display()
        );
    }
    if !config.chaos.is_empty() {
        eprintln!(
            "rfvd: CHAOS ARMED ({}) seed {chaos_seed} — test mode, expect injected faults",
            config.chaos.summary()
        );
    }

    while !SHUTDOWN.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(50));
    }
    eprintln!("rfvd: signal received, draining");
    handle.begin_drain();
    let stats = handle.join();
    eprintln!(
        "rfvd: drained ({} completed, {} failed, {} rejected, {} preemptions, \
         cache {}/{} hit/miss), bye",
        stats.completed,
        stats.failed,
        stats.rejected,
        stats.preemptions,
        stats.cache_hits,
        stats.cache_misses
    );
}
