//! The poll-multiplexed connection layer.
//!
//! PR 6's server spawned one OS thread per connection and pushed its
//! `JoinHandle` into a registry that was only reaped at shutdown —
//! two slow resource-exhaustion bugs in one: a long-lived daemon
//! serving many short-lived clients accumulated dead handles forever,
//! and every *idle* client pinned a whole thread stack. This module
//! replaces both with a single event-loop thread driving every
//! connection through nonblocking sockets:
//!
//! * **One thread, N connections.** The loop multiplexes the
//!   listener, a self-wake channel, and every connection through
//!   `poll(2)` (on Linux; a short-tick scan elsewhere). A thousand
//!   idle clients cost a thousand file descriptors and zero threads.
//! * **Eager reaping.** A connection that closes, errors, or poisons
//!   its stream is dropped from the map immediately — there is no
//!   handle registry to leak, and `conns_open` in the `Stats`
//!   response reports the live count.
//! * **Non-blocking submits.** The old design parked the connection
//!   thread on the job's completion channel. Here a submit enqueues
//!   the job with a reply closure that posts the outcome back to the
//!   event loop (and wakes it); the loop writes the response frame
//!   when it arrives. While a connection has a submit in flight it is
//!   simply not polled for reads — the kernel's socket buffer is the
//!   backpressure, and buffered follow-up frames are pumped as soon
//!   as the reply is delivered, preserving strict per-connection
//!   request/response ordering.
//!
//! Writes are buffered per connection and drained on `POLLOUT`, so a
//! slow reader can never wedge the loop. Framing-level errors
//! (`BadMagic`, `BadChecksum`, `Oversized`) still reply-then-close;
//! the close is deferred until the error frame is flushed.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::chaos::SockIo;
use crate::proto::{ErrorCode, FrameReader, Priority, ProtoError, Recv, Request, Response};
use crate::queue::{ReplyFn, Submit};
use crate::server::{validate_submit, NonceGate, ServerState};

/// How long the event loop sleeps when nothing is ready. Wakes from
/// job completions and drains arrive through the [`Waker`], so this
/// only bounds how stale the drain-exit check can get.
const IDLE_WAIT: Duration = Duration::from_millis(200);

/// How long a draining loop keeps trying to flush final replies to
/// slow readers before giving up and closing.
const DRAIN_FLUSH_DEADLINE: Duration = Duration::from_secs(5);

/// How often a browned-out daemon probes the spool for healing.
const PROBE_INTERVAL: Duration = Duration::from_millis(250);

/// Backoff hint attached to `ShuttingDown` rejections.
const DRAIN_RETRY_HINT_MS: u64 = 500;

/// Backoff hint attached to disk-brownout rejections.
const DISK_RETRY_HINT_MS: u64 = 250;

/// Backoff hint for queue-pressure rejections: scales with the
/// backlog so a deeper queue pushes retries further out.
fn queue_retry_hint(queued: usize) -> u64 {
    (25 + 10 * queued as u64).min(2_000)
}

/// A completed job's outcome, posted back to the event loop by the
/// reply closure a submit installed.
pub(crate) type Completion = (u64, Result<crate::proto::JobResult, ProtoError>);

// ---------------------------------------------------------- wake pair

/// Wakes the event loop from another thread (worker completions,
/// `begin_drain`). On Unix this writes one byte into a socketpair the
/// loop polls; the write is nonblocking and coalesces — a full pipe
/// means a wake is already pending, which is all we need.
#[derive(Clone)]
pub struct Waker {
    #[cfg(unix)]
    tx: Arc<std::os::unix::net::UnixStream>,
}

impl Waker {
    /// Interrupts the event loop's wait.
    pub fn wake(&self) {
        #[cfg(unix)]
        {
            let _ = (&*self.tx).write(&[1u8]);
        }
    }
}

#[cfg(unix)]
pub(crate) struct WakeRx(std::os::unix::net::UnixStream);

#[cfg(not(unix))]
pub(crate) struct WakeRx;

/// Builds the waker and its loop-side receiving end.
pub(crate) fn wake_pair() -> io::Result<(Waker, WakeRx)> {
    #[cfg(unix)]
    {
        let (rx, tx) = std::os::unix::net::UnixStream::pair()?;
        rx.set_nonblocking(true)?;
        tx.set_nonblocking(true)?;
        Ok((Waker { tx: Arc::new(tx) }, WakeRx(rx)))
    }
    #[cfg(not(unix))]
    {
        Ok((Waker {}, WakeRx))
    }
}

// ---------------------------------------------------------- listener

/// Binds the listener with `SO_REUSEADDR`, so a daemon restarted
/// after a crash can rebind its port immediately instead of failing
/// with `EADDRINUSE` while the dead process's connections sit in
/// `TIME_WAIT` — without this, spool replay after a `SIGKILL` only
/// works if the operator also changes ports or waits out the kernel
/// timer. `std`'s `TcpListener::bind` deliberately leaves the option
/// unset and offers no pre-bind hook, so on Linux the socket is built
/// by hand (same no-dependency `extern "C"` route as the `poll(2)`
/// binding below); elsewhere, and for IPv6, it falls back to the
/// plain bind.
pub(crate) fn bind_reusable(addr: &str) -> io::Result<TcpListener> {
    #[cfg(target_os = "linux")]
    {
        use std::net::ToSocketAddrs;
        if let Some(std::net::SocketAddr::V4(v4)) = addr.to_socket_addrs()?.next() {
            return bind_reusable_v4(&v4);
        }
    }
    TcpListener::bind(addr)
}

#[cfg(target_os = "linux")]
fn bind_reusable_v4(addr: &std::net::SocketAddrV4) -> io::Result<TcpListener> {
    use std::os::fd::FromRawFd;

    const AF_INET: i32 = 2;
    const SOCK_STREAM: i32 = 1;
    const SOCK_CLOEXEC: i32 = 0o2000000;
    const SOL_SOCKET: i32 = 1;
    const SO_REUSEADDR: i32 = 2;

    #[repr(C)]
    struct SockaddrIn {
        sin_family: u16,
        sin_port: u16, // network byte order
        sin_addr: u32, // network byte order
        sin_zero: [u8; 8],
    }

    extern "C" {
        fn socket(domain: i32, ty: i32, protocol: i32) -> i32;
        fn setsockopt(fd: i32, level: i32, name: i32, value: *const i32, len: u32) -> i32;
        fn bind(fd: i32, addr: *const SockaddrIn, len: u32) -> i32;
        fn listen(fd: i32, backlog: i32) -> i32;
        fn close(fd: i32) -> i32;
    }

    unsafe {
        let fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        let fail = |fd: i32| -> io::Error {
            let e = io::Error::last_os_error();
            close(fd);
            e
        };
        let one: i32 = 1;
        if setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, 4) < 0 {
            return Err(fail(fd));
        }
        let sa = SockaddrIn {
            sin_family: AF_INET as u16,
            sin_port: addr.port().to_be(),
            // octets are already network order; from_ne_bytes keeps them
            sin_addr: u32::from_ne_bytes(addr.ip().octets()),
            sin_zero: [0; 8],
        };
        if bind(fd, &sa, std::mem::size_of::<SockaddrIn>() as u32) < 0 {
            return Err(fail(fd));
        }
        if listen(fd, 128) < 0 {
            return Err(fail(fd));
        }
        Ok(TcpListener::from_raw_fd(fd))
    }
}

impl WakeRx {
    /// Drains pending wake bytes (they only mean "look again").
    fn drain(&mut self) {
        #[cfg(unix)]
        {
            let mut sink = [0u8; 64];
            while matches!(self.0.read(&mut sink), Ok(n) if n > 0) {}
        }
    }
}

// -------------------------------------------------------- connections

struct Conn {
    stream: TcpStream,
    reader: FrameReader,
    /// Bytes queued for the peer, `out[out_pos..]` still unsent.
    out: Vec<u8>,
    out_pos: usize,
    /// A submit is awaiting its worker; reads are paused until the
    /// reply is written so responses stay in request order.
    inflight: bool,
    /// The stream is poisoned: close once `out` is flushed.
    close_after_flush: bool,
}

impl Conn {
    fn has_output(&self) -> bool {
        self.out_pos < self.out.len()
    }

    /// Queues one response frame for the peer.
    fn push_response(&mut self, response: &Response) {
        let payload = response.encode();
        self.out
            .extend_from_slice(&(payload.len() as u32).to_le_bytes());
        self.out.extend_from_slice(&payload);
    }

    /// Writes as much buffered output as the socket accepts.
    /// `Ok(true)` means fully flushed; `Err` means the peer is gone.
    fn flush(&mut self, io: &dyn SockIo) -> io::Result<bool> {
        while self.has_output() {
            match io.write(&mut self.stream, &self.out[self.out_pos..]) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => self.out_pos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        self.out.clear();
        self.out_pos = 0;
        Ok(true)
    }
}

/// Adapts a connection's socket reads to go through the [`SockIo`]
/// boundary so [`FrameReader::poll`] sees injected faults too.
struct SockRead<'a> {
    io: &'a dyn SockIo,
    stream: &'a mut TcpStream,
}

impl Read for SockRead<'_> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.io.read(self.stream, buf)
    }
}

/// What to do with a connection after pumping it.
enum Pump {
    Keep,
    Drop,
}

// ---------------------------------------------------------- the mux

pub(crate) struct Mux {
    listener: Option<TcpListener>,
    state: Arc<ServerState>,
    conns: HashMap<u64, Conn>,
    next_conn_id: u64,
    completions: Receiver<Completion>,
    completions_tx: Sender<Completion>,
    waker: Waker,
    wake_rx: WakeRx,
    /// Accepted submits whose replies have not been written yet.
    pending_jobs: usize,
    /// Set once draining starts and the final flush window opens.
    drain_deadline: Option<Instant>,
    /// Every socket op funnels through this boundary (production: a
    /// passthrough; chaos builds: the injector).
    io: Box<dyn SockIo>,
    /// Last disk-healing probe while in disk brownout.
    last_probe: Instant,
}

impl Mux {
    pub(crate) fn new(
        listener: TcpListener,
        state: Arc<ServerState>,
        completions: Receiver<Completion>,
        completions_tx: Sender<Completion>,
        waker: Waker,
        wake_rx: WakeRx,
        io: Box<dyn SockIo>,
    ) -> Mux {
        Mux {
            listener: Some(listener),
            state,
            conns: HashMap::new(),
            next_conn_id: 1,
            completions,
            completions_tx,
            waker,
            wake_rx,
            pending_jobs: 0,
            drain_deadline: None,
            io,
            last_probe: Instant::now(),
        }
    }

    /// The event loop. Returns once the server is draining and every
    /// accepted job's reply has been delivered (or abandoned with its
    /// dead connection).
    pub(crate) fn run(mut self) {
        loop {
            self.wake_rx.drain();
            self.deliver_completions();
            if self.state.in_brownout() && self.last_probe.elapsed() >= PROBE_INTERVAL {
                // probe for recovery so brownouts exit on their own
                // instead of waiting for the next submission
                self.state.spool_probe();
                self.state.update_queue_brownout();
                self.last_probe = Instant::now();
            }
            if self.state.draining() {
                // stop accepting; pending replies still flow
                if self.listener.take().is_some() {
                    // dropped: the OS refuses new connections from here
                }
                if self.drain_complete() {
                    break;
                }
            } else {
                self.accept_ready();
            }
            self.wait_and_dispatch();
        }
        // connections close on drop; count them out first
        let open = self.conns.len() as u64;
        self.state.conns_open.fetch_sub(open, Ordering::SeqCst);
    }

    /// Whether the drain can finish: no reply outstanding and every
    /// buffered byte flushed (or the flush window expired).
    fn drain_complete(&mut self) -> bool {
        if self.pending_jobs > 0 {
            return false;
        }
        let deadline = *self
            .drain_deadline
            .get_or_insert_with(|| Instant::now() + DRAIN_FLUSH_DEADLINE);
        !self.conns.values().any(Conn::has_output) || Instant::now() >= deadline
    }

    /// Routes finished jobs' outcomes to their connections and pumps
    /// any frames the client pipelined behind the submit.
    fn deliver_completions(&mut self) {
        while let Ok((conn_id, outcome)) = self.completions.try_recv() {
            self.pending_jobs = self.pending_jobs.saturating_sub(1);
            let Some(conn) = self.conns.get_mut(&conn_id) else {
                // the submitter disconnected mid-job; the result is
                // dropped (the job itself completed and was counted)
                continue;
            };
            conn.inflight = false;
            let response = match outcome {
                Ok(result) => Response::Result(result),
                Err(e) => Response::Error(e),
            };
            conn.push_response(&response);
            match self.pump(conn_id) {
                Pump::Keep => {}
                Pump::Drop => self.drop_conn(conn_id),
            }
        }
    }

    /// Accepts every connection the listener has ready.
    fn accept_ready(&mut self) {
        let Some(listener) = &self.listener else {
            return;
        };
        loop {
            match self.io.accept(listener) {
                Ok((stream, _peer)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let id = self.next_conn_id;
                    self.next_conn_id += 1;
                    self.conns.insert(
                        id,
                        Conn {
                            stream,
                            reader: FrameReader::new(),
                            out: Vec::new(),
                            out_pos: 0,
                            inflight: false,
                            close_after_flush: false,
                        },
                    );
                    self.state.conns_open.fetch_add(1, Ordering::SeqCst);
                    self.state.conns_total.fetch_add(1, Ordering::SeqCst);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(_) => return,
            }
        }
    }

    fn drop_conn(&mut self, id: u64) {
        if self.conns.remove(&id).is_some() {
            self.state.conns_open.fetch_sub(1, Ordering::SeqCst);
        }
    }

    /// Reads and handles frames from one connection until it would
    /// block, goes in flight, or dies; flushes whatever the handlers
    /// queued.
    fn pump(&mut self, id: u64) -> Pump {
        loop {
            let io = &*self.io;
            let conn = self.conns.get_mut(&id).expect("pumped conn exists");
            if conn.close_after_flush {
                break;
            }
            if conn.inflight {
                break;
            }
            let recv = {
                let mut src = SockRead {
                    io,
                    stream: &mut conn.stream,
                };
                match conn.reader.poll(&mut src) {
                    Ok(r) => r,
                    Err(_) => return Pump::Drop,
                }
            };
            match recv {
                Recv::Idle => break,
                Recv::Closed | Recv::Truncated => return Pump::Drop,
                Recv::Oversized(len) => {
                    let e = ProtoError::new(
                        ErrorCode::Oversized,
                        format!("frame of {len} bytes exceeds the 1 MiB payload limit"),
                    );
                    conn.push_response(&Response::Error(e));
                    conn.close_after_flush = true;
                    break;
                }
                Recv::Payload(payload) => self.handle_frame(id, &payload),
            }
        }
        let io = &*self.io;
        let conn = self.conns.get_mut(&id).expect("pumped conn exists");
        match conn.flush(io) {
            Err(_) => Pump::Drop,
            Ok(true) if conn.close_after_flush => Pump::Drop,
            Ok(_) => Pump::Keep,
        }
    }

    /// Dispatches one decoded frame on connection `id`.
    fn handle_frame(&mut self, id: u64, payload: &[u8]) {
        match Request::decode(payload) {
            Ok(Request::Stats) => {
                let stats = self.state.stats();
                let conn = self.conns.get_mut(&id).expect("conn exists");
                conn.push_response(&Response::Stats(stats));
            }
            Ok(Request::Submit(req)) => {
                let response = self.handle_submit(id, req);
                if let Some(response) = response {
                    let conn = self.conns.get_mut(&id).expect("conn exists");
                    conn.push_response(&response);
                }
            }
            Err(e) => {
                let fatal = e.code.poisons_stream();
                let conn = self.conns.get_mut(&id).expect("conn exists");
                conn.push_response(&Response::Error(e));
                if fatal {
                    conn.close_after_flush = true;
                }
            }
        }
    }

    /// Validates and enqueues a submission. `None` means the job was
    /// accepted (or a duplicate attached to a running one) — its
    /// reply arrives through the completion channel.
    fn handle_submit(&mut self, conn_id: u64, req: crate::proto::JobRequest) -> Option<Response> {
        // Idempotency gate first: a retry of a known nonce converges
        // even while draining or browned out — replaying a recorded
        // reply costs no queue slot and no disk write, which is
        // exactly what lets a retry storm drain instead of amplify.
        let tx = self.completions_tx.clone();
        let waker = self.waker.clone();
        let waiter: ReplyFn = Box::new(move |outcome| {
            let _ = tx.send((conn_id, outcome));
            waker.wake();
        });
        let reply = match self.state.nonce_gate(req.nonce, waiter) {
            NonceGate::New(waiter) => waiter,
            NonceGate::Replayed(response) => return Some(response),
            NonceGate::Attached => {
                let conn = self.conns.get_mut(&conn_id).expect("conn exists");
                conn.inflight = true;
                self.pending_jobs += 1;
                return None;
            }
        };
        if self.state.draining() {
            return Some(Response::Error(
                ProtoError::new(ErrorCode::ShuttingDown, "daemon is draining")
                    .with_retry_after(DRAIN_RETRY_HINT_MS),
            ));
        }
        let valid = match validate_submit(&req) {
            Ok(v) => v,
            Err(e) => return Some(Response::Error(e)),
        };
        // Brownout shedding: normal-priority work is turned away with
        // a typed backoff hint *before* it costs a disk write or a
        // queue slot; high-priority and stats traffic keep flowing.
        self.state.update_queue_brownout();
        if req.priority == Priority::Normal && self.state.in_brownout() {
            self.state.shed.fetch_add(1, Ordering::Relaxed);
            let (cause, hint) = if self.state.in_disk_brownout() {
                ("spool disk is failing".into(), DISK_RETRY_HINT_MS)
            } else {
                let queued = self.state.queue.len();
                (
                    format!("queue is saturated ({queued} waiting)"),
                    queue_retry_hint(queued),
                )
            };
            return Some(Response::Error(
                ProtoError::new(
                    ErrorCode::RetryAfter,
                    format!("brownout: {cause}; shedding normal-priority work"),
                )
                .with_retry_after(hint),
            ));
        }
        // journal before enqueueing: from here the job survives a
        // crash, and a rejected submit removes the record again
        let spool_id = match self.state.journal_accept(&req) {
            Ok(id) => id,
            // a high-priority job outlives a failing disk: accept it
            // non-durable rather than turn it away
            Err(_) if req.priority == Priority::High => None,
            Err(e) => {
                return Some(Response::Error(
                    ProtoError::new(ErrorCode::RetryAfter, format!("spool write failed: {e}"))
                        .with_retry_after(DISK_RETRY_HINT_MS),
                ));
            }
        };
        // register before submitting: a worker may finish the job the
        // instant it hits the queue, and nonce_finish needs the entry
        self.state.nonce_register(req.nonce);
        let job = crate::queue::Job {
            request: req,
            spec: valid.spec,
            config: valid.config,
            release_flags: valid.release_flags,
            reply,
            resume: None,
            preemptions: 0,
            compiled: None,
            cache: None,
            spool_id,
            spool_restored: false,
        };
        match self.state.queue.submit(job) {
            Submit::Rejected(job, err) => {
                self.state.forget_spooled(job.spool_id);
                let error = match err {
                    crate::queue::SubmitError::Full => {
                        self.state.rejected.fetch_add(1, Ordering::Relaxed);
                        self.state.enter_queue_brownout();
                        let queued = self.state.queue.len();
                        ProtoError::new(
                            ErrorCode::QueueFull,
                            format!("queue at capacity ({queued} waiting)"),
                        )
                        .with_retry_after(queue_retry_hint(queued))
                    }
                    crate::queue::SubmitError::Draining => {
                        ProtoError::new(ErrorCode::ShuttingDown, "daemon is draining")
                            .with_retry_after(DRAIN_RETRY_HINT_MS)
                    }
                };
                // answer any duplicates that attached to the nonce
                // while this submission was being bounced
                for waiter in self.state.nonce_unregister(job.request.nonce) {
                    waiter(Err(error.clone()));
                }
                Some(Response::Error(error))
            }
            Submit::Accepted => {
                self.state.submitted.fetch_add(1, Ordering::Relaxed);
                let conn = self.conns.get_mut(&conn_id).expect("conn exists");
                conn.inflight = true;
                self.pending_jobs += 1;
                None
            }
        }
    }

    /// Waits for readiness and services whatever is ready.
    fn wait_and_dispatch(&mut self) {
        let ready = wait_ready(
            self.listener.as_ref(),
            &self.wake_rx,
            &self.conns,
            IDLE_WAIT,
        );
        for id in ready {
            // flush first so a drained out-buffer can close a
            // poisoned conn without waiting for another read
            let io = &*self.io;
            let keep = match self.conns.get_mut(&id) {
                None => continue,
                Some(conn) => match conn.flush(io) {
                    Err(_) => Pump::Drop,
                    Ok(true) if conn.close_after_flush => Pump::Drop,
                    Ok(_) => {
                        if conn.inflight || conn.close_after_flush {
                            Pump::Keep
                        } else {
                            self.pump(id)
                        }
                    }
                },
            };
            if let Pump::Drop = keep {
                self.drop_conn(id);
            }
        }
    }
}

// --------------------------------------------------- readiness: linux

/// Returns the ids of connections worth servicing. On Linux this is a
/// real `poll(2)` over the listener, the wake channel, and every
/// pollable connection; elsewhere it is a short sleep followed by a
/// scan of every connection (nonblocking reads make that safe, just
/// less efficient).
#[cfg(target_os = "linux")]
fn wait_ready(
    listener: Option<&TcpListener>,
    wake_rx: &WakeRx,
    conns: &HashMap<u64, Conn>,
    timeout: Duration,
) -> Vec<u64> {
    use std::os::unix::io::AsRawFd;

    #[repr(C)]
    struct PollFd {
        fd: i32,
        events: i16,
        revents: i16,
    }
    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;
    extern "C" {
        // nfds_t is c_ulong on linux
        fn poll(fds: *mut PollFd, nfds: u64, timeout_ms: i32) -> i32;
    }

    let mut fds: Vec<PollFd> = Vec::with_capacity(conns.len() + 2);
    let mut tags: Vec<u64> = Vec::with_capacity(conns.len() + 2);
    const TAG_LISTENER: u64 = u64::MAX;
    const TAG_WAKER: u64 = u64::MAX - 1;

    if let Some(l) = listener {
        fds.push(PollFd {
            fd: l.as_raw_fd(),
            events: POLLIN,
            revents: 0,
        });
        tags.push(TAG_LISTENER);
    }
    fds.push(PollFd {
        fd: wake_rx.0.as_raw_fd(),
        events: POLLIN,
        revents: 0,
    });
    tags.push(TAG_WAKER);
    for (&id, conn) in conns {
        let mut events = 0i16;
        // while a submit is in flight, reads stay paused (ordering +
        // no busy-wake on data we will not consume yet)
        if !conn.inflight && !conn.close_after_flush {
            events |= POLLIN;
        }
        if conn.has_output() {
            events |= POLLOUT;
        }
        if events != 0 {
            fds.push(PollFd {
                fd: conn.stream.as_raw_fd(),
                events,
                revents: 0,
            });
            tags.push(id);
        }
    }

    let n = unsafe {
        poll(
            fds.as_mut_ptr(),
            fds.len() as u64,
            timeout.as_millis() as i32,
        )
    };
    let mut ready = Vec::new();
    if n <= 0 {
        return ready;
    }
    for (fd, &tag) in fds.iter().zip(&tags) {
        if fd.revents == 0 {
            continue;
        }
        match tag {
            TAG_LISTENER | TAG_WAKER => {} // handled at loop top
            id => ready.push(id),
        }
    }
    ready
}

/// Portable fallback: tick, then service every connection (reads are
/// nonblocking, so "service everything" is correct — just costlier).
#[cfg(not(target_os = "linux"))]
fn wait_ready(
    _listener: Option<&TcpListener>,
    _wake_rx: &WakeRx,
    conns: &HashMap<u64, Conn>,
    _timeout: Duration,
) -> Vec<u64> {
    std::thread::sleep(Duration::from_millis(2));
    conns.keys().copied().collect()
}
