//! A small blocking client for the `rfv-job-v1` protocol, shared by
//! the `rfvload` load generator, the daemon's tests, and the
//! throughput bench.

use std::io::{self, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::proto::{
    read_frame, write_frame, JobRequest, ProtoError, Request, Response, ServerStats,
};

/// A client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (connect, read, write, disconnect).
    Io(io::Error),
    /// The server's bytes did not parse as a response.
    Protocol(ProtoError),
    /// The server closed the connection instead of responding.
    Closed,
    /// No response within the configured deadline (see
    /// [`Client::set_timeout`]). The connection may be mid-frame and
    /// must not be reused — reconnect.
    TimedOut,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o: {e}"),
            ClientError::Protocol(e) => write!(f, "protocol: {e}"),
            ClientError::Closed => write!(f, "server closed the connection"),
            ClientError::TimedOut => write!(f, "no response within the deadline"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> ClientError {
        // both kinds mean "the socket deadline expired": unix reports
        // WouldBlock from SO_RCVTIMEO, windows reports TimedOut
        if matches!(
            e.kind(),
            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
        ) {
            ClientError::TimedOut
        } else {
            ClientError::Io(e)
        }
    }
}

/// One connection to an `rfvd` server. Requests are strictly
/// sequential per connection (submit, wait, submit, ...); run several
/// clients for concurrency.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to a server.
    ///
    /// # Errors
    ///
    /// The connect error, verbatim.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client { stream })
    }

    /// Bounds how long any single request may wait for its response
    /// (`None` waits forever, the default). On expiry the pending
    /// call fails with [`ClientError::TimedOut`] and the connection
    /// is left mid-conversation: drop this client and reconnect —
    /// reusing it would desynchronize the frame stream.
    ///
    /// # Errors
    ///
    /// The `setsockopt` error, verbatim.
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)?;
        self.stream.set_write_timeout(timeout)
    }

    /// Sends one request and waits for its response.
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn request(&mut self, request: &Request) -> Result<Response, ClientError> {
        write_frame(&mut self.stream, &request.encode())?;
        self.read_response()
    }

    /// Reads one response without sending anything (for tests that
    /// write raw bytes first).
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn read_response(&mut self) -> Result<Response, ClientError> {
        match read_frame(&mut self.stream)? {
            None => Err(ClientError::Closed),
            Some(payload) => Response::decode(&payload).map_err(ClientError::Protocol),
        }
    }

    /// Submits a job and waits for its outcome.
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn submit(&mut self, job: &JobRequest) -> Result<Response, ClientError> {
        self.request(&Request::Submit(job.clone()))
    }

    /// Fetches the server's counters.
    ///
    /// # Errors
    ///
    /// [`ClientError::Protocol`] when the server answers anything but
    /// a stats snapshot; otherwise see [`ClientError`].
    pub fn stats(&mut self) -> Result<ServerStats, ClientError> {
        match self.request(&Request::Stats)? {
            Response::Stats(s) => Ok(s),
            Response::Error(e) => Err(ClientError::Protocol(e)),
            Response::Result(_) => Err(ClientError::Protocol(ProtoError::new(
                crate::proto::ErrorCode::Malformed,
                "job result in reply to a stats request",
            ))),
        }
    }

    /// Writes raw bytes on the wire (test hook for malformed input).
    ///
    /// # Errors
    ///
    /// The write error, verbatim.
    pub fn send_raw(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.stream.write_all(bytes)?;
        self.stream.flush()
    }

    /// Shuts down the write half mid-conversation (test hook for
    /// abrupt disconnects).
    ///
    /// # Errors
    ///
    /// The shutdown error, verbatim.
    pub fn shutdown(&mut self) -> io::Result<()> {
        self.stream.shutdown(std::net::Shutdown::Both)
    }
}
