//! A small blocking client for the `rfv-job-v1` protocol, shared by
//! the `rfvload` load generator, the daemon's tests, and the
//! throughput bench — plus [`ResilientClient`], the retrying wrapper
//! that survives connection resets, timeouts, and brownouts by
//! resubmitting idempotently under a job nonce.

use std::io::{self, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::proto::{
    read_frame, write_frame, JobRequest, ProtoError, Request, Response, ServerStats,
};

/// A client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (connect, read, write, disconnect).
    Io(io::Error),
    /// The server's bytes did not parse as a response.
    Protocol(ProtoError),
    /// The server closed the connection instead of responding.
    Closed,
    /// No response within the configured deadline (see
    /// [`Client::set_timeout`]). The connection may be mid-frame and
    /// must not be reused — reconnect.
    TimedOut,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o: {e}"),
            ClientError::Protocol(e) => write!(f, "protocol: {e}"),
            ClientError::Closed => write!(f, "server closed the connection"),
            ClientError::TimedOut => write!(f, "no response within the deadline"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> ClientError {
        // both kinds mean "the socket deadline expired": unix reports
        // WouldBlock from SO_RCVTIMEO, windows reports TimedOut
        if matches!(
            e.kind(),
            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
        ) {
            ClientError::TimedOut
        } else {
            ClientError::Io(e)
        }
    }
}

/// One connection to an `rfvd` server. Requests are strictly
/// sequential per connection (submit, wait, submit, ...); run several
/// clients for concurrency.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to a server.
    ///
    /// # Errors
    ///
    /// The connect error, verbatim.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client { stream })
    }

    /// Bounds how long any single request may wait for its response
    /// (`None` waits forever, the default). On expiry the pending
    /// call fails with [`ClientError::TimedOut`] and the connection
    /// is left mid-conversation: drop this client and reconnect —
    /// reusing it would desynchronize the frame stream.
    ///
    /// # Errors
    ///
    /// The `setsockopt` error, verbatim.
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)?;
        self.stream.set_write_timeout(timeout)
    }

    /// Sends one request and waits for its response.
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn request(&mut self, request: &Request) -> Result<Response, ClientError> {
        write_frame(&mut self.stream, &request.encode())?;
        self.read_response()
    }

    /// Reads one response without sending anything (for tests that
    /// write raw bytes first).
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn read_response(&mut self) -> Result<Response, ClientError> {
        match read_frame(&mut self.stream)? {
            None => Err(ClientError::Closed),
            Some(payload) => Response::decode(&payload).map_err(ClientError::Protocol),
        }
    }

    /// Submits a job and waits for its outcome.
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn submit(&mut self, job: &JobRequest) -> Result<Response, ClientError> {
        self.request(&Request::Submit(job.clone()))
    }

    /// Fetches the server's counters.
    ///
    /// # Errors
    ///
    /// [`ClientError::Protocol`] when the server answers anything but
    /// a stats snapshot; otherwise see [`ClientError`].
    pub fn stats(&mut self) -> Result<ServerStats, ClientError> {
        match self.request(&Request::Stats)? {
            Response::Stats(s) => Ok(s),
            Response::Error(e) => Err(ClientError::Protocol(e)),
            Response::Result(_) => Err(ClientError::Protocol(ProtoError::new(
                crate::proto::ErrorCode::Malformed,
                "job result in reply to a stats request",
            ))),
        }
    }

    /// Writes raw bytes on the wire (test hook for malformed input).
    ///
    /// # Errors
    ///
    /// The write error, verbatim.
    pub fn send_raw(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.stream.write_all(bytes)?;
        self.stream.flush()
    }

    /// Shuts down the write half mid-conversation (test hook for
    /// abrupt disconnects).
    ///
    /// # Errors
    ///
    /// The shutdown error, verbatim.
    pub fn shutdown(&mut self) -> io::Result<()> {
        self.stream.shutdown(std::net::Shutdown::Both)
    }
}

// ------------------------------------------------- resilient client

/// How hard a [`ResilientClient`] fights before giving up.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Total attempts per request, including the first (minimum 1;
    /// 1 means "never retry").
    pub max_attempts: u32,
    /// Backoff floor.
    pub base: Duration,
    /// Backoff ceiling.
    pub cap: Duration,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 8,
            base: Duration::from_millis(25),
            cap: Duration::from_secs(2),
        }
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A [`Client`] wrapper that survives a hostile environment:
///
/// * **Idempotent resubmission.** Every submission carries a
///   client-generated nonce (generated here if the caller left it 0),
///   so blindly resending after a reset or timeout is safe — the
///   daemon runs the job once and replays the recorded reply to every
///   duplicate. Without the nonce, "resend after an ambiguous
///   failure" risks running the job twice; with it, retry is the
///   *default* instead of a gamble.
/// * **Bounded reconnect.** Transport failures (connect refused,
///   reset, timeout, mid-frame close) drop the connection and dial
///   again on the next attempt, up to [`RetryPolicy::max_attempts`].
/// * **Decorrelated-jitter backoff.** Sleeps a random duration drawn
///   from `[base, 3 × previous]` (capped), so a thundering herd of
///   retrying clients de-synchronizes instead of hammering in phase.
///   A [`ProtoError::retry_after_ms`] hint from the server overrides
///   the draw — the daemon knows its own recovery horizon best.
///
/// Deterministic failures (malformed, unknown workload, sim failure)
/// are returned immediately; retrying them verbatim cannot help.
pub struct ResilientClient {
    addr: String,
    timeout: Option<Duration>,
    policy: RetryPolicy,
    rng: u64,
    conn: Option<Client>,
    retries: u64,
    resets: u64,
    prev_sleep_ms: u64,
}

impl ResilientClient {
    /// A client for `addr` with an entropy-seeded jitter/nonce stream.
    pub fn new(
        addr: impl Into<String>,
        timeout: Option<Duration>,
        policy: RetryPolicy,
    ) -> ResilientClient {
        use std::hash::{BuildHasher, Hasher};
        let mut h = std::collections::hash_map::RandomState::new().build_hasher();
        h.write_u32(std::process::id());
        ResilientClient::seeded(addr, timeout, policy, h.finish())
    }

    /// A client with a caller-fixed seed: nonces and jitter draws are
    /// reproducible, which the chaos tests rely on.
    pub fn seeded(
        addr: impl Into<String>,
        timeout: Option<Duration>,
        policy: RetryPolicy,
        seed: u64,
    ) -> ResilientClient {
        let base = policy.base.as_millis().max(1) as u64;
        ResilientClient {
            addr: addr.into(),
            timeout,
            policy,
            rng: seed,
            conn: None,
            retries: 0,
            resets: 0,
            prev_sleep_ms: base,
        }
    }

    /// Requests that were retried after a retryable server rejection.
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Connections dropped and re-dialed after a transport failure.
    pub fn resets(&self) -> u64 {
        self.resets
    }

    /// A fresh non-zero idempotency nonce.
    pub fn nonce(&mut self) -> u64 {
        loop {
            let n = splitmix64(&mut self.rng);
            if n != 0 {
                return n;
            }
        }
    }

    fn conn(&mut self) -> Result<&mut Client, ClientError> {
        if self.conn.is_none() {
            let mut client = Client::connect(&self.addr).map_err(ClientError::Io)?;
            client.set_timeout(self.timeout).map_err(ClientError::Io)?;
            self.conn = Some(client);
        }
        Ok(self.conn.as_mut().expect("connected above"))
    }

    /// Sleeps before the next attempt: the server's hint verbatim, or
    /// a decorrelated-jitter draw from `[base, 3 × previous]`.
    fn backoff(&mut self, hint: Option<u64>) {
        let base = self.policy.base.as_millis().max(1) as u64;
        let cap = self.policy.cap.as_millis().max(1) as u64;
        let ms = match hint {
            Some(ms) => ms.min(cap),
            None => {
                let upper = (self.prev_sleep_ms.saturating_mul(3)).max(base + 1);
                (base + splitmix64(&mut self.rng) % (upper - base)).min(cap)
            }
        };
        self.prev_sleep_ms = ms.max(1);
        std::thread::sleep(Duration::from_millis(ms));
    }

    /// Submits a job, retrying transport failures and retryable
    /// server rejections under one idempotency nonce. The returned
    /// response is the job's single authoritative outcome no matter
    /// how many resubmissions it took.
    ///
    /// # Errors
    ///
    /// The last failure once [`RetryPolicy::max_attempts`] attempts
    /// are exhausted, or immediately for non-retryable ones.
    pub fn submit_idempotent(&mut self, job: &JobRequest) -> Result<Response, ClientError> {
        let mut job = job.clone();
        if job.nonce == 0 {
            job.nonce = self.nonce();
        }
        let attempts = self.policy.max_attempts.max(1);
        let mut attempt = 0;
        loop {
            attempt += 1;
            let last = attempt >= attempts;
            let outcome = match self.conn() {
                Ok(client) => client.submit(&job),
                Err(e) => Err(e),
            };
            match outcome {
                Ok(Response::Error(e)) if e.code.retryable() && !last => {
                    // the connection is fine — only the request was
                    // turned away; honor the server's hint
                    self.retries += 1;
                    self.backoff(e.retry_after_ms);
                }
                Ok(response) => return Ok(response),
                Err(ClientError::Protocol(e)) => return Err(ClientError::Protocol(e)),
                Err(transport) => {
                    // reset/timeout/refused: the stream can no longer
                    // be trusted — reconnect and resubmit blindly
                    // (the nonce makes that safe)
                    self.conn = None;
                    self.resets += 1;
                    if last {
                        return Err(transport);
                    }
                    self.backoff(None);
                }
            }
        }
    }

    /// Fetches server counters, retrying transport failures.
    ///
    /// # Errors
    ///
    /// See [`ResilientClient::submit_idempotent`].
    pub fn stats(&mut self) -> Result<ServerStats, ClientError> {
        let attempts = self.policy.max_attempts.max(1);
        let mut attempt = 0;
        loop {
            attempt += 1;
            let outcome = match self.conn() {
                Ok(client) => client.stats(),
                Err(e) => Err(e),
            };
            match outcome {
                Ok(stats) => return Ok(stats),
                Err(ClientError::Protocol(e)) => return Err(ClientError::Protocol(e)),
                Err(transport) => {
                    self.conn = None;
                    self.resets += 1;
                    if attempt >= attempts {
                        return Err(transport);
                    }
                    self.backoff(None);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nonces_are_deterministic_per_seed_and_never_zero() {
        let policy = RetryPolicy::default();
        let mut a = ResilientClient::seeded("127.0.0.1:1", None, policy, 7);
        let mut b = ResilientClient::seeded("127.0.0.1:1", None, policy, 7);
        let na: Vec<u64> = (0..32).map(|_| a.nonce()).collect();
        let nb: Vec<u64> = (0..32).map(|_| b.nonce()).collect();
        assert_eq!(na, nb);
        assert!(na.iter().all(|&n| n != 0));
        let mut c = ResilientClient::seeded("127.0.0.1:1", None, policy, 8);
        assert_ne!(na, (0..32).map(|_| c.nonce()).collect::<Vec<u64>>());
    }

    #[test]
    fn backoff_respects_hint_and_cap() {
        let policy = RetryPolicy {
            max_attempts: 3,
            base: Duration::from_millis(1),
            cap: Duration::from_millis(5),
        };
        let mut c = ResilientClient::seeded("127.0.0.1:1", None, policy, 3);
        // hint wins verbatim (capped), and seeds the next window
        c.backoff(Some(2));
        assert_eq!(c.prev_sleep_ms, 2);
        c.backoff(Some(10_000));
        assert_eq!(c.prev_sleep_ms, 5, "hints are capped");
        // jittered draws stay within [base, cap]
        for _ in 0..16 {
            c.backoff(None);
            assert!((1..=5).contains(&c.prev_sleep_ms), "{}", c.prev_sleep_ms);
        }
    }

    #[test]
    fn exhausted_attempts_surface_the_transport_error() {
        // nothing listens on this address: every attempt fails fast
        let policy = RetryPolicy {
            max_attempts: 3,
            base: Duration::from_millis(1),
            cap: Duration::from_millis(2),
        };
        let mut c = ResilientClient::seeded("127.0.0.1:9", None, policy, 1);
        let err = c.submit_idempotent(&JobRequest::default()).unwrap_err();
        assert!(matches!(err, ClientError::Io(_) | ClientError::TimedOut));
        assert_eq!(c.resets(), 3, "every attempt dialed and failed");
    }
}
