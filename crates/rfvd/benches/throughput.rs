//! Daemon round-trip throughput: submit-to-result latency against an
//! in-process server, cold (cache bypassed: generate + compile +
//! predecode every job) vs warm (compile-cache hits). The gap is the
//! service's headline win on repeat kernels.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

use rfvd::client::Client;
use rfvd::proto::{JobRequest, Response};
use rfvd::server::{serve, ServerConfig};

const SPEC: &str = "synth:regs=63,trips=0,ctas=1,tpc=32,conc=1,rep=64";

fn submit(client: &mut Client, use_cache: bool) {
    let req = JobRequest {
        spec: SPEC.into(),
        num_sms: 1,
        use_cache,
        ..JobRequest::default()
    };
    match client.submit(&req) {
        Ok(Response::Result(r)) => assert!(r.cycles > 0),
        other => panic!("bench job failed: {other:?}"),
    }
}

fn bench_round_trips(c: &mut Criterion) {
    let server = serve(ServerConfig {
        jobs: 1,
        ..ServerConfig::default()
    })
    .expect("bind bench server");
    let mut client = Client::connect(server.local_addr()).expect("connect");

    let mut g = c.benchmark_group("rfvd_throughput");
    g.sample_size(20);
    g.measurement_time(Duration::from_secs(5));
    g.warm_up_time(Duration::from_secs(1));
    g.bench_function("submit_cold_bypass", |b| {
        b.iter(|| submit(&mut client, false))
    });
    // prime the cache once, then every iteration is a hit
    submit(&mut client, true);
    g.bench_function("submit_warm_hit", |b| b.iter(|| submit(&mut client, true)));
    g.finish();

    drop(client);
    server.begin_drain();
    server.join();
}

criterion_group!(benches, bench_round_trips);
criterion_main!(benches);
