//! Protocol framing robustness against a live server: malformed
//! magic, version, checksum, truncated frames, oversized payloads,
//! and mid-frame disconnects all yield typed errors (or a clean
//! close) while the server keeps serving other connections.

use rfv_trace::wire::fnv1a;
use rfvd::client::{Client, ClientError};
use rfvd::proto::{ErrorCode, JobRequest, Request, Response, JOB_MAGIC, JOB_VERSION, MAX_PAYLOAD};
use rfvd::server::{serve, ServerConfig, ServerHandle};

fn test_server() -> ServerHandle {
    serve(ServerConfig {
        jobs: 1,
        ..ServerConfig::default()
    })
    .expect("bind test server")
}

/// A length-prefixed frame around raw payload bytes.
fn frame(payload: &[u8]) -> Vec<u8> {
    let mut f = (payload.len() as u32).to_le_bytes().to_vec();
    f.extend_from_slice(payload);
    f
}

/// A checksummed envelope with every field under caller control.
fn raw_envelope(magic: [u8; 8], version: u32, kind: u8, body: &[u8]) -> Vec<u8> {
    let mut p = magic.to_vec();
    p.extend_from_slice(&version.to_le_bytes());
    p.push(kind);
    p.extend_from_slice(body);
    p.extend_from_slice(&fnv1a(&p).to_le_bytes());
    p
}

fn quick_job() -> JobRequest {
    JobRequest {
        spec: "synth:regs=8,trips=1,tpc=32,ctas=1,conc=1".into(),
        num_sms: 1,
        ..JobRequest::default()
    }
}

fn expect_error(client: &mut Client, code: ErrorCode) {
    match client.read_response() {
        Ok(Response::Error(e)) => assert_eq!(e.code, code, "{e}"),
        other => panic!("expected {code} error, got {other:?}"),
    }
}

/// The stream must be closed by the server after a poisoning error.
fn expect_closed(client: &mut Client) {
    match client.read_response() {
        Err(ClientError::Closed) => {}
        other => panic!("expected server-side close, got {other:?}"),
    }
}

#[test]
fn bad_magic_is_typed_and_closes_the_stream() {
    let server = test_server();
    let mut c = Client::connect(server.local_addr()).unwrap();
    let p = raw_envelope(*b"rfv-nope", JOB_VERSION, 1, &[]);
    c.send_raw(&frame(&p)).unwrap();
    expect_error(&mut c, ErrorCode::BadMagic);
    expect_closed(&mut c);
    server.begin_drain();
    server.join();
}

#[test]
fn bad_version_keeps_the_connection_usable() {
    let server = test_server();
    let mut c = Client::connect(server.local_addr()).unwrap();
    let p = raw_envelope(JOB_MAGIC, JOB_VERSION + 7, 1, &[]);
    c.send_raw(&frame(&p)).unwrap();
    expect_error(&mut c, ErrorCode::BadVersion);
    // a version mismatch is semantic — the same connection still works
    match c.submit(&quick_job()) {
        Ok(Response::Result(r)) => assert!(r.cycles > 0),
        other => panic!("submit after version error failed: {other:?}"),
    }
    server.begin_drain();
    server.join();
}

#[test]
fn corrupt_checksum_is_typed_and_closes_the_stream() {
    let server = test_server();
    let mut c = Client::connect(server.local_addr()).unwrap();
    let mut p = Request::Submit(quick_job()).encode();
    let mid = p.len() / 2;
    p[mid] ^= 0x40;
    c.send_raw(&frame(&p)).unwrap();
    expect_error(&mut c, ErrorCode::BadChecksum);
    expect_closed(&mut c);
    server.begin_drain();
    server.join();
}

#[test]
fn oversized_length_prefix_is_typed_and_closes_the_stream() {
    let server = test_server();
    let mut c = Client::connect(server.local_addr()).unwrap();
    // a hostile length prefix; no payload bytes ever follow
    c.send_raw(&((MAX_PAYLOAD as u32 + 1).to_le_bytes()))
        .unwrap();
    expect_error(&mut c, ErrorCode::Oversized);
    expect_closed(&mut c);
    server.begin_drain();
    server.join();
}

#[test]
fn truncated_envelope_is_malformed_not_a_hang() {
    let server = test_server();
    let mut c = Client::connect(server.local_addr()).unwrap();
    // a full frame whose payload is shorter than any valid envelope
    c.send_raw(&frame(b"rfv")).unwrap();
    expect_error(&mut c, ErrorCode::Malformed);
    server.begin_drain();
    server.join();
}

#[test]
fn trailing_garbage_in_body_is_malformed_and_recoverable() {
    let server = test_server();
    let mut c = Client::connect(server.local_addr()).unwrap();
    let valid = Request::Submit(quick_job()).encode();
    // re-envelope the body with extra bytes appended
    let body_start = 8 + 4 + 1;
    let body_end = valid.len() - 8;
    let mut body = valid[body_start..body_end].to_vec();
    body.extend_from_slice(b"junk");
    let p = raw_envelope(JOB_MAGIC, JOB_VERSION, 1, &body);
    c.send_raw(&frame(&p)).unwrap();
    expect_error(&mut c, ErrorCode::Malformed);
    match c.submit(&quick_job()) {
        Ok(Response::Result(r)) => assert!(r.cycles > 0),
        other => panic!("submit after malformed body failed: {other:?}"),
    }
    server.begin_drain();
    server.join();
}

#[test]
fn mid_frame_disconnect_leaves_the_server_serving_others() {
    let server = test_server();
    // connection A sends half a frame and vanishes
    let mut a = Client::connect(server.local_addr()).unwrap();
    let payload = Request::Submit(quick_job()).encode();
    let mut partial = frame(&payload);
    partial.truncate(partial.len() / 2);
    a.send_raw(&partial).unwrap();
    a.shutdown().unwrap();
    drop(a);
    // connection B is unaffected
    let mut b = Client::connect(server.local_addr()).unwrap();
    match b.submit(&quick_job()) {
        Ok(Response::Result(r)) => assert!(r.cycles > 0),
        other => panic!("submit on a healthy connection failed: {other:?}"),
    }
    server.begin_drain();
    server.join();
}

#[test]
fn poisoned_connection_does_not_poison_neighbors() {
    let server = test_server();
    let mut victim = Client::connect(server.local_addr()).unwrap();
    let mut healthy = Client::connect(server.local_addr()).unwrap();
    let p = raw_envelope(*b"BADBADBA", JOB_VERSION, 1, &[]);
    victim.send_raw(&frame(&p)).unwrap();
    expect_error(&mut victim, ErrorCode::BadMagic);
    expect_closed(&mut victim);
    match healthy.submit(&quick_job()) {
        Ok(Response::Result(r)) => assert!(r.cycles > 0),
        other => panic!("neighbor connection broken: {other:?}"),
    }
    server.begin_drain();
    server.join();
}

#[test]
fn semantic_rejections_are_typed_and_keep_serving() {
    let server = test_server();
    let mut c = Client::connect(server.local_addr()).unwrap();
    for (req, code) in [
        (
            JobRequest {
                spec: "NotAWorkload".into(),
                ..quick_job()
            },
            ErrorCode::UnknownWorkload,
        ),
        (
            JobRequest {
                spec: "synth:regs=64".into(),
                ..quick_job()
            },
            ErrorCode::UnknownWorkload,
        ),
        (
            JobRequest {
                machine: "warp9".into(),
                ..quick_job()
            },
            ErrorCode::UnknownMachine,
        ),
    ] {
        match c.submit(&req) {
            Ok(Response::Error(e)) => assert_eq!(e.code, code, "{e}"),
            other => panic!("expected {code}, got {other:?}"),
        }
    }
    // after three rejections the connection still completes real work
    match c.submit(&quick_job()) {
        Ok(Response::Result(r)) => assert!(r.cycles > 0),
        other => panic!("submit after rejections failed: {other:?}"),
    }
    server.begin_drain();
    server.join();
}
