//! Partial-write robustness of the poll-multiplexed connection
//! layer: reply frames must arrive byte-identical even when every
//! socket write makes only sliver progress — whether the slivers come
//! from injected `net_short_write` chaos or from genuinely tiny
//! kernel socket buffers that force frames to split across many
//! `POLLOUT` drains.

use rfvd::chaos::{ChaosKind, ChaosPlan};
use rfvd::client::Client;
use rfvd::proto::{JobRequest, Response};
use rfvd::server::{serve, ServerConfig};

const QUICK_SPEC: &str = "synth:regs=24,trips=2,rep=4";

fn req(spec: &str) -> JobRequest {
    JobRequest {
        spec: spec.into(),
        num_sms: 1,
        ..JobRequest::default()
    }
}

#[test]
fn sliver_writes_still_deliver_byte_identical_replies() {
    // reference: a fault-free server's result for the same job
    let clean = serve(ServerConfig::default()).expect("serve clean");
    let mut c = Client::connect(clean.local_addr()).unwrap();
    let reference = match c.submit(&req(QUICK_SPEC)).unwrap() {
        Response::Result(r) => r,
        other => panic!("reference submit: {other:?}"),
    };
    clean.join();

    // every write the chaos server makes map to a 1–8 byte sliver;
    // frames must still arrive whole and identical
    let handle = serve(ServerConfig {
        chaos: ChaosPlan::parse("net_short_write:1.0", 5).unwrap(),
        ..ServerConfig::default()
    })
    .expect("serve chaos");
    let mut client = Client::connect(handle.local_addr()).unwrap();
    for _ in 0..8 {
        match client.submit(&req(QUICK_SPEC)).unwrap() {
            Response::Result(r) => {
                assert_eq!(r.stats_json, reference.stats_json);
                assert_eq!(r.cycles, reference.cycles);
                assert_eq!(r.instrs, reference.instrs);
            }
            other => panic!("sliver submit: {other:?}"),
        }
    }
    assert!(
        handle.chaos().fired(ChaosKind::NetShortWrite) > 0,
        "the short-write fault actually fired"
    );
    handle.join();
}

/// Shrinks a socket's kernel buffers to their floor so a burst of
/// reply frames cannot possibly flush in one write.
#[cfg(target_os = "linux")]
fn shrink_buffers(stream: &std::net::TcpStream) {
    use std::os::fd::AsRawFd;
    extern "C" {
        fn setsockopt(
            fd: i32,
            level: i32,
            optname: i32,
            optval: *const std::ffi::c_void,
            optlen: u32,
        ) -> i32;
    }
    const SOL_SOCKET: i32 = 1;
    const SO_SNDBUF: i32 = 7;
    const SO_RCVBUF: i32 = 8;
    // the kernel clamps the request up to its per-socket minimum —
    // the point is "as small as allowed", not an exact byte count
    let val: i32 = 1;
    for opt in [SO_SNDBUF, SO_RCVBUF] {
        let rc = unsafe {
            setsockopt(
                stream.as_raw_fd(),
                SOL_SOCKET,
                opt,
                (&raw const val).cast(),
                std::mem::size_of::<i32>() as u32,
            )
        };
        assert_eq!(rc, 0, "setsockopt({opt})");
    }
}

#[cfg(target_os = "linux")]
#[test]
fn pipelined_frames_split_across_pollout_drains() {
    use std::io::Write as _;

    use rfvd::proto::{read_frame, write_frame, Request};

    let handle = serve(ServerConfig::default()).expect("serve");
    let mut stream = std::net::TcpStream::connect(handle.local_addr()).unwrap();
    stream.set_nodelay(true).unwrap();
    shrink_buffers(&stream);

    // pipeline a burst of stats requests without reading a single
    // reply: the replies overflow the shrunken buffers, so the mux
    // must park them in its out-buffer and drain over many POLLOUT
    // rounds as we read
    const BURST: usize = 64;
    let payload = Request::Stats.encode();
    for _ in 0..BURST {
        write_frame(&mut stream, &payload).unwrap();
    }
    stream.flush().unwrap();

    for i in 0..BURST {
        let frame = read_frame(&mut stream)
            .unwrap_or_else(|e| panic!("reply {i}: {e}"))
            .unwrap_or_else(|| panic!("reply {i}: connection closed early"));
        match Response::decode(&frame) {
            Ok(Response::Stats(s)) => {
                assert!(s.conns_total >= 1, "reply {i}: nonsense counters");
            }
            other => panic!("reply {i}: {other:?}"),
        }
    }
    handle.join();
}
